//! # dnn-defender-repro — umbrella crate
//!
//! End-to-end reproduction of *DNN-Defender: A Victim-Focused In-DRAM
//! Defense Mechanism for Taming Adversarial Weight Attack on DNNs*
//! (DAC 2024). This root crate re-exports the workspace layers and hosts
//! the runnable examples (`examples/`) and the cross-crate integration
//! tests (`tests/`).
//!
//! Layer map (bottom-up):
//!
//! * [`dd_dram`] — DRAM + RowHammer simulator;
//! * [`dd_nn`] — tensor / training substrate and synthetic datasets;
//! * [`dd_qnn`] — 8-bit quantization, bit addressing, victim model zoo;
//! * [`dd_attack`] — BFA progressive bit search, random and adaptive
//!   attackers, vulnerable-bit profiling;
//! * [`dnn_defender`] — the defense layer: the
//!   [`dnn_defender::defense::DefenseMechanism`] trait, mapping, four-step
//!   swap, priority protection, the generic
//!   [`dnn_defender::ProtectedSystem`], analytical models;
//! * [`dd_baselines`] — RRS / SRS / SHADOW / Graphene and the software
//!   defenses behind the same trait, plus the
//!   [`dd_baselines::ScenarioMatrix`] attacker × defense × device sweep
//!   harness.
//!
//! See `README.md` for a guided tour and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use dd_attack;
pub use dd_baselines;
pub use dd_dram;
pub use dd_nn;
pub use dd_qnn;
pub use dnn_defender;

/// Commonly used items for examples and downstream experiments.
pub mod prelude {
    pub use dd_attack::{
        attack_protected, multi_round_profile, run_bfa, run_random_attack, AttackConfig,
        AttackData, ThreatModel,
    };
    pub use dd_baselines::{AttackerKind, CellReport, MatrixReport, ScenarioMatrix, VictimSpec};
    pub use dd_dram::{DramConfig, MemoryController, Nanos, TimingParams};
    pub use dd_nn::data::{Dataset, SyntheticSpec};
    pub use dd_nn::init::seeded_rng;
    pub use dd_nn::train::{train, TrainConfig};
    pub use dd_qnn::{build_model, Architecture, BitAddr, ModelConfig, QModel};
    pub use dnn_defender::{
        DefenseConfig, DefenseMechanism, DefenseOp, DefenseStats, DnnDefenderDefense, DynDefense,
        FlipAttempt, ProtectedSystem, ProtectionPlan, SecurityModel, Undefended,
    };
}
