//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest API the workspace's property tests
//! use: the `proptest!` macro (with an optional `#![proptest_config]`
//! header), range / tuple / `any` / `collection::vec` strategies, and the
//! `prop_assert*` / `prop_assume!` macros. Cases are drawn from a seeded
//! RNG (deterministic per test name); there is no shrinking — a failing
//! case panics with the sampled values via the standard assert messages.

use rand::rngs::StdRng;
use rand::Rng;

/// How many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases to draw per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test seed from the test's name (FNV-1a).
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A source of sampled values.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// Full-domain strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

/// Sample from a type's whole domain (`any::<u8>()` style).
pub fn any<T>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

macro_rules! impl_any_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_any_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

impl Strategy for AnyStrategy<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rand::RngCore::next_u64(rng) & 1 == 1
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specifications accepted by [`vec()`]: a fixed `usize` or a
    /// `Range<usize>`.
    pub trait VecLen {
        /// Pick a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl VecLen for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl VecLen for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec<S::Value>` with length drawn from `L`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `vec(element_strategy, len_spec)` — a vector strategy.
    pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub use rand as __rand;

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Boolean property assertion (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality property assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Discard the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` drawing `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr); $( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                        $crate::seed_from_name(stringify!($name)),
                    );
                for _case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                    // One case per closure call so `prop_assume!` can
                    // discard the case with a plain `return`.
                    (move || { $body })();
                }
            }
        )*
    };
}
