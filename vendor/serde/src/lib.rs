//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so this crate keeps the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compiling:
//! the traits are markers (blanket-implemented for every type) and the
//! derive macros expand to nothing. Swapping the real `serde` back in is a
//! one-line Cargo change; no source edits are needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
