//! No-op derive macros backing the vendored `serde` stand-in: the traits
//! are blanket-implemented over there, so the derives have nothing to
//! generate.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
