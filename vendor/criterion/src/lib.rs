//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion 0.5 API the workspace benches
//! use — [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple calibrated wall-clock
//! loop instead of criterion's statistical machinery. Good enough to spot
//! order-of-magnitude regressions offline; swap the real crate back in
//! for publication-quality numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed iterations per benchmark (after one warm-up pass).
/// Overridable with `CRITERION_STUB_ITERS`.
fn iters() -> u64 {
    std::env::var("CRITERION_STUB_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(50)
}

/// Runs closures under timing; handed to benchmark definitions.
pub struct Bencher {
    total: Duration,
    runs: u64,
}

impl Bencher {
    /// Time `f` over a calibrated number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, excluded from timing
        let n = iters();
        let start = Instant::now();
        for _ in 0..n {
            black_box(f());
        }
        self.total = start.elapsed();
        self.runs = n;
    }
}

fn report(name: &str, b: &Bencher) {
    if b.runs == 0 {
        println!("{name:<48} (no iterations)");
        return;
    }
    let per = b.total.as_nanos() / u128::from(b.runs);
    println!("{name:<48} {per:>12} ns/iter ({} runs)", b.runs);
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; the stub's fixed iteration count
    /// is controlled by `CRITERION_STUB_ITERS` instead.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            runs: 0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group; names are joined with `/` like criterion does.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            total: Duration::ZERO,
            runs: 0,
        };
        f(&mut b);
        report(&format!("{}/{name}", self.name), &b);
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
}

/// Emit the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
