//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the subset of the `rand` 0.8 API the workspace
//! uses: [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256** seeded through
//! SplitMix64 — high-quality, deterministic, and portable, which is all
//! the simulator needs (it never claims cryptographic strength, and
//! neither does `StdRng`'s contract).

/// A source of random `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can sample themselves uniformly from a range.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `[low, high)`. `high > low` is guaranteed by
    /// the caller.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping: bias is < 2^-64
                // per draw, far below anything the simulator can observe.
                let x = rng.next_u64() as u128;
                low + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        low + unit * (high - low)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(
            self.start < self.end,
            "gen_range called with an empty range"
        );
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "gen_range called with an empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let x = rng.next_u64() as u128;
                low + ((x * span) >> 64) as $t
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_half_open(self, 0.0, 1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// `StdRng`; same contract — portable determinism per seed, no
    /// cryptographic claims).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_splitmix(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn covers_full_small_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
