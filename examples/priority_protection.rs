//! The full DNN-Defender flow: profile vulnerable bits with the
//! attacker's own search, install the priority protection plan, and
//! compare semi-white-box vs adaptive white-box attacks (§4, §5.2).
//!
//! Run with: `cargo run --release --example priority_protection`

use dnn_defender_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Victim: ResNet-20-like on the CIFAR-10 stand-in.
    let mut rng = seeded_rng(23);
    let mut spec = SyntheticSpec::cifar10_like();
    spec.train_per_class = 48;
    spec.test_per_class = 24;
    let dataset = Dataset::generate(spec, &mut rng);
    let config = ModelConfig::new(Architecture::ResNet20, spec.classes).with_base_width(2);
    let mut net = build_model(&config, &mut rng);
    let tc = TrainConfig {
        epochs: 16,
        ..TrainConfig::default()
    };
    let report = train(&mut net, &dataset, tc, &mut rng);
    println!(
        "victim resnet20: test accuracy {:.1}%",
        report.test_accuracy * 100.0
    );

    let mut model = QModel::from_network(net);
    let batch = dataset.attack_batch(96, &mut rng);
    let data = AttackData::single_batch(batch.images, batch.labels);

    // Priority profiling: r rounds of skip-set BFA (§4). Round-1 depth
    // must cover the naive attacker's full budget (40 below) because the
    // naive attacker's greedy path *is* one long round; the extra rounds
    // blunt the adaptive attacker (see EXPERIMENTS.md).
    let profile_cfg = AttackConfig {
        target_accuracy: 0.0,
        max_flips: 40,
        ..Default::default()
    };
    let rounds = 4;
    let map = dnn_defender::WeightMap::layout(&model, &DramConfig::lpddr4_small());
    let plan = ProtectionPlan::profile(&mut model, &data, &profile_cfg, rounds, &map);
    println!(
        "profiled {} secured bits over {rounds} rounds -> {} target rows \
         ({:.3}% of model bits)",
        plan.secured_bit_count(),
        plan.target_rows.len(),
        plan.secured_fraction(&model) * 100.0
    );
    for (i, size) in plan.profile.round_sizes.iter().enumerate() {
        println!(
            "  round {}: {size} bits, attack bottomed out at {:.1}%",
            i + 1,
            plan.profile.round_final_accuracies[i] * 100.0
        );
    }

    // Attack the protected model under both threat models.
    let attack_cfg = AttackConfig {
        target_accuracy: 0.12,
        max_flips: 40,
        ..Default::default()
    };
    let secured = plan.secured_set();
    for threat in [ThreatModel::SemiWhiteBox, ThreatModel::WhiteBox] {
        let snapshot = model.snapshot_q();
        let outcome = attack_protected(&mut model, &data, &attack_cfg, &secured, threat);
        model.restore_q(&snapshot);
        println!(
            "\n{threat:?}: {} attempted, {} landed, accuracy {:.1}% -> {:.1}%",
            outcome.attempted_flips,
            outcome.landed_flips,
            outcome.clean_accuracy * 100.0,
            outcome.final_accuracy * 100.0
        );
    }

    println!(
        "\nThe semi-white-box attack wastes its flips on swapped rows; the \
         adaptive attack must spend many more flips on low-value bits."
    );
    Ok(())
}
