//! Quickstart: train a small quantized victim, deploy it into simulated
//! DRAM, and watch DNN-Defender neutralize a RowHammer bit-flip that
//! corrupts the undefended system.
//!
//! Run with: `cargo run --release --example quickstart`

use dnn_defender_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train a small victim on the synthetic CIFAR-10 stand-in.
    let mut rng = seeded_rng(7);
    let mut spec = SyntheticSpec::cifar10_like();
    spec.train_per_class = 32;
    spec.test_per_class = 16;
    let dataset = Dataset::generate(spec, &mut rng);
    let config = ModelConfig::new(Architecture::Mlp, spec.classes).with_base_width(4);
    let mut net = build_model(&config, &mut rng);
    let report = train(&mut net, &dataset, TrainConfig::default(), &mut rng);
    println!(
        "trained {}: test accuracy {:.1}%",
        net.name(),
        report.test_accuracy * 100.0
    );

    // 2. Quantize to 8-bit and deploy into simulated LPDDR4 (each run
    //    below rebuilds the same weights deterministically).
    let eval = dataset.test.take(96);
    for (enabled, label) in [(false, "UNDEFENDED"), (true, "DNN-DEFENDER")] {
        let defense = DefenseConfig {
            enabled,
            ..DefenseConfig::default()
        };
        let mut system = ProtectedSystem::deploy(
            // Re-deploy a fresh copy each time (deterministic rebuild).
            {
                let mut rng = seeded_rng(7);
                let mut net = build_model(&config, &mut rng);
                train(&mut net, &dataset, TrainConfig::default(), &mut rng);
                QModel::from_network(net)
            },
            DramConfig::lpddr4_small(),
            defense,
            42,
        )?;

        // 3. Secure the classifier sign bits (a stand-in for the profiled
        //    priority bits; see the priority_protection example for the
        //    real profiling flow).
        let last = system.model_mut().num_qparams() - 1;
        let weights = system.model_mut().qtensor(last).len();
        let bits: Vec<BitAddr> = (0..weights)
            .map(|i| BitAddr {
                param: last,
                index: i,
                bit: 7,
            })
            .collect();
        system.protect(bits.clone());

        // 4. The attacker hammers the rows holding those bits.
        let clean = system.accuracy(&eval.images, &eval.labels);
        let outcomes = system.run_campaign(&bits)?;
        let landed = outcomes.iter().filter(|o| o.landed()).count();
        let after = system.accuracy(&eval.images, &eval.labels);
        let stats = system.stats();
        println!(
            "[{label}] clean {:.1}% -> attacked {:.1}% | {landed}/{} flips landed, \
             {} swaps, {} rowclones, mem busy {}",
            clean * 100.0,
            after * 100.0,
            outcomes.len(),
            stats.defense_ops,
            stats.row_clones,
            system.memory().stats().busy,
        );
    }
    println!("\nThe defended run holds its clean accuracy: every campaign was");
    println!("neutralized by a four-step RowClone swap inside the DRAM subarray.");
    Ok(())
}
