//! The scenario matrix in one screen: sweep attacker × defense × device
//! through the `DefenseMechanism` trait and print the resulting grid —
//! the Table 3 protocol generalized to arbitrary scenarios.
//!
//! Run with: `cargo run --release --example scenario_matrix`

use dd_baselines::{
    AttackerKind, GrapheneDefense, RowSwapMechanism, ScenarioMatrix, ShadowMechanism, SwapScheme,
    VictimSpec,
};
use dnn_defender_repro::prelude::*;

fn main() {
    let attack = AttackConfig {
        target_accuracy: 0.3,
        max_flips: 60,
        ..Default::default()
    };
    let matrix = ScenarioMatrix::new(VictimSpec::tiny_mlp(7))
        .attack_config(attack)
        .budget(20)
        .attacker(AttackerKind::Bfa)
        .attacker(AttackerKind::Random { flips: 20 })
        .attacker(AttackerKind::Adaptive(ThreatModel::WhiteBox))
        .dram_config(DramConfig::lpddr4_small())
        .defense("Baseline", |_, _| Box::new(Undefended::named("Baseline")))
        .defense("Graphene", |_, config| {
            Box::new(GrapheneDefense::for_config(config))
        })
        .defense("RRS", |seed, _| {
            Box::new(RowSwapMechanism::new(SwapScheme::Rrs, seed))
        })
        .defense("SHADOW", |seed, _| {
            Box::new(ShadowMechanism::new(1000, seed))
        })
        .defense("DNN-Defender", |seed, _| {
            Box::new(DnnDefenderDefense::with_profiling(
                DefenseConfig::default(),
                2,
                seed,
            ))
        });

    println!(
        "running {} cells in parallel (defense x attacker x device)...\n",
        matrix.scenarios().len()
    );
    let report = matrix.run().expect("matrix run");

    println!(
        "{:<14} {:<22} {:>9} {:>9} {:>9} {:>7} {:>8}",
        "defense", "attacker", "clean", "post", "attempts", "landed", "ops"
    );
    for cell in &report.cells {
        println!(
            "{:<14} {:<22} {:>8.1}% {:>8.1}% {:>9} {:>7} {:>8}",
            cell.scenario.defense,
            cell.scenario.attacker,
            cell.clean_accuracy * 100.0,
            cell.post_attack_accuracy * 100.0,
            cell.attempts,
            cell.landed,
            cell.stats.defense_ops,
        );
        assert!(cell.stats.invariants_hold());
    }

    println!("\nFig. 8 analytical rows from the same entry point:");
    for row in matrix.security_analysis(&[1000, 2000, 4000, 8000]) {
        println!(
            "  T_RH {:>5}: DNN-Defender {:>6.0} days, SHADOW {:>6.0} days, \
             defends {:>6} BFAs/T_ref vs attacker capacity {:>6}",
            row.t_rh, row.dd_days, row.shadow_days, row.max_defended_bfas, row.attacker_bfas
        );
    }

    println!(
        "\nEvery row went through the same DefenseMechanism lifecycle \
         (prepare -> deploy -> filter_flip -> stats); adding a defense or \
         attacker is one builder line, not an enum edit."
    );
}
