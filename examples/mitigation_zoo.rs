//! Tour of the baseline RowHammer mitigations on the raw DRAM simulator:
//! counter-per-row, Hydra, TWiCe, Graphene, RRS (against both attacker
//! types) and SHADOW — the systems DNN-Defender is compared against in
//! Tables 2–3.
//!
//! Run with: `cargo run --release --example mitigation_zoo`

use dd_baselines::{
    AttackerTracking, CounterPerRow, GrapheneDefense, HydraTracker, RowSwapDefense, ShadowDefense,
    SwapScheme, TwiceTable,
};
use dd_dram::{DramConfig, GlobalRowId, MemoryController, Nanos};
use dd_nn::init::seeded_rng;

fn fresh() -> (MemoryController, GlobalRowId, GlobalRowId) {
    let mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
    (mem, GlobalRowId::new(0, 0, 10), GlobalRowId::new(0, 0, 11))
}

fn main() -> Result<(), dd_dram::DramError> {
    let t_rh = DramConfig::lpddr4_small().rowhammer_threshold;
    println!("device: LPDDR4-small, T_RH = {t_rh}\n");

    // Undefended reference.
    let (mut mem, victim, aggressor) = fresh();
    mem.hammer(aggressor, t_rh)?;
    println!(
        "undefended        : flip {}",
        if mem.attempt_flip(victim, &[0])?.flipped() {
            "LANDED"
        } else {
            "resisted"
        }
    );

    // Counter-per-row.
    let (mut mem, victim, aggressor) = fresh();
    let mut cpr = CounterPerRow::new();
    for _ in 0..10 {
        mem.hammer(aggressor, t_rh / 10)?;
        cpr.on_activations(&mut mem, aggressor, t_rh / 10, t_rh / 2)?;
    }
    println!(
        "counter-per-row   : flip {}, {} refreshes, {} live counters",
        if mem.attempt_flip(victim, &[0])?.flipped() {
            "LANDED"
        } else {
            "resisted"
        },
        cpr.refreshes,
        cpr.live_counters()
    );

    // Hydra two-level tracking.
    let (mut mem, victim, aggressor) = fresh();
    let mut hydra = HydraTracker::new(16, t_rh / 6);
    for _ in 0..10 {
        mem.hammer(aggressor, t_rh / 10)?;
        hydra.on_activations(&mut mem, aggressor, t_rh / 10, t_rh / 2)?;
    }
    println!(
        "hydra             : flip {}, {} refreshes, {} spilled row counters",
        if mem.attempt_flip(victim, &[0])?.flipped() {
            "LANDED"
        } else {
            "resisted"
        },
        hydra.refreshes,
        hydra.spilled_rows
    );

    // TWiCe pruned table.
    let (mut mem, victim, aggressor) = fresh();
    let mut twice = TwiceTable::new();
    for noise_row in 40..60 {
        mem.hammer(GlobalRowId::new(0, 0, noise_row), 2)?;
        twice.on_activations(&mut mem, GlobalRowId::new(0, 0, noise_row), 2, t_rh / 2, 4)?;
    }
    for _ in 0..10 {
        mem.hammer(aggressor, t_rh / 10)?;
        twice.on_activations(&mut mem, aggressor, t_rh / 10, t_rh / 2, 4)?;
    }
    println!(
        "twice             : flip {}, {} refreshes, {} pruned, {} live entries",
        if mem.attempt_flip(victim, &[0])?.flipped() {
            "LANDED"
        } else {
            "resisted"
        },
        twice.refreshes,
        twice.pruned,
        twice.live_entries()
    );

    // Graphene Misra-Gries.
    let (mut mem, victim, aggressor) = fresh();
    let mut graphene = GrapheneDefense::new(16, t_rh / 2);
    for _ in 0..10 {
        mem.hammer(aggressor, t_rh / 10)?;
        graphene.on_activations(&mut mem, aggressor, t_rh / 10)?;
    }
    println!(
        "graphene          : flip {}, {} refreshes",
        if mem.attempt_flip(victim, &[0])?.flipped() {
            "LANDED"
        } else {
            "resisted"
        },
        graphene.refreshes
    );

    // RRS against both attacker types.
    let mut rng = seeded_rng(5);
    for tracking in [
        AttackerTracking::FollowsAggressorData,
        AttackerTracking::FollowsVictimAdjacency,
    ] {
        let (mut mem, victim, _) = fresh();
        let mut rrs = RowSwapDefense::new(SwapScheme::Rrs);
        let out = rrs.run_campaign(&mut mem, victim, 0, tracking, &mut rng)?;
        println!(
            "rrs vs {:<28}: flip {}, {} aggressor swaps",
            format!("{tracking:?}"),
            if out.flipped { "LANDED" } else { "resisted" },
            out.swaps
        );
    }

    // SHADOW with and without budget.
    for budget in [1000u64, 0] {
        let (mut mem, victim, _) = fresh();
        let mut shadow = ShadowDefense::new(budget);
        let flipped = shadow.run_campaign(&mut mem, victim, 0, &mut rng)?;
        println!(
            "shadow (budget {budget:>4}) : flip {}, {} shuffles",
            if flipped { "LANDED" } else { "resisted" },
            shadow.shuffles
        );
        mem.advance(Nanos::from_millis(65));
    }

    println!(
        "\nTakeaway: counter schemes work but pay Table-2 storage; RRS only \
         stops the attacker that chases its aggressor data; SHADOW and \
         DNN-Defender both relocate the *victim* — see the quickstart and \
         priority_protection examples for DNN-Defender itself."
    );
    Ok(())
}
