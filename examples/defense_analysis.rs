//! The analytical side of the paper (§5.1): swap timing, security
//! formulas, time-to-break, latency, and the hardware-overhead table —
//! no training required, runs instantly.
//!
//! Run with: `cargo run --release --example defense_analysis`

use dnn_defender::{chain_schedule, overhead_table, parallel_schedule, rh_thresholds};
use dnn_defender_repro::prelude::*;

fn main() {
    let config = DramConfig::lpddr4_small();
    let model = SecurityModel::from_config(&config);
    let timing = config.timing;

    println!("RowHammer threshold survey (Fig 1a):");
    for p in rh_thresholds() {
        println!("  {:<14} T_RH = {}", p.generation, p.threshold);
    }

    println!("\nSwap timing (§5.1):");
    println!("  T_AAP  = {}", timing.t_aap);
    println!("  T_swap = {} (3 x T_AAP, pipelined)", timing.t_swap());
    let chain = chain_schedule(100, &timing, true);
    let naive = chain_schedule(100, &timing, false);
    println!(
        "  100-swap chain: pipelined {} vs naive {} ({} rowclones vs {})",
        chain.latency, naive.latency, chain.row_clones, naive.row_clones
    );
    let par = parallel_schedule(1600, 16, &timing, true);
    println!("  1600 swaps over 16 banks: {}", par.latency);

    println!("\nSecurity analysis per T_RH:");
    println!(
        "  {:>5} {:>14} {:>14} {:>12} {:>12}",
        "T_RH", "DD days", "SHADOW days", "max defend", "atk BFAs"
    );
    for t_rh in [1000u64, 2000, 4000, 8000] {
        println!(
            "  {:>5} {:>14.0} {:>14.0} {:>12} {:>12}",
            t_rh,
            model.time_to_break_days(t_rh, DefenseOp::DnnDefenderSwap),
            model.time_to_break_days(t_rh, DefenseOp::ShadowShuffle),
            model.max_defended_bfas(t_rh),
            model.max_bfas_per_tref(t_rh),
        );
    }

    println!("\nThe paper's formulas for S_bit = 4800 secured bits at T_RH = 4k:");
    let n_s = model.rows_per_bank(4800);
    println!("  N_s (rows/bank)        = {n_s}");
    println!(
        "  window (T_ACT x T_RH)  = {}",
        model.threshold_window(4000)
    );
    println!(
        "  max swaps per window   = {}",
        model.max_swaps_per_window(4000)
    );
    println!("  T_n                    = {}", model.t_n(4000, n_s));
    println!(
        "  swaps per T_ref (N)    = {}",
        model.swaps_per_tref(4000, n_s)
    );

    println!("\nHardware overhead (Table 2, 32GB/16-bank DDR4):");
    for e in overhead_table(&DramConfig::ddr4_32gb()) {
        println!(
            "  {:<16} {:>8.2} MB reported, fast memory: {}",
            e.framework,
            e.total_reported_mb(),
            if e.needs_fast_memory() { "yes" } else { "no" }
        );
    }
}
