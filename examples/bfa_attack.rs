//! Targeted BFA vs random bit flips on an undefended quantized model —
//! the Fig. 1(b) motivation in miniature.
//!
//! Run with: `cargo run --release --example bfa_attack`

use std::collections::HashSet;

use dnn_defender_repro::prelude::*;

fn main() {
    // Train a CIFAR-10-like victim.
    let mut rng = seeded_rng(11);
    let mut spec = SyntheticSpec::cifar10_like();
    spec.train_per_class = 48;
    spec.test_per_class = 24;
    let dataset = Dataset::generate(spec, &mut rng);
    let config = ModelConfig::new(Architecture::Vgg11, spec.classes).with_base_width(2);
    let mut net = build_model(&config, &mut rng);
    let report = train(&mut net, &dataset, TrainConfig::default(), &mut rng);
    println!(
        "victim: {} ({} params), test accuracy {:.1}%",
        config.arch.name(),
        net.param_count(),
        report.test_accuracy * 100.0
    );

    let mut model = QModel::from_network(net);
    let batch = dataset.attack_batch(96, &mut rng);
    let data = AttackData::single_batch(batch.images, batch.labels);
    let snapshot = model.snapshot_q();

    // Targeted progressive bit search.
    let cfg = AttackConfig {
        target_accuracy: 0.12,
        max_flips: 40,
        ..Default::default()
    };
    let bfa = run_bfa(&mut model, &data, &cfg, &HashSet::new());
    println!("\ntargeted BFA trajectory (flips -> accuracy):");
    for (flips, acc) in bfa.trajectory() {
        println!("  {flips:>3} -> {:.1}%", acc * 100.0);
    }
    model.restore_q(&snapshot);

    // Random flips with 3x the budget.
    let random = run_random_attack(
        &mut model,
        &data.eval_images,
        &data.eval_labels,
        120,
        20,
        &mut rng,
    );
    println!("\nrandom attack trajectory (flips -> accuracy):");
    for (flips, acc) in &random.trajectory {
        println!("  {flips:>3} -> {:.1}%", acc * 100.0);
    }

    println!(
        "\nBFA reached {:.1}% in {} flips; {} random flips only got to {:.1}%.",
        bfa.final_accuracy * 100.0,
        bfa.bit_flips,
        120,
        random.final_accuracy * 100.0
    );
}
