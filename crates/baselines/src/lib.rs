//! # dd-baselines — the mitigations DNN-Defender is compared against
//!
//! Hardware baselines (Table 2 / Table 3):
//!
//! * [`graphene`] — counter-based victim refresh with a Misra–Gries
//!   frequent-items table (Graphene, MICRO 2020);
//! * [`swap_based`] — aggressor-focused randomized row swaps (RRS,
//!   ASPLOS 2022; SRS 2022), including the white-box failure mode the
//!   paper builds its case on;
//! * [`shadow`] — intra-subarray victim shuffling (SHADOW, HPCA 2023),
//!   the strongest prior scheme and the head-to-head comparison in
//!   Fig. 8;
//!
//! Software baselines (Table 3):
//!
//! * [`software`] — piece-wise clustering (weight clipping), binary
//!   weights, post-attack weight reconstruction, capacity scaling;
//!
//! and the [`evaluation`] harness that plays the common BFA protocol
//! against any of them.

pub mod counters;
pub mod evaluation;
pub mod graphene;
pub mod shadow;
pub mod software;
pub mod swap_based;
#[cfg(test)]
pub(crate) mod testutil;

pub use counters::{CounterPerRow, HydraTracker, TwiceTable};
pub use evaluation::{evaluate_defense, DefenseEvalRow, LandingFilter};
pub use graphene::{GrapheneDefense, MisraGries};
pub use shadow::ShadowDefense;
pub use software::{binarize_weights, clip_weights, record_max_abs, repair_outliers};
pub use swap_based::{AttackerTracking, RowSwapDefense, SwapCampaignOutcome, SwapScheme};
