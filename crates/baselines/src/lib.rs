//! # dd-baselines — the mitigations DNN-Defender is compared against
//!
//! Every family implements the [`dnn_defender::defense::DefenseMechanism`]
//! trait, so they are interchangeable in
//! [`dnn_defender::ProtectedSystem`] and in the [`scenario`] matrix.
//!
//! Hardware baselines (Table 2 / Table 3):
//!
//! * [`graphene`] — counter-based victim refresh with a Misra–Gries
//!   frequent-items table (Graphene, MICRO 2020);
//! * [`swap_based`] — aggressor-focused randomized row swaps (RRS,
//!   ASPLOS 2022; SRS 2022), including the white-box failure mode the
//!   paper builds its case on;
//! * [`shadow`] — intra-subarray victim shuffling (SHADOW, HPCA 2023),
//!   the strongest prior scheme and the head-to-head comparison in
//!   Fig. 8;
//!
//! Software baselines (Table 3):
//!
//! * [`software`] — piece-wise clustering (weight clipping), binary
//!   weights, post-attack weight reconstruction, capacity scaling;
//!
//! and the [`scenario`] harness — [`scenario::ScenarioMatrix`] — that
//! sweeps attacker × defense × device grids under the common BFA
//! protocol, in parallel, from one entry point.
//!
//! ## Quickstart
//!
//! ```no_run
//! use dd_baselines::{AttackerKind, RowSwapMechanism, ScenarioMatrix, SwapScheme, VictimSpec};
//! use dnn_defender::Undefended;
//!
//! let report = ScenarioMatrix::new(VictimSpec::tiny_mlp(7))
//!     .attacker(AttackerKind::Bfa)
//!     .defense("Baseline", |_, _| Box::new(Undefended::new()))
//!     .defense("RRS", |seed, _| Box::new(RowSwapMechanism::new(SwapScheme::Rrs, seed)))
//!     .budget(20)
//!     .run()
//!     .expect("matrix");
//! for cell in &report.cells {
//!     println!(
//!         "{:<10} {:.1}% -> {:.1}% ({}/{} landed)",
//!         cell.scenario.defense,
//!         cell.clean_accuracy * 100.0,
//!         cell.post_attack_accuracy * 100.0,
//!         cell.landed,
//!         cell.attempts,
//!     );
//! }
//! ```

#![deny(missing_docs)]

pub mod counters;
pub mod graphene;
pub mod scenario;
pub mod shadow;
pub mod software;
pub mod swap_based;

pub use counters::{CounterPerRow, HydraTracker, TwiceTable};
pub use dd_workload::BackgroundLoad;
pub use graphene::{GrapheneDefense, MisraGries};
pub use scenario::{
    dram_label, fig8_rows, AttackerKind, BenignReport, CellProgress, CellReport, DefenseFactory,
    DefenseKind, Fig8Row, MatrixReport, MatrixRunSummary, Scenario, ScenarioMatrix, VictimSpec,
    CELL_PROTOCOL_VERSION,
};
pub use shadow::{ShadowDefense, ShadowMechanism};
pub use software::{
    binarize_weights, clip_weights, record_max_abs, repair_outliers, SoftwareDefense, SoftwareKind,
};
pub use swap_based::{
    AttackerTracking, RowSwapDefense, RowSwapMechanism, SwapCampaignOutcome, SwapScheme,
};
