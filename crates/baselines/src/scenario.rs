//! The scenario-matrix evaluation harness: attacker × defense × device
//! sweeps under the common BFA protocol, from one entry point.
//!
//! This replaces the old closed `LandingFilter` enum with the open
//! [`DefenseMechanism`] trait: a [`ScenarioMatrix`] is built from a victim
//! recipe, a list of attackers ([`AttackerKind`]), a list of defense
//! *factories* (so each cell gets a fresh, per-cell-seeded instance), and
//! a list of [`DramConfig`]s. [`ScenarioMatrix::run`] executes every cell
//! of the cross product in parallel (a `std::thread::scope` worker pool —
//! the build environment has no rayon, see `vendor/`) with a
//! deterministic per-cell RNG seed, and returns the Table 3 rows.
//!
//! ## Protocol
//!
//! Each cell trains its victim deterministically (same spec + seed ⇒
//! identical weights, so cells are comparable), lets the defense transform
//! it ([`DefenseMechanism::prepare_victim`]) and observe its deployment
//! ([`DefenseMechanism::on_deploy`], where DNN-Defender profiles its
//! secured set), then runs the attacker's search against the *belief*
//! model. Every selected flip is replayed as a mechanistic RowHammer
//! campaign on a scratch device through
//! [`DefenseMechanism::filter_flip`]; accuracy is always measured on the
//! *real* system state (belief minus blocked flips). Bit flips commute,
//! so the belief/real bookkeeping is exact.

use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dd_attack::{run_bfa, run_tbfa, AttackConfig, AttackData, TbfaGoal, ThreatModel};
use dd_dram::{DramConfig, DramError, GlobalRowId, MemoryController, Nanos};
use dd_nn::data::{Dataset, SyntheticSpec};
use dd_nn::train::{train, TrainConfig};
use dd_nn::Network;
use dd_qnn::{build_model, Architecture, BitAddr, BitFlip, ModelConfig, QModel};
use dnn_defender::defense::{
    CampaignView, DefenseConfig, DefenseMechanism, DefenseStats, DnnDefenderDefense, DynDefense,
    Undefended,
};
use dnn_defender::{DefenseOp, SecurityModel};

use crate::graphene::GrapheneDefense;
use crate::shadow::ShadowMechanism;
use crate::software::{SoftwareDefense, SoftwareKind};
use crate::swap_based::{RowSwapMechanism, SwapScheme};

/// Which attacker a scenario cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackerKind {
    /// The stock progressive bit search (Rakin et al. 2019).
    Bfa,
    /// The targeted variant (T-BFA).
    Tbfa(TbfaGoal),
    /// Uniform random flips with the given budget.
    Random {
        /// Number of random flips.
        flips: usize,
    },
    /// Attack against a protected model under the given threat model:
    /// `WhiteBox` knows the secured-bit set and searches around it,
    /// `SemiWhiteBox` is defense-blind (equivalent to [`AttackerKind::Bfa`]).
    Adaptive(ThreatModel),
}

impl AttackerKind {
    /// Display name for report rows.
    pub fn name(&self) -> String {
        match self {
            AttackerKind::Bfa => "BFA".to_string(),
            AttackerKind::Tbfa(goal) => match goal.source_class {
                Some(s) => format!("T-BFA({s}->{})", goal.target_class),
                None => format!("T-BFA(*->{})", goal.target_class),
            },
            AttackerKind::Random { flips } => format!("Random({flips})"),
            AttackerKind::Adaptive(t) => format!("Adaptive({t:?})"),
        }
    }
}

/// Deterministic victim recipe: every cell rebuilds the same weights from
/// the same seed, so rows of one matrix are directly comparable.
#[derive(Debug, Clone)]
pub struct VictimSpec {
    /// Victim architecture.
    pub arch: Architecture,
    /// Synthetic dataset specification.
    pub spec: SyntheticSpec,
    /// Channel scaling (capacity-scaling defenses multiply this).
    pub base_width: usize,
    /// Main training schedule.
    pub train: TrainConfig,
    /// Optional fine-tune schedule (lr/5 polish pass).
    pub fine_tune: Option<TrainConfig>,
    /// Seed for dataset generation, init, and training.
    pub seed: u64,
    /// Attacker batch size (search = eval, the Table 1 grant).
    pub batch: usize,
}

impl VictimSpec {
    /// A test-sized 4-class MLP victim that trains in well under a second.
    pub fn tiny_mlp(seed: u64) -> Self {
        VictimSpec {
            arch: Architecture::Mlp,
            spec: SyntheticSpec {
                classes: 4,
                channels: 1,
                height: 8,
                width: 8,
                train_per_class: 32,
                test_per_class: 16,
                noise: 0.4,
                brightness_jitter: 0.1,
            },
            base_width: 4,
            train: TrainConfig {
                epochs: 8,
                batch_size: 32,
                lr: 0.1,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            fine_tune: None,
            seed,
            batch: 48,
        }
    }

    /// The paper-shaped victim: an architecture on the CIFAR-10 stand-in
    /// with the two-phase (main + lr/5) schedule used by the experiment
    /// binaries.
    pub fn paper(arch: Architecture, base_width: usize, epochs: usize, seed: u64) -> Self {
        let spec = SyntheticSpec::cifar10_like();
        let train = TrainConfig {
            epochs,
            batch_size: 64,
            lr: 0.03,
            momentum: 0.9,
            weight_decay: 1e-4,
        };
        let fine_tune = Some(TrainConfig {
            epochs: epochs.div_ceil(3),
            lr: train.lr / 5.0,
            ..train
        });
        VictimSpec {
            arch,
            spec,
            base_width,
            train,
            fine_tune,
            seed,
            batch: 64,
        }
    }

    /// Train the victim deterministically at `width_mult ×` base width.
    pub fn build(&self, width_mult: usize) -> (Network, Dataset) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dataset = Dataset::generate(self.spec, &mut rng);
        let config = ModelConfig {
            arch: self.arch,
            in_channels: self.spec.channels,
            image_side: self.spec.height,
            classes: self.spec.classes,
            base_width: self.base_width * width_mult.max(1),
        };
        let mut net = build_model(&config, &mut rng);
        train(&mut net, &dataset, self.train, &mut rng);
        if let Some(ft) = self.fine_tune {
            train(&mut net, &dataset, ft, &mut rng);
        }
        (net, dataset)
    }
}

/// Builds a fresh defense for a cell: `(cell seed, device config)`.
pub type DefenseFactory = Box<dyn Fn(u64, &DramConfig) -> DynDefense + Send + Sync>;

/// One fully-resolved cell of the matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scenario {
    /// Defense row label.
    pub defense: String,
    /// Attacker label.
    pub attacker: String,
    /// Device label.
    pub dram: String,
    /// The cell's deterministic RNG seed.
    pub seed: u64,
}

/// One evaluated cell: the Table 3 row plus the defense's bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellReport {
    /// The cell that produced this row.
    pub scenario: Scenario,
    /// Accuracy before the attack (real system).
    pub clean_accuracy: f32,
    /// Accuracy after the attack budget is spent (real system).
    pub post_attack_accuracy: f32,
    /// Campaigns the attacker spent.
    pub attempts: usize,
    /// Campaigns that corrupted memory.
    pub landed: usize,
    /// The defense's own bookkeeping.
    pub stats: DefenseStats,
}

/// Every cell of one matrix run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixReport {
    /// Cell rows in deterministic (defense-major) order.
    pub cells: Vec<CellReport>,
}

impl MatrixReport {
    /// The first cell matching a defense label (and attacker label, if
    /// given).
    pub fn cell(&self, defense: &str, attacker: Option<&str>) -> Option<&CellReport> {
        self.cells.iter().find(|c| {
            c.scenario.defense == defense && attacker.is_none_or(|a| c.scenario.attacker == a)
        })
    }
}

/// One row of the Fig. 8 analytical comparison emitted next to the
/// matrix: time-to-break and capacity at a RowHammer threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// RowHammer threshold.
    pub t_rh: u64,
    /// DNN-Defender expected time-to-break (days).
    pub dd_days: f64,
    /// SHADOW expected time-to-break (days).
    pub shadow_days: f64,
    /// Maximum BFAs the defense absorbs per refresh interval.
    pub max_defended_bfas: u64,
    /// The attacker's BFA capacity per refresh interval.
    pub attacker_bfas: u64,
}

/// The Fig. 8 analytical rows for a device across thresholds.
pub fn fig8_rows(config: &DramConfig, t_rhs: &[u64]) -> Vec<Fig8Row> {
    let m = SecurityModel::from_config(config);
    t_rhs
        .iter()
        .map(|&t_rh| Fig8Row {
            t_rh,
            dd_days: m.time_to_break_days(t_rh, DefenseOp::DnnDefenderSwap),
            shadow_days: m.time_to_break_days(t_rh, DefenseOp::ShadowShuffle),
            max_defended_bfas: m.max_defended_bfas(t_rh),
            attacker_bfas: m.max_bfas_per_tref(t_rh),
        })
        .collect()
}

/// Builder for attacker × defense × device sweeps.
pub struct ScenarioMatrix {
    victim: VictimSpec,
    attackers: Vec<AttackerKind>,
    defenses: Vec<(String, DefenseFactory, Option<usize>)>,
    dram_configs: Vec<DramConfig>,
    attack: AttackConfig,
    budget: usize,
    seed: u64,
    threads: Option<usize>,
}

impl ScenarioMatrix {
    /// Matrix over the given victim with defaults: one BFA attacker, the
    /// LPDDR4-small device, the default attack config, budget 25.
    pub fn new(victim: VictimSpec) -> Self {
        ScenarioMatrix {
            victim,
            attackers: Vec::new(),
            defenses: Vec::new(),
            dram_configs: Vec::new(),
            attack: AttackConfig::default(),
            budget: 25,
            seed: 0x5ca1_ab1e,
            threads: None,
        }
    }

    /// Add an attacker axis entry.
    pub fn attacker(mut self, attacker: AttackerKind) -> Self {
        self.attackers.push(attacker);
        self
    }

    /// Add a defense axis entry.
    pub fn defense(
        mut self,
        name: impl Into<String>,
        factory: impl Fn(u64, &DramConfig) -> DynDefense + Send + Sync + 'static,
    ) -> Self {
        self.defenses.push((name.into(), Box::new(factory), None));
        self
    }

    /// Add a defense axis entry with its own attempt budget, overriding
    /// the matrix default — blocking defenses need paper-scaled budgets
    /// for their leak *rates* to be statistically visible while the
    /// undefended/software rows collapse in tens of flips.
    pub fn defense_budgeted(
        mut self,
        name: impl Into<String>,
        budget: usize,
        factory: impl Fn(u64, &DramConfig) -> DynDefense + Send + Sync + 'static,
    ) -> Self {
        self.defenses
            .push((name.into(), Box::new(factory), Some(budget)));
        self
    }

    /// Add a device axis entry.
    pub fn dram_config(mut self, config: DramConfig) -> Self {
        self.dram_configs.push(config);
        self
    }

    /// Set the common attack configuration (collapse target, top-k, …).
    pub fn attack_config(mut self, attack: AttackConfig) -> Self {
        self.attack = attack;
        self
    }

    /// Set the attacker's flip-attempt budget per cell.
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Set the matrix base seed (cells derive theirs deterministically).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Cap the worker threads (default: one per available core, at most
    /// one per cell).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Add the Table 3 defense roster: the undefended baseline, the three
    /// software defenses, and the four hardware families (Graphene,
    /// RRS/SRS, SHADOW) plus DNN-Defender with 2-round priority profiling.
    pub fn with_table3_defenses(self) -> Self {
        self.defense("Baseline (undefended)", |_, _| Box::new(Undefended::new()))
            .defense(SoftwareKind::Clustering.name(), |_, _| {
                Box::new(SoftwareDefense::new(SoftwareKind::Clustering))
            })
            .defense(SoftwareKind::BinaryWeights.name(), |_, _| {
                Box::new(SoftwareDefense::new(SoftwareKind::BinaryWeights))
            })
            .defense(SoftwareKind::CapacityX2.name(), |_, _| {
                Box::new(SoftwareDefense::new(SoftwareKind::CapacityX2))
            })
            .defense("Graphene", |_, config| {
                Box::new(GrapheneDefense::for_config(config))
            })
            .defense("RRS", |seed, _| {
                Box::new(RowSwapMechanism::new(SwapScheme::Rrs, seed))
            })
            .defense("SRS", |seed, _| {
                Box::new(RowSwapMechanism::new(SwapScheme::Srs, seed))
            })
            .defense("SHADOW", |seed, _| {
                Box::new(ShadowMechanism::new(1000, seed))
            })
            .defense("DNN-Defender", |seed, _| {
                Box::new(DnnDefenderDefense::with_profiling(
                    DefenseConfig::default(),
                    2,
                    seed,
                ))
            })
    }

    fn effective_attackers(&self) -> Vec<AttackerKind> {
        if self.attackers.is_empty() {
            vec![AttackerKind::Bfa]
        } else {
            self.attackers.clone()
        }
    }

    fn effective_dram(&self) -> Vec<DramConfig> {
        if self.dram_configs.is_empty() {
            vec![DramConfig::lpddr4_small()]
        } else {
            self.dram_configs.clone()
        }
    }

    fn cell_seed(&self, defense: &str, attacker: &AttackerKind, dram: &DramConfig) -> u64 {
        let mut h: u64 = self.seed ^ 0xcbf2_9ce4_8422_2325;
        for b in defense
            .bytes()
            .chain(attacker.name().bytes())
            .chain(dram_label(dram).bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// The cells `run` will execute, in deterministic order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for (name, _, _) in &self.defenses {
            for attacker in self.effective_attackers() {
                for dram in self.effective_dram() {
                    out.push(Scenario {
                        defense: name.clone(),
                        attacker: attacker.name(),
                        dram: dram_label(&dram),
                        seed: self.cell_seed(name, &attacker, &dram),
                    });
                }
            }
        }
        out
    }

    /// The Fig. 8 analytical rows for the matrix's (first) device.
    pub fn security_analysis(&self, t_rhs: &[u64]) -> Vec<Fig8Row> {
        let dram = self.effective_dram();
        fig8_rows(&dram[0], t_rhs)
    }

    /// Run every cell of the cross product in parallel and collect the
    /// report (cells stay in deterministic defense-major order regardless
    /// of scheduling).
    ///
    /// # Errors
    ///
    /// Returns the first [`DramError`] any cell produced.
    ///
    /// # Panics
    ///
    /// Panics when no defenses were added.
    pub fn run(&self) -> Result<MatrixReport, DramError> {
        assert!(!self.defenses.is_empty(), "scenario matrix has no defenses");
        let attackers = self.effective_attackers();
        let drams = self.effective_dram();
        let cells: Vec<(usize, usize, usize)> = (0..self.defenses.len())
            .flat_map(|d| {
                let attackers = &attackers;
                let drams = &drams;
                (0..attackers.len()).flat_map(move |a| (0..drams.len()).map(move |m| (d, a, m)))
            })
            .collect();

        let workers = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
            .min(cells.len())
            .max(1);

        let slots: Vec<Mutex<Option<Result<CellReport, DramError>>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(d, a, m)) = cells.get(i) else {
                        break;
                    };
                    let result = self.run_cell(d, &attackers[a], &drams[m]);
                    *slots[i].lock().expect("cell slot") = Some(result);
                });
            }
        });

        let mut out = Vec::with_capacity(cells.len());
        for slot in slots {
            out.push(
                slot.into_inner()
                    .expect("cell slot")
                    .expect("cell executed")?,
            );
        }
        Ok(MatrixReport { cells: out })
    }

    /// Execute one cell.
    fn run_cell(
        &self,
        defense_idx: usize,
        attacker: &AttackerKind,
        dram: &DramConfig,
    ) -> Result<CellReport, DramError> {
        let (name, factory, budget_override) = &self.defenses[defense_idx];
        let budget = budget_override.unwrap_or(self.budget);
        let seed = self.cell_seed(name, attacker, dram);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut defense = factory(seed, dram);

        // Victim: deterministic per (spec, width), so every cell of the
        // same width attacks identical weights.
        let (mut net, dataset) = self.victim.build(defense.capacity_multiplier());
        defense.prepare_victim(&mut net, &dataset, &mut rng);
        let mut model = QModel::from_network(net);
        let mut data_rng = StdRng::seed_from_u64(self.victim.seed ^ 0x5eed_da7a);
        let batch = dataset.attack_batch(self.victim.batch.min(dataset.test.len()), &mut data_rng);
        let data = AttackData::single_batch(batch.images, batch.labels);

        // Deployment: priority schemes profile their secured set at least
        // as deep as the attacker's budget (round 1 covers the naive
        // greedy path; see EXPERIMENTS.md).
        let profile_cfg = AttackConfig {
            target_accuracy: 0.0,
            max_flips: budget,
            ..self.attack
        };
        defense.on_deploy(&mut model, &data, &profile_cfg);
        let clean = model.accuracy(&data.eval_images, &data.eval_labels);

        // The attacker's search runs on its belief model (flips applied).
        // target_accuracy 0.0: the search spends the whole budget — only
        // the replay loop's *real*-accuracy check exits early, matching
        // the common protocol (the attacker cannot read the real state).
        let search_cfg = AttackConfig {
            target_accuracy: 0.0,
            max_flips: budget,
            ..self.attack
        };
        let flips: Vec<BitFlip> = match attacker {
            AttackerKind::Bfa => run_bfa(&mut model, &data, &search_cfg, &HashSet::new())
                .steps
                .iter()
                .map(|s| s.flip)
                .collect(),
            AttackerKind::Adaptive(threat) => {
                let skip = if threat.is_defense_aware() {
                    defense.secured_bits().cloned().unwrap_or_default()
                } else {
                    HashSet::new()
                };
                run_bfa(&mut model, &data, &search_cfg, &skip)
                    .steps
                    .iter()
                    .map(|s| s.flip)
                    .collect()
            }
            AttackerKind::Tbfa(goal) => {
                run_tbfa(&mut model, &data, &search_cfg, *goal, &HashSet::new()).flips
            }
            AttackerKind::Random { flips } => {
                let weights: Vec<usize> = (0..model.num_qparams())
                    .map(|p| model.qtensor(p).len())
                    .collect();
                let total: usize = weights.iter().sum();
                (0..*flips)
                    .map(|_| {
                        let mut w = rng.gen_range(0..total);
                        let mut param = 0;
                        while w >= weights[param] {
                            w -= weights[param];
                            param += 1;
                        }
                        let bit = rng.gen_range(0..dd_qnn::WEIGHT_BITS);
                        model.flip_bit(BitAddr {
                            param,
                            index: w,
                            bit,
                        })
                    })
                    .collect()
            }
        };

        // Replay each selected campaign mechanistically through the
        // defense on a scratch device, one refresh window per campaign.
        // Bit flips commute (XOR), so blocked flips are tracked as
        // addresses and reverted by toggling.
        let mut mem = MemoryController::try_new(dram.clone())?;
        let mut blocked: Vec<BitAddr> = Vec::new();
        let mut attempts = 0usize;
        let mut landed = 0usize;
        let mut collapsed = false;
        for flip in &flips {
            if collapsed {
                // Early exit: the real system is at the target; un-apply
                // the belief flips that were never attempted.
                model.flip_bit(flip.addr);
                continue;
            }
            mem.advance(Nanos::from_millis(65));
            defense.on_hammer_window(mem.epoch());
            let victim = pseudo_victim(flip.addr, dram);
            let view = CampaignView {
                mem: &mut mem,
                map: None,
                victim,
                bit_in_row: pseudo_bit_in_row(flip.addr, dram),
                addr: flip.addr,
            };
            let outcome = defense.filter_flip(view)?;
            attempts += 1;
            if outcome.landed() {
                landed += 1;
            } else {
                blocked.push(flip.addr);
            }
            if attempts.is_multiple_of(10) {
                let acc = real_accuracy(&mut model, &data, &blocked);
                if acc <= self.attack.target_accuracy {
                    collapsed = true;
                }
            }
        }

        let post = real_accuracy(&mut model, &data, &blocked);
        Ok(CellReport {
            scenario: Scenario {
                defense: name.clone(),
                attacker: attacker.name(),
                dram: dram_label(dram),
                seed,
            },
            clean_accuracy: clean,
            post_attack_accuracy: post,
            attempts,
            landed,
            stats: defense.stats(),
        })
    }
}

/// Device label used in report rows and cell seeds.
pub fn dram_label(config: &DramConfig) -> String {
    format!(
        "{}b/{}s/{}r T_RH={}",
        config.banks,
        config.subarrays_per_bank,
        config.rows_per_subarray,
        config.rowhammer_threshold
    )
}

/// Map a model bit to a pseudo victim row on the scratch device: spread
/// over banks/subarrays, inside the data region, away from the edges so
/// both neighbours exist.
fn pseudo_victim(addr: BitAddr, config: &DramConfig) -> GlobalRowId {
    let data_rows = config.data_rows_per_subarray();
    let span = data_rows.saturating_sub(4).max(1);
    GlobalRowId::new(
        addr.param % config.banks,
        (addr.index / 7) % config.subarrays_per_bank,
        2 + (addr.index % span),
    )
}

/// The bit offset within the pseudo victim row.
fn pseudo_bit_in_row(addr: BitAddr, config: &DramConfig) -> usize {
    (addr.index % config.row_bytes) * 8 + addr.bit as usize
}

/// Accuracy of the *real* system: the belief model minus the blocked
/// flips. Bit flips commute (XOR), so toggling each blocked address out
/// and back in is exact even when the search hit one bit repeatedly.
fn real_accuracy(model: &mut QModel, data: &AttackData, blocked: &[BitAddr]) -> f32 {
    for &addr in blocked {
        model.flip_bit(addr);
    }
    let acc = model.accuracy(&data.eval_images, &data.eval_labels);
    for &addr in blocked {
        model.flip_bit(addr);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_matrix() -> ScenarioMatrix {
        let attack = AttackConfig {
            target_accuracy: 0.3,
            max_flips: 40,
            ..Default::default()
        };
        ScenarioMatrix::new(VictimSpec::tiny_mlp(2002))
            .attack_config(attack)
            .budget(20)
    }

    #[test]
    fn undefended_collapses_protected_does_not() {
        let report = quick_matrix()
            .defense("Baseline", |_, _| Box::new(Undefended::named("Baseline")))
            .defense("DNN-Defender", |seed, _| {
                Box::new(DnnDefenderDefense::with_profiling(
                    DefenseConfig::default(),
                    2,
                    seed,
                ))
            })
            .run()
            .expect("matrix");

        let baseline = report.cell("Baseline", None).expect("baseline row");
        let dd = report.cell("DNN-Defender", None).expect("dd row");
        assert!(
            baseline.post_attack_accuracy < baseline.clean_accuracy - 0.2,
            "baseline did not degrade: {} -> {}",
            baseline.clean_accuracy,
            baseline.post_attack_accuracy
        );
        assert_eq!(baseline.landed, baseline.attempts);
        assert_eq!(dd.landed, 0, "a profiled flip landed");
        assert!(
            (dd.post_attack_accuracy - dd.clean_accuracy).abs() < 1e-6,
            "defended accuracy moved"
        );
        assert!(dd.stats.invariants_hold());
    }

    #[test]
    fn rrs_blocks_most_standard_campaigns() {
        let report = quick_matrix()
            .defense("RRS", |seed, _| {
                Box::new(RowSwapMechanism::new(SwapScheme::Rrs, seed))
            })
            .run()
            .expect("matrix");
        let row = &report.cells[0];
        assert!(
            row.landed < row.attempts.div_ceil(4),
            "RRS leaked too much: {}/{}",
            row.landed,
            row.attempts
        );
        assert!(row.post_attack_accuracy >= row.clean_accuracy - 0.35);
        assert!(row.stats.invariants_hold());
    }

    #[test]
    fn matrix_crosses_attackers_and_devices() {
        let report = quick_matrix()
            .budget(6)
            .attacker(AttackerKind::Bfa)
            .attacker(AttackerKind::Random { flips: 6 })
            .dram_config(DramConfig::lpddr4_small())
            .dram_config(DramConfig::lpddr4_small().with_rowhammer_threshold(2400))
            .defense("Baseline", |_, _| Box::new(Undefended::named("Baseline")))
            .defense("Graphene", |_, config| {
                Box::new(GrapheneDefense::for_config(config))
            })
            .run()
            .expect("matrix");
        // 2 defenses x 2 attackers x 2 devices.
        assert_eq!(report.cells.len(), 8);
        // Graphene resists everything, at both thresholds.
        for cell in report
            .cells
            .iter()
            .filter(|c| c.scenario.defense == "Graphene")
        {
            assert_eq!(
                cell.landed, 0,
                "graphene leaked under {}",
                cell.scenario.dram
            );
            assert!(cell.stats.defense_ops > 0);
        }
        // Baseline lands everything under the BFA attacker.
        for cell in report
            .cells
            .iter()
            .filter(|c| c.scenario.defense == "Baseline" && c.scenario.attacker == "BFA")
        {
            assert_eq!(cell.landed, cell.attempts);
        }
    }

    #[test]
    fn cells_are_deterministic() {
        let build = || {
            quick_matrix()
                .budget(8)
                .defense("RRS", |seed, _| {
                    Box::new(RowSwapMechanism::new(SwapScheme::Rrs, seed))
                })
                .run()
                .expect("matrix")
        };
        let a = build();
        let b = build();
        assert_eq!(a.cells[0].scenario.seed, b.cells[0].scenario.seed);
        assert_eq!(a.cells[0].attempts, b.cells[0].attempts);
        assert_eq!(a.cells[0].landed, b.cells[0].landed);
        assert_eq!(
            a.cells[0].post_attack_accuracy,
            b.cells[0].post_attack_accuracy
        );
    }

    #[test]
    fn fig8_analysis_rides_along() {
        let rows = quick_matrix()
            .defense("Baseline", |_, _| Box::new(Undefended::new()))
            .security_analysis(&[1000, 2000, 4000, 8000]);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.dd_days > row.shadow_days, "DD must out-survive SHADOW");
        }
        assert!(rows.windows(2).all(|w| w[0].dd_days < w[1].dd_days));
    }

    #[test]
    fn adaptive_white_box_skips_the_secured_set() {
        let report = quick_matrix()
            .attacker(AttackerKind::Adaptive(ThreatModel::WhiteBox))
            .defense("DNN-Defender", |seed, _| {
                Box::new(DnnDefenderDefense::with_profiling(
                    DefenseConfig::default(),
                    2,
                    seed,
                ))
            })
            .run()
            .expect("matrix");
        let cell = &report.cells[0];
        // The defense-aware attacker only attempts unsecured bits, so
        // every attempt lands — the question is the damage they can do.
        assert_eq!(cell.landed, cell.attempts);
        assert!(cell.stats.invariants_hold());
    }
}
