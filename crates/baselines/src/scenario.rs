//! The scenario-matrix evaluation harness: attacker × defense × device
//! sweeps under the common BFA protocol, from one entry point.
//!
//! This replaces the old closed `LandingFilter` enum with the open
//! [`DefenseMechanism`] trait: a [`ScenarioMatrix`] is built from a victim
//! recipe, a list of attackers ([`AttackerKind`]), a list of defense
//! *factories* (so each cell gets a fresh, per-cell-seeded instance), and
//! a list of [`DramConfig`]s. [`ScenarioMatrix::run`] executes every cell
//! of the cross product in parallel (a `std::thread::scope` worker pool —
//! the build environment has no rayon, see `vendor/`) with a
//! deterministic per-cell RNG seed, and returns the Table 3 rows.
//!
//! ## Protocol
//!
//! Each cell trains its victim deterministically (same spec + seed ⇒
//! identical weights, so cells are comparable), lets the defense transform
//! it ([`DefenseMechanism::prepare_victim`]) and observe its deployment
//! ([`DefenseMechanism::on_deploy`], where DNN-Defender profiles its
//! secured set), then runs the attacker's search against the *belief*
//! model. Every selected flip is replayed as a mechanistic RowHammer
//! campaign on a scratch device through
//! [`DefenseMechanism::filter_flip`]; accuracy is always measured on the
//! *real* system state (belief minus blocked flips). Bit flips commute,
//! so the belief/real bookkeeping is exact.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dd_attack::{run_bfa, run_tbfa, AttackConfig, AttackData, TbfaGoal, ThreatModel};
use dd_dram::{CellSweep, DramConfig, DramError, GlobalRowId, MemoryController, Nanos, TraceMode};
use dd_nn::data::{Dataset, SyntheticSpec};
use dd_nn::train::{train, TrainConfig};
use dd_nn::Network;
use dd_qnn::{build_model, Architecture, BitAddr, BitFlip, ModelConfig, QModel};
use dd_workload::{
    all_data_rows, drive_benign_window_sweep, BackgroundLoad, BenignTraffic, SpanTraffic,
    SweepCell, WORKLOAD_PROTOCOL_VERSION,
};
use dnn_defender::defense::{
    CampaignView, DefenseConfig, DefenseMechanism, DefenseStats, DnnDefenderDefense, DynDefense,
    Undefended,
};
use dnn_defender::{DefenseOp, Json, JsonError, SecurityModel, StableHash, StableHasher};

use crate::graphene::GrapheneDefense;
use crate::shadow::ShadowMechanism;
use crate::software::{SoftwareDefense, SoftwareKind};
use crate::swap_based::{RowSwapMechanism, SwapScheme};

/// Which attacker a scenario cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackerKind {
    /// The stock progressive bit search (Rakin et al. 2019).
    Bfa,
    /// The targeted variant (T-BFA).
    Tbfa(TbfaGoal),
    /// Uniform random flips with the given budget.
    Random {
        /// Number of random flips.
        flips: usize,
    },
    /// Attack against a protected model under the given threat model:
    /// `WhiteBox` knows the secured-bit set and searches around it,
    /// `SemiWhiteBox` is defense-blind (equivalent to [`AttackerKind::Bfa`]).
    Adaptive(ThreatModel),
}

impl AttackerKind {
    /// Canonical attacker label — the single source of truth shared by
    /// cell seeds, report rows, artifacts, and the rendered docs.
    pub fn label(&self) -> String {
        match self {
            AttackerKind::Bfa => "BFA".to_string(),
            AttackerKind::Tbfa(goal) => match goal.source_class {
                Some(s) => format!("T-BFA({s}->{})", goal.target_class),
                None => format!("T-BFA(*->{})", goal.target_class),
            },
            AttackerKind::Random { flips } => format!("Random({flips})"),
            AttackerKind::Adaptive(t) => format!("Adaptive({t:?})"),
        }
    }

    /// Inverse of [`AttackerKind::label`], for wire formats (the sweep
    /// server's cell specs) that name attackers by their canonical label.
    pub fn parse(label: &str) -> Option<AttackerKind> {
        if label == "BFA" {
            return Some(AttackerKind::Bfa);
        }
        if let Some(inner) = label
            .strip_prefix("Adaptive(")
            .and_then(|r| r.strip_suffix(')'))
        {
            return match inner {
                "SemiWhiteBox" => Some(AttackerKind::Adaptive(ThreatModel::SemiWhiteBox)),
                "WhiteBox" => Some(AttackerKind::Adaptive(ThreatModel::WhiteBox)),
                _ => None,
            };
        }
        if let Some(inner) = label
            .strip_prefix("Random(")
            .and_then(|r| r.strip_suffix(')'))
        {
            return inner
                .parse()
                .ok()
                .map(|flips| AttackerKind::Random { flips });
        }
        if let Some(inner) = label
            .strip_prefix("T-BFA(")
            .and_then(|r| r.strip_suffix(')'))
        {
            let (source, target) = inner.split_once("->")?;
            let source_class = if source == "*" {
                None
            } else {
                Some(source.parse().ok()?)
            };
            let target_class = target.parse().ok()?;
            return Some(AttackerKind::Tbfa(TbfaGoal {
                source_class,
                target_class,
            }));
        }
        None
    }
}

impl fmt::Display for AttackerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl StableHash for AttackerKind {
    fn stable_hash(&self, hasher: &mut StableHasher) {
        // The label is injective over the variants and their parameters,
        // so hashing it is exactly hashing the attacker's identity.
        hasher.write_str("AttackerKind");
        hasher.write_str(&self.label());
    }
}

/// Version of the cell evaluation *behavior*: the defense
/// implementations, the constants baked into [`DefenseKind::build`]
/// (SHADOW's shuffle budget, DNN-Defender's profiling rounds, …), and
/// the replay protocol in `run_cell`. Cell cache keys and matrix config
/// hashes can only see *configuration*, not code — **bump this whenever
/// a change alters what any cell would compute for the same
/// configuration**, so every cached `CellReport` and reusable artifact
/// is invalidated.
///
/// v2: the background-workload axis (benign traffic interleaved into the
/// campaign replay, `Scenario.workload`, `CellReport.benign`).
///
/// v3: benign traffic is seeded from the non-defense axes only
/// (`ScenarioMatrix::traffic_seed`), so cells sharing (attacker,
/// device, load) carry byte-identical traffic and can be replayed as one
/// cross-cell sweep group ([`dd_dram::CellSweep`]). Every cell that runs
/// background traffic computes different numbers than v2.
pub const CELL_PROTOCOL_VERSION: u64 = 3;

/// The canonical defense roster: every mitigation the paper's Table 3
/// compares, as a closed enum so the scenario matrix, the artifacts, and
/// the rendered report all draw row labels (and factories) from one
/// place instead of ad-hoc strings at each call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DefenseKind {
    /// Undefended DRAM (the Table 3 baseline row).
    Undefended,
    /// Piece-wise clustering (software).
    Clustering,
    /// Binary (±α) weights (software).
    BinaryWeights,
    /// Model capacity ×2 (software).
    CapacityX2,
    /// Graphene counter-based victim refresh.
    Graphene,
    /// Randomized row swap.
    Rrs,
    /// Scalable row swap.
    Srs,
    /// SHADOW intra-subarray shuffling.
    Shadow,
    /// DNN-Defender with 2-round priority profiling.
    DnnDefender,
}

impl DefenseKind {
    /// The Table 3 roster in paper row order.
    pub const TABLE3: [DefenseKind; 9] = [
        DefenseKind::Undefended,
        DefenseKind::Clustering,
        DefenseKind::BinaryWeights,
        DefenseKind::CapacityX2,
        DefenseKind::Graphene,
        DefenseKind::Rrs,
        DefenseKind::Srs,
        DefenseKind::Shadow,
        DefenseKind::DnnDefender,
    ];

    /// Canonical row label. Matches the `DefenseMechanism::name` of the
    /// built mechanism (checked by a test), so the label is one fact.
    pub fn label(self) -> &'static str {
        match self {
            DefenseKind::Undefended => "Baseline (undefended)",
            DefenseKind::Clustering => SoftwareKind::Clustering.name(),
            DefenseKind::BinaryWeights => SoftwareKind::BinaryWeights.name(),
            DefenseKind::CapacityX2 => SoftwareKind::CapacityX2.name(),
            DefenseKind::Graphene => "Graphene",
            DefenseKind::Rrs => "RRS",
            DefenseKind::Srs => "SRS",
            DefenseKind::Shadow => "SHADOW",
            DefenseKind::DnnDefender => "DNN-Defender",
        }
    }

    /// Inverse of [`DefenseKind::label`], for wire formats (the sweep
    /// server's cell specs) that name defenses by their canonical label.
    pub fn parse(label: &str) -> Option<DefenseKind> {
        DefenseKind::TABLE3.into_iter().find(|k| k.label() == label)
    }

    /// The paper's per-defense attempt budget for Table 3 (hardware
    /// defenses need paper-scaled budgets for leak *rates* to be
    /// statistically visible); `None` = use the matrix default.
    pub fn paper_budget(self) -> Option<usize> {
        match self {
            DefenseKind::Graphene | DefenseKind::Rrs => Some(342),
            DefenseKind::Srs => Some(378),
            DefenseKind::Shadow => Some(985),
            DefenseKind::DnnDefender => Some(1150),
            _ => None,
        }
    }

    /// Build a fresh per-cell instance (the matrix's defense factory).
    ///
    /// Changing any constant here (or any mechanism's implementation)
    /// changes what cells compute without changing their cache keys —
    /// bump [`CELL_PROTOCOL_VERSION`] alongside such edits.
    pub fn build(self, seed: u64, config: &DramConfig) -> DynDefense {
        match self {
            DefenseKind::Undefended => Box::new(Undefended::new()),
            DefenseKind::Clustering => Box::new(SoftwareDefense::new(SoftwareKind::Clustering)),
            DefenseKind::BinaryWeights => {
                Box::new(SoftwareDefense::new(SoftwareKind::BinaryWeights))
            }
            DefenseKind::CapacityX2 => Box::new(SoftwareDefense::new(SoftwareKind::CapacityX2)),
            DefenseKind::Graphene => Box::new(GrapheneDefense::for_config(config)),
            DefenseKind::Rrs => Box::new(RowSwapMechanism::new(SwapScheme::Rrs, seed)),
            DefenseKind::Srs => Box::new(RowSwapMechanism::new(SwapScheme::Srs, seed)),
            DefenseKind::Shadow => Box::new(ShadowMechanism::new(1000, seed)),
            DefenseKind::DnnDefender => Box::new(DnnDefenderDefense::with_profiling(
                DefenseConfig::default(),
                2,
                seed,
            )),
        }
    }
}

impl fmt::Display for DefenseKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Deterministic victim recipe: every cell rebuilds the same weights from
/// the same seed, so rows of one matrix are directly comparable.
#[derive(Debug, Clone)]
pub struct VictimSpec {
    /// Victim architecture.
    pub arch: Architecture,
    /// Synthetic dataset specification.
    pub spec: SyntheticSpec,
    /// Channel scaling (capacity-scaling defenses multiply this).
    pub base_width: usize,
    /// Main training schedule.
    pub train: TrainConfig,
    /// Optional fine-tune schedule (lr/5 polish pass).
    pub fine_tune: Option<TrainConfig>,
    /// Seed for dataset generation, init, and training.
    pub seed: u64,
    /// Attacker batch size (search = eval, the Table 1 grant).
    pub batch: usize,
}

impl VictimSpec {
    /// A test-sized 4-class MLP victim that trains in well under a second.
    pub fn tiny_mlp(seed: u64) -> Self {
        VictimSpec {
            arch: Architecture::Mlp,
            spec: SyntheticSpec {
                classes: 4,
                channels: 1,
                height: 8,
                width: 8,
                train_per_class: 32,
                test_per_class: 16,
                noise: 0.4,
                brightness_jitter: 0.1,
            },
            base_width: 4,
            train: TrainConfig {
                epochs: 8,
                batch_size: 32,
                lr: 0.1,
                momentum: 0.9,
                weight_decay: 0.0,
            },
            fine_tune: None,
            seed,
            batch: 48,
        }
    }

    /// The paper-shaped victim: an architecture on the CIFAR-10 stand-in
    /// with the two-phase (main + lr/5) schedule used by the experiment
    /// binaries.
    pub fn paper(arch: Architecture, base_width: usize, epochs: usize, seed: u64) -> Self {
        let spec = SyntheticSpec::cifar10_like();
        let train = TrainConfig {
            epochs,
            batch_size: 64,
            lr: 0.03,
            momentum: 0.9,
            weight_decay: 1e-4,
        };
        let fine_tune = Some(TrainConfig {
            epochs: epochs.div_ceil(3),
            lr: train.lr / 5.0,
            ..train
        });
        VictimSpec {
            arch,
            spec,
            base_width,
            train,
            fine_tune,
            seed,
            batch: 64,
        }
    }

    /// Train the victim deterministically at `width_mult ×` base width.
    pub fn build(&self, width_mult: usize) -> (Network, Dataset) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dataset = Dataset::generate(self.spec, &mut rng);
        let config = ModelConfig {
            arch: self.arch,
            in_channels: self.spec.channels,
            image_side: self.spec.height,
            classes: self.spec.classes,
            base_width: self.base_width * width_mult.max(1),
        };
        let mut net = build_model(&config, &mut rng);
        train(&mut net, &dataset, self.train, &mut rng);
        if let Some(ft) = self.fine_tune {
            train(&mut net, &dataset, ft, &mut rng);
        }
        (net, dataset)
    }
}

impl StableHash for VictimSpec {
    fn stable_hash(&self, hasher: &mut StableHasher) {
        hasher.write_str("VictimSpec");
        hasher.write_str(self.arch.name());
        hasher.write(&self.spec);
        hasher.write_usize(self.base_width);
        hasher.write(&self.train);
        hasher.write(&self.fine_tune);
        hasher.write_u64(self.seed);
        hasher.write_usize(self.batch);
    }
}

/// Builds a fresh defense for a cell: `(cell seed, device config)`.
pub type DefenseFactory = Box<dyn Fn(u64, &DramConfig) -> DynDefense + Send + Sync>;

/// One fully-resolved cell of the matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    /// Defense row label.
    pub defense: String,
    /// Attacker label.
    pub attacker: String,
    /// Device label.
    pub dram: String,
    /// Background-workload label ([`BackgroundLoad::label`]).
    pub workload: String,
    /// The cell's deterministic RNG seed.
    pub seed: u64,
}

/// What the benign traffic sharing a cell's device experienced and
/// provoked (present only for cells with a background load).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BenignReport {
    /// Benign ops executed across the cell's windows.
    pub ops: u64,
    /// Modeled benign activations (ops × the load's batch factor).
    pub activations: u64,
    /// Defensive operations fired during the benign-only warmup windows
    /// — false positives by construction.
    pub false_defense_ops: u64,
    /// Defensive operations fired from the online tap during attacked
    /// windows (cannot be attributed benign/attack by the mechanism).
    pub online_defense_ops: u64,
    /// Distinct benign rows whose disturbance reached `T_RH / 2`
    /// (excluding the rows under direct attack).
    pub disturbed_rows: u64,
    /// Peak disturbance observed on any non-attacked benign row.
    pub peak_disturbance: u64,
}

impl BenignReport {
    /// Serialize for the artifact pipeline.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("ops", Json::uint(self.ops))
            .with("activations", Json::uint(self.activations))
            .with("false_defense_ops", Json::uint(self.false_defense_ops))
            .with("online_defense_ops", Json::uint(self.online_defense_ops))
            .with("disturbed_rows", Json::uint(self.disturbed_rows))
            .with("peak_disturbance", Json::uint(self.peak_disturbance))
    }

    /// Deserialize an artifact-pipeline record.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(value: &Json) -> Result<BenignReport, JsonError> {
        Ok(BenignReport {
            ops: value.field_u64("ops")?,
            activations: value.field_u64("activations")?,
            false_defense_ops: value.field_u64("false_defense_ops")?,
            online_defense_ops: value.field_u64("online_defense_ops")?,
            disturbed_rows: value.field_u64("disturbed_rows")?,
            peak_disturbance: value.field_u64("peak_disturbance")?,
        })
    }
}

/// One evaluated cell: the Table 3 row plus the defense's bookkeeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellReport {
    /// The cell that produced this row.
    pub scenario: Scenario,
    /// Accuracy before the attack (real system).
    pub clean_accuracy: f32,
    /// Accuracy after the attack budget is spent (real system).
    pub post_attack_accuracy: f32,
    /// Campaigns the attacker spent.
    pub attempts: usize,
    /// Campaigns that corrupted memory.
    pub landed: usize,
    /// The defense's own bookkeeping.
    pub stats: DefenseStats,
    /// Benign-traffic measurements (cells with a background load only).
    pub benign: Option<BenignReport>,
}

/// Every cell of one matrix run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatrixReport {
    /// Cell rows in deterministic (defense-major) order.
    pub cells: Vec<CellReport>,
}

impl Scenario {
    /// Serialize for the artifact pipeline (`seed` travels as a hex
    /// string: it is a full-width FNV digest, too wide for a JSON number).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("defense", Json::str(&self.defense))
            .with("attacker", Json::str(&self.attacker))
            .with("dram", Json::str(&self.dram))
            .with("workload", Json::str(&self.workload))
            .with("seed", Json::hex(self.seed))
    }

    /// Deserialize an artifact-pipeline record.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(value: &Json) -> Result<Scenario, JsonError> {
        Ok(Scenario {
            defense: value.field_str("defense")?.to_string(),
            attacker: value.field_str("attacker")?.to_string(),
            dram: value.field_str("dram")?.to_string(),
            workload: value.field_str("workload")?.to_string(),
            seed: value.field_hex_u64("seed")?,
        })
    }
}

impl CellReport {
    /// Serialize for the artifact pipeline and the on-disk cell cache.
    pub fn to_json(&self) -> Json {
        let mut json = Json::obj()
            .with("scenario", self.scenario.to_json())
            .with("clean_accuracy", Json::num(self.clean_accuracy))
            .with("post_attack_accuracy", Json::num(self.post_attack_accuracy))
            .with("attempts", Json::uint(self.attempts as u64))
            .with("landed", Json::uint(self.landed as u64))
            .with("stats", self.stats.to_json());
        if let Some(benign) = &self.benign {
            json = json.with("benign", benign.to_json());
        }
        json
    }

    /// Deserialize an artifact-pipeline / cell-cache record.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(value: &Json) -> Result<CellReport, JsonError> {
        Ok(CellReport {
            scenario: Scenario::from_json(value.field("scenario")?)?,
            clean_accuracy: value.field_f64("clean_accuracy")? as f32,
            post_attack_accuracy: value.field_f64("post_attack_accuracy")? as f32,
            attempts: value.field_u64("attempts")? as usize,
            landed: value.field_u64("landed")? as usize,
            stats: DefenseStats::from_json(value.field("stats")?)?,
            benign: value
                .get("benign")
                .map(BenignReport::from_json)
                .transpose()?,
        })
    }
}

impl MatrixReport {
    /// The first cell matching a defense label (and attacker label, if
    /// given).
    pub fn cell(&self, defense: &str, attacker: Option<&str>) -> Option<&CellReport> {
        self.cells.iter().find(|c| {
            c.scenario.defense == defense && attacker.is_none_or(|a| c.scenario.attacker == a)
        })
    }

    /// Serialize for the artifact pipeline.
    pub fn to_json(&self) -> Json {
        Json::obj().with(
            "cells",
            Json::Arr(self.cells.iter().map(CellReport::to_json).collect()),
        )
    }

    /// Deserialize an artifact-pipeline record.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(value: &Json) -> Result<MatrixReport, JsonError> {
        Ok(MatrixReport {
            cells: value
                .field_arr("cells")?
                .iter()
                .map(CellReport::from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

/// One row of the Fig. 8 analytical comparison emitted next to the
/// matrix: time-to-break and capacity at a RowHammer threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig8Row {
    /// RowHammer threshold.
    pub t_rh: u64,
    /// DNN-Defender expected time-to-break (days).
    pub dd_days: f64,
    /// SHADOW expected time-to-break (days).
    pub shadow_days: f64,
    /// Maximum BFAs the defense absorbs per refresh interval.
    pub max_defended_bfas: u64,
    /// The attacker's BFA capacity per refresh interval.
    pub attacker_bfas: u64,
}

impl Fig8Row {
    /// Serialize for the artifact pipeline.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("t_rh", Json::uint(self.t_rh))
            .with("dd_days", Json::num(self.dd_days))
            .with("shadow_days", Json::num(self.shadow_days))
            .with("max_defended_bfas", Json::uint(self.max_defended_bfas))
            .with("attacker_bfas", Json::uint(self.attacker_bfas))
    }

    /// Deserialize an artifact-pipeline record.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing or mistyped fields.
    pub fn from_json(value: &Json) -> Result<Fig8Row, JsonError> {
        Ok(Fig8Row {
            t_rh: value.field_u64("t_rh")?,
            dd_days: value.field_f64("dd_days")?,
            shadow_days: value.field_f64("shadow_days")?,
            max_defended_bfas: value.field_u64("max_defended_bfas")?,
            attacker_bfas: value.field_u64("attacker_bfas")?,
        })
    }
}

/// The Fig. 8 analytical rows for a device across thresholds.
pub fn fig8_rows(config: &DramConfig, t_rhs: &[u64]) -> Vec<Fig8Row> {
    let m = SecurityModel::from_config(config);
    t_rhs
        .iter()
        .map(|&t_rh| Fig8Row {
            t_rh,
            dd_days: m.time_to_break_days(t_rh, DefenseOp::DnnDefenderSwap),
            shadow_days: m.time_to_break_days(t_rh, DefenseOp::ShadowShuffle),
            max_defended_bfas: m.max_defended_bfas(t_rh),
            attacker_bfas: m.max_bfas_per_tref(t_rh),
        })
        .collect()
}

/// One finished cell, as seen by a live progress callback.
#[derive(Debug, Clone)]
pub struct CellProgress {
    /// Cells finished so far (including this one).
    pub done: usize,
    /// Total cells in the matrix.
    pub total: usize,
    /// The cell that finished.
    pub scenario: Scenario,
    /// Whether it was served from the cache.
    pub cache_hit: bool,
    /// Wall time of the cell's execution (0 for cache hits).
    pub millis: u64,
}

/// Tally of one [`ScenarioMatrix::run_with_cache`] invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixRunSummary {
    /// Cells in the matrix.
    pub cells: usize,
    /// Cells served from the cache.
    pub cache_hits: usize,
}

impl MatrixRunSummary {
    /// Fraction of cells served from the cache (1.0 for an empty matrix).
    pub fn hit_rate(&self) -> f64 {
        if self.cells == 0 {
            1.0
        } else {
            self.cache_hits as f64 / self.cells as f64
        }
    }
}

/// Builder for attacker × defense × device × background-load sweeps.
pub struct ScenarioMatrix {
    victim: VictimSpec,
    attackers: Vec<AttackerKind>,
    defenses: Vec<(String, DefenseFactory, Option<usize>)>,
    dram_configs: Vec<DramConfig>,
    loads: Vec<BackgroundLoad>,
    attack: AttackConfig,
    budget: usize,
    seed: u64,
    threads: Option<usize>,
    sweep: bool,
}

impl ScenarioMatrix {
    /// Matrix over the given victim with defaults: one BFA attacker, the
    /// LPDDR4-small device, no background load, the default attack
    /// config, budget 25.
    pub fn new(victim: VictimSpec) -> Self {
        ScenarioMatrix {
            victim,
            attackers: Vec::new(),
            defenses: Vec::new(),
            dram_configs: Vec::new(),
            loads: Vec::new(),
            attack: AttackConfig::default(),
            budget: 25,
            seed: 0x5ca1_ab1e,
            threads: None,
            sweep: true,
        }
    }

    /// Enable or disable cross-cell sweep grouping (default: on).
    ///
    /// Grouping is byte-invariant — every cell's report is identical
    /// either way, which the conformance suite's grouping-invariance law
    /// enforces — so this toggle exists for differential tests and for
    /// isolating performance effects. It is deliberately absent from
    /// [`ScenarioMatrix::config_hash`] and the cell cache keys.
    pub fn sweep_groups(mut self, on: bool) -> Self {
        self.sweep = on;
        self
    }

    /// Add an attacker axis entry.
    pub fn attacker(mut self, attacker: AttackerKind) -> Self {
        self.attackers.push(attacker);
        self
    }

    /// Add a background-workload axis entry: the cell replays its attack
    /// campaigns while this much benign traffic shares the device (see
    /// `dd-workload`). Defaults to [`BackgroundLoad::None`] only.
    pub fn background(mut self, load: BackgroundLoad) -> Self {
        self.loads.push(load);
        self
    }

    /// Add every [`BackgroundLoad`] level as axis entries.
    pub fn with_all_backgrounds(self) -> Self {
        BackgroundLoad::ALL
            .into_iter()
            .fold(self, |matrix, load| matrix.background(load))
    }

    /// Add a defense axis entry.
    pub fn defense(
        mut self,
        name: impl Into<String>,
        factory: impl Fn(u64, &DramConfig) -> DynDefense + Send + Sync + 'static,
    ) -> Self {
        self.defenses.push((name.into(), Box::new(factory), None));
        self
    }

    /// Add a defense axis entry with its own attempt budget, overriding
    /// the matrix default — blocking defenses need paper-scaled budgets
    /// for their leak *rates* to be statistically visible while the
    /// undefended/software rows collapse in tens of flips.
    pub fn defense_budgeted(
        mut self,
        name: impl Into<String>,
        budget: usize,
        factory: impl Fn(u64, &DramConfig) -> DynDefense + Send + Sync + 'static,
    ) -> Self {
        self.defenses
            .push((name.into(), Box::new(factory), Some(budget)));
        self
    }

    /// Add a device axis entry.
    pub fn dram_config(mut self, config: DramConfig) -> Self {
        self.dram_configs.push(config);
        self
    }

    /// Set the common attack configuration (collapse target, top-k, …).
    pub fn attack_config(mut self, attack: AttackConfig) -> Self {
        self.attack = attack;
        self
    }

    /// Set the attacker's flip-attempt budget per cell.
    pub fn budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Set the matrix base seed (cells derive theirs deterministically).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Cap the worker threads (default: one per available core, at most
    /// one per cell).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Add one canonical defense with its canonical label (and no budget
    /// override).
    pub fn defense_kind(self, kind: DefenseKind) -> Self {
        self.defense(kind.label(), move |seed, config| kind.build(seed, config))
    }

    /// Add one canonical defense with an attempt-budget override.
    pub fn defense_kind_budgeted(self, kind: DefenseKind, budget: usize) -> Self {
        self.defense_budgeted(kind.label(), budget, move |seed, config| {
            kind.build(seed, config)
        })
    }

    /// Add the Table 3 defense roster ([`DefenseKind::TABLE3`]): the
    /// undefended baseline, the three software defenses, and the four
    /// hardware families (Graphene, RRS/SRS, SHADOW) plus DNN-Defender
    /// with 2-round priority profiling.
    pub fn with_table3_defenses(self) -> Self {
        DefenseKind::TABLE3
            .into_iter()
            .fold(self, |matrix, kind| matrix.defense_kind(kind))
    }

    fn effective_attackers(&self) -> Vec<AttackerKind> {
        if self.attackers.is_empty() {
            vec![AttackerKind::Bfa]
        } else {
            self.attackers.clone()
        }
    }

    fn effective_dram(&self) -> Vec<DramConfig> {
        if self.dram_configs.is_empty() {
            vec![DramConfig::lpddr4_small()]
        } else {
            self.dram_configs.clone()
        }
    }

    fn effective_loads(&self) -> Vec<BackgroundLoad> {
        if self.loads.is_empty() {
            vec![BackgroundLoad::None]
        } else {
            self.loads.clone()
        }
    }

    fn cell_seed(
        &self,
        defense: &str,
        attacker: &AttackerKind,
        dram: &DramConfig,
        load: BackgroundLoad,
    ) -> u64 {
        let mut h: u64 = self.seed ^ 0xcbf2_9ce4_8422_2325;
        for b in defense
            .bytes()
            .chain(attacker.label().bytes())
            .chain(dram_label(dram).bytes())
            .chain(load.label().bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Seed of a cell's benign traffic: derived from the *non-defense*
    /// axes only, so every cell sharing (attacker, device, load) builds
    /// byte-identical traffic regardless of its defense. This is what
    /// makes cross-cell sweep groups possible — grouped cells replay one
    /// decoded command stream — and it is a protocol property:
    /// [`CELL_PROTOCOL_VERSION`] v3.
    fn traffic_seed(
        &self,
        attacker: &AttackerKind,
        dram: &DramConfig,
        load: BackgroundLoad,
    ) -> u64 {
        let mut h: u64 = self.seed ^ 0xcbf2_9ce4_8422_2325;
        for b in attacker
            .label()
            .bytes()
            .chain(dram_label(dram).bytes())
            .chain(load.label().bytes())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^ 0x00be_9114
    }

    fn scenario_for(
        &self,
        defense: &str,
        attacker: &AttackerKind,
        dram: &DramConfig,
        load: BackgroundLoad,
    ) -> Scenario {
        Scenario {
            defense: defense.to_string(),
            attacker: attacker.label(),
            dram: dram_label(dram),
            workload: load.label().to_string(),
            seed: self.cell_seed(defense, attacker, dram, load),
        }
    }

    /// The cells `run` will execute, in deterministic order.
    pub fn scenarios(&self) -> Vec<Scenario> {
        let mut out = Vec::new();
        for (name, _, _) in &self.defenses {
            for attacker in self.effective_attackers() {
                for dram in self.effective_dram() {
                    for load in self.effective_loads() {
                        out.push(self.scenario_for(name, &attacker, &dram, load));
                    }
                }
            }
        }
        out
    }

    /// The Fig. 8 analytical rows for the matrix's (first) device.
    pub fn security_analysis(&self, t_rhs: &[u64]) -> Vec<Fig8Row> {
        let dram = self.effective_dram();
        fig8_rows(&dram[0], t_rhs)
    }

    /// Content hash of everything that determines this matrix's results:
    /// victim recipe, attack config, budgets, seeds, defense roster, and
    /// device list. Stable across processes and builds (see
    /// [`dnn_defender::stablehash`]); the artifact pipeline stamps it
    /// into `artifacts/*.json`.
    pub fn config_hash(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("ScenarioMatrix/v1");
        h.write_u64(CELL_PROTOCOL_VERSION);
        h.write_u64(WORKLOAD_PROTOCOL_VERSION);
        h.write(&self.victim);
        h.write(&self.attack);
        h.write_usize(self.budget);
        h.write_u64(self.seed);
        h.write_usize(self.defenses.len());
        for (name, _, budget_override) in &self.defenses {
            h.write_str(name);
            h.write(budget_override);
        }
        h.write(&self.effective_attackers());
        h.write(&self.effective_dram());
        h.write(&self.effective_loads());
        h.finish()
    }

    /// Content-hash cache key of one cell: the victim recipe, the attack
    /// config, the cell's effective budget, the defense label, the
    /// attacker, the full device config, the per-cell seed, and
    /// [`CELL_PROTOCOL_VERSION`].
    ///
    /// The key covers the cell's *configuration*, not its code: the
    /// defense participates through its label only (factories are opaque
    /// closures). Reuse is therefore sound exactly when equal labels
    /// imply equal behavior — true for [`DefenseKind`]-built rosters at
    /// a fixed [`CELL_PROTOCOL_VERSION`], but callers who pass custom
    /// factories under a reused label (or change a mechanism's
    /// implementation without bumping the version) will get stale hits.
    fn cell_cache_key(
        &self,
        defense_idx: usize,
        attacker: &AttackerKind,
        dram: &DramConfig,
        load: BackgroundLoad,
    ) -> u64 {
        let (name, _, budget_override) = &self.defenses[defense_idx];
        let mut h = StableHasher::new();
        h.write_str("ScenarioCell/v1");
        h.write_u64(CELL_PROTOCOL_VERSION);
        h.write_u64(WORKLOAD_PROTOCOL_VERSION);
        h.write(&self.victim);
        h.write(&self.attack);
        h.write_usize(budget_override.unwrap_or(self.budget));
        h.write_str(name);
        h.write(attacker);
        h.write(dram);
        h.write(&load);
        h.write_u64(self.cell_seed(name, attacker, dram, load));
        h.finish()
    }

    /// The cells `run` will execute with their cache keys, aligned with
    /// [`ScenarioMatrix::scenarios`].
    pub fn cell_keys(&self) -> Vec<(Scenario, u64)> {
        let attackers = self.effective_attackers();
        let drams = self.effective_dram();
        let loads = self.effective_loads();
        let mut out = Vec::new();
        for (d, (name, _, _)) in self.defenses.iter().enumerate() {
            for attacker in &attackers {
                for dram in &drams {
                    for &load in &loads {
                        out.push((
                            self.scenario_for(name, attacker, dram, load),
                            self.cell_cache_key(d, attacker, dram, load),
                        ));
                    }
                }
            }
        }
        out
    }

    /// Run every cell of the cross product in parallel and collect the
    /// report (cells stay in deterministic defense-major order regardless
    /// of scheduling).
    ///
    /// # Errors
    ///
    /// Returns the first [`DramError`] any cell produced.
    ///
    /// # Panics
    ///
    /// Panics when no defenses were added.
    pub fn run(&self) -> Result<MatrixReport, DramError> {
        self.run_with_cache(&HashMap::new(), None)
            .map(|(report, _)| report)
    }

    /// [`ScenarioMatrix::run`], reusing previously computed cells.
    ///
    /// Cells whose [cache key](ScenarioMatrix::cell_keys) appears in
    /// `cache` are taken from it verbatim (and counted in the summary);
    /// only the misses execute, in parallel. `progress` (if given) is
    /// called once per finished cell — hits first, then misses as they
    /// complete, from worker threads — with a monotone `done` counter.
    ///
    /// # Errors
    ///
    /// Returns the first [`DramError`] any cell produced.
    ///
    /// # Panics
    ///
    /// Panics when no defenses were added.
    pub fn run_with_cache(
        &self,
        cache: &HashMap<u64, CellReport>,
        progress: Option<&(dyn Fn(&CellProgress) + Sync)>,
    ) -> Result<(MatrixReport, MatrixRunSummary), DramError> {
        assert!(!self.defenses.is_empty(), "scenario matrix has no defenses");
        let attackers = self.effective_attackers();
        let drams = self.effective_dram();
        let loads = self.effective_loads();
        let cells: Vec<(usize, usize, usize, usize)> = (0..self.defenses.len())
            .flat_map(|d| {
                let attackers = &attackers;
                let drams = &drams;
                let loads = &loads;
                (0..attackers.len()).flat_map(move |a| {
                    (0..drams.len()).flat_map(move |m| (0..loads.len()).map(move |l| (d, a, m, l)))
                })
            })
            .collect();
        let total = cells.len();

        let slots: Vec<Mutex<Option<Result<CellReport, DramError>>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();
        let done = AtomicUsize::new(0);

        let mut pending: Vec<usize> = Vec::new();
        let mut cache_hits = 0usize;
        for (i, &(d, a, m, l)) in cells.iter().enumerate() {
            let key = self.cell_cache_key(d, &attackers[a], &drams[m], loads[l]);
            match cache.get(&key) {
                Some(hit) => {
                    cache_hits += 1;
                    dd_obs::add("matrix.cache_hits", 1);
                    *slots[i].lock().expect("cell slot") = Some(Ok(hit.clone()));
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    if let Some(observe) = progress {
                        observe(&CellProgress {
                            done: n,
                            total,
                            scenario: hit.scenario.clone(),
                            cache_hit: true,
                            millis: 0,
                        });
                    }
                }
                None => pending.push(i),
            }
        }

        if !pending.is_empty() {
            let workers = self
                .threads
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                })
                .min(pending.len())
                .max(1);

            // Partition the pending cells into cross-cell sweep groups:
            // same (attacker, device, load) with background traffic and
            // an untapped defense (probed on a throwaway instance — the
            // factory is cheap next to victim training). Grouped cells
            // pause after setup, run their benign warmup windows as one
            // kernel sweep, then return to the pool as attack jobs;
            // everything else runs the unchanged solo path. Grouping is
            // byte-invariant, so scheduling cannot change any report.
            let mut group_of: Vec<Option<usize>> = vec![None; pending.len()];
            let mut groups: Vec<Vec<usize>> = Vec::new();
            if self.sweep {
                let mut by_key: HashMap<(usize, usize, usize), Vec<usize>> = HashMap::new();
                for (p, &i) in pending.iter().enumerate() {
                    let (d, a, m, l) = cells[i];
                    if loads[l] == BackgroundLoad::None {
                        continue;
                    }
                    let (name, factory, _) = &self.defenses[d];
                    let probe_seed = self.cell_seed(name, &attackers[a], &drams[m], loads[l]);
                    if factory(probe_seed, &drams[m]).has_online_tap() {
                        continue;
                    }
                    by_key.entry((a, m, l)).or_default().push(p);
                }
                for members in by_key.into_values() {
                    if members.len() >= 2 {
                        let g = groups.len();
                        for &p in &members {
                            group_of[p] = Some(g);
                        }
                        groups.push(members);
                    }
                }
                dd_obs::add("matrix.sweep_groups", groups.len() as u64);
            }

            enum Job {
                Setup { p: usize },
                Attack { i: usize, state: Box<CellState> },
            }
            struct GroupSlot {
                expected: usize,
                arrived: Vec<(usize, Box<CellState>)>,
            }

            let queue: Mutex<Vec<Job>> =
                Mutex::new((0..pending.len()).rev().map(|p| Job::Setup { p }).collect());
            let group_slots: Vec<Mutex<GroupSlot>> = groups
                .iter()
                .map(|members| {
                    Mutex::new(GroupSlot {
                        expected: members.len(),
                        arrived: Vec::new(),
                    })
                })
                .collect();
            let remaining = AtomicUsize::new(pending.len());
            let pending = &pending;
            let cells = &cells;
            let attackers = &attackers;
            let drams = &drams;
            let loads = &loads;
            let group_of = &group_of;
            let queue = &queue;
            let group_slots = &group_slots;
            let remaining = &remaining;
            let done = &done;
            let slots = &slots;

            let finish_cell = move |i: usize, result: Result<CellReport, DramError>, ms: u64| {
                let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                if let (Some(observe), Ok(cell)) = (progress, &result) {
                    observe(&CellProgress {
                        done: n,
                        total,
                        scenario: cell.scenario.clone(),
                        cache_hit: false,
                        millis: ms,
                    });
                }
                *slots[i].lock().expect("cell slot") = Some(result);
                remaining.fetch_sub(1, Ordering::Release);
            };
            let finish_cell = &finish_cell;

            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(move || loop {
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        let job = queue.lock().expect("job queue").pop();
                        let Some(job) = job else {
                            // Jobs still in flight on other workers may
                            // yet push attack work back to the pool.
                            std::thread::sleep(Duration::from_micros(200));
                            continue;
                        };
                        match job {
                            Job::Setup { p } => {
                                let i = pending[p];
                                let (d, a, m, l) = cells[i];
                                let started = Instant::now();
                                let setup = {
                                    let name: &str = &self.defenses[d].0;
                                    let _span = dd_obs::span_with("matrix.cell_setup", || {
                                        format!("defense={name} cell={i}")
                                    });
                                    self.cell_setup(d, &attackers[a], &drams[m], loads[l])
                                };
                                let mut ready: Vec<(usize, Box<CellState>)> = Vec::new();
                                match (setup, group_of[p]) {
                                    (Ok(mut state), None) => match self.warmup_solo(&mut state) {
                                        Ok(()) => {
                                            state.millis += started.elapsed().as_millis() as u64;
                                            queue.lock().expect("job queue").push(Job::Attack {
                                                i,
                                                state: Box::new(state),
                                            });
                                        }
                                        Err(e) => finish_cell(
                                            i,
                                            Err(e),
                                            started.elapsed().as_millis() as u64,
                                        ),
                                    },
                                    (Ok(mut state), Some(g)) => {
                                        state.millis += started.elapsed().as_millis() as u64;
                                        let mut slot = group_slots[g].lock().expect("group slot");
                                        slot.arrived.push((i, Box::new(state)));
                                        if slot.arrived.len() == slot.expected {
                                            ready = std::mem::take(&mut slot.arrived);
                                        }
                                    }
                                    (Err(e), None) => {
                                        finish_cell(i, Err(e), started.elapsed().as_millis() as u64)
                                    }
                                    (Err(e), Some(g)) => {
                                        finish_cell(
                                            i,
                                            Err(e),
                                            started.elapsed().as_millis() as u64,
                                        );
                                        // Shrink the group so the cells
                                        // that did set up still run.
                                        let mut slot = group_slots[g].lock().expect("group slot");
                                        slot.expected -= 1;
                                        if slot.expected > 0 && slot.arrived.len() == slot.expected
                                        {
                                            ready = std::mem::take(&mut slot.arrived);
                                        }
                                    }
                                }
                                if !ready.is_empty() {
                                    // The last member to arrive warms the
                                    // whole group up in one sweep, then
                                    // returns the cells to the pool.
                                    let warm_started = Instant::now();
                                    let (idxs, mut states): (Vec<usize>, Vec<CellState>) =
                                        ready.into_iter().map(|(ci, b)| (ci, *b)).unzip();
                                    match self.warmup_group(&mut states) {
                                        Ok(()) => {
                                            let share = (warm_started.elapsed().as_millis() as u64)
                                                / states.len().max(1) as u64;
                                            let mut q = queue.lock().expect("job queue");
                                            for (ci, mut st) in idxs.into_iter().zip(states) {
                                                st.millis += share;
                                                q.push(Job::Attack {
                                                    i: ci,
                                                    state: Box::new(st),
                                                });
                                            }
                                        }
                                        Err(e) => {
                                            let ms = warm_started.elapsed().as_millis() as u64;
                                            for ci in idxs {
                                                finish_cell(ci, Err(e.clone()), ms);
                                            }
                                        }
                                    }
                                }
                            }
                            Job::Attack { i, state } => {
                                let started = Instant::now();
                                let base_ms = state.millis;
                                let (d, _, _, _) = cells[i];
                                let name: &str = &self.defenses[d].0;
                                let _span = dd_obs::span_with("matrix.cell_attack", || {
                                    format!("defense={name} cell={i}")
                                });
                                let result = self.cell_attack(*state);
                                finish_cell(
                                    i,
                                    result,
                                    base_ms + started.elapsed().as_millis() as u64,
                                );
                            }
                        }
                    });
                }
            });
        }

        let mut out = Vec::with_capacity(total);
        for slot in slots {
            out.push(
                slot.into_inner()
                    .expect("cell slot")
                    .expect("cell executed")?,
            );
        }
        Ok((
            MatrixReport { cells: out },
            MatrixRunSummary {
                cells: total,
                cache_hits,
            },
        ))
    }

    /// Phase 1 of a cell: train and deploy the victim, run the
    /// attacker's search, assemble the scratch device and its background
    /// traffic — everything up to (but excluding) the warmup windows.
    /// The returned state is `Send`, so a sweep group can collect its
    /// members from whichever worker threads set them up.
    fn cell_setup(
        &self,
        defense_idx: usize,
        attacker: &AttackerKind,
        dram: &DramConfig,
        load: BackgroundLoad,
    ) -> Result<CellState, DramError> {
        let (name, factory, budget_override) = &self.defenses[defense_idx];
        let budget = budget_override.unwrap_or(self.budget);
        let seed = self.cell_seed(name, attacker, dram, load);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut defense = factory(seed, dram);

        // Victim: deterministic per (spec, width), so every cell of the
        // same width attacks identical weights.
        let (mut net, dataset) = self.victim.build(defense.capacity_multiplier());
        defense.prepare_victim(&mut net, &dataset, &mut rng);
        let mut model = QModel::from_network(net);
        let mut data_rng = StdRng::seed_from_u64(self.victim.seed ^ 0x5eed_da7a);
        let batch = dataset.attack_batch(self.victim.batch.min(dataset.test.len()), &mut data_rng);
        let data = AttackData::single_batch(batch.images, batch.labels);

        // Deployment: priority schemes profile their secured set at least
        // as deep as the attacker's budget (round 1 covers the naive
        // greedy path; see EXPERIMENTS.md).
        let profile_cfg = AttackConfig {
            target_accuracy: 0.0,
            max_flips: budget,
            ..self.attack
        };
        defense.on_deploy(&mut model, &data, &profile_cfg);
        let clean = model.accuracy(&data.eval_images, &data.eval_labels);

        // The attacker's search runs on its belief model (flips applied).
        // target_accuracy 0.0: the search spends the whole budget — only
        // the replay loop's *real*-accuracy check exits early, matching
        // the common protocol (the attacker cannot read the real state).
        let search_cfg = AttackConfig {
            target_accuracy: 0.0,
            max_flips: budget,
            ..self.attack
        };
        let flips: Vec<BitFlip> = match attacker {
            AttackerKind::Bfa => run_bfa(&mut model, &data, &search_cfg, &HashSet::new())
                .steps
                .iter()
                .map(|s| s.flip)
                .collect(),
            AttackerKind::Adaptive(threat) => {
                let skip = if threat.is_defense_aware() {
                    defense.secured_bits().cloned().unwrap_or_default()
                } else {
                    HashSet::new()
                };
                run_bfa(&mut model, &data, &search_cfg, &skip)
                    .steps
                    .iter()
                    .map(|s| s.flip)
                    .collect()
            }
            AttackerKind::Tbfa(goal) => {
                run_tbfa(&mut model, &data, &search_cfg, *goal, &HashSet::new()).flips
            }
            AttackerKind::Random { flips } => {
                let weights: Vec<usize> = (0..model.num_qparams())
                    .map(|p| model.qtensor(p).len())
                    .collect();
                let total: usize = weights.iter().sum();
                (0..*flips)
                    .map(|_| {
                        let mut w = rng.gen_range(0..total);
                        let mut param = 0;
                        while w >= weights[param] {
                            w -= weights[param];
                            param += 1;
                        }
                        let bit = rng.gen_range(0..dd_qnn::WEIGHT_BITS);
                        model.flip_bit(BitAddr {
                            param,
                            index: w,
                            bit,
                        })
                    })
                    .collect()
            }
        };

        // Replay each selected campaign mechanistically through the
        // defense on a scratch device, one refresh window per campaign.
        // Bit flips commute (XOR), so blocked flips are tracked as
        // addresses and reverted by toggling.
        let mut mem = MemoryController::try_new(dram.clone())?;
        // Bulk replay: counters-only tracing (see `TraceMode`). This is
        // also what routes the cell's background traffic through the
        // batched simulation kernel — `BenignTraffic::drive_span` under
        // `IssuePath::Auto` issues counters-only devices via
        // `MemoryController::issue_batch`, bit-identical to the
        // per-command path (docs/perf.md), so cached cell reports and
        // artifact numbers are unchanged.
        mem.set_trace_mode(TraceMode::CountersOnly);
        let t_rh = dram.rowhammer_threshold;

        // The cell's background traffic: zipfian serving over a 64-row
        // "hot" working set spread across the device, scans over the
        // rest (on the scratch device there is no deployed weight image,
        // so the working set is a geometric stand-in for one).
        let traffic = {
            let cold = all_data_rows(dram);
            let hot: Vec<GlobalRowId> = cold
                .iter()
                .copied()
                .step_by((cold.len() / 64).max(1))
                .take(64)
                .collect();
            BenignTraffic::for_load(
                load,
                self.traffic_seed(attacker, dram, load),
                dram,
                &hot,
                &cold,
            )
        };
        let benign = traffic.as_ref().map(|_| BenignReport::default());
        let false_ops_base = defense.stats().defense_ops;
        Ok(CellState {
            scenario: self.scenario_for(name, attacker, dram, load),
            dram: dram.clone(),
            defense,
            model,
            data,
            flips,
            mem,
            traffic,
            benign,
            disturbed: HashSet::new(),
            clean_accuracy: clean,
            t_rh,
            false_ops_base,
            millis: 0,
        })
    }

    /// Phase 2, solo: the two benign-only measurement windows — any
    /// defensive operation fired here is a false positive (nothing is
    /// under attack yet). The window protocol (rollover notification,
    /// budget, boundary-minus-1 sampling point) is the workload driver's.
    fn warmup_solo(&self, state: &mut CellState) -> Result<(), DramError> {
        let _span = dd_obs::span("matrix.warmup_solo");
        if state.traffic.is_some() {
            for _ in 0..2 {
                let span = {
                    let CellState {
                        traffic,
                        mem,
                        defense,
                        ..
                    } = state;
                    traffic
                        .as_mut()
                        .expect("checked above")
                        .drive_benign_window(mem, &mut **defense, None)?
                };
                state.absorb_warmup_window(span);
            }
        }
        state.finish_warmup();
        Ok(())
    }

    /// Phase 2, grouped: the same two benign-only windows, but driven
    /// across a whole sweep group in one cross-cell kernel pass per
    /// window ([`drive_benign_window_sweep`]). Relies on what the
    /// scheduler's grouping guarantees — identical device configs and
    /// clocks, background traffic present, untapped defenses — and is
    /// bit-identical to running [`ScenarioMatrix::warmup_solo`] on every
    /// member, which the conformance suite's grouping-invariance law
    /// enforces.
    fn warmup_group(&self, states: &mut [CellState]) -> Result<(), DramError> {
        if states.len() == 1 {
            return self.warmup_solo(&mut states[0]);
        }
        let cells = states.len();
        let _span = dd_obs::span_with("matrix.warmup_group", || format!("cells={cells}"));
        let config = states[0].dram.clone();
        let mut sweep = CellSweep::new(&config, states.len());
        for _ in 0..2 {
            let span = {
                let mut cells: Vec<SweepCell<'_>> = states
                    .iter_mut()
                    .map(|s| {
                        let CellState {
                            mem,
                            defense,
                            traffic,
                            ..
                        } = s;
                        SweepCell {
                            mem,
                            defense: &mut **defense,
                            map: None,
                            traffic: traffic.as_mut().expect("grouped cell has traffic"),
                        }
                    })
                    .collect();
                drive_benign_window_sweep(&mut sweep, &mut cells)?
            };
            for s in states.iter_mut() {
                s.absorb_warmup_window(span);
            }
        }
        for s in states.iter_mut() {
            s.finish_warmup();
        }
        Ok(())
    }

    /// Phase 3: the attacked windows — one mechanistic RowHammer
    /// campaign per selected flip, racing the defense mid-window while
    /// benign traffic (if any) keeps flowing around it.
    fn cell_attack(&self, state: CellState) -> Result<CellReport, DramError> {
        let CellState {
            scenario,
            dram,
            mut defense,
            mut model,
            data,
            flips,
            mut mem,
            mut traffic,
            benign: mut benign_report,
            mut disturbed,
            clean_accuracy,
            t_rh,
            ..
        } = state;
        let mut blocked: Vec<BitAddr> = Vec::new();
        let mut attempts = 0usize;
        let mut landed = 0usize;
        let mut collapsed = false;
        for flip in &flips {
            if collapsed {
                // Early exit: the real system is at the target; un-apply
                // the belief flips that were never attempted.
                model.flip_bit(flip.addr);
                continue;
            }
            let victim = pseudo_victim(flip.addr, &dram);
            let bit_in_row = pseudo_bit_in_row(flip.addr, &dram);
            let addr = flip.addr;

            let outcome = match (traffic.as_mut(), benign_report.as_mut()) {
                (Some(t), Some(b)) => {
                    // The shared attacked-window protocol: half the
                    // benign budget, the campaign racing mid-window,
                    // the rest of the budget up to 1 ns before the
                    // boundary.
                    let (span, online_ops, outcome) = t.drive_attacked_window(
                        &mut mem,
                        &mut *defense,
                        None,
                        |mem, defense, _| {
                            defense.filter_flip(CampaignView {
                                mem,
                                map: None,
                                victim,
                                bit_in_row,
                                addr,
                            })
                        },
                    )?;
                    b.ops += span.ops;
                    b.activations += span.activations;
                    b.online_defense_ops += online_ops;
                    outcome
                }
                _ => {
                    mem.advance(Nanos::from_millis(65));
                    defense.on_hammer_window(mem.epoch());
                    defense.filter_flip(CampaignView {
                        mem: &mut mem,
                        map: None,
                        victim,
                        bit_in_row,
                        addr,
                    })?
                }
            };
            attempts += 1;
            if outcome.landed() {
                landed += 1;
            } else {
                blocked.push(flip.addr);
            }

            // Sample disturbance before the window rolls over (the
            // rollover zeroes it), then cross the boundary.
            if let (Some(t), Some(b)) = (traffic.as_mut(), benign_report.as_mut()) {
                if attempts.is_multiple_of(10) || attempts == flips.len() {
                    for &row in t.universe() {
                        if row == victim {
                            continue;
                        }
                        let d = mem.disturbance(row);
                        b.peak_disturbance = b.peak_disturbance.max(d);
                        if d >= t_rh / 2 {
                            disturbed.insert(row);
                        }
                    }
                }
                mem.advance(Nanos(1));
            }

            if attempts.is_multiple_of(10) {
                let acc = real_accuracy(&mut model, &data, &blocked);
                if acc <= self.attack.target_accuracy {
                    collapsed = true;
                }
            }
        }

        let post = real_accuracy(&mut model, &data, &blocked);
        Ok(CellReport {
            scenario,
            clean_accuracy,
            post_attack_accuracy: post,
            attempts,
            landed,
            stats: defense.stats(),
            benign: benign_report.map(|mut b| {
                b.disturbed_rows = disturbed.len() as u64;
                b
            }),
        })
    }
}

/// A cell paused between its setup phase (victim training, defense
/// deployment, attack search, device + traffic assembly) and its
/// measurement phases (warmup, then attacked windows). States are `Send`
/// — [`DefenseMechanism`] and the traffic's generators carry the bound —
/// so the matrix scheduler can collect a sweep group's members from the
/// worker threads that set them up and warm them up together.
struct CellState {
    scenario: Scenario,
    dram: DramConfig,
    defense: DynDefense,
    model: QModel,
    data: AttackData,
    flips: Vec<BitFlip>,
    mem: MemoryController,
    traffic: Option<BenignTraffic>,
    benign: Option<BenignReport>,
    disturbed: HashSet<GlobalRowId>,
    clean_accuracy: f32,
    t_rh: u64,
    /// Defense-op counter at the end of setup; the warmup windows'
    /// false-positive delta is measured from here.
    false_ops_base: u64,
    /// Wall-clock milliseconds attributed to this cell so far (setup,
    /// plus its share of a grouped warmup).
    millis: u64,
}

impl CellState {
    /// Absorb one warmup window's traffic into the benign report, sample
    /// benign-row disturbance at the boundary-minus-1 instant, and cross
    /// the window boundary — identical bookkeeping for the solo and
    /// grouped warmup paths.
    fn absorb_warmup_window(&mut self, span: SpanTraffic) {
        let (Some(t), Some(b)) = (self.traffic.as_ref(), self.benign.as_mut()) else {
            return;
        };
        b.ops += span.ops;
        b.activations += span.activations;
        for &row in t.universe() {
            let d = self.mem.disturbance(row);
            b.peak_disturbance = b.peak_disturbance.max(d);
            if d >= self.t_rh / 2 {
                self.disturbed.insert(row);
            }
        }
        self.mem.advance(Nanos(1));
    }

    /// Close the warmup phase: everything the defense fired since setup
    /// was fired with nothing under attack — false positives.
    fn finish_warmup(&mut self) {
        if let Some(b) = self.benign.as_mut() {
            b.false_defense_ops = self.defense.stats().defense_ops - self.false_ops_base;
        }
    }
}

/// Device label used in report rows and cell seeds.
pub fn dram_label(config: &DramConfig) -> String {
    format!(
        "{}b/{}s/{}r T_RH={}",
        config.banks,
        config.subarrays_per_bank,
        config.rows_per_subarray,
        config.rowhammer_threshold
    )
}

/// Map a model bit to a pseudo victim row on the scratch device: spread
/// over banks/subarrays, inside the data region, away from the edges so
/// both neighbours exist.
fn pseudo_victim(addr: BitAddr, config: &DramConfig) -> GlobalRowId {
    let data_rows = config.data_rows_per_subarray();
    let span = data_rows.saturating_sub(4).max(1);
    GlobalRowId::new(
        addr.param % config.banks,
        (addr.index / 7) % config.subarrays_per_bank,
        2 + (addr.index % span),
    )
}

/// The bit offset within the pseudo victim row.
fn pseudo_bit_in_row(addr: BitAddr, config: &DramConfig) -> usize {
    (addr.index % config.row_bytes) * 8 + addr.bit as usize
}

/// Accuracy of the *real* system: the belief model minus the blocked
/// flips. Bit flips commute (XOR), so toggling each blocked address out
/// and back in is exact even when the search hit one bit repeatedly.
fn real_accuracy(model: &mut QModel, data: &AttackData, blocked: &[BitAddr]) -> f32 {
    for &addr in blocked {
        model.flip_bit(addr);
    }
    let acc = model.accuracy(&data.eval_images, &data.eval_labels);
    for &addr in blocked {
        model.flip_bit(addr);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_matrix() -> ScenarioMatrix {
        let attack = AttackConfig {
            target_accuracy: 0.3,
            max_flips: 40,
            ..Default::default()
        };
        ScenarioMatrix::new(VictimSpec::tiny_mlp(2002))
            .attack_config(attack)
            .budget(20)
    }

    #[test]
    fn undefended_collapses_protected_does_not() {
        let report = quick_matrix()
            .defense("Baseline", |_, _| Box::new(Undefended::named("Baseline")))
            .defense("DNN-Defender", |seed, _| {
                Box::new(DnnDefenderDefense::with_profiling(
                    DefenseConfig::default(),
                    2,
                    seed,
                ))
            })
            .run()
            .expect("matrix");

        let baseline = report.cell("Baseline", None).expect("baseline row");
        let dd = report.cell("DNN-Defender", None).expect("dd row");
        assert!(
            baseline.post_attack_accuracy < baseline.clean_accuracy - 0.2,
            "baseline did not degrade: {} -> {}",
            baseline.clean_accuracy,
            baseline.post_attack_accuracy
        );
        assert_eq!(baseline.landed, baseline.attempts);
        assert_eq!(dd.landed, 0, "a profiled flip landed");
        assert!(
            (dd.post_attack_accuracy - dd.clean_accuracy).abs() < 1e-6,
            "defended accuracy moved"
        );
        assert!(dd.stats.invariants_hold());
    }

    #[test]
    fn rrs_blocks_most_standard_campaigns() {
        let report = quick_matrix()
            .defense("RRS", |seed, _| {
                Box::new(RowSwapMechanism::new(SwapScheme::Rrs, seed))
            })
            .run()
            .expect("matrix");
        let row = &report.cells[0];
        assert!(
            row.landed < row.attempts.div_ceil(4),
            "RRS leaked too much: {}/{}",
            row.landed,
            row.attempts
        );
        assert!(row.post_attack_accuracy >= row.clean_accuracy - 0.35);
        assert!(row.stats.invariants_hold());
    }

    #[test]
    fn matrix_crosses_attackers_and_devices() {
        let report = quick_matrix()
            .budget(6)
            .attacker(AttackerKind::Bfa)
            .attacker(AttackerKind::Random { flips: 6 })
            .dram_config(DramConfig::lpddr4_small())
            .dram_config(DramConfig::lpddr4_small().with_rowhammer_threshold(2400))
            .defense("Baseline", |_, _| Box::new(Undefended::named("Baseline")))
            .defense("Graphene", |_, config| {
                Box::new(GrapheneDefense::for_config(config))
            })
            .run()
            .expect("matrix");
        // 2 defenses x 2 attackers x 2 devices.
        assert_eq!(report.cells.len(), 8);
        // Graphene resists everything, at both thresholds.
        for cell in report
            .cells
            .iter()
            .filter(|c| c.scenario.defense == "Graphene")
        {
            assert_eq!(
                cell.landed, 0,
                "graphene leaked under {}",
                cell.scenario.dram
            );
            assert!(cell.stats.defense_ops > 0);
        }
        // Baseline lands everything under the BFA attacker.
        for cell in report
            .cells
            .iter()
            .filter(|c| c.scenario.defense == "Baseline" && c.scenario.attacker == "BFA")
        {
            assert_eq!(cell.landed, cell.attempts);
        }
    }

    #[test]
    fn cells_are_deterministic() {
        let build = || {
            quick_matrix()
                .budget(8)
                .defense("RRS", |seed, _| {
                    Box::new(RowSwapMechanism::new(SwapScheme::Rrs, seed))
                })
                .run()
                .expect("matrix")
        };
        let a = build();
        let b = build();
        assert_eq!(a.cells[0].scenario.seed, b.cells[0].scenario.seed);
        assert_eq!(a.cells[0].attempts, b.cells[0].attempts);
        assert_eq!(a.cells[0].landed, b.cells[0].landed);
        assert_eq!(
            a.cells[0].post_attack_accuracy,
            b.cells[0].post_attack_accuracy
        );
    }

    #[test]
    fn sweep_grouping_is_report_invariant() {
        // The matrix-level grouping law: a run with cross-cell sweep
        // grouping on is byte-identical to the same run with every cell
        // solo. The roster mixes groupable defenses with a tapped one
        // (DNN-Defender), which the scheduler must route down the
        // per-cell path even when grouping is on.
        let build = |sweep: bool| {
            quick_matrix()
                .budget(6)
                .background(BackgroundLoad::Light)
                .defense_kind(DefenseKind::Undefended)
                .defense_kind(DefenseKind::Rrs)
                .defense_kind(DefenseKind::Shadow)
                .defense_kind(DefenseKind::DnnDefender)
                .sweep_groups(sweep)
                .run()
                .expect("matrix")
        };
        let grouped = build(true);
        let solo = build(false);
        assert_eq!(grouped.cells.len(), solo.cells.len());
        for (g, s) in grouped.cells.iter().zip(&solo.cells) {
            assert_eq!(g.scenario, s.scenario);
            assert_eq!(g.clean_accuracy, s.clean_accuracy, "{}", g.scenario.defense);
            assert_eq!(
                g.post_attack_accuracy, s.post_attack_accuracy,
                "{}",
                g.scenario.defense
            );
            assert_eq!(g.attempts, s.attempts, "{}", g.scenario.defense);
            assert_eq!(g.landed, s.landed, "{}", g.scenario.defense);
            assert_eq!(g.stats, s.stats, "{}", g.scenario.defense);
            assert_eq!(g.benign, s.benign, "{}", g.scenario.defense);
        }
    }

    #[test]
    fn defense_kind_labels_match_mechanism_names() {
        let config = DramConfig::lpddr4_small();
        for kind in DefenseKind::TABLE3 {
            let mechanism = kind.build(7, &config);
            assert_eq!(
                mechanism.name(),
                kind.label(),
                "label drifted from the mechanism's own name"
            );
            assert_eq!(format!("{kind}"), kind.label());
        }
    }

    #[test]
    fn kind_labels_parse_round_trip() {
        for kind in DefenseKind::TABLE3 {
            assert_eq!(DefenseKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(DefenseKind::parse("Fortress"), None);
        let attackers = [
            AttackerKind::Bfa,
            AttackerKind::Tbfa(TbfaGoal {
                source_class: Some(1),
                target_class: 2,
            }),
            AttackerKind::Tbfa(TbfaGoal {
                source_class: None,
                target_class: 3,
            }),
            AttackerKind::Random { flips: 17 },
            AttackerKind::Adaptive(ThreatModel::SemiWhiteBox),
            AttackerKind::Adaptive(ThreatModel::WhiteBox),
        ];
        for attacker in attackers {
            assert_eq!(AttackerKind::parse(&attacker.label()), Some(attacker));
        }
        assert_eq!(AttackerKind::parse("T-BFA(?->2)"), None);
        assert_eq!(AttackerKind::parse("Random(many)"), None);
        assert_eq!(AttackerKind::parse("Adaptive(BlackBox)"), None);
    }

    #[test]
    fn cell_report_json_round_trips() {
        let report = quick_matrix()
            .budget(4)
            .defense_kind(DefenseKind::Undefended)
            .run()
            .expect("matrix");
        let json = report.to_json();
        let text = json.render_pretty();
        let back = MatrixReport::from_json(&Json::parse(&text).expect("parse")).expect("decode");
        assert_eq!(back.cells.len(), report.cells.len());
        let (a, b) = (&report.cells[0], &back.cells[0]);
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(a.clean_accuracy, b.clean_accuracy);
        assert_eq!(a.post_attack_accuracy, b.post_attack_accuracy);
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.landed, b.landed);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn cache_keys_are_stable_and_config_sensitive() {
        let build = |budget: usize| {
            quick_matrix()
                .budget(budget)
                .attacker(AttackerKind::Bfa)
                .defense_kind(DefenseKind::Undefended)
                .defense_kind(DefenseKind::Rrs)
        };
        let a = build(8);
        let b = build(8);
        assert_eq!(a.config_hash(), b.config_hash());
        assert_eq!(a.cell_keys(), b.cell_keys());
        let c = build(9);
        assert_ne!(a.config_hash(), c.config_hash());
        for ((_, ka), (_, kc)) in a.cell_keys().iter().zip(c.cell_keys()) {
            assert_ne!(*ka, kc, "budget change must invalidate every cell key");
        }
        // Per-defense budget overrides only touch that defense's cells.
        let d = build(8).defense_kind_budgeted(DefenseKind::Shadow, 10);
        let keys_a = a.cell_keys();
        let keys_d = d.cell_keys();
        assert_eq!(&keys_d[..keys_a.len()], &keys_a[..]);
    }

    #[test]
    fn run_with_cache_reuses_cells_and_reports_progress() {
        let matrix = quick_matrix()
            .budget(6)
            .defense_kind(DefenseKind::Undefended)
            .defense_kind(DefenseKind::Rrs);
        let (report, summary) = matrix
            .run_with_cache(&HashMap::new(), None)
            .expect("cold run");
        assert_eq!(summary.cells, 2);
        assert_eq!(summary.cache_hits, 0);

        let cache: HashMap<u64, CellReport> = matrix
            .cell_keys()
            .into_iter()
            .map(|(_, key)| key)
            .zip(report.cells.iter().cloned())
            .collect();
        let events = Mutex::new(Vec::new());
        let observe = |p: &CellProgress| {
            events.lock().unwrap().push((p.done, p.cache_hit));
        };
        let (warm, summary) = matrix
            .run_with_cache(&cache, Some(&observe))
            .expect("warm run");
        assert_eq!(summary.cache_hits, 2);
        assert!((summary.hit_rate() - 1.0).abs() < f64::EPSILON);
        assert_eq!(events.lock().unwrap().as_slice(), &[(1, true), (2, true)]);
        for (a, b) in report.cells.iter().zip(&warm.cells) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.post_attack_accuracy, b.post_attack_accuracy);
        }

        // A partial cache recomputes only the misses.
        let (_, key) = &matrix.cell_keys()[0];
        let partial: HashMap<u64, CellReport> = HashMap::from([(*key, report.cells[0].clone())]);
        let (mixed, summary) = matrix.run_with_cache(&partial, None).expect("mixed run");
        assert_eq!(summary.cache_hits, 1);
        assert_eq!(mixed.cells.len(), 2);
        assert_eq!(
            mixed.cells[1].post_attack_accuracy,
            report.cells[1].post_attack_accuracy
        );
    }

    #[test]
    fn background_load_axis_crosses_and_reports_benign_traffic() {
        let report = quick_matrix()
            .budget(10)
            .background(BackgroundLoad::None)
            .background(BackgroundLoad::Light)
            .defense("Baseline", |_, _| Box::new(Undefended::named("Baseline")))
            .run()
            .expect("matrix");
        assert_eq!(report.cells.len(), 2);
        let none = &report.cells[0];
        let light = &report.cells[1];
        assert_eq!(none.scenario.workload, "none");
        assert_eq!(light.scenario.workload, "light");
        assert_ne!(none.scenario.seed, light.scenario.seed);
        assert!(
            none.benign.is_none(),
            "no-load cell must have no benign report"
        );
        let benign = light.benign.expect("loaded cell reports benign traffic");
        // 2 warmup windows + one window per attempt, at the light rate.
        let expected = (2 + light.attempts as u64) * BackgroundLoad::Light.ops_per_window();
        assert_eq!(benign.ops, expected);
        assert_eq!(
            benign.activations,
            benign.ops * BackgroundLoad::Light.batch()
        );
        assert_eq!(
            benign.false_defense_ops, 0,
            "undefended cannot false-positive"
        );
        // The attack's campaigns land with or without background traffic.
        assert_eq!(light.landed, light.attempts);
    }

    #[test]
    fn background_load_cells_are_deterministic_and_keyed_separately() {
        let build = || {
            quick_matrix()
                .budget(6)
                .background(BackgroundLoad::MultiTenant)
                .defense_kind(DefenseKind::DnnDefender)
                .run()
                .expect("matrix")
        };
        let (a, b) = (build(), build());
        let (ca, cb) = (&a.cells[0], &b.cells[0]);
        assert_eq!(ca.benign, cb.benign, "benign traffic must be deterministic");
        assert_eq!(ca.post_attack_accuracy, cb.post_attack_accuracy);
        assert!(ca.stats.invariants_hold());

        // Load levels key cells apart: same matrix, different load ⇒
        // different cache keys for every cell.
        let keys = |load: BackgroundLoad| {
            quick_matrix()
                .budget(6)
                .background(load)
                .defense_kind(DefenseKind::DnnDefender)
                .cell_keys()
        };
        let none = keys(BackgroundLoad::None);
        let heavy = keys(BackgroundLoad::Heavy);
        assert_ne!(none[0].1, heavy[0].1, "load must be part of the cell key");
    }

    #[test]
    fn fig8_analysis_rides_along() {
        let rows = quick_matrix()
            .defense("Baseline", |_, _| Box::new(Undefended::new()))
            .security_analysis(&[1000, 2000, 4000, 8000]);
        assert_eq!(rows.len(), 4);
        for row in &rows {
            assert!(row.dd_days > row.shadow_days, "DD must out-survive SHADOW");
        }
        assert!(rows.windows(2).all(|w| w[0].dd_days < w[1].dd_days));
    }

    #[test]
    fn adaptive_white_box_skips_the_secured_set() {
        let report = quick_matrix()
            .attacker(AttackerKind::Adaptive(ThreatModel::WhiteBox))
            .defense("DNN-Defender", |seed, _| {
                Box::new(DnnDefenderDefense::with_profiling(
                    DefenseConfig::default(),
                    2,
                    seed,
                ))
            })
            .run()
            .expect("matrix");
        let cell = &report.cells[0];
        // The defense-aware attacker only attempts unsecured bits, so
        // every attempt lands — the question is the damage they can do.
        assert_eq!(cell.landed, cell.attempts);
        assert!(cell.stats.invariants_hold());
    }
}
