//! Graphene-style counter-based mitigation [Park et al., MICRO 2020].
//!
//! Graphene tracks frequently activated rows with a Misra–Gries frequent-
//! items summary in CAM/SRAM and proactively refreshes the neighbours of
//! any row whose estimated count reaches a trip point below `T_RH`. It is
//! a *victim-focused refresh* scheme: effective, but it pays the Table 2
//! CAM/SRAM cost and (unlike DNN-Defender) it leaves the victim where the
//! attacker can keep re-targeting it, so every window costs refreshes
//! forever.

use std::collections::HashMap;

use dd_dram::rowhammer::preferred_aggressor;
use dd_dram::{DramConfig, DramError, GlobalRowId, MemoryController};
use dnn_defender::defense::{CampaignView, DefenseMechanism, DefenseStats, FlipAttempt};
use dnn_defender::overhead::{overhead_table, OverheadEntry};

/// A Misra–Gries frequent-items summary over row activations.
///
/// Guarantees that any row activated more than `total / (entries + 1)`
/// times is present in the table — which is what lets Graphene bound the
/// number of counters far below one-per-row.
#[derive(Debug, Clone)]
pub struct MisraGries {
    entries: usize,
    counts: HashMap<GlobalRowId, u64>,
    /// Count decremented from all entries so far (the summary's error
    /// bound for absent rows).
    pub decrements: u64,
}

impl MisraGries {
    /// Summary with `entries` counter slots.
    ///
    /// # Panics
    ///
    /// Panics when `entries` is zero.
    pub fn new(entries: usize) -> Self {
        assert!(entries > 0, "summary needs at least one entry");
        MisraGries {
            entries,
            counts: HashMap::with_capacity(entries),
            decrements: 0,
        }
    }

    /// Record `n` activations of `row`; returns the row's current estimate.
    pub fn observe(&mut self, row: GlobalRowId, n: u64) -> u64 {
        if let Some(c) = self.counts.get_mut(&row) {
            *c += n;
            return *c;
        }
        if self.counts.len() < self.entries {
            self.counts.insert(row, n);
            return n;
        }
        // Decrement-all by the smallest count (batched Misra–Gries step).
        let min = self.counts.values().copied().min().unwrap_or(0);
        let dec = min.min(n);
        if dec > 0 {
            self.decrements += dec;
            self.counts.retain(|_, c| {
                *c -= dec;
                *c > 0
            });
        }
        let remaining = n - dec;
        if remaining > 0 && self.counts.len() < self.entries {
            self.counts.insert(row, remaining);
            return remaining;
        }
        0
    }

    /// Current estimate for a row (0 when untracked).
    pub fn estimate(&self, row: GlobalRowId) -> u64 {
        self.counts.get(&row).copied().unwrap_or(0)
    }

    /// Reset all counters (on refresh-window rollover).
    pub fn reset(&mut self) {
        self.counts.clear();
        self.decrements = 0;
    }

    /// Number of live counter slots in use.
    pub fn occupancy(&self) -> usize {
        self.counts.len()
    }
}

/// Graphene-style defense wired to the simulated memory controller.
#[derive(Debug)]
pub struct GrapheneDefense {
    table: MisraGries,
    /// Estimated-count trip point at which victims get refreshed.
    trip: u64,
    epoch: u64,
    /// Victim refreshes issued.
    pub refreshes: u64,
    stats: DefenseStats,
}

impl GrapheneDefense {
    /// Defense with a `entries`-slot table tripping at `trip` activations
    /// (typically `T_RH / 2` to absorb estimate error).
    pub fn new(entries: usize, trip: u64) -> Self {
        GrapheneDefense {
            table: MisraGries::new(entries),
            trip,
            epoch: 0,
            refreshes: 0,
            stats: DefenseStats::default(),
        }
    }

    /// Defense sized for a device, the way the paper's Graphene is: the
    /// trip point is `T_RH / 2` (the margin that absorbs Misra–Gries
    /// estimate error) and the table holds one entry per trip-sized
    /// activation bundle the device can issue in one refresh window
    /// (`(T_ref / t_act) / trip`) — enough that a genuine aggressor can
    /// never hide behind eviction churn. The flip side, measured by the
    /// workload experiment, is that a *benign* hotspot past the trip
    /// point is tracked just as faithfully and gets falsely refreshed.
    pub fn for_config(config: &DramConfig) -> Self {
        let trip = (config.rowhammer_threshold / 2).max(1);
        let acts_per_window = config.timing.t_ref / config.timing.t_act;
        let entries = (acts_per_window / u128::from(trip)) as usize;
        GrapheneDefense::new(entries.max(16), trip)
    }

    /// Observe an attacker hammer burst and, if the aggressor trips the
    /// table, refresh its victims. Returns `true` when a refresh fired.
    ///
    /// # Errors
    ///
    /// Propagates [`DramError`] from the refresh operations.
    pub fn on_activations(
        &mut self,
        mem: &mut MemoryController,
        aggressor: GlobalRowId,
        n: u64,
    ) -> Result<bool, DramError> {
        let epoch = mem.epoch();
        if epoch != self.epoch {
            self.epoch = epoch;
            self.table.reset();
        }
        let estimate = self.table.observe(aggressor, n);
        if estimate >= self.trip {
            for victim in mem.rowhammer_model().victims_of(aggressor) {
                mem.refresh_row(victim)?;
                self.refreshes += 1;
            }
            // Graphene resets the tripped entry after acting.
            self.table.reset_row(aggressor);
            return Ok(true);
        }
        Ok(false)
    }
}

impl MisraGries {
    /// Remove one row's counter (after its victims were refreshed).
    pub fn reset_row(&mut self, row: GlobalRowId) {
        self.counts.remove(&row);
    }
}

impl DefenseMechanism for GrapheneDefense {
    fn name(&self) -> &str {
        "Graphene"
    }

    /// One campaign: the attacker hammers toward `T_RH` in bursts while
    /// Graphene's command-stream tap observes every burst and refreshes
    /// the victims of any aggressor whose estimate trips. Victim data is
    /// never relocated, so the weight map (when present) stays coherent
    /// for free.
    fn filter_flip(&mut self, view: CampaignView<'_>) -> Result<FlipAttempt, DramError> {
        let CampaignView {
            mem,
            victim,
            bit_in_row,
            ..
        } = view;
        let t_rh = mem.config().rowhammer_threshold;
        let rows = mem.config().rows_per_subarray;
        let aggressor = preferred_aggressor(victim, rows);
        let burst = (t_rh / 10).max(1);
        let mut hammered = 0u64;
        while hammered < t_rh {
            let n = burst.min(t_rh - hammered);
            mem.hammer(aggressor, n)?;
            self.on_activations(mem, aggressor, n)?;
            hammered += n;
        }
        let outcome = mem.attempt_flip(victim, &[bit_in_row])?;
        let attempt = if outcome.flipped() {
            FlipAttempt::Landed
        } else {
            FlipAttempt::Resisted
        };
        self.stats.record(attempt);
        Ok(attempt)
    }

    /// Graphene's tap *is* its whole mechanism: every activation lands in
    /// the Misra–Gries table, benign or not. A hot benign row (a zipfian
    /// serving hotspot) that trips the table gets its neighbours
    /// refreshed just like an aggressor would — those are the scheme's
    /// false refreshes, and the workload driver counts them.
    fn observe_activation(
        &mut self,
        mem: &mut MemoryController,
        _map: Option<&mut dnn_defender::WeightMap>,
        row: GlobalRowId,
        n: u64,
    ) -> Result<(), DramError> {
        self.on_activations(mem, row, n)?;
        Ok(())
    }

    fn has_online_tap(&self) -> bool {
        // Every activation lands in the Misra–Gries table and can fire
        // victim refreshes.
        true
    }

    fn stats(&self) -> DefenseStats {
        DefenseStats {
            defense_ops: self.refreshes,
            ..self.stats
        }
    }

    fn overhead(&self, config: &DramConfig) -> Option<OverheadEntry> {
        overhead_table(config)
            .into_iter()
            .find(|e| e.framework == "Graphene")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_dram::DramConfig;

    fn gid(row: usize) -> GlobalRowId {
        GlobalRowId::new(0, 0, row)
    }

    #[test]
    fn misra_gries_tracks_heavy_hitter() {
        let mut mg = MisraGries::new(4);
        // One heavy hitter among light noise rows.
        for i in 0..20 {
            mg.observe(gid(50 + i), 1);
            mg.observe(gid(7), 10);
        }
        assert!(
            mg.estimate(gid(7)) > 100,
            "heavy hitter lost: {}",
            mg.estimate(gid(7))
        );
        assert!(mg.occupancy() <= 4);
    }

    #[test]
    fn misra_gries_underestimates_bounded() {
        let mut mg = MisraGries::new(2);
        mg.observe(gid(1), 100);
        mg.observe(gid(2), 50);
        mg.observe(gid(3), 30); // evicts min counts by 30
                                // True count of row 1 is 100; estimate ≥ 100 - decrements.
        assert!(mg.estimate(gid(1)) >= 100 - mg.decrements);
    }

    #[test]
    fn graphene_prevents_the_flip() {
        let config = DramConfig::lpddr4_small(); // T_RH = 4800
        let mut mem = MemoryController::try_new(config).expect("valid config");
        let mut defense = GrapheneDefense::new(16, 2400);
        let aggressor = gid(11);
        let victim = gid(10);

        // Attacker hammers in bursts; defense observes each burst (as the
        // command-stream tap Graphene implements in the controller).
        for _ in 0..10 {
            mem.hammer(aggressor, 480).unwrap();
            defense.on_activations(&mut mem, aggressor, 480).unwrap();
        }
        let outcome = mem.attempt_flip(victim, &[0]).unwrap();
        assert!(!outcome.flipped(), "graphene failed to protect");
        assert!(defense.refreshes > 0);
    }

    #[test]
    fn undefended_same_pattern_flips() {
        let config = DramConfig::lpddr4_small();
        let mut mem = MemoryController::try_new(config).expect("valid config");
        let aggressor = gid(11);
        let victim = gid(10);
        for _ in 0..10 {
            mem.hammer(aggressor, 480).unwrap();
        }
        assert!(mem.attempt_flip(victim, &[0]).unwrap().flipped());
    }

    #[test]
    fn hot_benign_traffic_can_false_refresh() {
        let config = DramConfig::lpddr4_small(); // trips at T_RH/2 = 2400
        let mut mem = MemoryController::try_new(config).expect("valid config");
        let mut defense = GrapheneDefense::for_config(mem.config());
        // A benign serving hotspot crosses the trip point inside one
        // window: Graphene cannot tell it from an aggressor and pays the
        // victim refreshes (false positives under benign-only traffic).
        for _ in 0..5 {
            mem.hammer(gid(50), 500).unwrap();
            defense
                .observe_activation(&mut mem, None, gid(50), 500)
                .unwrap();
        }
        assert!(
            defense.refreshes > 0,
            "hotspot past the trip point must refresh"
        );
        assert_eq!(defense.stats().attempts, 0, "no campaign was recorded");
    }

    #[test]
    fn table_resets_on_new_window() {
        let config = DramConfig::lpddr4_small();
        let mut mem = MemoryController::try_new(config).expect("valid config");
        let mut defense = GrapheneDefense::new(4, 1000);
        defense.on_activations(&mut mem, gid(5), 900).unwrap();
        assert_eq!(defense.table.estimate(gid(5)), 900);
        mem.advance(dd_dram::Nanos::from_millis(65));
        defense.on_activations(&mut mem, gid(5), 10).unwrap();
        assert_eq!(
            defense.table.estimate(gid(5)),
            10,
            "stale count survived refresh window"
        );
    }
}
