//! The Table 3 evaluation harness: a common attack protocol played
//! against interchangeable defenses.
//!
//! The attacker runs the stock progressive bit search (it is white-box
//! about the *model*, per Table 1, but follows the standard BFA algorithm
//! [15]); every selected flip is passed through the defense's *landing
//! filter*, which decides — mechanistically where possible — whether the
//! RowHammer campaign actually corrupted memory. Accuracy is always
//! measured on the *real* system state (belief minus blocked flips).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use dd_attack::bfa::intra_layer_candidates;
use dd_attack::{AttackConfig, AttackData};
use dd_dram::{DramConfig, GlobalRowId, MemoryController, Nanos};
use dd_qnn::{BitAddr, BitFlip, QModel};

use crate::swap_based::{AttackerTracking, RowSwapDefense, SwapScheme};

/// One row of the Table 3 comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DefenseEvalRow {
    /// Defense name.
    pub name: String,
    /// Accuracy before the attack.
    pub clean_accuracy: f32,
    /// Accuracy after the attack budget is spent (real system state).
    pub post_attack_accuracy: f32,
    /// Flip attempts the attacker spent.
    pub attempts: usize,
    /// Flips that corrupted memory.
    pub landed: usize,
}

/// Decides whether an attempted flip lands.
pub enum LandingFilter {
    /// Undefended memory: every campaign succeeds.
    AlwaysLands,
    /// Mechanistic RRS/SRS: each campaign is replayed on a scratch DRAM
    /// with the aggressor-swap defense active, against the standard
    /// (aggressor-data-tracking) BFA attacker.
    RowSwap { defense: RowSwapDefense, mem: MemoryController, rng: StdRng },
    /// A set of bits whose rows are refreshed in time (DNN-Defender's
    /// secured set; campaigns against them never land).
    ProtectedSet(std::collections::HashSet<BitAddr>),
    /// Fixed landing probability (used for SHADOW's rare tracker-
    /// granularity misses; see EXPERIMENTS.md for the calibration).
    Probabilistic { p_land: f64, rng: StdRng },
}

impl LandingFilter {
    /// Mechanistic RRS/SRS filter.
    pub fn row_swap(scheme: SwapScheme, seed: u64) -> Self {
        LandingFilter::RowSwap {
            defense: RowSwapDefense::new(scheme),
            mem: MemoryController::new(DramConfig::lpddr4_small()),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// SHADOW-style probabilistic filter.
    pub fn probabilistic(p_land: f64, seed: u64) -> Self {
        LandingFilter::Probabilistic { p_land, rng: StdRng::seed_from_u64(seed) }
    }

    fn lands(&mut self, addr: BitAddr) -> bool {
        match self {
            LandingFilter::AlwaysLands => true,
            LandingFilter::ProtectedSet(set) => !set.contains(&addr),
            LandingFilter::Probabilistic { p_land, rng } => {
                use rand::Rng;
                rng.gen_bool(*p_land)
            }
            LandingFilter::RowSwap { defense, mem, rng } => {
                // Map the bit to a pseudo-victim row; replay a full
                // mechanistic campaign in a fresh refresh window.
                mem.advance(Nanos::from_millis(65));
                let row = 10 + (addr.index % 100);
                let victim = GlobalRowId::new(addr.param % 16, 0, row);
                let outcome = defense
                    .run_campaign(
                        mem,
                        victim,
                        addr.bit as usize,
                        AttackerTracking::FollowsAggressorData,
                        rng,
                    )
                    .expect("scratch campaign");
                outcome.flipped
            }
        }
    }
}

/// Run the common protocol: `budget` BFA-selected flip attempts filtered
/// by `filter`, returning the Table 3 row.
pub fn evaluate_defense(
    name: &str,
    model: &mut QModel,
    data: &AttackData,
    config: &AttackConfig,
    mut filter: LandingFilter,
    budget: usize,
) -> DefenseEvalRow {
    let snapshot = model.snapshot_q();
    let clean = model.accuracy(&data.eval_images, &data.eval_labels);
    let mut blocked: Vec<BitFlip> = Vec::new();
    let mut attempts = 0usize;
    let mut landed = 0usize;
    let empty = std::collections::HashSet::new();

    for _ in 0..budget {
        let grads = model.weight_grads(&data.search_images, &data.search_labels);
        let mut candidates = intra_layer_candidates(model, &grads, &empty);
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        candidates.truncate(config.evaluate_top_k.max(1));
        let mut best: Option<(BitAddr, f32)> = None;
        for &(addr, _) in &candidates {
            let flip = model.flip_bit(addr);
            let loss = model.loss(&data.search_images, &data.search_labels);
            model.unflip(flip);
            if best.map_or(true, |(_, bl)| loss > bl) {
                best = Some((addr, loss));
            }
        }
        let (addr, _) = best.expect("non-empty");
        let flip = model.flip_bit(addr);
        attempts += 1;
        if filter.lands(addr) {
            landed += 1;
        } else {
            blocked.push(flip);
        }
        // Early exit when the real system has collapsed.
        if attempts % 10 == 0 {
            let acc = real_accuracy(model, data, &blocked);
            if acc <= config.target_accuracy {
                break;
            }
        }
    }

    let post = real_accuracy(model, data, &blocked);
    model.restore_q(&snapshot);
    DefenseEvalRow {
        name: name.to_string(),
        clean_accuracy: clean,
        post_attack_accuracy: post,
        attempts,
        landed,
    }
}

fn real_accuracy(model: &mut QModel, data: &AttackData, blocked: &[BitFlip]) -> f32 {
    for flip in blocked.iter().rev() {
        model.unflip(*flip);
    }
    let acc = model.accuracy(&data.eval_images, &data.eval_labels);
    for flip in blocked {
        model.flip_bit(flip.addr);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::trained_victim;

    #[test]
    fn undefended_collapses_protected_does_not() {
        let (mut model, data, clean) = trained_victim();
        let config = AttackConfig { target_accuracy: 0.3, max_flips: 40, ..Default::default() };

        let baseline = evaluate_defense(
            "Baseline",
            &mut model,
            &data,
            &config,
            LandingFilter::AlwaysLands,
            40,
        );
        assert!(baseline.post_attack_accuracy < clean - 0.2, "baseline did not degrade");
        assert_eq!(baseline.landed, baseline.attempts);

        // Protect everything the attacker would pick: no degradation.
        let all_bits: std::collections::HashSet<BitAddr> = (0..model.num_qparams())
            .flat_map(|p| {
                let len = model.qtensor(p).len();
                (0..len).flat_map(move |i| (0..8u8).map(move |b| BitAddr { param: p, index: i, bit: b }))
            })
            .collect();
        let protected = evaluate_defense(
            "DNN-Defender",
            &mut model,
            &data,
            &config,
            LandingFilter::ProtectedSet(all_bits),
            40,
        );
        assert_eq!(protected.landed, 0);
        assert!((protected.post_attack_accuracy - clean).abs() < 1e-6);
    }

    #[test]
    fn rrs_filter_blocks_most_campaigns() {
        let (mut model, data, clean) = trained_victim();
        let config = AttackConfig { target_accuracy: 0.1, max_flips: 30, ..Default::default() };
        let row = evaluate_defense(
            "RRS",
            &mut model,
            &data,
            &config,
            LandingFilter::row_swap(SwapScheme::Rrs, 42),
            30,
        );
        assert!(row.landed < row.attempts / 4, "RRS leaked too much: {}/{}", row.landed, row.attempts);
        assert!(row.post_attack_accuracy >= clean - 0.35);
    }

    #[test]
    fn evaluation_restores_the_model() {
        let (mut model, data, _) = trained_victim();
        let snap = model.snapshot_q();
        let config = AttackConfig { target_accuracy: 0.3, max_flips: 10, ..Default::default() };
        let _ = evaluate_defense(
            "Baseline",
            &mut model,
            &data,
            &config,
            LandingFilter::AlwaysLands,
            10,
        );
        assert_eq!(model.hamming_from(&snap), 0);
    }
}
