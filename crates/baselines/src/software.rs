//! Software (training-side) BFA defenses compared in Table 3.
//!
//! These transform the *model* rather than the memory system:
//!
//! * **Piece-wise clustering** [He et al., CVPR 2020] — push weights
//!   toward ±cluster centers; approximated here by symmetric weight
//!   clipping plus a brief fine-tune, which bounds per-flip damage the
//!   same way (the quantizer scale shrinks, so an MSB flip moves a weight
//!   less).
//! * **Binary weights** [He et al. 2020 / RA-BNN] — weights become
//!   `±α` per layer; a bit flip can only negate one weight, so far more
//!   flips are needed for the same damage.
//! * **Weight reconstruction** [Li et al., DAC 2020] — post-attack
//!   repair; approximated by clamping statistical outliers back into the
//!   clean weight range.
//! * **Model capacity ×k** [RA-BNN observation] — a wider model dilutes
//!   each weight's influence.
//!
//! All of these trade training effort or clean accuracy for robustness,
//! which is exactly the comparison Table 3 draws against DNN-Defender
//! (no training, no accuracy drop).

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use dd_dram::DramError;
use dd_nn::data::Dataset;
use dd_nn::model::Network;
use dd_nn::train::{train, TrainConfig};
use dnn_defender::defense::{
    hammer_to_flip, CampaignView, DefenseMechanism, DefenseStats, FlipAttempt,
};

/// Clip every quantizable weight of a network to `±limit × std(param)`.
///
/// Returns the number of weights clipped. This is the inference-time
/// effect of piece-wise clustering: no weight sticks out, so the 8-bit
/// quantization scale — and therefore the damage of any single bit flip —
/// shrinks.
pub fn clip_weights(net: &mut Network, limit: f32) -> usize {
    let mut clipped = 0;
    net.visit_params(&mut |p| {
        if !p.quantizable {
            return;
        }
        let n = p.value.len().max(1);
        let mean: f32 = p.value.as_slice().iter().sum::<f32>() / n as f32;
        let var: f32 = p
            .value
            .as_slice()
            .iter()
            .map(|&w| (w - mean) * (w - mean))
            .sum::<f32>()
            / n as f32;
        let bound = limit * var.sqrt();
        for w in p.value.as_mut_slice() {
            if w.abs() > bound {
                *w = w.signum() * bound;
                clipped += 1;
            }
        }
    });
    clipped
}

/// Binarize every quantizable weight to `±α` with `α = mean(|w|)` per
/// parameter (the XNOR-style binary-weight transform).
pub fn binarize_weights(net: &mut Network) {
    net.visit_params(&mut |p| {
        if !p.quantizable {
            return;
        }
        let n = p.value.len().max(1);
        let alpha: f32 = p.value.as_slice().iter().map(|w| w.abs()).sum::<f32>() / n as f32;
        for w in p.value.as_mut_slice() {
            *w = if *w >= 0.0 { alpha } else { -alpha };
        }
    });
}

/// Statistics of a repair pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Weights pulled back into range.
    pub repaired: usize,
}

/// Post-attack weight reconstruction: clamp any weight whose magnitude
/// exceeds the recorded clean maximum of its parameter (bit flips in high
/// bits create exactly such outliers).
pub fn repair_outliers(net: &mut Network, clean_max_abs: &[f32]) -> RepairReport {
    let mut repaired = 0;
    let mut idx = 0;
    net.visit_params(&mut |p| {
        if !p.quantizable {
            return;
        }
        let bound = clean_max_abs[idx];
        idx += 1;
        for w in p.value.as_mut_slice() {
            if w.abs() > bound {
                *w = w.signum() * bound;
                repaired += 1;
            }
        }
    });
    RepairReport { repaired }
}

/// Record the per-parameter clean `max |w|` needed by
/// [`repair_outliers`].
pub fn record_max_abs(net: &mut Network) -> Vec<f32> {
    let mut out = Vec::new();
    net.visit_params(&mut |p| {
        if p.quantizable {
            out.push(p.value.max_abs());
        }
    });
    out
}

/// Mean absolute weight value of the quantizable parameters (diagnostic
/// used in tests and the Table 3 harness).
pub fn mean_abs_weight(net: &mut Network) -> f32 {
    let mut sum = 0.0f64;
    let mut count = 0usize;
    net.visit_params(&mut |p| {
        if p.quantizable {
            sum += p
                .value
                .as_slice()
                .iter()
                .map(|w| w.abs() as f64)
                .sum::<f64>();
            count += p.value.len();
        }
    });
    (sum / count.max(1) as f64) as f32
}

/// Which training-side transform a [`SoftwareDefense`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SoftwareKind {
    /// Piece-wise clustering, approximated by symmetric weight clipping
    /// plus a recovery fine-tune.
    Clustering,
    /// Binary (±α) weights with recovery fine-tunes.
    BinaryWeights,
    /// Wider model (×2 base width) diluting each weight's influence.
    CapacityX2,
}

impl SoftwareKind {
    /// Table 3 row label.
    pub fn name(self) -> &'static str {
        match self {
            SoftwareKind::Clustering => "Piece-wise clustering",
            SoftwareKind::BinaryWeights => "Binary weight",
            SoftwareKind::CapacityX2 => "Model Capacity x2",
        }
    }
}

/// The software (training-side) defenses behind the [`DefenseMechanism`]
/// API. They transform the *model*, not the memory system, so every
/// campaign lands ([`FlipAttempt::Landed`]) — robustness shows up as
/// higher post-attack accuracy instead of blocked flips, exactly how
/// Table 3 compares them.
#[derive(Debug)]
pub struct SoftwareDefense {
    kind: SoftwareKind,
    /// Epochs for each recovery fine-tune pass (0 = transform only).
    pub recovery_epochs: usize,
    stats: DefenseStats,
}

impl SoftwareDefense {
    /// Defense of the given kind with the Table 3 recovery schedule.
    pub fn new(kind: SoftwareKind) -> Self {
        SoftwareDefense {
            kind,
            recovery_epochs: 4,
            stats: DefenseStats::default(),
        }
    }

    /// Defense with a custom recovery fine-tune length (tests use short
    /// schedules).
    pub fn with_recovery_epochs(kind: SoftwareKind, epochs: usize) -> Self {
        SoftwareDefense {
            kind,
            recovery_epochs: epochs,
            stats: DefenseStats::default(),
        }
    }

    /// The transform kind.
    pub fn kind(&self) -> SoftwareKind {
        self.kind
    }
}

impl DefenseMechanism for SoftwareDefense {
    fn name(&self) -> &str {
        self.kind.name()
    }

    fn capacity_multiplier(&self) -> usize {
        match self.kind {
            SoftwareKind::CapacityX2 => 2,
            _ => 1,
        }
    }

    /// Transform + recovery fine-tune + re-transform (the
    /// transform-train-transform pattern approximating the training-time
    /// versions of these defenses).
    fn prepare_victim(&mut self, net: &mut Network, dataset: &Dataset, rng: &mut StdRng) {
        if self.recovery_epochs == 0 {
            match self.kind {
                SoftwareKind::Clustering => {
                    clip_weights(net, 2.0);
                }
                SoftwareKind::BinaryWeights => binarize_weights(net),
                SoftwareKind::CapacityX2 => {}
            }
            return;
        }
        let ft = TrainConfig {
            epochs: self.recovery_epochs,
            batch_size: 64,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        match self.kind {
            SoftwareKind::Clustering => {
                clip_weights(net, 2.0);
                train(net, dataset, ft, rng);
                clip_weights(net, 2.0);
            }
            SoftwareKind::BinaryWeights => {
                binarize_weights(net);
                train(net, dataset, ft, rng);
                binarize_weights(net);
                // One more recovery pass for the norm/bias parameters.
                let ft2 = TrainConfig { lr: 0.005, ..ft };
                train(net, dataset, ft2, rng);
                binarize_weights(net);
            }
            SoftwareKind::CapacityX2 => {}
        }
    }

    fn filter_flip(&mut self, view: CampaignView<'_>) -> Result<FlipAttempt, DramError> {
        let outcome = if hammer_to_flip(view.mem, view.victim, view.bit_in_row)? {
            FlipAttempt::Landed
        } else {
            FlipAttempt::Resisted
        };
        self.stats.record(outcome);
        Ok(outcome)
    }

    fn stats(&self) -> DefenseStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_nn::init::seeded_rng;
    use dd_nn::layers::{Flatten, Linear};

    fn toy_net() -> Network {
        let mut rng = seeded_rng(8);
        Network::new("toy")
            .push(Flatten::new())
            .push(Linear::kaiming("fc", 16, 8, &mut rng))
    }

    #[test]
    fn clipping_reduces_max_abs() {
        let mut net = toy_net();
        // Plant an outlier.
        net.visit_params(&mut |p| {
            if p.quantizable {
                p.value.as_mut_slice()[0] = 100.0;
            }
        });
        let before = record_max_abs(&mut net)[0];
        let clipped = clip_weights(&mut net, 2.0);
        let after = record_max_abs(&mut net)[0];
        assert!(clipped >= 1);
        assert!(after < before);
    }

    #[test]
    fn binarization_leaves_two_levels() {
        let mut net = toy_net();
        binarize_weights(&mut net);
        net.visit_params(&mut |p| {
            if p.quantizable {
                let alpha = p.value.as_slice()[0].abs();
                assert!(p
                    .value
                    .as_slice()
                    .iter()
                    .all(|w| (w.abs() - alpha).abs() < 1e-6));
            }
        });
    }

    #[test]
    fn repair_restores_bounds() {
        let mut net = toy_net();
        let clean = record_max_abs(&mut net);
        // Simulate an MSB-flip outlier.
        net.visit_params(&mut |p| {
            if p.quantizable {
                p.value.as_mut_slice()[3] = -50.0;
            }
        });
        let report = repair_outliers(&mut net, &clean);
        assert_eq!(report.repaired, 1);
        let after = record_max_abs(&mut net);
        assert!(after[0] <= clean[0] + 1e-6);
    }

    #[test]
    fn binarization_bounds_flip_damage() {
        // After binarization + quantization, the largest possible change
        // to any weight from one flip is 2α-ish; in the float domain the
        // weights live on ±α so mean|w| is exactly α.
        let mut net = toy_net();
        binarize_weights(&mut net);
        let m = mean_abs_weight(&mut net);
        let maxabs = record_max_abs(&mut net)[0];
        assert!((m - maxabs).abs() < 1e-6);
    }
}
