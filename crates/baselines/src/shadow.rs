//! SHADOW-style intra-subarray row shuffling [Wi et al., HPCA 2023].
//!
//! SHADOW is, like DNN-Defender, a victim-focused in-DRAM scheme: when a
//! row is about to reach the RowHammer threshold, the row is *shuffled* to
//! a different physical location inside its subarray using an in-DRAM
//! copy, breaking the attack. The differences the paper leans on:
//!
//! * SHADOW protects **all** rows generically, so its shuffle budget is
//!   spread thin, while DNN-Defender concentrates on the priority rows;
//! * its shuffle (plus metadata maintenance) costs ≈ `4 × T_AAP` per row
//!   versus the pipelined `3 × T_AAP` swap, giving DNN-Defender the edge
//!   in Fig. 8(a)/(b);
//! * it dedicates 0.16 MB of DRAM to shadow rows (Table 2).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dd_dram::rowhammer::preferred_aggressor;
use dd_dram::{DramConfig, DramError, GlobalRowId, MemoryController, RowInSubarray};
use dnn_defender::defense::{CampaignView, DefenseMechanism, DefenseStats, FlipAttempt};
use dnn_defender::overhead::{overhead_table, OverheadEntry};

/// SHADOW defense state.
#[derive(Debug)]
pub struct ShadowDefense {
    /// Disturbance fraction of `T_RH` at which the shuffle triggers.
    pub trip_fraction: f64,
    /// Shuffles performed.
    pub shuffles: u64,
    /// Shuffle budget per refresh window (generic protection must cover
    /// the whole device; exceeding it lets flips through).
    pub budget_per_window: u64,
    epoch: u64,
    used_this_window: u64,
}

impl ShadowDefense {
    /// Defense with the given per-window shuffle budget.
    pub fn new(budget_per_window: u64) -> Self {
        ShadowDefense {
            trip_fraction: 0.75,
            shuffles: 0,
            budget_per_window,
            epoch: 0,
            used_this_window: 0,
        }
    }

    fn budget_available(&mut self, mem: &MemoryController) -> bool {
        let epoch = mem.epoch();
        if epoch != self.epoch {
            self.epoch = epoch;
            self.used_this_window = 0;
        }
        self.used_this_window < self.budget_per_window
    }

    /// Record one shuffle against the per-window budget (used by the
    /// map-coherent [`ShadowMechanism`] campaign).
    fn note_shuffle(&mut self) {
        self.shuffles += 1;
        self.used_this_window += 1;
    }

    /// One attacker campaign against `victim` with SHADOW watching.
    ///
    /// Returns `true` when the bit flipped (defense lost).
    ///
    /// # Errors
    ///
    /// Propagates [`DramError`] from memory operations.
    pub fn run_campaign(
        &mut self,
        mem: &mut MemoryController,
        victim: GlobalRowId,
        bit_in_row: usize,
        rng: &mut impl Rng,
    ) -> Result<bool, DramError> {
        let t_rh = mem.config().rowhammer_threshold;
        let trip = ((t_rh as f64) * self.trip_fraction) as u64;
        let rows = mem.config().rows_per_subarray;
        let mut current = victim;

        // The attacker hammers adjacently; SHADOW's in-DRAM tracker trips
        // when the victim's disturbance crosses the trip point and
        // shuffles the row (if budget remains).
        let mut remaining_windows = 4u32;
        while remaining_windows > 0 {
            let aggressor = dd_dram::rowhammer::preferred_aggressor(current, rows);
            let to_trip = trip.saturating_sub(mem.disturbance(current)).max(1);
            mem.hammer(aggressor, to_trip)?;
            if mem.disturbance(current) >= t_rh {
                let outcome = mem.attempt_flip(current, &[bit_in_row])?;
                if outcome.flipped() {
                    return Ok(true);
                }
            }
            if self.budget_available(mem) {
                // Shuffle: move the row elsewhere in the subarray (the
                // clone recharges it), spending ~4 × T_AAP.
                let dest = RowInSubarray(rng.gen_range(0..mem.config().data_rows_per_subarray()));
                if dest != current.row {
                    mem.row_clone(current.bank, current.subarray, current.row, dest)?;
                    // Metadata maintenance costs another partial copy.
                    mem.advance(mem.config().timing.t_aap);
                    current = GlobalRowId {
                        bank: current.bank,
                        subarray: current.subarray,
                        row: dest,
                    };
                    self.shuffles += 1;
                    self.used_this_window += 1;
                }
                remaining_windows -= 1;
            } else {
                // Out of budget: the attacker finishes the window.
                let aggressor = dd_dram::rowhammer::preferred_aggressor(current, rows);
                let need = t_rh.saturating_sub(mem.disturbance(current)).max(1);
                mem.hammer(aggressor, need)?;
                let outcome = mem.attempt_flip(current, &[bit_in_row])?;
                return Ok(outcome.flipped());
            }
        }
        Ok(false)
    }
}

/// SHADOW behind the [`DefenseMechanism`] API: owns its RNG and keeps a
/// deployed weight map coherent by shuffling via a data-preserving
/// exchange when one is present.
#[derive(Debug)]
pub struct ShadowMechanism {
    inner: ShadowDefense,
    rng: StdRng,
    stats: DefenseStats,
}

impl ShadowMechanism {
    /// Mechanism with the given per-window shuffle budget.
    pub fn new(budget_per_window: u64, seed: u64) -> Self {
        ShadowMechanism {
            inner: ShadowDefense::new(budget_per_window),
            rng: StdRng::seed_from_u64(seed),
            stats: DefenseStats::default(),
        }
    }

    /// The wrapped defense state.
    pub fn inner(&self) -> &ShadowDefense {
        &self.inner
    }

    /// Map-coherent campaign: same trip logic as
    /// [`ShadowDefense::run_campaign`], but each shuffle is realized as an
    /// exchange through the reserved row (3 RowClones + metadata
    /// maintenance ≈ the paper's `4 × T_AAP` shuffle cost) so the
    /// displaced row's weights survive and the map can follow the move.
    fn run_campaign_mapped(
        &mut self,
        mem: &mut MemoryController,
        map: &mut dnn_defender::WeightMap,
        victim: GlobalRowId,
        bit_in_row: usize,
    ) -> Result<bool, DramError> {
        let t_rh = mem.config().rowhammer_threshold;
        let trip = ((t_rh as f64) * self.inner.trip_fraction) as u64;
        let rows = mem.config().rows_per_subarray;
        let reserved = RowInSubarray(mem.config().first_reserved_row());
        let mut current = victim;

        let mut remaining_windows = 4u32;
        while remaining_windows > 0 {
            let aggressor = preferred_aggressor(current, rows);
            let to_trip = trip.saturating_sub(mem.disturbance(current)).max(1);
            mem.hammer(aggressor, to_trip)?;
            if mem.disturbance(current) >= t_rh {
                let outcome = mem.attempt_flip(current, &[bit_in_row])?;
                if outcome.flipped() {
                    return Ok(true);
                }
            }
            if self.inner.budget_available(mem) {
                let dest =
                    RowInSubarray(self.rng.gen_range(0..mem.config().data_rows_per_subarray()));
                if dest != current.row && dest != reserved {
                    mem.swap_rows_via(current.bank, current.subarray, current.row, dest, reserved)?;
                    self.stats.row_clones += 3;
                    // Metadata maintenance costs another partial copy.
                    mem.advance(mem.config().timing.t_aap);
                    let dest_addr = GlobalRowId {
                        bank: current.bank,
                        subarray: current.subarray,
                        row: dest,
                    };
                    map.relocate(current, dest_addr);
                    current = dest_addr;
                    self.inner.note_shuffle();
                }
                remaining_windows -= 1;
            } else {
                let aggressor = preferred_aggressor(current, rows);
                let need = t_rh.saturating_sub(mem.disturbance(current)).max(1);
                mem.hammer(aggressor, need)?;
                let outcome = mem.attempt_flip(current, &[bit_in_row])?;
                return Ok(outcome.flipped());
            }
        }
        Ok(false)
    }
}

impl DefenseMechanism for ShadowMechanism {
    fn name(&self) -> &str {
        "SHADOW"
    }

    fn filter_flip(&mut self, view: CampaignView<'_>) -> Result<FlipAttempt, DramError> {
        let CampaignView {
            mem,
            map,
            victim,
            bit_in_row,
            ..
        } = view;
        let before = self.inner.shuffles;
        let flipped = match map {
            Some(map) => self.run_campaign_mapped(mem, map, victim, bit_in_row)?,
            None => self
                .inner
                .run_campaign(mem, victim, bit_in_row, &mut self.rng)?,
        };
        self.stats.defense_ops += self.inner.shuffles - before;
        let attempt = if flipped {
            FlipAttempt::Landed
        } else {
            FlipAttempt::Resisted
        };
        self.stats.record(attempt);
        Ok(attempt)
    }

    fn stats(&self) -> DefenseStats {
        self.stats
    }

    fn overhead(&self, config: &DramConfig) -> Option<OverheadEntry> {
        overhead_table(config)
            .into_iter()
            .find(|e| e.framework == "SHADOW")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_nn::init::seeded_rng;

    #[test]
    fn shadow_with_budget_protects() {
        let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
        let mut shadow = ShadowDefense::new(1000);
        let mut rng = seeded_rng(4);
        let victim = GlobalRowId::new(0, 0, 10);
        let flipped = shadow.run_campaign(&mut mem, victim, 0, &mut rng).unwrap();
        assert!(!flipped, "SHADOW with ample budget should protect");
        assert!(shadow.shuffles > 0);
    }

    #[test]
    fn shadow_without_budget_fails() {
        let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
        let mut shadow = ShadowDefense::new(0);
        let mut rng = seeded_rng(5);
        let victim = GlobalRowId::new(0, 0, 10);
        let flipped = shadow.run_campaign(&mut mem, victim, 0, &mut rng).unwrap();
        assert!(flipped, "budget-exhausted SHADOW should lose");
    }

    #[test]
    fn shuffle_cost_exceeds_dnn_defender_swap() {
        // Structural check used by the Fig. 8 comparison: SHADOW pays
        // ~4 × T_AAP per protected row, DNN-Defender 3 × T_AAP.
        let timing = dd_dram::TimingParams::lpddr4();
        let shadow_cost = timing.t_aap * 2; // clone + metadata advance
        let dd_cost = timing.t_swap();
        // Per *campaign* SHADOW shuffles several times (trip at 0.75 T_RH
        // across 4 windows) while DD swaps once per window.
        assert!(shadow_cost.0 * 4 > dd_cost.0);
    }

    #[test]
    fn budget_resets_each_window() {
        let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
        let mut shadow = ShadowDefense::new(2);
        let mut rng = seeded_rng(6);
        let victim = GlobalRowId::new(0, 0, 20);
        // Exhaust budget in window 0.
        let _ = shadow.run_campaign(&mut mem, victim, 0, &mut rng).unwrap();
        mem.advance(dd_dram::Nanos::from_millis(65));
        // New window: budget is back.
        assert!(shadow.budget_available(&mem));
    }
}
