//! Counter-based mitigations beyond Graphene: counter-per-row, Hydra's
//! two-level hybrid tracking, and TWiCe's pruned table.
//!
//! All of them are victim-focused *refresh* schemes — they work (each
//! test shows the flip prevented), but they pay the Table 2 storage costs
//! and keep paying refreshes forever because, unlike DNN-Defender, the
//! victim never moves away from the attacker's aim.

use std::collections::HashMap;

use dd_dram::{DramError, GlobalRowId, MemoryController};

/// The simplest sound tracker: one counter per DRAM row (32 MB of DRAM
/// for the paper's 32 GB device — Table 2's "Counter per Row" row).
#[derive(Debug, Default)]
pub struct CounterPerRow {
    counts: HashMap<GlobalRowId, u64>,
    epoch: u64,
    /// Victim refreshes issued.
    pub refreshes: u64,
}

impl CounterPerRow {
    /// New tracker.
    pub fn new() -> Self {
        CounterPerRow::default()
    }

    /// Observe activations; refresh victims at `trip`.
    ///
    /// # Errors
    ///
    /// Propagates [`DramError`] from refresh operations.
    pub fn on_activations(
        &mut self,
        mem: &mut MemoryController,
        aggressor: GlobalRowId,
        n: u64,
        trip: u64,
    ) -> Result<bool, DramError> {
        let epoch = mem.epoch();
        if epoch != self.epoch {
            self.epoch = epoch;
            self.counts.clear();
        }
        let c = self.counts.entry(aggressor).or_insert(0);
        *c += n;
        if *c >= trip {
            *c = 0;
            for victim in mem.rowhammer_model().victims_of(aggressor) {
                mem.refresh_row(victim)?;
                self.refreshes += 1;
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Live counter count (grows with touched rows — the cost CPR pays).
    pub fn live_counters(&self) -> usize {
        self.counts.len()
    }
}

/// Hydra-style two-level tracker: coarse group counters in SRAM; a group
/// that gets hot instantiates per-row counters (spilled to DRAM). This is
/// what lets Hydra track ultra-low thresholds with ~56 KB of SRAM.
#[derive(Debug)]
pub struct HydraTracker {
    group_size: usize,
    group_counts: HashMap<(usize, usize, usize), u64>,
    row_counts: HashMap<GlobalRowId, u64>,
    group_threshold: u64,
    epoch: u64,
    /// Victim refreshes issued.
    pub refreshes: u64,
    /// Per-row counters materialized (the DRAM spill cost).
    pub spilled_rows: u64,
}

impl HydraTracker {
    /// Tracker with `group_size` rows per group counter and a group
    /// threshold at which per-row tracking starts.
    pub fn new(group_size: usize, group_threshold: u64) -> Self {
        HydraTracker {
            group_size: group_size.max(1),
            group_counts: HashMap::new(),
            row_counts: HashMap::new(),
            group_threshold,
            epoch: 0,
            refreshes: 0,
            spilled_rows: 0,
        }
    }

    fn group_of(&self, row: GlobalRowId) -> (usize, usize, usize) {
        (row.bank.0, row.subarray.0, row.row.0 / self.group_size)
    }

    /// Observe activations; refresh victims when the per-row count trips.
    ///
    /// # Errors
    ///
    /// Propagates [`DramError`] from refresh operations.
    pub fn on_activations(
        &mut self,
        mem: &mut MemoryController,
        aggressor: GlobalRowId,
        n: u64,
        trip: u64,
    ) -> Result<bool, DramError> {
        let epoch = mem.epoch();
        if epoch != self.epoch {
            self.epoch = epoch;
            self.group_counts.clear();
            self.row_counts.clear();
        }
        let group = self.group_of(aggressor);
        let gc = self.group_counts.entry(group).or_insert(0);
        *gc += n;
        if *gc < self.group_threshold {
            // Still in the coarse regime: nothing per-row yet.
            return Ok(false);
        }
        // Hot group: per-row tracking. A fresh per-row counter inherits
        // the group estimate (conservative, like Hydra's initialization).
        let initial = *gc;
        let spilled = &mut self.spilled_rows;
        let rc = self.row_counts.entry(aggressor).or_insert_with(|| {
            *spilled += 1;
            initial
        });
        *rc += n;
        if *rc >= trip {
            *rc = 0;
            for victim in mem.rowhammer_model().victims_of(aggressor) {
                mem.refresh_row(victim)?;
                self.refreshes += 1;
            }
            return Ok(true);
        }
        Ok(false)
    }
}

/// TWiCe-style pruned table: rows enter the table on first activation and
/// are pruned once their count provably cannot reach the threshold within
/// the remaining window — keeping the table small.
#[derive(Debug)]
pub struct TwiceTable {
    counts: HashMap<GlobalRowId, u64>,
    /// Activations observed this window (for the pruning bound).
    window_activations: u64,
    epoch: u64,
    /// Victim refreshes issued.
    pub refreshes: u64,
    /// Entries pruned as provably-cold.
    pub pruned: u64,
}

impl TwiceTable {
    /// New empty table.
    pub fn new() -> Self {
        TwiceTable {
            counts: HashMap::new(),
            window_activations: 0,
            epoch: 0,
            refreshes: 0,
            pruned: 0,
        }
    }

    /// Observe activations; refresh at `trip`; prune entries whose count
    /// lags the pruning bound (`window_activations / prune_divisor`).
    ///
    /// # Errors
    ///
    /// Propagates [`DramError`] from refresh operations.
    pub fn on_activations(
        &mut self,
        mem: &mut MemoryController,
        aggressor: GlobalRowId,
        n: u64,
        trip: u64,
        prune_divisor: u64,
    ) -> Result<bool, DramError> {
        let epoch = mem.epoch();
        if epoch != self.epoch {
            self.epoch = epoch;
            self.counts.clear();
            self.window_activations = 0;
        }
        self.window_activations += n;
        let c = self.counts.entry(aggressor).or_insert(0);
        *c += n;
        let tripped = *c >= trip;
        if tripped {
            *c = 0;
            for victim in mem.rowhammer_model().victims_of(aggressor) {
                mem.refresh_row(victim)?;
                self.refreshes += 1;
            }
        }
        // Prune provably-cold entries: anything far below the pace needed
        // to reach `trip` this window.
        let bound = (self.window_activations / prune_divisor.max(1)).min(trip / 2);
        let before = self.counts.len();
        self.counts.retain(|_, &mut v| v >= bound);
        self.pruned += (before - self.counts.len()) as u64;
        Ok(tripped)
    }

    /// Live table entries.
    pub fn live_entries(&self) -> usize {
        self.counts.len()
    }
}

impl Default for TwiceTable {
    fn default() -> Self {
        TwiceTable::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_dram::DramConfig;

    fn gid(row: usize) -> GlobalRowId {
        GlobalRowId::new(0, 0, row)
    }

    fn hammer_in_bursts(
        mem: &mut MemoryController,
        mut observe: impl FnMut(&mut MemoryController, GlobalRowId, u64) -> Result<bool, DramError>,
        bursts: u64,
        burst: u64,
    ) {
        for _ in 0..bursts {
            mem.hammer(gid(11), burst).unwrap();
            observe(mem, gid(11), burst).unwrap();
        }
    }

    #[test]
    fn counter_per_row_prevents_flip() {
        let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
        let mut cpr = CounterPerRow::new();
        hammer_in_bursts(
            &mut mem,
            |m, a, n| cpr.on_activations(m, a, n, 2400),
            10,
            480,
        );
        assert!(!mem.attempt_flip(gid(10), &[0]).unwrap().flipped());
        assert!(cpr.refreshes >= 2);
        assert_eq!(cpr.live_counters(), 1);
    }

    #[test]
    fn hydra_prevents_flip_with_few_spills() {
        let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
        let mut hydra = HydraTracker::new(16, 800);
        hammer_in_bursts(
            &mut mem,
            |m, a, n| hydra.on_activations(m, a, n, 2400),
            10,
            480,
        );
        assert!(!mem.attempt_flip(gid(10), &[0]).unwrap().flipped());
        assert!(hydra.refreshes >= 1);
        // Only the single hot group spilled per-row counters.
        assert_eq!(hydra.spilled_rows, 1);
    }

    #[test]
    fn hydra_ignores_cold_groups() {
        let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
        let mut hydra = HydraTracker::new(16, 800);
        // Touch many different rows lightly: all stay in the coarse regime.
        for row in (0..100).step_by(3) {
            mem.hammer(gid(row), 5).unwrap();
            hydra.on_activations(&mut mem, gid(row), 5, 2400).unwrap();
        }
        assert_eq!(hydra.spilled_rows, 0);
        assert_eq!(hydra.refreshes, 0);
    }

    #[test]
    fn twice_prevents_flip_and_prunes_cold_rows() {
        let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
        let mut twice = TwiceTable::new();
        // Background noise on cold rows.
        for row in 40..60 {
            mem.hammer(gid(row), 2).unwrap();
            twice
                .on_activations(&mut mem, gid(row), 2, 2400, 4)
                .unwrap();
        }
        // The real attack.
        for _ in 0..10 {
            mem.hammer(gid(11), 480).unwrap();
            twice
                .on_activations(&mut mem, gid(11), 480, 2400, 4)
                .unwrap();
        }
        assert!(!mem.attempt_flip(gid(10), &[0]).unwrap().flipped());
        assert!(twice.refreshes >= 1);
        assert!(twice.pruned > 0, "pruning never fired");
        assert!(
            twice.live_entries() <= 5,
            "table grew: {}",
            twice.live_entries()
        );
    }

    #[test]
    fn trackers_reset_between_windows() {
        let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
        let mut cpr = CounterPerRow::new();
        cpr.on_activations(&mut mem, gid(5), 100, 2400).unwrap();
        assert_eq!(cpr.live_counters(), 1);
        mem.advance(dd_dram::Nanos::from_millis(65));
        cpr.on_activations(&mut mem, gid(6), 1, 2400).unwrap();
        assert_eq!(cpr.live_counters(), 1, "old-window counter survived");
    }
}
