//! Aggressor-focused swap mitigations: RRS [Saileshwar et al., ASPLOS
//! 2022] and SRS [Woo et al. 2022].
//!
//! Both swap the *aggressor* row with a random row once its activation
//! count crosses a trip point. Against a blind attacker this breaks the
//! spatial correlation between aggressor and victim. Against the paper's
//! white-box attacker — who tracks the *victim* and simply hammers
//! whatever row is physically adjacent to it — the swap is purposeless:
//! the victim's accumulated disturbance survives the swap, and the
//! attacker keeps hammering the same *location* (§1, §5.1: "even the SRS
//! mechanism cannot defend against white-box attacks for a period of one
//! day").
//!
//! The mechanistic simulation below shows exactly that: under
//! victim-tracking the flip lands; under aggressor-tracking (the blind
//! attacker RRS was designed for) the campaign is broken with high
//! probability.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use dd_dram::{DramConfig, DramError, GlobalRowId, MemoryController, RowInSubarray};
use dnn_defender::defense::{CampaignView, DefenseMechanism, DefenseStats, FlipAttempt};
use dnn_defender::overhead::{overhead_table, OverheadEntry};

/// Which swap-based scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SwapScheme {
    /// Randomized Row-Swap: per-row counters, swap at trip point.
    Rrs,
    /// Secure Row-Swap: sampled counters for crucial data — fewer
    /// counters, lower swap rate, same security argument.
    Srs,
}

impl SwapScheme {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SwapScheme::Rrs => "RRS",
            SwapScheme::Srs => "SRS",
        }
    }

    /// Fraction of the threshold at which the aggressor gets swapped.
    pub fn trip_fraction(self) -> f64 {
        match self {
            SwapScheme::Rrs => 0.5,
            // SRS tolerates a later trip thanks to its threat analysis,
            // halving the swap rate.
            SwapScheme::Srs => 0.625,
        }
    }
}

/// What the attacker tracks between swaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackerTracking {
    /// Blind/aggressor-focused attacker: it keeps hammering the *data* it
    /// chose as aggressor, following it to its new random location —
    /// whose neighbours are no longer the victim.
    FollowsAggressorData,
    /// White-box victim-focused attacker (the paper's threat model): it
    /// hammers whatever row is currently adjacent to the victim.
    FollowsVictimAdjacency,
}

/// Outcome of one attacker campaign against a swap-based mitigation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapCampaignOutcome {
    /// Whether the victim bit flipped.
    pub flipped: bool,
    /// Aggressor swaps the mitigation performed during the campaign.
    pub swaps: u64,
}

/// RRS/SRS defense state.
#[derive(Debug)]
pub struct RowSwapDefense {
    scheme: SwapScheme,
    /// Swaps performed in total.
    pub total_swaps: u64,
}

impl RowSwapDefense {
    /// New defense of the given scheme.
    pub fn new(scheme: SwapScheme) -> Self {
        RowSwapDefense {
            scheme,
            total_swaps: 0,
        }
    }

    /// The scheme.
    pub fn scheme(&self) -> SwapScheme {
        self.scheme
    }

    /// Play one full campaign: the attacker needs `T_RH` disturbance on
    /// `victim`; the mitigation swaps the aggressor row every time its
    /// activation count reaches the trip point.
    ///
    /// # Errors
    ///
    /// Propagates [`DramError`] from the memory operations.
    pub fn run_campaign(
        &mut self,
        mem: &mut MemoryController,
        victim: GlobalRowId,
        bit_in_row: usize,
        tracking: AttackerTracking,
        rng: &mut impl Rng,
    ) -> Result<SwapCampaignOutcome, DramError> {
        let t_rh = mem.config().rowhammer_threshold;
        let trip = ((t_rh as f64) * self.scheme.trip_fraction()) as u64;
        let rows = mem.config().rows_per_subarray;
        let mut aggressor = dd_dram::rowhammer::preferred_aggressor(victim, rows);
        let mut swaps = 0u64;

        // The campaign proceeds in bursts of `trip` activations; after each
        // burst the mitigation swaps the aggressor away.
        let mut hammered = 0u64;
        while hammered < t_rh * 4 {
            let burst = trip.min(t_rh * 4 - hammered);
            mem.hammer(aggressor, burst)?;
            hammered += burst;
            if mem.disturbance(victim) >= t_rh {
                let outcome = mem.attempt_flip(victim, &[bit_in_row])?;
                if outcome.flipped() {
                    self.total_swaps += swaps;
                    return Ok(SwapCampaignOutcome {
                        flipped: true,
                        swaps,
                    });
                }
            }
            // Mitigation: swap the aggressor row's *data* to a random row.
            let dest = RowInSubarray(rng.gen_range(0..mem.config().data_rows_per_subarray()));
            swaps += 1;
            match tracking {
                AttackerTracking::FollowsAggressorData => {
                    // The attacker chases its chosen data to `dest`, whose
                    // neighbours are unrelated rows: the victim stops
                    // accumulating disturbance, and the auto-refresh wins.
                    aggressor = GlobalRowId {
                        bank: victim.bank,
                        subarray: victim.subarray,
                        row: dest,
                    };
                    if aggressor.row == victim.row {
                        // Landing next to itself is harmless too; skip.
                        break;
                    }
                    // Once the aggressor data is no longer adjacent to the
                    // victim, further hammering it never disturbs the
                    // victim: the campaign is dead.
                    if !mem
                        .rowhammer_model()
                        .victims_of(aggressor)
                        .contains(&victim)
                    {
                        break;
                    }
                }
                AttackerTracking::FollowsVictimAdjacency => {
                    // The white-box attacker re-aims at the victim's
                    // neighbour *location*: the swap changed which data
                    // lives there, not the adjacency. The victim's charge
                    // keeps draining. Nothing to update.
                }
            }
        }
        // Final attempt with whatever disturbance accumulated.
        let outcome = mem.attempt_flip(victim, &[bit_in_row])?;
        self.total_swaps += swaps;
        Ok(SwapCampaignOutcome {
            flipped: outcome.flipped(),
            swaps,
        })
    }
}

/// RRS/SRS behind the [`DefenseMechanism`] API: owns its RNG and models a
/// fixed attacker-tracking assumption per instance.
///
/// The standard BFA attacker of the common protocol is blind to the
/// mitigation and chases its chosen aggressor *data*
/// ([`AttackerTracking::FollowsAggressorData`]) — the attacker RRS was
/// designed against, and the calibration the Table 3 comparison uses. The
/// paper's white-box refutation (Fig. 9 / §5.1) instantiates the
/// mechanism with [`AttackerTracking::FollowsVictimAdjacency`] instead.
#[derive(Debug)]
pub struct RowSwapMechanism {
    inner: RowSwapDefense,
    tracking: AttackerTracking,
    rng: StdRng,
    stats: DefenseStats,
}

impl RowSwapMechanism {
    /// Mechanism under the standard (aggressor-data-tracking) attacker.
    pub fn new(scheme: SwapScheme, seed: u64) -> Self {
        RowSwapMechanism::with_tracking(scheme, AttackerTracking::FollowsAggressorData, seed)
    }

    /// Mechanism under an explicit attacker-tracking assumption.
    pub fn with_tracking(scheme: SwapScheme, tracking: AttackerTracking, seed: u64) -> Self {
        RowSwapMechanism {
            inner: RowSwapDefense::new(scheme),
            tracking,
            rng: StdRng::seed_from_u64(seed),
            stats: DefenseStats::default(),
        }
    }

    /// The wrapped scheme.
    pub fn scheme(&self) -> SwapScheme {
        self.inner.scheme()
    }
}

impl DefenseMechanism for RowSwapMechanism {
    fn name(&self) -> &str {
        self.inner.scheme().name()
    }

    /// One campaign through the mechanistic RRS/SRS simulation. The
    /// mitigation's swaps are virtual (aggressor re-aim bookkeeping, no
    /// data movement), so a deployed weight map stays coherent.
    fn filter_flip(&mut self, view: CampaignView<'_>) -> Result<FlipAttempt, DramError> {
        let CampaignView {
            mem,
            victim,
            bit_in_row,
            ..
        } = view;
        let before = self.inner.total_swaps;
        let outcome =
            self.inner
                .run_campaign(mem, victim, bit_in_row, self.tracking, &mut self.rng)?;
        self.stats.defense_ops += self.inner.total_swaps - before;
        let attempt = if outcome.flipped {
            FlipAttempt::Landed
        } else {
            FlipAttempt::Resisted
        };
        self.stats.record(attempt);
        Ok(attempt)
    }

    fn stats(&self) -> DefenseStats {
        self.stats
    }

    fn overhead(&self, config: &DramConfig) -> Option<OverheadEntry> {
        let framework = match self.inner.scheme() {
            SwapScheme::Rrs => "RRS",
            SwapScheme::Srs => "SRS",
        };
        overhead_table(config)
            .into_iter()
            .find(|e| e.framework == framework)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_nn::init::seeded_rng;

    fn setup() -> (MemoryController, GlobalRowId) {
        let mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
        (mem, GlobalRowId::new(0, 0, 10))
    }

    #[test]
    fn rrs_defeats_blind_attacker() {
        let (mut mem, victim) = setup();
        let mut defense = RowSwapDefense::new(SwapScheme::Rrs);
        let mut rng = seeded_rng(1);
        let mut flips = 0;
        for _ in 0..10 {
            let out = defense
                .run_campaign(
                    &mut mem,
                    victim,
                    0,
                    AttackerTracking::FollowsAggressorData,
                    &mut rng,
                )
                .unwrap();
            flips += u32::from(out.flipped);
            mem.advance(dd_dram::Nanos::from_millis(65)); // next window
        }
        // The blind attacker almost never wins (it can only win if the
        // random destination happens to be adjacent to the victim).
        assert!(flips <= 1, "RRS failed against blind attacker: {flips}/10");
    }

    #[test]
    fn rrs_fails_against_victim_tracking_attacker() {
        let (mut mem, victim) = setup();
        let mut defense = RowSwapDefense::new(SwapScheme::Rrs);
        let mut rng = seeded_rng(2);
        let out = defense
            .run_campaign(
                &mut mem,
                victim,
                0,
                AttackerTracking::FollowsVictimAdjacency,
                &mut rng,
            )
            .unwrap();
        assert!(out.flipped, "white-box attacker should defeat RRS");
        assert!(out.swaps >= 1, "mitigation never fired");
    }

    #[test]
    fn srs_swaps_less_than_rrs() {
        let (mut mem, victim) = setup();
        let mut rng = seeded_rng(3);
        let mut rrs = RowSwapDefense::new(SwapScheme::Rrs);
        let r = rrs
            .run_campaign(
                &mut mem,
                victim,
                0,
                AttackerTracking::FollowsVictimAdjacency,
                &mut rng,
            )
            .unwrap();
        let (mut mem2, victim2) = setup();
        let mut srs = RowSwapDefense::new(SwapScheme::Srs);
        let s = srs
            .run_campaign(
                &mut mem2,
                victim2,
                0,
                AttackerTracking::FollowsVictimAdjacency,
                &mut rng,
            )
            .unwrap();
        assert!(
            s.swaps <= r.swaps,
            "SRS should swap at most as often (srs {} vs rrs {})",
            s.swaps,
            r.swaps
        );
    }

    #[test]
    fn scheme_metadata() {
        assert_eq!(SwapScheme::Rrs.name(), "RRS");
        assert!(SwapScheme::Srs.trip_fraction() > SwapScheme::Rrs.trip_fraction());
    }
}
