//! Hostile-input tests for the trace decoders, extending the PR 9
//! hostile-header pattern to the trace plane: arbitrary byte strings
//! must never panic, abort, or force absurd allocations in `decode`,
//! `decode_any`, or `StreamingTraceReader` — traces are inputs to a
//! resident server, so a 16-byte crafted file aborting the process is a
//! denial of service, not a parse error.
//!
//! The committed corpus under `tests/hostile/` pins the concrete
//! exploits the original code missed: a record count crafted to wrap
//! `count * RECORD_BYTES` past the body-length check, a giant count
//! that pre-allocated gigabytes before validation, a version whose
//! *high* byte is set (the old test only corrupted the low byte), and a
//! v2 container with its chunk index truncated.

use std::io::Cursor;

use dd_workload::{decode, decode_any, encode, StreamingTraceReader, HEADER_BYTES, RECORD_BYTES};
use proptest::prelude::*;

use dd_dram::GlobalRowId;
use dd_workload::{OpKind, WorkloadOp};

proptest! {
    /// Fully arbitrary bytes: every decode entry point returns an error
    /// or a value — never a panic. (Panics fail the test; the allocation
    /// caps are exercised by the count-forging test below.)
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0usize..2048)) {
        let _ = decode(&bytes);
        let _ = decode_any(&bytes);
        if let Ok(mut reader) = StreamingTraceReader::open(Cursor::new(&bytes[..])) {
            let mut chunk = Vec::new();
            while let Ok(true) = reader.next_chunk(&mut chunk) {}
        }
    }

    /// Arbitrary bytes behind a *valid-looking* header (magic + a
    /// supported version): the deeper validation layers never panic
    /// either.
    #[test]
    fn arbitrary_bodies_never_panic(
        bytes in collection::vec(any::<u8>(), 16usize..2048),
        version in 1u16..3,
    ) {
        let mut bytes = bytes;
        bytes[0..4].copy_from_slice(b"DDWT");
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        let _ = decode_any(&bytes);
        if let Ok(mut reader) = StreamingTraceReader::open(Cursor::new(&bytes[..])) {
            let mut chunk = Vec::new();
            while let Ok(true) = reader.next_chunk(&mut chunk) {}
        }
    }

    /// A forged v1 record count over a small body is always rejected —
    /// for *any* count, including ones whose `count * RECORD_BYTES`
    /// wraps. Nothing proportional to the count may be allocated, which
    /// this asserts indirectly: a multi-exabyte reserve would abort long
    /// before the error returned.
    #[test]
    fn forged_counts_are_rejected(count in any::<u64>(), body_len in 0usize..64) {
        prop_assume!(count as usize != body_len / RECORD_BYTES || body_len % RECORD_BYTES != 0);
        let mut bytes = Vec::with_capacity(HEADER_BYTES + body_len);
        bytes.extend_from_slice(b"DDWT");
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&count.to_le_bytes());
        bytes.resize(HEADER_BYTES + body_len, 0);
        prop_assert!(decode(&bytes).is_err());
    }
}

/// The committed hostile corpus: every file must be rejected by every
/// decode entry point, without panicking.
#[test]
fn committed_hostile_corpus_is_rejected() {
    let corpus: [(&str, &[u8]); 4] = [
        (
            "wrapped_count_v1.trace",
            include_bytes!("hostile/wrapped_count_v1.trace"),
        ),
        (
            "giant_count_v1.trace",
            include_bytes!("hostile/giant_count_v1.trace"),
        ),
        (
            "high_byte_version.trace",
            include_bytes!("hostile/high_byte_version.trace"),
        ),
        (
            "truncated_index_v2.trace",
            include_bytes!("hostile/truncated_index_v2.trace"),
        ),
    ];
    for (name, bytes) in corpus {
        assert!(decode_any(bytes).is_err(), "{name}: decode_any accepted");
        assert!(
            StreamingTraceReader::open(Cursor::new(bytes)).is_err(),
            "{name}: streaming reader accepted"
        );
    }
    // The wrapped count is the exact release-mode exploit: 9 × count
    // wraps a u64 to 2, matching the 2-byte body under the old
    // `body.len() != count * RECORD_BYTES` check.
    let wrapped: &[u8] = include_bytes!("hostile/wrapped_count_v1.trace");
    let count = u64::from_le_bytes(wrapped[8..16].try_into().unwrap());
    assert_eq!(count.wrapping_mul(RECORD_BYTES as u64), 2);
    assert_eq!(wrapped.len(), HEADER_BYTES + 2);
}

/// Writes the hostile corpus. Ignored: run explicitly if the corpus is
/// deliberately extended.
#[test]
#[ignore = "regenerates the committed hostile corpus"]
fn regenerate_hostile_corpus() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/hostile");
    std::fs::create_dir_all(dir).unwrap();
    let header = |version: u16, count: u64| {
        let mut h = Vec::with_capacity(HEADER_BYTES);
        h.extend_from_slice(b"DDWT");
        h.extend_from_slice(&version.to_le_bytes());
        h.extend_from_slice(&0u16.to_le_bytes());
        h.extend_from_slice(&count.to_le_bytes());
        h
    };

    // count * 9 == 2^64 + 2, wrapping to 2 — the release-mode exploit.
    let wrap_count = (u64::MAX / RECORD_BYTES as u64) + 1;
    let mut wrapped = header(1, wrap_count);
    wrapped.extend_from_slice(&[0, 0]);
    std::fs::write(format!("{dir}/wrapped_count_v1.trace"), wrapped).unwrap();

    // u64::MAX records, no body: the old code reserved first.
    std::fs::write(format!("{dir}/giant_count_v1.trace"), header(1, u64::MAX)).unwrap();

    // A perfectly valid v1 trace with the version's *high* byte set.
    let ops = vec![WorkloadOp {
        kind: OpKind::Read,
        row: GlobalRowId::new(1, 1, 7),
    }];
    let mut high = encode(&ops);
    high[5] = 1; // version 0x0101 = 257
    std::fs::write(format!("{dir}/high_byte_version.trace"), high).unwrap();

    // A valid v2 container with the chunk index torn off mid-entry.
    let many: Vec<WorkloadOp> = (0..600)
        .map(|i| WorkloadOp {
            kind: OpKind::Read,
            row: GlobalRowId::new(i % 4, 0, i % 100),
        })
        .collect();
    let full = dd_workload::encode_v2(&many, true);
    std::fs::write(
        format!("{dir}/truncated_index_v2.trace"),
        &full[..full.len() - 30],
    )
    .unwrap();
}
