//! Trace-format-v2 pinning tests: the `decode ∘ encode = id` property
//! over arbitrary op streams for both chunk encodings, and the committed
//! golden `corpus_v2.trace` — a fleet-day corpus sample — freezing the
//! chunked on-disk layout exactly like `benign_v1.trace` freezes v1.

use std::io::Cursor;

use dd_dram::{DramConfig, GlobalRowId};
use dd_workload::{
    decode_any, encode_v2, DiurnalProfile, OpKind, StreamingReplay, StreamingTraceReader,
    TraceReplay, WorkloadGenerator, WorkloadOp, TRACE_CHUNK_OPS,
};
use proptest::prelude::*;

proptest! {
    /// `decode(encode_v2(ops, delta)) == ops` for arbitrary streams and
    /// both chunk encodings, across chunk boundaries.
    #[test]
    fn v2_encode_decode_is_identity(
        raw in collection::vec((any::<bool>(), 0usize..16, 0usize..8, 0usize..4096), 0usize..1200),
        delta in any::<bool>(),
    ) {
        let ops: Vec<WorkloadOp> = raw
            .iter()
            .map(|&(write, bank, subarray, row)| WorkloadOp {
                kind: if write { OpKind::Write } else { OpKind::Read },
                row: GlobalRowId::new(bank, subarray, row),
            })
            .collect();
        let bytes = encode_v2(&ops, delta);
        prop_assert_eq!(decode_any(&bytes).expect("round trip"), ops.clone());
        // The streaming reader agrees with the materializing decode,
        // chunk sizes never exceed the batch boundary, and the index
        // matches what actually streams out.
        let mut reader = StreamingTraceReader::open(Cursor::new(&bytes[..])).expect("open");
        prop_assert_eq!(reader.total_records(), ops.len() as u64);
        let mut streamed = Vec::new();
        let mut chunk = Vec::new();
        while reader.next_chunk(&mut chunk).expect("chunk") {
            prop_assert!(!chunk.is_empty() && chunk.len() <= TRACE_CHUNK_OPS);
            streamed.extend_from_slice(&chunk);
        }
        prop_assert_eq!(streamed, ops);
    }
}

/// The fleet-day sample frozen in `tests/golden/corpus_v2.trace`.
/// Regenerate with `cargo test -p dd-workload --test trace_v2_format --
/// --ignored` if (and only if) the v2 layout or the corpus recipe
/// deliberately changes.
fn golden_corpus_ops() -> Vec<WorkloadOp> {
    DiurnalProfile::fleet_day(0x0DAC_2024).sample_ops(&DramConfig::lpddr4_small(), 300)
}

#[test]
fn golden_corpus_trace_decodes_and_streams() {
    let bytes = include_bytes!("golden/corpus_v2.trace");
    let ops = decode_any(bytes).expect("golden v2 trace must decode");
    assert_eq!(
        ops,
        golden_corpus_ops(),
        "the committed golden corpus trace no longer decodes to the pinned \
         fleet-day sample — the v2 layout or corpus recipe changed; bump the \
         version (or deliberately regenerate) before shipping"
    );
    // Re-encoding reproduces the committed bytes exactly.
    assert_eq!(encode_v2(&ops, true), bytes.to_vec());
    // Streaming replay and materialized replay agree op-for-op, cycling
    // included.
    let mut materialized = TraceReplay::from_bytes(bytes).expect("replay");
    let mut streaming =
        StreamingReplay::open(Cursor::new(bytes.to_vec())).expect("streaming replay");
    for i in 0..(ops.len() + 99) {
        assert_eq!(streaming.next_op(), materialized.next_op(), "op {i}");
    }
}

/// Writes the golden file. Ignored: run explicitly after a deliberate
/// format or corpus-recipe change.
#[test]
#[ignore = "regenerates the committed golden v2 corpus trace"]
fn regenerate_golden_corpus_trace() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/corpus_v2.trace");
    std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
    std::fs::write(path, encode_v2(&golden_corpus_ops(), true)).unwrap();
}
