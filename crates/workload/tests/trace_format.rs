//! Trace-format pinning tests: the `encode ∘ decode = id` property over
//! arbitrary op streams, and a committed golden trace that freezes the
//! on-disk byte layout (any change to it requires a version bump).

use dd_dram::GlobalRowId;
use dd_workload::{
    decode, encode, OpKind, TraceReplay, WorkloadGenerator, WorkloadOp, HEADER_BYTES, RECORD_BYTES,
};
use proptest::prelude::*;

proptest! {
    /// `decode(encode(ops)) == ops` for arbitrary streams, and the
    /// encoded size is exactly header + 9 bytes per record.
    #[test]
    fn encode_decode_is_identity(
        raw in collection::vec((any::<bool>(), 0usize..16, 0usize..8, 0usize..128), 0usize..200),
    ) {
        let ops: Vec<WorkloadOp> = raw
            .iter()
            .map(|&(write, bank, subarray, row)| WorkloadOp {
                kind: if write { OpKind::Write } else { OpKind::Read },
                row: GlobalRowId::new(bank, subarray, row),
            })
            .collect();
        let bytes = encode(&ops);
        prop_assert_eq!(bytes.len(), HEADER_BYTES + ops.len() * RECORD_BYTES);
        prop_assert_eq!(decode(&bytes).expect("round trip"), ops);
    }

    /// Corrupting the version field always fails decoding — traces from
    /// a future format are never misread.
    #[test]
    fn version_field_is_enforced(version in 2u64..1000) {
        let ops = [WorkloadOp { kind: OpKind::Read, row: GlobalRowId::new(0, 0, 0) }];
        let mut bytes = encode(&ops);
        bytes[4..6].copy_from_slice(&(version as u16).to_le_bytes());
        prop_assume!(version as u16 != 1);
        prop_assert!(decode(&bytes).is_err());
    }
}

/// The ops frozen in `tests/golden/benign_v1.trace`. Regenerate the file
/// with `cargo test -p dd-workload --test trace_format -- --ignored` if
/// (and only if) the format version is bumped.
fn golden_ops() -> Vec<WorkloadOp> {
    vec![
        WorkloadOp {
            kind: OpKind::Read,
            row: GlobalRowId::new(0, 0, 0),
        },
        WorkloadOp {
            kind: OpKind::Read,
            row: GlobalRowId::new(3, 1, 42),
        },
        WorkloadOp {
            kind: OpKind::Write,
            row: GlobalRowId::new(15, 7, 125),
        },
        WorkloadOp {
            kind: OpKind::Read,
            row: GlobalRowId::new(1, 2, 77),
        },
        WorkloadOp {
            kind: OpKind::Write,
            row: GlobalRowId::new(9, 0, 3),
        },
    ]
}

#[test]
fn golden_trace_decodes_to_known_ops() {
    let bytes = include_bytes!("golden/benign_v1.trace");
    let ops = decode(bytes).expect("golden trace must decode");
    assert_eq!(
        ops,
        golden_ops(),
        "the committed golden trace no longer decodes to the pinned ops — \
         the on-disk format changed; bump TRACE_VERSION and regenerate"
    );
    // Re-encoding reproduces the committed bytes exactly.
    assert_eq!(encode(&ops), bytes.to_vec());
    // And the stream replays through the generator interface.
    let mut replay = TraceReplay::from_bytes(bytes).expect("replay");
    assert_eq!(replay.next_op(), golden_ops()[0]);
}

/// Writes the golden file. Ignored: run explicitly after a deliberate
/// format version bump.
#[test]
#[ignore = "regenerates the committed golden trace"]
fn regenerate_golden_trace() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/benign_v1.trace");
    std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
    std::fs::write(path, encode(&golden_ops())).unwrap();
}
