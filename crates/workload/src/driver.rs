//! The event-driven workload driver.
//!
//! [`BenignTraffic`] merges one or more generator streams on the
//! simulated clock (a min-heap of per-stream next-fire times, rates
//! proportional to stream weights) and executes each op through the
//! [`MemoryController`], giving the installed
//! [`DefenseMechanism`] its command-stream tap
//! ([`DefenseMechanism::observe_activation`]) after every op.
//! [`run_workload`] layers the attack on top: a benign-only measurement
//! phase (any defensive operation fired there is a *false positive* —
//! nothing was under attack) followed by attacked windows in which one
//! [`DefenseMechanism::filter_flip`] campaign races the defense mid-window
//! while benign traffic keeps flowing around it.
//!
//! Intensity scaling: generators emit a *thinned sample* of the nominal
//! stream — each sampled op stands for `batch` real accesses of its row
//! (one data-moving command plus `batch − 1` extra activations), so
//! disturbance accumulation and counter pressure match the nominal rate
//! without simulating every command. See `docs/workloads.md`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use dd_dram::{
    BatchOpKind, CellSweep, DecodedBatch, DramConfig, DramError, GlobalRowId, MemoryController,
    Nanos, TraceMode, BATCH_CHUNK_OPS,
};
use dd_qnn::BitAddr;
use dnn_defender::defense::{CampaignView, DefenseMechanism, DefenseStats};
use dnn_defender::WeightMap;

use crate::generator::{BackgroundLoad, OpKind, WorkloadGenerator, WorkloadOp};

/// Ops per [`dd_dram::DecodedBatch`] chunk on the batched path (when the
/// installed defense has no online tap that must run per-op). This is
/// the shared [`dd_dram::BATCH_CHUNK_OPS`] boundary, which the v2 trace
/// container also frames its chunks to — one streamed chunk, one batch.
const BATCH_CHUNK: usize = BATCH_CHUNK_OPS;

/// Which command-issue path [`BenignTraffic::drive_span`] uses.
///
/// The two paths are bit-identical by contract — same device end state,
/// same [`DefenseStats`], same
/// [`DefenseMechanism::observe_activation`] call sequence — which the
/// differential oracle in `tests/kernel_differential.rs` enforces across
/// every defense, device, and load. See `docs/perf.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IssuePath {
    /// Pick automatically: the batched kernel whenever the controller is
    /// not retaining a full command trace ([`TraceMode::Full`] keeps the
    /// per-command path so the command ring stays exact). This is what
    /// the scenario matrix and the workload experiment run under.
    #[default]
    Auto,
    /// Always the per-command reference path (the oracle).
    Reference,
    /// Always the batched driver loop (under [`TraceMode::Full`] the
    /// chunk itself replays per-command inside
    /// [`MemoryController::issue_batch`]).
    Batched,
}

/// The event-driven merge schedule over the traffic's streams: a min-heap
/// of per-stream next-fire times with rates proportional to stream
/// weights. Shared verbatim by the reference and batched paths so their
/// op sequences cannot drift.
struct StreamSchedule {
    heap: BinaryHeap<Reverse<(u128, usize)>>,
    span: u128,
    ops: u64,
    total_weight: u64,
}

impl StreamSchedule {
    fn new(
        streams: &[(Box<dyn WorkloadGenerator>, u32)],
        start: Nanos,
        span: Nanos,
        ops: u64,
    ) -> Self {
        let total_weight: u64 = streams.iter().map(|(_, w)| u64::from(*w)).sum();
        // Per-stream periods from weight shares; the heap merges the
        // streams into one time-ordered command sequence.
        let mut heap: BinaryHeap<Reverse<(u128, usize)>> = BinaryHeap::new();
        for (i, (_, weight)) in streams.iter().enumerate() {
            let stream_ops = (ops * u64::from(*weight)) / total_weight;
            if stream_ops == 0 {
                continue;
            }
            let period = (span.0 / u128::from(stream_ops)).max(1);
            heap.push(Reverse((start.0 + period / 2 + i as u128, i)));
        }
        if heap.is_empty() {
            heap.push(Reverse((start.0 + 1, 0)));
        }
        StreamSchedule {
            heap,
            span: span.0,
            ops,
            total_weight,
        }
    }

    fn pop(&mut self) -> (u128, usize) {
        let Reverse(next) = self.heap.pop().expect("non-empty event heap");
        next
    }

    fn reschedule(&mut self, at: u128, idx: usize, weight: u64) {
        let stream_ops = ((self.ops * weight) / self.total_weight).max(1);
        let period = (self.span / u128::from(stream_ops)).max(1);
        self.heap.push(Reverse((at + period, idx)));
    }
}

/// Traffic issued by one [`BenignTraffic::drive_span`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanTraffic {
    /// Benign ops executed (each one data-moving command).
    pub ops: u64,
    /// Modeled row activations including the batch factor.
    pub activations: u64,
    /// Payload bytes moved by reads and writes.
    pub bytes: u64,
}

impl SpanTraffic {
    fn absorb(&mut self, other: SpanTraffic) {
        self.ops += other.ops;
        self.activations += other.activations;
        self.bytes += other.bytes;
    }
}

/// A merged set of benign workload streams bound to a device geometry.
pub struct BenignTraffic {
    streams: Vec<(Box<dyn WorkloadGenerator>, u32)>,
    label: String,
    ops_per_window: u64,
    batch: u64,
    universe: Vec<GlobalRowId>,
    scratch_row: Vec<u8>,
    recorded: Option<Vec<WorkloadOp>>,
    issue_path: IssuePath,
    /// The batched kernel's decoded-op/dense-counter scratch, built
    /// lazily for the first device driven and reused across chunks.
    kernel: Option<DecodedBatch>,
}

impl BenignTraffic {
    /// Assemble traffic from explicit `(stream, weight)` pairs.
    ///
    /// `universe` is the set of rows the traffic may touch — the
    /// disturbance-measurement scan runs over it. `batch` is the
    /// activations-per-op intensity factor (min 1).
    pub fn new(
        streams: Vec<(Box<dyn WorkloadGenerator>, u32)>,
        label: impl Into<String>,
        ops_per_window: u64,
        batch: u64,
        universe: Vec<GlobalRowId>,
        config: &DramConfig,
    ) -> Self {
        BenignTraffic {
            streams,
            label: label.into(),
            ops_per_window,
            batch: batch.max(1),
            universe,
            scratch_row: vec![0u8; config.row_bytes],
            recorded: None,
            issue_path: IssuePath::Auto,
            kernel: None,
        }
    }

    /// Force a command-issue path (differential tests and the `kernel`
    /// benchmark pin [`IssuePath::Reference`] / [`IssuePath::Batched`];
    /// everything else should leave the default [`IssuePath::Auto`]).
    pub fn set_issue_path(&mut self, path: IssuePath) {
        self.issue_path = path;
    }

    /// The command-issue path in force.
    pub fn issue_path(&self) -> IssuePath {
        self.issue_path
    }

    /// Assemble the canonical traffic for a [`BackgroundLoad`] level.
    /// Returns `None` for [`BackgroundLoad::None`]. `hot` is the serving
    /// working set (weight rows); `cold` rows absorb scans and writes.
    pub fn for_load(
        load: BackgroundLoad,
        seed: u64,
        config: &DramConfig,
        hot: &[GlobalRowId],
        cold: &[GlobalRowId],
    ) -> Option<Self> {
        let streams = load.build_streams(seed, config, hot, cold);
        if streams.is_empty() {
            return None;
        }
        let mut universe: Vec<GlobalRowId> = Vec::with_capacity(hot.len() + cold.len());
        let mut seen = HashSet::new();
        for &row in hot.iter().chain(cold) {
            if seen.insert(row) {
                universe.push(row);
            }
        }
        Some(BenignTraffic::new(
            streams,
            load.label(),
            load.ops_per_window(),
            load.batch(),
            universe,
            config,
        ))
    }

    /// Replay a recorded op stream at the given rate and intensity.
    pub fn from_trace(
        ops: Vec<WorkloadOp>,
        ops_per_window: u64,
        batch: u64,
        config: &DramConfig,
    ) -> Self {
        let mut universe = Vec::new();
        let mut seen = HashSet::new();
        for op in &ops {
            if seen.insert(op.row) {
                universe.push(op.row);
            }
        }
        BenignTraffic::new(
            vec![(
                Box::new(crate::trace::TraceReplay::new(ops)) as Box<dyn WorkloadGenerator>,
                1,
            )],
            "trace-replay",
            ops_per_window,
            batch,
            universe,
            config,
        )
    }

    /// Replay a v2 trace container *without materializing it*: the
    /// [`crate::trace::StreamingReplay`] holds at most one chunk
    /// ([`dd_dram::BATCH_CHUNK_OPS`] ops) in memory and cycles like
    /// [`crate::trace::TraceReplay`]. The benign-row universe is the
    /// trace's first-touch row set, collected during the replay's
    /// validating open pass — identical to what [`Self::from_trace`]
    /// derives from the materialized ops, so the two constructions
    /// produce bit-identical runs over the same trace.
    pub fn from_streaming<Rd>(
        replay: crate::trace::StreamingReplay<Rd>,
        ops_per_window: u64,
        batch: u64,
        config: &DramConfig,
    ) -> Self
    where
        Rd: std::io::Read + std::io::Seek + Send + 'static,
    {
        let universe = replay.rows().to_vec();
        BenignTraffic::new(
            vec![(Box::new(replay) as Box<dyn WorkloadGenerator>, 1)],
            "trace-replay",
            ops_per_window,
            batch,
            universe,
            config,
        )
    }

    /// Start (or stop) capturing every executed op for later
    /// [`crate::trace::encode`].
    pub fn set_recording(&mut self, on: bool) {
        self.recorded = if on { Some(Vec::new()) } else { None };
    }

    /// Take the ops captured since recording started and *stop*
    /// recording (call [`BenignTraffic::set_recording`] again for
    /// another capture). Returns an empty vector when recording was
    /// never on.
    pub fn take_recorded(&mut self) -> Vec<WorkloadOp> {
        self.recorded.take().unwrap_or_default()
    }

    /// The mix label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Benign ops per refresh window at this intensity.
    pub fn ops_per_window(&self) -> u64 {
        self.ops_per_window
    }

    /// Activations each sampled op stands for.
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// The rows this traffic may touch (the disturbance-scan universe).
    pub fn universe(&self) -> &[GlobalRowId] {
        &self.universe
    }

    /// Execute `ops` benign operations merged across the streams,
    /// event-driven over `[mem.now(), span_end)`, observing `defense`
    /// after every op. Idle gaps advance the simulated clock; on return
    /// the clock sits at `span_end`.
    ///
    /// Under the default [`IssuePath::Auto`] the ops are issued through
    /// the batched kernel ([`MemoryController::issue_batch`]) whenever
    /// the controller is not keeping a full command trace; the
    /// per-command reference path remains available (and bit-identical)
    /// via [`IssuePath::Reference`].
    ///
    /// # Errors
    ///
    /// Propagates [`DramError`] from device or defense operations.
    pub fn drive_span(
        &mut self,
        mem: &mut MemoryController,
        defense: &mut dyn DefenseMechanism,
        mut map: Option<&mut WeightMap>,
        span_end: Nanos,
        ops: u64,
    ) -> Result<SpanTraffic, DramError> {
        let mut traffic = SpanTraffic::default();
        let start = mem.now();
        if self.streams.is_empty() || ops == 0 || span_end <= start {
            if span_end > mem.now() {
                mem.advance(span_end - mem.now());
            }
            return Ok(traffic);
        }
        let mut sched = StreamSchedule::new(&self.streams, start, span_end - start, ops);
        let batched = match self.issue_path {
            IssuePath::Reference => false,
            IssuePath::Batched => true,
            IssuePath::Auto => mem.trace_mode() != TraceMode::Full,
        };
        if batched {
            self.drive_span_batched(mem, defense, map, span_end, &mut sched, &mut traffic)?;
        } else {
            for _ in 0..ops {
                let (at, idx) = sched.pop();
                if at > mem.now().0 && at < span_end.0 {
                    mem.advance(Nanos(at) - mem.now());
                }
                let op = self.streams[idx].0.next_op();
                self.execute(mem, defense, map.as_deref_mut(), op, &mut traffic)?;
                sched.reschedule(at, idx, u64::from(self.streams[idx].1));
            }
        }
        if span_end > mem.now() {
            mem.advance(span_end - mem.now());
        }
        Ok(traffic)
    }

    /// The batched issue loop: ops are decoded into the kernel chunk as
    /// the schedule emits them, with the simulated clock tracked locally
    /// (every op's cost is deterministic), and each chunk executes in one
    /// [`MemoryController::issue_batch`] call before the deferred
    /// [`DefenseMechanism::observe_activation`] calls run in op order.
    /// Defenses with an online tap flush every op (the tap must see the
    /// device exactly as the per-command path would show it); defenses
    /// without one batch [`BATCH_CHUNK`] ops per flush.
    fn drive_span_batched(
        &mut self,
        mem: &mut MemoryController,
        defense: &mut dyn DefenseMechanism,
        mut map: Option<&mut WeightMap>,
        span_end: Nanos,
        sched: &mut StreamSchedule,
        traffic: &mut SpanTraffic,
    ) -> Result<(), DramError> {
        let tapped = defense.has_online_tap();
        let chunk_cap = if tapped { 1 } else { BATCH_CHUNK };
        if self
            .kernel
            .as_ref()
            .is_none_or(|k| !k.matches(mem.config()))
        {
            self.kernel = Some(DecodedBatch::new(mem.config()));
        }
        let mut kernel = self.kernel.take().expect("kernel installed above");
        let t = mem.config().timing;
        let extra = self.batch - 1;
        let hammer_cost = t.t_act.0 * u128::from(extra);
        let read_cost = t.t_act.0 + t.t_rd.0 + t.t_pre.0 + hammer_cost;
        let write_cost = t.t_act.0 + t.t_wr.0 + t.t_pre.0 + hammer_cost;
        let mut pending: Vec<WorkloadOp> = Vec::with_capacity(chunk_cap);
        let mut vnow = mem.now().0;
        let mut failed: Option<DramError> = None;

        // Per-chunk decode spans, re-armed after every flush. Tapped
        // defenses flush every op, so a decode span there would be a
        // per-op span — exactly what the overhead contract forbids; they
        // run unobserved and are attributed at the matrix layer instead.
        dd_obs::add("driver.ops", sched.ops);
        let mut decode_span = (!tapped && dd_obs::enabled()).then(|| dd_obs::span("chunk.decode"));

        for _ in 0..sched.ops {
            let (at, idx) = sched.pop();
            let advance_to = if at > vnow && at < span_end.0 {
                vnow = at;
                Some(Nanos(at))
            } else {
                None
            };
            let op = self.streams[idx].0.next_op();
            let kind = match op.kind {
                OpKind::Read => BatchOpKind::Read,
                OpKind::Write => BatchOpKind::Write(crate::generator::tenant_fill(op.row.row)),
            };
            if let Err(e) = kernel.push(op.row, kind, extra, advance_to) {
                // Same surface as the per-command loop: everything before
                // the invalid op executes (flushed below), the error then
                // propagates.
                failed = Some(e);
                break;
            }
            vnow += match op.kind {
                OpKind::Read => read_cost,
                OpKind::Write => write_cost,
            };
            pending.push(op);
            sched.reschedule(at, idx, u64::from(self.streams[idx].1));
            if pending.len() >= chunk_cap {
                drop(decode_span.take());
                if let Err(e) =
                    self.flush_chunk(mem, defense, &mut map, &mut kernel, &mut pending, traffic)
                {
                    failed = Some(e);
                    break;
                }
                debug_assert!(
                    tapped || mem.now().0 == vnow,
                    "batched clock prediction diverged"
                );
                vnow = mem.now().0;
                decode_span = (!tapped && dd_obs::enabled()).then(|| dd_obs::span("chunk.decode"));
            }
        }
        drop(decode_span.take());
        let last = self.flush_chunk(mem, defense, &mut map, &mut kernel, &mut pending, traffic);
        self.kernel = Some(kernel);
        match failed {
            Some(e) => Err(e),
            None => last,
        }
    }

    /// Issue the queued chunk, then run the deferred per-op accounting
    /// and defense observations in op order.
    fn flush_chunk(
        &mut self,
        mem: &mut MemoryController,
        defense: &mut dyn DefenseMechanism,
        map: &mut Option<&mut WeightMap>,
        kernel: &mut DecodedBatch,
        pending: &mut Vec<WorkloadOp>,
        traffic: &mut SpanTraffic,
    ) -> Result<(), DramError> {
        if pending.is_empty() {
            kernel.clear();
            return Ok(());
        }
        mem.issue_batch(kernel)?;
        // Deferred defense observations: spanned only for real chunks
        // (len > 1). Tapped defenses flush one op at a time and must not
        // pay a per-op span.
        let _span = (pending.len() > 1).then(|| dd_obs::span("chunk.observe"));
        let bytes = self.scratch_row.len() as u64;
        for op in pending.drain(..) {
            traffic.ops += 1;
            traffic.activations += self.batch;
            traffic.bytes += bytes;
            defense.observe_activation(mem, map.as_deref_mut(), op.row, self.batch)?;
            if let Some(recorded) = &mut self.recorded {
                recorded.push(op);
            }
        }
        Ok(())
    }

    /// [`BenignTraffic::drive_span`] over the remainder of the current
    /// refresh window, at the mix's full per-window op budget.
    ///
    /// # Errors
    ///
    /// Propagates [`DramError`] from device or defense operations.
    pub fn drive_window(
        &mut self,
        mem: &mut MemoryController,
        defense: &mut dyn DefenseMechanism,
        map: Option<&mut WeightMap>,
    ) -> Result<SpanTraffic, DramError> {
        let end = next_window_boundary(mem);
        let ops = self.ops_per_window;
        self.drive_span(mem, defense, map, end, ops)
    }

    /// One *benign-only* measurement window: window-rollover
    /// notification, then the full per-window op budget, stopping 1 ns
    /// short of the epoch boundary so the caller can sample disturbance
    /// inside the window it accumulated in (the rollover zeroes it).
    /// The caller samples, then `mem.advance(Nanos(1))` to cross over.
    ///
    /// # Errors
    ///
    /// Propagates [`DramError`] from device or defense operations.
    pub fn drive_benign_window(
        &mut self,
        mem: &mut MemoryController,
        defense: &mut dyn DefenseMechanism,
        map: Option<&mut WeightMap>,
    ) -> Result<SpanTraffic, DramError> {
        defense.on_hammer_window(mem.epoch());
        let sample_at = Nanos(next_window_boundary(mem).0 - 1);
        let ops = self.ops_per_window;
        self.drive_span(mem, defense, map, sample_at, ops)
    }

    /// One *attacked* window of the shared measurement protocol: half
    /// the benign budget, then the caller's `campaign` (a
    /// [`DefenseMechanism::filter_flip`] replay) racing mid-window, then
    /// the remaining budget up to 1 ns before the epoch boundary.
    /// Returns the window's benign traffic, the defensive operations
    /// fired from the online tap during the benign segments (the
    /// campaign's own operations are excluded), and the campaign's
    /// outcome. As with [`BenignTraffic::drive_benign_window`], the
    /// caller samples disturbance and then advances the final 1 ns.
    ///
    /// # Errors
    ///
    /// Propagates [`DramError`] from device, defense, or campaign
    /// operations.
    pub fn drive_attacked_window<T>(
        &mut self,
        mem: &mut MemoryController,
        defense: &mut dyn DefenseMechanism,
        mut map: Option<&mut WeightMap>,
        campaign: impl FnOnce(
            &mut MemoryController,
            &mut dyn DefenseMechanism,
            Option<&mut WeightMap>,
        ) -> Result<T, DramError>,
    ) -> Result<(SpanTraffic, u64, T), DramError> {
        defense.on_hammer_window(mem.epoch());
        let window_end = next_window_boundary(mem);
        let half = Nanos(mem.now().0 + (window_end.0 - mem.now().0) / 2);
        let ops = self.ops_per_window;
        let mut traffic = SpanTraffic::default();
        let mut online_ops = 0u64;

        let before = defense.stats().defense_ops;
        traffic.absorb(self.drive_span(mem, defense, map.as_deref_mut(), half, ops / 2)?);
        online_ops += defense.stats().defense_ops - before;

        let outcome = campaign(mem, defense, map.as_deref_mut())?;

        let before = defense.stats().defense_ops;
        traffic.absorb(self.drive_span(
            mem,
            defense,
            map,
            Nanos(window_end.0 - 1),
            ops - ops / 2,
        )?);
        online_ops += defense.stats().defense_ops - before;
        Ok((traffic, online_ops, outcome))
    }

    fn execute(
        &mut self,
        mem: &mut MemoryController,
        defense: &mut dyn DefenseMechanism,
        map: Option<&mut WeightMap>,
        op: WorkloadOp,
        traffic: &mut SpanTraffic,
    ) -> Result<(), DramError> {
        let row = op.row;
        match op.kind {
            OpKind::Read => {
                mem.read_row(row.bank, row.subarray, row.row)?;
            }
            OpKind::Write => {
                // Deterministic tenant payload; writes are confined to
                // non-weight rows by the generator recipes.
                self.scratch_row
                    .fill(crate::generator::tenant_fill(row.row));
                mem.write_row(row.bank, row.subarray, row.row, &self.scratch_row)?;
            }
        }
        if self.batch > 1 {
            // The remaining activations this sampled op stands for.
            mem.hammer(row, self.batch - 1)?;
        }
        traffic.ops += 1;
        traffic.activations += self.batch;
        traffic.bytes += self.scratch_row.len() as u64;
        defense.observe_activation(mem, map, row, self.batch)?;
        if let Some(recorded) = &mut self.recorded {
            recorded.push(op);
        }
        Ok(())
    }
}

/// The next refresh-window (epoch) boundary after `mem.now()`.
pub fn next_window_boundary(mem: &MemoryController) -> Nanos {
    let t_ref = mem.config().timing.t_ref;
    Nanos(((mem.now().0 / t_ref.0) + 1) * t_ref.0)
}

/// One cell of a grouped benign-window drive
/// ([`drive_benign_window_sweep`]): its device, its defense, its deployed
/// weight map, and its own traffic instance. Across a group the traffic
/// instances must be byte-identical clones (same streams, seed, rates) —
/// the scenario matrix guarantees this by seeding benign traffic from the
/// non-defense axes only.
pub struct SweepCell<'a> {
    /// The cell's device (same geometry, timing, and clock as the rest
    /// of the group).
    pub mem: &'a mut MemoryController,
    /// The cell's defense. Must have no online tap
    /// ([`DefenseMechanism::has_online_tap`]): the grouped drive defers
    /// counter state to the window boundary, which only a tap could
    /// observe mid-window.
    pub defense: &'a mut dyn DefenseMechanism,
    /// The cell's deployed weight map, if any.
    pub map: Option<&'a mut WeightMap>,
    /// The cell's traffic. Its generators and recording advance exactly
    /// as the cell's solo run would.
    pub traffic: &'a mut BenignTraffic,
}

/// One *benign-only* measurement window driven across a whole sweep
/// group at once: the shared op schedule is decoded once and replayed
/// against every cell's counter state through the cross-cell kernel
/// ([`CellSweep`]), bit-identical to each cell running
/// [`BenignTraffic::drive_benign_window`] on its own.
///
/// Per cell, the window protocol is exactly the solo one: the rollover
/// notification ([`DefenseMechanism::on_hammer_window`]), the full
/// per-window op budget, deferred
/// [`DefenseMechanism::observe_activation`] calls in op order, and the
/// clock parked 1 ns short of the epoch boundary so the caller samples
/// disturbance inside the window (then advances each cell across). The
/// sweep session is finished before returning, so every cell's counter
/// and payload state is settled at the sampling point.
///
/// Each cell's schedule and generators are walked in lockstep (identical
/// traffic clones on identical clocks pop identically), so after the
/// window every cell's traffic state matches its solo trajectory — the
/// attack phase can continue per-cell from it.
///
/// Returns the window's traffic, identical for every cell.
///
/// # Errors
///
/// Returns [`DramError::InvalidConfig`] when the group is empty or
/// mis-assembled (kernel sized differently, mixed geometry/timing,
/// diverged clocks, mismatched traffic shapes, or a defense with an
/// online tap); propagates device and defense errors.
pub fn drive_benign_window_sweep(
    sweep: &mut CellSweep,
    cells: &mut [SweepCell<'_>],
) -> Result<SpanTraffic, DramError> {
    validate_sweep_group(sweep, cells)?;
    for cell in cells.iter_mut() {
        cell.defense.on_hammer_window(cell.mem.epoch());
    }
    let sample_at = Nanos(next_window_boundary(cells[0].mem).0 - 1);
    let ops = cells[0].traffic.ops_per_window();
    drive_span_sweep(sweep, cells, sample_at, ops)
}

fn validate_sweep_group(sweep: &CellSweep, cells: &[SweepCell<'_>]) -> Result<(), DramError> {
    if cells.is_empty() || sweep.cells() != cells.len() {
        return Err(DramError::InvalidConfig(format!(
            "sweep kernel sized for {} cells, group has {}",
            sweep.cells(),
            cells.len()
        )));
    }
    let lead = &cells[0];
    for cell in cells {
        if cell.defense.has_online_tap() {
            return Err(DramError::InvalidConfig(format!(
                "defense '{}' keeps an online tap and cannot join a sweep group",
                cell.defense.name()
            )));
        }
        if cell.mem.config().timing != lead.mem.config().timing || !sweep.matches(cell.mem.config())
        {
            return Err(DramError::InvalidConfig(
                "sweep group mixes device geometries or timing parameters".into(),
            ));
        }
        if cell.mem.now() != lead.mem.now() {
            return Err(DramError::InvalidConfig(
                "sweep group cells' clocks diverged".into(),
            ));
        }
        if cell.traffic.ops_per_window() != lead.traffic.ops_per_window()
            || cell.traffic.batch() != lead.traffic.batch()
            || cell.traffic.streams.len() != lead.traffic.streams.len()
            || cell.traffic.label() != lead.traffic.label()
        {
            return Err(DramError::InvalidConfig(
                "sweep group cells carry different traffic mixes".into(),
            ));
        }
    }
    Ok(())
}

/// The grouped counterpart of [`BenignTraffic::drive_span_batched`]: one
/// schedule walk feeds the shared kernel chunk, every other cell's
/// schedule and generators mirror it in lockstep, and each chunk executes
/// against all cells in one [`CellSweep::issue`] pass.
fn drive_span_sweep(
    sweep: &mut CellSweep,
    cells: &mut [SweepCell<'_>],
    span_end: Nanos,
    ops: u64,
) -> Result<SpanTraffic, DramError> {
    let mut traffic = SpanTraffic::default();
    let start = cells[0].mem.now();
    if cells[0].traffic.streams.is_empty() || ops == 0 || span_end <= start {
        for cell in cells.iter_mut() {
            if span_end > cell.mem.now() {
                let dt = span_end - cell.mem.now();
                cell.mem.advance(dt);
            }
        }
        return Ok(traffic);
    }
    let mut scheds: Vec<StreamSchedule> = cells
        .iter()
        .map(|c| StreamSchedule::new(&c.traffic.streams, start, span_end - start, ops))
        .collect();

    if cells[0]
        .traffic
        .kernel
        .as_ref()
        .is_none_or(|k| !k.matches(cells[0].mem.config()))
    {
        cells[0].traffic.kernel = Some(DecodedBatch::new(cells[0].mem.config()));
    }
    let mut kernel = cells[0]
        .traffic
        .kernel
        .take()
        .expect("kernel installed above");
    let t = cells[0].mem.config().timing;
    let batch = cells[0].traffic.batch;
    let extra = batch - 1;
    let hammer_cost = t.t_act.0 * u128::from(extra);
    let read_cost = t.t_act.0 + t.t_rd.0 + t.t_pre.0 + hammer_cost;
    let write_cost = t.t_act.0 + t.t_wr.0 + t.t_pre.0 + hammer_cost;
    let mut pending: Vec<WorkloadOp> = Vec::with_capacity(BATCH_CHUNK);
    let mut vnow = start.0;
    let mut failed: Option<DramError> = None;

    // One decode pass feeds every lockstep cell, so the span is already
    // amortized N ways; re-armed after each flush like the solo path.
    dd_obs::add("driver.sweep_ops", ops);
    let mut decode_span = dd_obs::enabled().then(|| dd_obs::span("chunk.decode"));

    for _ in 0..ops {
        let (at, idx) = scheds[0].pop();
        let advance_to = if at > vnow && at < span_end.0 {
            vnow = at;
            Some(Nanos(at))
        } else {
            None
        };
        let op = cells[0].traffic.streams[idx].0.next_op();
        let weight = u64::from(cells[0].traffic.streams[idx].1);
        scheds[0].reschedule(at, idx, weight);
        // Mirror the pop on every other cell so its traffic state tracks
        // its solo trajectory; identical clones cannot drift.
        for (k, cell) in cells.iter_mut().enumerate().skip(1) {
            let (at_k, idx_k) = scheds[k].pop();
            debug_assert_eq!((at, idx), (at_k, idx_k), "sweep schedules diverged");
            let op_k = cell.traffic.streams[idx_k].0.next_op();
            debug_assert_eq!(op, op_k, "sweep generators diverged");
            scheds[k].reschedule(at_k, idx_k, u64::from(cell.traffic.streams[idx_k].1));
        }
        if let Err(e) = kernel.push(op.row, batch_kind(op), extra, advance_to) {
            failed = Some(e);
            break;
        }
        vnow += match op.kind {
            OpKind::Read => read_cost,
            OpKind::Write => write_cost,
        };
        pending.push(op);
        if pending.len() >= BATCH_CHUNK {
            drop(decode_span.take());
            if let Err(e) = flush_sweep_chunk(sweep, cells, &mut kernel, &mut pending, &mut traffic)
            {
                failed = Some(e);
                break;
            }
            debug_assert!(
                cells[0].mem.now().0 == vnow,
                "sweep clock prediction diverged"
            );
            vnow = cells[0].mem.now().0;
            decode_span = dd_obs::enabled().then(|| dd_obs::span("chunk.decode"));
        }
    }
    drop(decode_span.take());
    let last = flush_sweep_chunk(sweep, cells, &mut kernel, &mut pending, &mut traffic);
    let finished = {
        let mut mems: Vec<&mut MemoryController> = cells.iter_mut().map(|c| &mut *c.mem).collect();
        sweep.finish(&mut mems)
    };
    cells[0].traffic.kernel = Some(kernel);
    if let Some(e) = failed {
        return Err(e);
    }
    last?;
    finished?;
    for cell in cells.iter_mut() {
        if span_end > cell.mem.now() {
            let dt = span_end - cell.mem.now();
            cell.mem.advance(dt);
        }
    }
    Ok(traffic)
}

fn batch_kind(op: WorkloadOp) -> BatchOpKind {
    match op.kind {
        OpKind::Read => BatchOpKind::Read,
        OpKind::Write => BatchOpKind::Write(crate::generator::tenant_fill(op.row.row)),
    }
}

/// Issue the queued chunk against every cell through the cross-cell
/// kernel, then run each cell's deferred per-op accounting and defense
/// observations in op order (the solo [`BenignTraffic::flush_chunk`]
/// contract, per cell).
fn flush_sweep_chunk(
    sweep: &mut CellSweep,
    cells: &mut [SweepCell<'_>],
    kernel: &mut DecodedBatch,
    pending: &mut Vec<WorkloadOp>,
    traffic: &mut SpanTraffic,
) -> Result<(), DramError> {
    if pending.is_empty() {
        kernel.clear();
        return Ok(());
    }
    {
        let mut mems: Vec<&mut MemoryController> = cells.iter_mut().map(|c| &mut *c.mem).collect();
        sweep.issue(&mut mems, kernel)?;
    }
    let cell_count = cells.len();
    let _span = dd_obs::span_with("chunk.observe", || format!("cells={cell_count}"));
    let batch = cells[0].traffic.batch;
    let bytes = cells[0].traffic.scratch_row.len() as u64;
    for cell in cells.iter_mut() {
        for op in pending.iter() {
            cell.defense
                .observe_activation(cell.mem, cell.map.as_deref_mut(), op.row, batch)?;
            if let Some(recorded) = &mut cell.traffic.recorded {
                recorded.push(*op);
            }
        }
    }
    for _ in pending.drain(..) {
        traffic.ops += 1;
        traffic.activations += batch;
        traffic.bytes += bytes;
    }
    Ok(())
}

/// Shape of one [`run_workload`] invocation.
#[derive(Debug, Clone, Copy)]
pub struct DriverConfig {
    /// Benign-only measurement windows (false-positive phase).
    pub benign_windows: u64,
    /// Windows carrying one attack campaign each, under load.
    pub attack_windows: u64,
    /// Capture the executed benign ops for trace export.
    pub record: bool,
}

/// What one [`run_workload`] run measured.
#[derive(Debug, Clone)]
pub struct DriverReport {
    /// The benign mix label.
    pub load: String,
    /// Benign ops executed across both phases.
    pub benign_ops: u64,
    /// Modeled benign activations (ops × batch).
    pub benign_activations: u64,
    /// Benign payload bytes moved.
    pub benign_bytes: u64,
    /// Total DRAM commands the device saw (benign + attack + defense).
    pub commands: u64,
    /// Simulated time elapsed.
    pub sim_nanos: u128,
    /// Simulated busy (non-idle) device time.
    pub busy_nanos: u128,
    /// Defensive operations fired during benign-only traffic — false
    /// positives by construction.
    pub false_defense_ops: u64,
    /// Defensive operations fired from the online tap while under attack
    /// (benign segments of attacked windows; genuine or false, the
    /// mechanism cannot tell).
    pub online_defense_ops: u64,
    /// Attack campaigns replayed.
    pub attempts: u64,
    /// Campaigns that corrupted memory.
    pub landed: u64,
    /// Distinct benign-universe rows whose disturbance ever reached half
    /// the RowHammer threshold (excluding rows under direct attack).
    pub disturbed_rows: u64,
    /// Peak disturbance observed on any non-attacked benign row.
    pub peak_benign_disturbance: u64,
    /// The defense's own bookkeeping at the end of the run.
    pub stats: DefenseStats,
    /// The captured benign op stream, when recording was requested.
    pub trace: Option<Vec<WorkloadOp>>,
}

fn total_commands(mem: &MemoryController) -> u64 {
    let s = mem.stats();
    s.acts + s.pres + s.reads + s.writes + s.refreshes + s.row_clones
}

/// Run benign-only measurement windows followed by attacked windows, all
/// through one device and one defense, and report throughput,
/// benign-row disturbance, and false/online defensive operations.
///
/// `attack_bits` are the model bits the attacker campaigns against, one
/// per attacked window (cycled); they require a deployed `map` to locate
/// victims. With no map or no bits, the attack phase only rolls windows.
///
/// # Errors
///
/// Propagates [`DramError`] from device or defense operations.
pub fn run_workload(
    mem: &mut MemoryController,
    defense: &mut dyn DefenseMechanism,
    mut map: Option<&mut WeightMap>,
    traffic: &mut BenignTraffic,
    attack_bits: &[BitAddr],
    cfg: &DriverConfig,
) -> Result<DriverReport, DramError> {
    let t_rh = mem.config().rowhammer_threshold;
    let started = mem.now();
    let busy_start = mem.stats().busy;
    let commands_start = total_commands(mem);
    if cfg.record {
        traffic.set_recording(true);
    }

    let mut benign = SpanTraffic::default();
    let mut disturbed: HashSet<GlobalRowId> = HashSet::new();
    let mut attacked: HashSet<GlobalRowId> = HashSet::new();
    let mut peak = 0u64;
    let sample = |mem: &MemoryController,
                  traffic: &BenignTraffic,
                  attacked: &HashSet<GlobalRowId>,
                  disturbed: &mut HashSet<GlobalRowId>,
                  peak: &mut u64| {
        for &row in traffic.universe() {
            if attacked.contains(&row) {
                continue;
            }
            let d = mem.disturbance(row);
            *peak = (*peak).max(d);
            if d >= t_rh / 2 {
                disturbed.insert(row);
            }
        }
    };

    // Phase 1: benign-only. Every defensive op fired here is a false
    // positive — there is no attack to defend against.
    let ops_before = defense.stats().defense_ops;
    for _ in 0..cfg.benign_windows {
        benign.absorb(traffic.drive_benign_window(mem, defense, map.as_deref_mut())?);
        sample(mem, traffic, &attacked, &mut disturbed, &mut peak);
        mem.advance(Nanos(1));
    }
    let false_defense_ops = defense.stats().defense_ops - ops_before;

    // Phase 2: attacked windows — one campaign racing mid-window while
    // benign traffic keeps flowing around it.
    let mut online_defense_ops = 0u64;
    let mut attempts = 0u64;
    let mut landed = 0u64;
    for w in 0..cfg.attack_windows {
        let attacked_ref = &mut attacked;
        let (window_traffic, online_ops, _) = traffic.drive_attacked_window(
            mem,
            defense,
            map.as_deref_mut(),
            |mem, defense, mut map| {
                let Some(m) = map.as_deref() else {
                    return Ok(());
                };
                if attack_bits.is_empty() {
                    return Ok(());
                }
                let addr = attack_bits[(w as usize) % attack_bits.len()];
                let loc = m.locate(addr);
                attacked_ref.insert(loc.row);
                let view = CampaignView {
                    mem,
                    map: map.as_deref_mut(),
                    victim: loc.row,
                    bit_in_row: loc.bit_in_row,
                    addr,
                };
                let outcome = defense.filter_flip(view)?;
                attempts += 1;
                if outcome.landed() {
                    landed += 1;
                }
                if let Some(m) = map.as_deref() {
                    // The campaign may have relocated the victim; the row
                    // now holding the bit is the attacked one going
                    // forward.
                    attacked_ref.insert(m.locate(addr).row);
                }
                Ok(())
            },
        )?;
        benign.absorb(window_traffic);
        online_defense_ops += online_ops;
        sample(mem, traffic, &attacked, &mut disturbed, &mut peak);
        mem.advance(Nanos(1));
    }

    Ok(DriverReport {
        load: traffic.label().to_string(),
        benign_ops: benign.ops,
        benign_activations: benign.activations,
        benign_bytes: benign.bytes,
        commands: total_commands(mem) - commands_start,
        sim_nanos: (mem.now() - started).0,
        busy_nanos: (mem.stats().busy - busy_start).0,
        false_defense_ops,
        online_defense_ops,
        attempts,
        landed,
        disturbed_rows: disturbed.len() as u64,
        peak_benign_disturbance: peak,
        stats: defense.stats(),
        trace: if cfg.record {
            Some(traffic.take_recorded())
        } else {
            None
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::all_data_rows;
    use dd_dram::TraceMode;
    use dnn_defender::Undefended;

    fn device() -> MemoryController {
        let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
        mem.set_trace_mode(TraceMode::CountersOnly);
        mem
    }

    fn light_traffic(config: &DramConfig) -> BenignTraffic {
        let cold = all_data_rows(config);
        let hot: Vec<GlobalRowId> = cold.iter().copied().take(64).collect();
        BenignTraffic::for_load(BackgroundLoad::Light, 11, config, &hot, &cold)
            .expect("light builds traffic")
    }

    #[test]
    fn benign_only_run_is_deterministic() {
        let run = || {
            let mut mem = device();
            let mut defense = Undefended::new();
            let mut traffic = light_traffic(&DramConfig::lpddr4_small());
            let cfg = DriverConfig {
                benign_windows: 3,
                attack_windows: 0,
                record: false,
            };
            run_workload(&mut mem, &mut defense, None, &mut traffic, &[], &cfg).expect("driver run")
        };
        let (a, b) = (run(), run());
        assert_eq!(a.benign_ops, 3 * BackgroundLoad::Light.ops_per_window());
        assert_eq!(a.benign_ops, b.benign_ops);
        assert_eq!(a.commands, b.commands);
        assert_eq!(a.sim_nanos, b.sim_nanos);
        assert_eq!(a.disturbed_rows, b.disturbed_rows);
        assert_eq!(a.peak_benign_disturbance, b.peak_benign_disturbance);
        assert_eq!(a.false_defense_ops, 0, "undefended fired a defense op");
        assert_eq!(a.attempts, 0);
    }

    #[test]
    fn driver_lands_on_window_boundaries_and_moves_data() {
        let mut mem = device();
        let mut defense = Undefended::new();
        let mut traffic = light_traffic(&DramConfig::lpddr4_small());
        let cfg = DriverConfig {
            benign_windows: 2,
            attack_windows: 0,
            record: false,
        };
        let report =
            run_workload(&mut mem, &mut defense, None, &mut traffic, &[], &cfg).expect("run");
        let t_ref = mem.config().timing.t_ref;
        assert_eq!(mem.now().0 % t_ref.0, 0, "clock must sit on a boundary");
        assert_eq!(report.sim_nanos, t_ref.0 * 2);
        assert_eq!(report.benign_bytes, report.benign_ops * 64);
        assert!(report.busy_nanos > 0 && report.busy_nanos < report.sim_nanos);
        assert_eq!(
            report.benign_activations,
            report.benign_ops * BackgroundLoad::Light.batch()
        );
    }

    #[test]
    fn heavy_load_disturbs_more_than_light() {
        let run = |load: BackgroundLoad| {
            let config = DramConfig::lpddr4_small();
            let mut mem = device();
            let mut defense = Undefended::new();
            let cold = all_data_rows(&config);
            let hot: Vec<GlobalRowId> = cold.iter().copied().take(64).collect();
            let mut traffic =
                BenignTraffic::for_load(load, 11, &config, &hot, &cold).expect("traffic");
            let cfg = DriverConfig {
                benign_windows: 3,
                attack_windows: 0,
                record: false,
            };
            run_workload(&mut mem, &mut defense, None, &mut traffic, &[], &cfg).expect("run")
        };
        let light = run(BackgroundLoad::Light);
        let heavy = run(BackgroundLoad::Heavy);
        assert!(
            heavy.peak_benign_disturbance > light.peak_benign_disturbance,
            "heavy ({}) must out-disturb light ({})",
            heavy.peak_benign_disturbance,
            light.peak_benign_disturbance
        );
        assert!(heavy.benign_ops > light.benign_ops);
    }

    /// The full run_workload surface under one issue path, against a
    /// deterministic mix, for the path-equivalence tests below.
    fn run_with_path(path: IssuePath, load: BackgroundLoad) -> (DriverReport, MemoryController) {
        let config = DramConfig::lpddr4_small();
        let mut mem = device();
        let mut defense = Undefended::new();
        let cold = all_data_rows(&config);
        let hot: Vec<GlobalRowId> = cold.iter().copied().take(64).collect();
        let mut traffic = BenignTraffic::for_load(load, 17, &config, &hot, &cold).expect("traffic");
        traffic.set_issue_path(path);
        let cfg = DriverConfig {
            benign_windows: 2,
            attack_windows: 0,
            record: true,
        };
        let report =
            run_workload(&mut mem, &mut defense, None, &mut traffic, &[], &cfg).expect("run");
        (report, mem)
    }

    #[test]
    fn batched_path_matches_reference_end_to_end() {
        for load in [
            BackgroundLoad::Light,
            BackgroundLoad::Heavy,
            BackgroundLoad::MultiTenant,
        ] {
            let (ref_report, ref_mem) = run_with_path(IssuePath::Reference, load);
            let (fast_report, fast_mem) = run_with_path(IssuePath::Batched, load);
            assert_eq!(ref_report.benign_ops, fast_report.benign_ops, "{load}");
            assert_eq!(ref_report.benign_bytes, fast_report.benign_bytes);
            assert_eq!(ref_report.commands, fast_report.commands, "{load}");
            assert_eq!(ref_report.sim_nanos, fast_report.sim_nanos, "{load}");
            assert_eq!(ref_report.busy_nanos, fast_report.busy_nanos, "{load}");
            assert_eq!(
                ref_report.peak_benign_disturbance, fast_report.peak_benign_disturbance,
                "{load}"
            );
            assert_eq!(ref_report.disturbed_rows, fast_report.disturbed_rows);
            assert_eq!(ref_report.trace, fast_report.trace, "op streams diverged");
            assert_eq!(ref_mem.stats(), fast_mem.stats(), "{load}");
            assert_eq!(ref_mem.now(), fast_mem.now());
        }
    }

    #[test]
    fn auto_path_batches_on_counters_only_devices() {
        // Same outcome as the explicit paths: Auto on a counters-only
        // device takes the batched loop and must match the reference.
        let (ref_report, _) = run_with_path(IssuePath::Reference, BackgroundLoad::Light);
        let (auto_report, _) = run_with_path(IssuePath::Auto, BackgroundLoad::Light);
        assert_eq!(ref_report.commands, auto_report.commands);
        assert_eq!(ref_report.sim_nanos, auto_report.sim_nanos);
        assert_eq!(ref_report.trace, auto_report.trace);
    }

    #[test]
    fn take_recorded_stops_recording() {
        let config = DramConfig::lpddr4_small();
        let mut traffic = light_traffic(&config);
        let cfg = DriverConfig {
            benign_windows: 1,
            attack_windows: 0,
            record: true,
        };
        let mut mem = device();
        let mut defense = Undefended::new();
        let first = run_workload(&mut mem, &mut defense, None, &mut traffic, &[], &cfg)
            .expect("recorded run");
        assert!(!first.trace.as_deref().expect("trace").is_empty());

        // A subsequent non-recording run must not keep capturing (or
        // pollute a later capture with its ops).
        let unrecorded = run_workload(
            &mut mem,
            &mut defense,
            None,
            &mut traffic,
            &[],
            &DriverConfig {
                record: false,
                ..cfg
            },
        )
        .expect("unrecorded run");
        assert!(unrecorded.trace.is_none());
        assert!(
            traffic.take_recorded().is_empty(),
            "recording stayed on after take_recorded"
        );
    }

    #[test]
    fn recorded_trace_replays_byte_identically() {
        let config = DramConfig::lpddr4_small();
        let cfg = DriverConfig {
            benign_windows: 2,
            attack_windows: 0,
            record: true,
        };
        let mut mem = device();
        let mut defense = Undefended::new();
        let mut traffic = light_traffic(&config);
        let original =
            run_workload(&mut mem, &mut defense, None, &mut traffic, &[], &cfg).expect("record");
        let ops = original.trace.clone().expect("trace captured");
        assert_eq!(ops.len() as u64, original.benign_ops);

        // Round-trip through the binary format, then drive a fresh device
        // with the replay: identical command stream, identical outcome.
        let bytes = crate::trace::encode(&ops);
        let decoded = crate::trace::decode(&bytes).expect("decode");
        assert_eq!(decoded, ops);
        let mut replay =
            BenignTraffic::from_trace(decoded, traffic.ops_per_window(), traffic.batch(), &config);
        let mut mem2 = device();
        let mut defense2 = Undefended::new();
        let replayed = run_workload(
            &mut mem2,
            &mut defense2,
            None,
            &mut replay,
            &[],
            &DriverConfig {
                record: false,
                ..cfg
            },
        )
        .expect("replay");
        assert_eq!(replayed.benign_ops, original.benign_ops);
        assert_eq!(replayed.benign_bytes, original.benign_bytes);
        assert_eq!(replayed.commands, original.commands);
        assert_eq!(mem2.stats().reads, mem.stats().reads);
        assert_eq!(mem2.stats().writes, mem.stats().writes);
        assert_eq!(mem2.stats().acts, mem.stats().acts);
    }

    #[test]
    fn streaming_replay_run_is_bit_identical_to_materialized() {
        let config = DramConfig::lpddr4_small();
        let cfg = DriverConfig {
            benign_windows: 3,
            attack_windows: 0,
            record: true,
        };
        let mut mem = device();
        let mut defense = Undefended::new();
        let mut traffic = light_traffic(&config);
        let original =
            run_workload(&mut mem, &mut defense, None, &mut traffic, &[], &cfg).expect("record");
        let ops = original.trace.clone().expect("trace captured");
        let bytes = crate::trace::encode_v2(&ops, true);

        let run = |mut traffic: BenignTraffic| {
            let mut mem = device();
            let mut defense = Undefended::new();
            let report = run_workload(
                &mut mem,
                &mut defense,
                None,
                &mut traffic,
                &[],
                &DriverConfig {
                    record: false,
                    ..cfg
                },
            )
            .expect("replay");
            (report, mem.stats(), defense.stats())
        };

        let materialized = BenignTraffic::from_trace(
            crate::trace::decode_any(&bytes).expect("decode"),
            traffic.ops_per_window(),
            traffic.batch(),
            &config,
        );
        let streaming = BenignTraffic::from_streaming(
            crate::trace::StreamingReplay::open(std::io::Cursor::new(bytes)).expect("open"),
            traffic.ops_per_window(),
            traffic.batch(),
            &config,
        );
        let (rep_m, mem_m, def_m) = run(materialized);
        let (rep_s, mem_s, def_s) = run(streaming);
        assert_eq!(rep_s.benign_ops, rep_m.benign_ops);
        assert_eq!(rep_s.benign_bytes, rep_m.benign_bytes);
        assert_eq!(rep_s.commands, rep_m.commands);
        assert_eq!(mem_s, mem_m, "MemStats must be bit-identical");
        assert_eq!(def_s, def_m, "DefenseStats must be bit-identical");
    }
}
