//! # dd-workload — the trace-driven workload engine
//!
//! The paper's defense is an *online* mechanism: it must tell hammering
//! apart from ordinary serving traffic. This crate supplies the ordinary
//! traffic — and the machinery to measure defenses under it:
//!
//! * [`generator`] — deterministic, seeded benign-traffic generators
//!   (zipfian inference serving, streaming scans, pointer chasing, a
//!   multi-tenant mix with bank affinity) and the [`BackgroundLoad`]
//!   axis the scenario matrix sweeps;
//! * [`trace`] — the compact versioned binary trace formats: any run can
//!   be captured and replayed byte-identically, either materialized (v1)
//!   or streamed chunk-by-chunk from the indexed v2 container;
//! * [`corpus`] — diurnal fleet profiles composed from the seeded
//!   generators (load ramps, tenant churn, hot-key shifts) for
//!   corpus-scale defense sweeps;
//! * [`driver`] — the event-driven driver that merges benign streams
//!   with attack campaigns on the simulated clock, feeds everything
//!   through [`dd_dram::MemoryController`], and reports throughput,
//!   benign-row disturbance, and per-defense false-swap/false-refresh
//!   counts.
//!
//! ## Example
//!
//! ```
//! use dd_dram::{DramConfig, MemoryController, TraceMode};
//! use dd_workload::{all_data_rows, BackgroundLoad, BenignTraffic, DriverConfig, run_workload};
//! use dnn_defender::Undefended;
//!
//! # fn main() -> Result<(), dd_dram::DramError> {
//! let config = DramConfig::lpddr4_small();
//! let mut mem = MemoryController::try_new(config.clone())?;
//! mem.set_trace_mode(TraceMode::CountersOnly); // bulk replay: skip the ring
//!
//! let rows = all_data_rows(&config);
//! let mut traffic = BenignTraffic::for_load(
//!     BackgroundLoad::Light, 7, &config, &rows[..64], &rows,
//! ).expect("light load builds traffic");
//! let mut defense = Undefended::new();
//! let report = run_workload(
//!     &mut mem, &mut defense, None, &mut traffic, &[],
//!     &DriverConfig { benign_windows: 2, attack_windows: 0, record: false },
//! )?;
//! assert_eq!(report.benign_ops, 2 * BackgroundLoad::Light.ops_per_window());
//! assert_eq!(report.false_defense_ops, 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod corpus;
pub mod driver;
pub mod generator;
pub mod trace;

/// Version of the workload *behavior*: the generator recipes behind each
/// [`BackgroundLoad`] level (stream weights, op budgets, batch factors,
/// zipf exponents) and the driver's merge/attribution protocol. Cell
/// cache keys hash load *labels*, not code — **bump this whenever a
/// change alters the traffic a label produces**, so cached scenario
/// cells and workload artifacts are invalidated.
pub const WORKLOAD_PROTOCOL_VERSION: u64 = 1;

pub use corpus::{CorpusPhase, DiurnalProfile, PhaseShape};
pub use driver::{
    drive_benign_window_sweep, next_window_boundary, run_workload, BenignTraffic, DriverConfig,
    DriverReport, IssuePath, SpanTraffic, SweepCell,
};
pub use generator::{
    all_data_rows, tenant_fill, tenant_rows, BackgroundLoad, OpKind, PointerChase, StreamingScan,
    TenantMix, WorkloadGenerator, WorkloadOp, ZipfianServing,
};
pub use trace::{
    decode, decode_any, encode, encode_v2, StreamingReplay, StreamingTraceReader, TraceError,
    TraceReplay, HEADER_BYTES, RECORD_BYTES, TRACE_CHUNK_OPS, TRACE_MAGIC, TRACE_VERSION,
    TRACE_VERSION_V2,
};
