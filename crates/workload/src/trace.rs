//! The compact binary workload-trace format (record + replay).
//!
//! Any driver run can capture the exact benign op stream it executed and
//! replay it later byte-identically — across processes, machines, and
//! (as long as the version header matches) releases. The format is
//! deliberately trivial so other tools can parse it:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"DDWT"
//! 4       2     version (little-endian u16, currently 1)
//! 6       2     flags (reserved, 0)
//! 8       8     record count (little-endian u64)
//! 16      9*n   records
//! ```
//!
//! Each record is 9 bytes: `kind` (u8: 0 = read, 1 = write), `bank`
//! (LE u16), `subarray` (LE u16), `row` (LE u32). Decoding rejects bad
//! magic, unknown versions, truncated bodies, and trailing bytes, so a
//! trace either round-trips exactly (`decode(encode(ops)) == ops`) or
//! fails loudly. The golden file under `tests/golden/` pins the on-disk
//! layout: changing it requires a version bump.

use dd_dram::GlobalRowId;

use crate::generator::{OpKind, WorkloadGenerator, WorkloadOp};

/// File magic: "DNN-Defender Workload Trace".
pub const TRACE_MAGIC: [u8; 4] = *b"DDWT";

/// Current trace format version.
pub const TRACE_VERSION: u16 = 1;

/// Bytes per encoded record.
pub const RECORD_BYTES: usize = 9;

/// Header size in bytes.
pub const HEADER_BYTES: usize = 16;

/// Why a trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace error: {}", self.message)
    }
}

impl std::error::Error for TraceError {}

fn err(message: impl Into<String>) -> TraceError {
    TraceError {
        message: message.into(),
    }
}

/// Encode an op stream into the versioned binary format.
///
/// # Panics
///
/// Panics when an address does not fit the record layout (bank or
/// subarray ≥ 2¹⁶, row ≥ 2³²) — silently truncating would break the
/// round-trip guarantee, and no simulated device is anywhere near these
/// bounds.
pub fn encode(ops: &[WorkloadOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + ops.len() * RECORD_BYTES);
    out.extend_from_slice(&TRACE_MAGIC);
    out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u64).to_le_bytes());
    for op in ops {
        let bank = u16::try_from(op.row.bank.0).expect("bank exceeds trace format (u16)");
        let subarray =
            u16::try_from(op.row.subarray.0).expect("subarray exceeds trace format (u16)");
        let row = u32::try_from(op.row.row.0).expect("row exceeds trace format (u32)");
        out.push(match op.kind {
            OpKind::Read => 0,
            OpKind::Write => 1,
        });
        out.extend_from_slice(&bank.to_le_bytes());
        out.extend_from_slice(&subarray.to_le_bytes());
        out.extend_from_slice(&row.to_le_bytes());
    }
    out
}

/// Decode a versioned binary trace.
///
/// # Errors
///
/// Returns a [`TraceError`] on bad magic, an unsupported version, a
/// truncated body, a record-count mismatch, or an invalid op kind.
pub fn decode(bytes: &[u8]) -> Result<Vec<WorkloadOp>, TraceError> {
    if bytes.len() < HEADER_BYTES {
        return Err(err(format!("truncated header: {} bytes", bytes.len())));
    }
    if bytes[0..4] != TRACE_MAGIC {
        return Err(err("bad magic (not a DDWT trace)"));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != TRACE_VERSION {
        return Err(err(format!(
            "unsupported trace version {version} (expected {TRACE_VERSION})"
        )));
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8 header bytes")) as usize;
    let body = &bytes[HEADER_BYTES..];
    if body.len() != count * RECORD_BYTES {
        return Err(err(format!(
            "body is {} bytes, expected {} for {count} records",
            body.len(),
            count * RECORD_BYTES
        )));
    }
    let mut ops = Vec::with_capacity(count);
    for record in body.chunks_exact(RECORD_BYTES) {
        let kind = match record[0] {
            0 => OpKind::Read,
            1 => OpKind::Write,
            k => return Err(err(format!("invalid op kind {k}"))),
        };
        let bank = u16::from_le_bytes([record[1], record[2]]) as usize;
        let subarray = u16::from_le_bytes([record[3], record[4]]) as usize;
        let row = u32::from_le_bytes(record[5..9].try_into().expect("4 row bytes")) as usize;
        ops.push(WorkloadOp {
            kind,
            row: GlobalRowId::new(bank, subarray, row),
        });
    }
    Ok(ops)
}

/// Replay a recorded op stream as a [`WorkloadGenerator`].
///
/// The stream cycles when exhausted, so a short trace can back an
/// arbitrarily long run; [`TraceReplay::exhausted`] tells a driver that
/// wants exactly one pass when to stop.
pub struct TraceReplay {
    ops: Vec<WorkloadOp>,
    pos: usize,
    laps: u64,
}

impl TraceReplay {
    /// Replay `ops` from the start.
    ///
    /// # Panics
    ///
    /// Panics when `ops` is empty.
    pub fn new(ops: Vec<WorkloadOp>) -> Self {
        assert!(!ops.is_empty(), "cannot replay an empty trace");
        TraceReplay {
            ops,
            pos: 0,
            laps: 0,
        }
    }

    /// Decode and replay a binary trace.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the bytes do not decode (see
    /// [`decode`]) or decode to an empty stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<TraceReplay, TraceError> {
        let ops = decode(bytes)?;
        if ops.is_empty() {
            return Err(err("trace holds no records"));
        }
        Ok(TraceReplay::new(ops))
    }

    /// Whether at least one full pass over the trace has been replayed.
    pub fn exhausted(&self) -> bool {
        self.laps > 0
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace holds no records (never true: construction
    /// rejects empty traces).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl WorkloadGenerator for TraceReplay {
    fn label(&self) -> &str {
        "trace-replay"
    }

    fn next_op(&mut self) -> WorkloadOp {
        let op = self.ops[self.pos];
        self.pos += 1;
        if self.pos == self.ops.len() {
            self.pos = 0;
            self.laps += 1;
        }
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<WorkloadOp> {
        vec![
            WorkloadOp {
                kind: OpKind::Read,
                row: GlobalRowId::new(0, 0, 0),
            },
            WorkloadOp {
                kind: OpKind::Write,
                row: GlobalRowId::new(15, 7, 125),
            },
            WorkloadOp {
                kind: OpKind::Read,
                row: GlobalRowId::new(3, 2, 1),
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        let ops = ops();
        let bytes = encode(&ops);
        assert_eq!(bytes.len(), HEADER_BYTES + 3 * RECORD_BYTES);
        assert_eq!(decode(&bytes).expect("decode"), ops);
        // Empty traces round-trip too.
        assert_eq!(decode(&encode(&[])).expect("decode empty"), vec![]);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        let good = encode(&ops());
        assert!(decode(&good[..10]).is_err(), "truncated header accepted");
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(decode(&bad_magic).is_err(), "bad magic accepted");
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(decode(&bad_version).is_err(), "future version accepted");
        let mut truncated = good.clone();
        truncated.pop();
        assert!(decode(&truncated).is_err(), "short body accepted");
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_err(), "trailing bytes accepted");
        let mut bad_kind = good;
        bad_kind[HEADER_BYTES] = 7;
        assert!(decode(&bad_kind).is_err(), "invalid kind accepted");
    }

    #[test]
    #[should_panic(expected = "row exceeds trace format")]
    fn encode_rejects_rows_beyond_the_record_layout() {
        encode(&[WorkloadOp {
            kind: OpKind::Read,
            row: GlobalRowId::new(0, 0, 1 << 33),
        }]);
    }

    #[test]
    fn replay_cycles_and_reports_exhaustion() {
        let mut replay = TraceReplay::new(ops());
        assert_eq!(replay.len(), 3);
        let first: Vec<WorkloadOp> = (0..3).map(|_| replay.next_op()).collect();
        assert_eq!(first, ops());
        assert!(replay.exhausted());
        assert_eq!(replay.next_op(), ops()[0], "replay must cycle");
    }
}
