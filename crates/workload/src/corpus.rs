//! Diurnal fleet-scale traffic profiles for corpus sweeps.
//!
//! A single [`BackgroundLoad`] level is a steady-state recipe; a real
//! fleet's day is not steady. This module composes the existing seeded
//! generators into a [`DiurnalProfile`]: an ordered sequence of
//! [`CorpusPhase`]s modeling a compressed day of serving traffic —
//! overnight scan-heavy maintenance at low intensity, a morning load
//! ramp, a midday multi-tenant peak with tenant churn (rotated tenant
//! weights), an afternoon hot-key shift (the zipfian popularity
//! permutation re-seeded), and an evening drain.
//!
//! Everything is deterministic given the profile seed: the same profile
//! produces the same op stream on every machine, so the corpus sweep in
//! `dd-bench` can compare the full defense roster on identical traffic,
//! and [`DiurnalProfile::sample_ops`] can pin a golden
//! `corpus_v2.trace` without touching a simulated device.
//!
//! [`BackgroundLoad`]: crate::generator::BackgroundLoad

use dd_dram::{DramConfig, GlobalRowId};

use crate::driver::BenignTraffic;
use crate::generator::{
    all_data_rows, tenant_rows, PointerChase, StreamingScan, TenantMix, WorkloadGenerator,
    WorkloadOp, ZipfianServing,
};

/// Which generator recipe a phase composes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseShape {
    /// Overnight maintenance: streaming scans with sparse writes plus a
    /// trickle of residual serving traffic.
    ScanHeavy,
    /// Serving traffic (zipfian reads over a hot set) plus a pointer
    /// chase — the morning ramp and evening drain, differing only in
    /// intensity.
    Serving,
    /// Four co-located tenants with bank affinity; the tenant weights
    /// rotate with the phase seed, modeling tenant churn at peak.
    PeakChurn,
    /// Serving again, but with the zipfian permutation re-seeded so the
    /// popular rows move — the afternoon hot-key shift.
    HotKeyShift,
}

/// One phase of a diurnal profile: a shape plus its intensity.
#[derive(Debug, Clone)]
pub struct CorpusPhase {
    /// Phase label (stable; used in reports and artifacts).
    pub name: &'static str,
    /// Generator recipe.
    pub shape: PhaseShape,
    /// Benign ops per driver window — the load-ramp axis.
    pub ops_per_window: u64,
    /// Ops issued back-to-back per stream turn.
    pub batch: u64,
    /// Driver windows this phase runs in a full sweep.
    pub windows: u64,
}

/// A seeded, ordered sequence of [`CorpusPhase`]s — one compressed day
/// of fleet traffic.
#[derive(Debug, Clone)]
pub struct DiurnalProfile {
    /// Profile label (stable; used in reports and artifacts).
    pub label: String,
    /// Master seed; every phase derives its own stream seeds from it.
    pub seed: u64,
    /// The phases, in diurnal order.
    pub phases: Vec<CorpusPhase>,
}

/// Rows in the serving hot set (per serving-shaped phase).
const HOT_ROWS: usize = 192;

/// Tenants in the peak-churn mix (capped at the device's bank count).
const PEAK_TENANTS: usize = 4;

impl DiurnalProfile {
    /// The canonical compressed fleet day: six phases ramping
    /// 96 → 384 ops/window and back, with churn and a hot-key shift at
    /// the top of the curve.
    pub fn fleet_day(seed: u64) -> Self {
        DiurnalProfile {
            label: format!("fleet-day-{seed:#x}"),
            seed,
            phases: vec![
                CorpusPhase {
                    name: "night-scan",
                    shape: PhaseShape::ScanHeavy,
                    ops_per_window: 96,
                    batch: 16,
                    windows: 6,
                },
                CorpusPhase {
                    name: "dawn-ramp",
                    shape: PhaseShape::Serving,
                    ops_per_window: 192,
                    batch: 32,
                    windows: 6,
                },
                CorpusPhase {
                    name: "midday-peak",
                    shape: PhaseShape::PeakChurn,
                    ops_per_window: 384,
                    batch: 32,
                    windows: 8,
                },
                CorpusPhase {
                    name: "hot-shift",
                    shape: PhaseShape::HotKeyShift,
                    ops_per_window: 384,
                    batch: 32,
                    windows: 8,
                },
                CorpusPhase {
                    name: "evening-serve",
                    shape: PhaseShape::Serving,
                    ops_per_window: 256,
                    batch: 32,
                    windows: 6,
                },
                CorpusPhase {
                    name: "late-drain",
                    shape: PhaseShape::ScanHeavy,
                    ops_per_window: 128,
                    batch: 16,
                    windows: 6,
                },
            ],
        }
    }

    /// Total driver windows across all phases (one full day).
    pub fn total_windows(&self) -> u64 {
        self.phases.iter().map(|p| p.windows).sum()
    }

    /// The per-phase seed: the master seed FNV-mixed with the phase
    /// index, so phases draw independent streams while staying
    /// reproducible.
    fn phase_seed(&self, phase: usize) -> u64 {
        (self.seed ^ (phase as u64).wrapping_add(0xcbf2_9ce4_8422_2325))
            .wrapping_mul(0x0100_0000_01b3)
    }

    /// Build the generator streams of phase `phase` over `config`'s
    /// address space.
    ///
    /// # Panics
    ///
    /// Panics when `phase` is out of range.
    fn phase_streams(
        &self,
        phase: usize,
        config: &DramConfig,
    ) -> Vec<(Box<dyn WorkloadGenerator>, u32)> {
        let spec = &self.phases[phase];
        let seed = self.phase_seed(phase);
        let rows = all_data_rows(config);
        let hot: Vec<GlobalRowId> = rows
            .iter()
            .copied()
            .step_by((rows.len() / HOT_ROWS).max(1))
            .take(HOT_ROWS)
            .collect();
        match spec.shape {
            PhaseShape::ScanHeavy => vec![
                (
                    Box::new(StreamingScan::new(rows, 16)) as Box<dyn WorkloadGenerator>,
                    3,
                ),
                (Box::new(ZipfianServing::new(hot, 1.0, seed)), 1),
            ],
            PhaseShape::Serving => vec![
                // The serving permutation is seeded from the *profile*,
                // not the phase, so dawn-ramp and evening-serve hit the
                // same hot keys — only HotKeyShift moves them.
                (
                    Box::new(ZipfianServing::new(hot, 1.1, self.seed))
                        as Box<dyn WorkloadGenerator>,
                    3,
                ),
                (Box::new(PointerChase::new(rows, seed)), 1),
            ],
            PhaseShape::PeakChurn => {
                let tenants = PEAK_TENANTS.min(config.banks);
                let mix: Vec<(Box<dyn WorkloadGenerator>, u32)> = (0..tenants)
                    .map(|t| {
                        // Rotate the weight schedule by the phase seed:
                        // which tenant dominates changes with the seed,
                        // modeling churn in who is loud at peak.
                        let weight = [4u32, 3, 2, 1][(t + seed as usize) % tenants.max(1)];
                        let rows = tenant_rows(config, t, tenants);
                        (
                            Box::new(ZipfianServing::new(rows, 1.0, seed.wrapping_add(t as u64)))
                                as Box<dyn WorkloadGenerator>,
                            weight,
                        )
                    })
                    .collect();
                vec![(Box::new(TenantMix::new(mix, seed)), 1)]
            }
            PhaseShape::HotKeyShift => vec![
                // Re-seeded permutation: the same hot-set rows, but the
                // popularity ranks shuffled — the hot keys move.
                (
                    Box::new(ZipfianServing::new(hot, 1.1, seed ^ 0x5bd1_e995))
                        as Box<dyn WorkloadGenerator>,
                    3,
                ),
                (Box::new(PointerChase::new(rows, seed)), 1),
            ],
        }
    }

    /// Build the [`BenignTraffic`] of phase `phase`, ready for the
    /// driver. The universe is the full device address space, so
    /// defense state carries across phases of the same day.
    ///
    /// # Panics
    ///
    /// Panics when `phase` is out of range.
    pub fn traffic(&self, phase: usize, config: &DramConfig) -> BenignTraffic {
        let spec = &self.phases[phase];
        BenignTraffic::new(
            self.phase_streams(phase, config),
            format!("{}/{}", self.label, spec.name),
            spec.ops_per_window,
            spec.batch,
            all_data_rows(config),
            config,
        )
    }

    /// Draw `per_phase` ops from every phase, concatenated in diurnal
    /// order, without touching a simulated device — a deterministic
    /// weighted-round-robin over each phase's streams. This is what
    /// pins the golden `corpus_v2.trace` and sizes the v1-vs-v2
    /// comparison in the corpus report.
    pub fn sample_ops(&self, config: &DramConfig, per_phase: usize) -> Vec<WorkloadOp> {
        let mut ops = Vec::with_capacity(self.phases.len() * per_phase);
        for phase in 0..self.phases.len() {
            let mut streams = self.phase_streams(phase, config);
            // Weighted round-robin: each turn, stream `i` contributes
            // `weight_i` ops. Deterministic and device-free.
            let mut drawn = 0usize;
            'phase: loop {
                for (gen, weight) in &mut streams {
                    for _ in 0..*weight {
                        if drawn == per_phase {
                            break 'phase;
                        }
                        ops.push(gen.next_op());
                        drawn += 1;
                    }
                }
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> DramConfig {
        DramConfig::lpddr4_small()
    }

    #[test]
    fn fleet_day_is_deterministic_per_seed() {
        let config = config();
        let a = DiurnalProfile::fleet_day(7).sample_ops(&config, 200);
        let b = DiurnalProfile::fleet_day(7).sample_ops(&config, 200);
        let c = DiurnalProfile::fleet_day(8).sample_ops(&config, 200);
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds must differ");
        assert_eq!(a.len(), 6 * 200);
    }

    #[test]
    fn every_phase_builds_driver_traffic() {
        let config = config();
        let profile = DiurnalProfile::fleet_day(20240808);
        assert_eq!(profile.phases.len(), 6);
        assert!(profile.total_windows() >= 36);
        for phase in 0..profile.phases.len() {
            let traffic = profile.traffic(phase, &config);
            assert!(
                traffic.label().contains(profile.phases[phase].name),
                "phase label missing"
            );
        }
    }

    #[test]
    fn hot_key_shift_moves_the_popular_rows() {
        let config = config();
        let profile = DiurnalProfile::fleet_day(99);
        let dawn = 1; // Serving
        let shift = 3; // HotKeyShift
        let a = {
            let mut streams = profile.phase_streams(dawn, &config);
            (0..500)
                .map(|_| streams[0].0.next_op().row)
                .collect::<Vec<_>>()
        };
        let b = {
            let mut streams = profile.phase_streams(shift, &config);
            (0..500)
                .map(|_| streams[0].0.next_op().row)
                .collect::<Vec<_>>()
        };
        assert_ne!(a, b, "hot-key shift must re-rank popularity");
    }

    #[test]
    fn load_ramp_spans_the_day() {
        let profile = DiurnalProfile::fleet_day(1);
        let peak = profile.phases.iter().map(|p| p.ops_per_window).max();
        let night = profile.phases.iter().map(|p| p.ops_per_window).min();
        assert!(peak.unwrap() >= 3 * night.unwrap(), "ramp too flat");
    }
}
