//! Trace format v1: the original monolithic layout.
//!
//! Deliberately trivial so other tools can parse it:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"DDWT"
//! 4       2     version (little-endian u16, 1)
//! 6       2     flags (reserved, 0)
//! 8       8     record count (little-endian u64)
//! 16      9*n   records
//! ```
//!
//! Each record is 9 bytes: `kind` (u8: 0 = read, 1 = write), `bank`
//! (LE u16), `subarray` (LE u16), `row` (LE u32). Decoding rejects bad
//! magic, unknown versions, truncated bodies, and trailing bytes, so a
//! trace either round-trips exactly (`decode(encode(ops)) == ops`) or
//! fails loudly — and the header is *untrusted*: the record count is
//! cross-checked against the body length with overflow-checked
//! arithmetic before anything is allocated. The golden file under
//! `tests/golden/benign_v1.trace` pins the on-disk layout: changing it
//! requires a version bump (which is exactly what [`super::v2`] is).

use super::{err, record_fields, record_op, TraceError};
use crate::generator::WorkloadOp;

/// File magic: "DNN-Defender Workload Trace".
pub const TRACE_MAGIC: [u8; 4] = *b"DDWT";

/// The v1 format version.
pub const TRACE_VERSION: u16 = 1;

/// Bytes per encoded record.
pub const RECORD_BYTES: usize = 9;

/// Header size in bytes (shared by v1 and v2).
pub const HEADER_BYTES: usize = 16;

/// Encode an op stream into the versioned binary format.
///
/// # Panics
///
/// Panics when an address does not fit the record layout (bank or
/// subarray ≥ 2¹⁶, row ≥ 2³²) — silently truncating would break the
/// round-trip guarantee, and no simulated device is anywhere near these
/// bounds.
pub fn encode(ops: &[WorkloadOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + ops.len() * RECORD_BYTES);
    out.extend_from_slice(&TRACE_MAGIC);
    out.extend_from_slice(&TRACE_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u64).to_le_bytes());
    for op in ops {
        let (kind, bank, subarray, row) = record_fields(op);
        out.push(kind);
        out.extend_from_slice(&bank.to_le_bytes());
        out.extend_from_slice(&subarray.to_le_bytes());
        out.extend_from_slice(&row.to_le_bytes());
    }
    out
}

/// Decode a versioned binary trace.
///
/// The header is treated as hostile input: the declared record count is
/// validated against the actual body length — `count × RECORD_BYTES`
/// computed with `checked_mul`, so a count crafted to wrap a `usize`
/// multiply in release mode cannot pass the check — and the output
/// allocation is capped by what the body can actually hold, so a giant
/// declared count cannot force a multi-GB pre-allocation either.
///
/// # Errors
///
/// Returns a [`TraceError`] on bad magic, an unsupported version, a
/// truncated body, a record-count mismatch (including counts whose byte
/// size overflows), or an invalid op kind.
pub fn decode(bytes: &[u8]) -> Result<Vec<WorkloadOp>, TraceError> {
    if bytes.len() < HEADER_BYTES {
        return Err(err(format!("truncated header: {} bytes", bytes.len())));
    }
    if bytes[0..4] != TRACE_MAGIC {
        return Err(err("bad magic (not a DDWT trace)"));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != TRACE_VERSION {
        return Err(err(format!(
            "unsupported trace version {version} (expected {TRACE_VERSION})"
        )));
    }
    let count = u64::from_le_bytes(bytes[8..16].try_into().expect("8 header bytes"));
    let body = &bytes[HEADER_BYTES..];
    // Validate-before-allocate: the length check must hold in checked
    // arithmetic (a wrapped multiply passing an equality test is exactly
    // the hostile-header hole), and nothing is reserved until it does.
    let expected = usize::try_from(count)
        .ok()
        .and_then(|c| c.checked_mul(RECORD_BYTES));
    match expected {
        Some(expected) if expected == body.len() => {}
        _ => {
            return Err(err(format!(
                "body is {} bytes, expected {count} records of {RECORD_BYTES} bytes",
                body.len(),
            )));
        }
    }
    // The equality above already bounds the count; the min() keeps the
    // allocation provably body-sized even if the checks ever drift.
    let mut ops = Vec::with_capacity((count as usize).min(body.len() / RECORD_BYTES));
    for record in body.chunks_exact(RECORD_BYTES) {
        let bank = u16::from_le_bytes([record[1], record[2]]);
        let subarray = u16::from_le_bytes([record[3], record[4]]);
        let row = u32::from_le_bytes(record[5..9].try_into().expect("4 row bytes"));
        ops.push(record_op(record[0], bank, subarray, row)?);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::OpKind;
    use dd_dram::GlobalRowId;

    fn ops() -> Vec<WorkloadOp> {
        vec![
            WorkloadOp {
                kind: OpKind::Read,
                row: GlobalRowId::new(0, 0, 0),
            },
            WorkloadOp {
                kind: OpKind::Write,
                row: GlobalRowId::new(15, 7, 125),
            },
            WorkloadOp {
                kind: OpKind::Read,
                row: GlobalRowId::new(3, 2, 1),
            },
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        let ops = ops();
        let bytes = encode(&ops);
        assert_eq!(bytes.len(), HEADER_BYTES + 3 * RECORD_BYTES);
        assert_eq!(decode(&bytes).expect("decode"), ops);
        // Empty traces round-trip too.
        assert_eq!(decode(&encode(&[])).expect("decode empty"), vec![]);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        let good = encode(&ops());
        assert!(decode(&good[..10]).is_err(), "truncated header accepted");
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(decode(&bad_magic).is_err(), "bad magic accepted");
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert!(decode(&bad_version).is_err(), "future version accepted");
        let mut high_byte_version = good.clone();
        high_byte_version[5] = 1; // version 256: the high byte matters too
        assert!(decode(&high_byte_version).is_err(), "version 256 accepted");
        let mut truncated = good.clone();
        truncated.pop();
        assert!(decode(&truncated).is_err(), "short body accepted");
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode(&trailing).is_err(), "trailing bytes accepted");
        let mut bad_kind = good;
        bad_kind[HEADER_BYTES] = 7;
        assert!(decode(&bad_kind).is_err(), "invalid kind accepted");
    }

    #[test]
    fn hostile_record_counts_are_rejected_without_allocating() {
        // A count chosen so `count * RECORD_BYTES` wraps a u64 multiply
        // to exactly the body length (2): the pre-hardening release-mode
        // check passed this and then aborted in with_capacity.
        let wrap_count = (u64::MAX / RECORD_BYTES as u64) + 1; // *9 wraps past 0
        let wrapped_len = (wrap_count as usize).wrapping_mul(RECORD_BYTES);
        let mut hostile = Vec::new();
        hostile.extend_from_slice(&TRACE_MAGIC);
        hostile.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        hostile.extend_from_slice(&0u16.to_le_bytes());
        hostile.extend_from_slice(&wrap_count.to_le_bytes());
        hostile.extend_from_slice(&vec![0u8; wrapped_len]);
        assert!(decode(&hostile).is_err(), "wrapped count accepted");

        // A giant count with no body: must error, never reserve.
        let mut giant = Vec::new();
        giant.extend_from_slice(&TRACE_MAGIC);
        giant.extend_from_slice(&TRACE_VERSION.to_le_bytes());
        giant.extend_from_slice(&0u16.to_le_bytes());
        giant.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode(&giant).is_err(), "giant count accepted");
    }

    #[test]
    #[should_panic(expected = "row exceeds trace format")]
    fn encode_rejects_rows_beyond_the_record_layout() {
        encode(&[WorkloadOp {
            kind: OpKind::Read,
            row: GlobalRowId::new(0, 0, 1 << 33),
        }]);
    }
}
