//! Trace format v2: chunked, indexed, streamable.
//!
//! The fleet-scale layout. Records are framed into chunks sized to the
//! batched kernel's [`dd_dram::BATCH_CHUNK_OPS`] boundary, so one
//! streamed chunk maps 1:1 onto one `DecodedBatch` issue, and a chunk
//! index footer makes the container seekable without scanning:
//!
//! ```text
//! offset          size   field
//! 0               4      magic  b"DDWT"            (shared with v1)
//! 4               2      version (LE u16, 2)
//! 6               2      flags (LE u16; bit 0 = delta encoding used)
//! 8               8      total record count (LE u64)
//! 16              ...    chunks, back to back:
//!                          u32 LE  record count (1 ..= TRACE_CHUNK_OPS)
//!                          u8      encoding (0 = raw, 1 = delta varint)
//!                          bytes   payload
//! index_offset    24*c   chunk index, one entry per chunk:
//!                          u64 LE  absolute chunk offset
//!                          u64 LE  chunk byte length (header + payload)
//!                          u64 LE  chunk record count
//! EOF-20          20     trailer:
//!                          u64 LE  index_offset
//!                          u64 LE  chunk count
//!                          4       footer magic b"DDX2"
//! ```
//!
//! Raw chunk payloads repeat the v1 record layout (9 bytes per op).
//! Delta payloads store, per record, the `kind` byte followed by
//! zigzag-LEB128 varints of the `(bank, subarray, row)` deltas against
//! the previous record; the "previous record" resets to `(0, 0, 0)` at
//! each chunk start, so every chunk decodes independently — that is
//! what makes the index seekable. Benign traffic revisits nearby rows
//! constantly, so deltas are small and most records shrink from 9
//! bytes to 4.
//!
//! Like v1, decoding treats every length and count in the container as
//! hostile: offsets and counts are cross-checked against the actual
//! byte ranges with overflow-checked arithmetic before any allocation,
//! and no allocation exceeds what the validated bytes can hold.

use std::io::{Cursor, Read, Seek, SeekFrom};

use dd_dram::{GlobalRowId, BATCH_CHUNK_OPS};

use super::v1::{HEADER_BYTES, RECORD_BYTES, TRACE_MAGIC};
use super::{err, record_fields, record_op, TraceError};
use crate::generator::{WorkloadGenerator, WorkloadOp};

/// The v2 format version.
pub const TRACE_VERSION_V2: u16 = 2;

/// Records per chunk: the batched replay plane's chunk boundary, so a
/// streamed chunk feeds exactly one `DecodedBatch` issue.
pub const TRACE_CHUNK_OPS: usize = BATCH_CHUNK_OPS;

/// Footer magic closing the chunk index trailer.
pub const TRACE_INDEX_MAGIC: [u8; 4] = *b"DDX2";

/// Bytes per chunk-index entry (offset, byte length, record count).
const INDEX_ENTRY_BYTES: usize = 24;

/// Trailer size: index offset + chunk count + footer magic.
const TRAILER_BYTES: usize = 20;

/// Per-chunk header: LE u32 record count + encoding byte.
const CHUNK_HEADER_BYTES: usize = 5;

/// Flag bit 0: at least one chunk uses delta encoding.
const FLAG_DELTA: u16 = 1;

/// Chunk payload encodings.
const ENC_RAW: u8 = 0;
const ENC_DELTA: u8 = 1;

// --- varint codec -----------------------------------------------------

/// Zigzag-map a signed delta onto an unsigned LEB128 payload.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append an LEB128 varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an LEB128 varint, rejecting truncation and >64-bit values.
fn get_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = bytes
            .get(*pos)
            .ok_or_else(|| err("truncated varint in delta chunk"))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(err("varint overflows u64 in delta chunk"));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

// --- encoder ----------------------------------------------------------

/// Encode an op stream into the chunked v2 container.
///
/// With `delta` set, each chunk's addresses are zigzag-varint encoded
/// against the previous record (reset per chunk); otherwise chunks hold
/// raw v1-layout records. Both forms decode to the identical op stream.
///
/// # Panics
///
/// Panics when an address does not fit the record layout, exactly like
/// [`super::v1::encode`].
pub fn encode_v2(ops: &[WorkloadOp], delta: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_BYTES + ops.len() * RECORD_BYTES + TRAILER_BYTES);
    out.extend_from_slice(&TRACE_MAGIC);
    out.extend_from_slice(&TRACE_VERSION_V2.to_le_bytes());
    let flags: u16 = if delta { FLAG_DELTA } else { 0 };
    out.extend_from_slice(&flags.to_le_bytes());
    out.extend_from_slice(&(ops.len() as u64).to_le_bytes());

    let mut index: Vec<(u64, u64, u64)> = Vec::new();
    for chunk in ops.chunks(TRACE_CHUNK_OPS) {
        let start = out.len();
        out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
        out.push(if delta { ENC_DELTA } else { ENC_RAW });
        if delta {
            let (mut pb, mut ps, mut pr) = (0i64, 0i64, 0i64);
            for op in chunk {
                let (kind, bank, subarray, row) = record_fields(op);
                out.push(kind);
                put_varint(&mut out, zigzag(i64::from(bank) - pb));
                put_varint(&mut out, zigzag(i64::from(subarray) - ps));
                put_varint(&mut out, zigzag(i64::from(row) - pr));
                (pb, ps, pr) = (i64::from(bank), i64::from(subarray), i64::from(row));
            }
        } else {
            for op in chunk {
                let (kind, bank, subarray, row) = record_fields(op);
                out.push(kind);
                out.extend_from_slice(&bank.to_le_bytes());
                out.extend_from_slice(&subarray.to_le_bytes());
                out.extend_from_slice(&row.to_le_bytes());
            }
        }
        index.push((start as u64, (out.len() - start) as u64, chunk.len() as u64));
    }

    let index_offset = out.len() as u64;
    for (offset, len, count) in &index {
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
    }
    out.extend_from_slice(&index_offset.to_le_bytes());
    out.extend_from_slice(&(index.len() as u64).to_le_bytes());
    out.extend_from_slice(&TRACE_INDEX_MAGIC);
    out
}

// --- streaming reader -------------------------------------------------

/// One validated chunk-index entry.
#[derive(Debug, Clone, Copy)]
struct ChunkEntry {
    offset: u64,
    len: u64,
    count: u64,
}

/// Streaming decoder for the v2 container.
///
/// `open` reads only the header, trailer, and chunk index — O(chunks),
/// not O(records) — and validates every offset and count against the
/// actual byte ranges before trusting them. [`Self::next_chunk`] then
/// yields ops one chunk at a time (at most [`TRACE_CHUNK_OPS`] per
/// call), so a day-long trace replays without being materialized.
///
/// All decode paths return [`TraceError`] on hostile or corrupt input;
/// none panic or over-allocate.
pub struct StreamingTraceReader<R: Read + Seek> {
    reader: R,
    index: Vec<ChunkEntry>,
    total_records: u64,
    next_chunk: usize,
    scratch: Vec<u8>,
}

impl<R: Read + Seek> StreamingTraceReader<R> {
    /// Parse and validate the container framing of `reader`.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on IO failure, bad magic (header or
    /// footer), a non-v2 version, unknown flag bits, or any
    /// inconsistency between the chunk index and the byte ranges it
    /// describes (out-of-bounds or overlapping chunks, counts over the
    /// chunk cap, or a count sum that disagrees with the header).
    pub fn open(mut reader: R) -> Result<Self, TraceError> {
        let file_len = reader
            .seek(SeekFrom::End(0))
            .map_err(|e| err(format!("seek failed: {e}")))?;
        let min_len = (HEADER_BYTES + TRAILER_BYTES) as u64;
        if file_len < min_len {
            return Err(err(format!(
                "container is {file_len} bytes, below the {min_len}-byte minimum"
            )));
        }

        let mut header = [0u8; HEADER_BYTES];
        read_at(&mut reader, 0, &mut header)?;
        if header[0..4] != TRACE_MAGIC {
            return Err(err("bad magic (not a DDWT trace)"));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != TRACE_VERSION_V2 {
            return Err(err(format!(
                "unsupported trace version {version} (expected {TRACE_VERSION_V2})"
            )));
        }
        let flags = u16::from_le_bytes([header[6], header[7]]);
        if flags & !FLAG_DELTA != 0 {
            return Err(err(format!("unknown flag bits {flags:#06x}")));
        }
        let total_records = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));

        let mut trailer = [0u8; TRAILER_BYTES];
        read_at(&mut reader, file_len - TRAILER_BYTES as u64, &mut trailer)?;
        if trailer[16..20] != TRACE_INDEX_MAGIC {
            return Err(err("bad footer magic (chunk index trailer missing)"));
        }
        let index_offset = u64::from_le_bytes(trailer[0..8].try_into().expect("8 bytes"));
        let chunk_count = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));

        // The index must sit exactly between the last chunk and the
        // trailer; checked arithmetic keeps a hostile chunk count from
        // wrapping this bound.
        let index_bytes = usize::try_from(chunk_count)
            .ok()
            .and_then(|c| c.checked_mul(INDEX_ENTRY_BYTES))
            .ok_or_else(|| {
                err(format!(
                    "chunk count {chunk_count} overflows the index size"
                ))
            })?;
        let index_end = index_offset
            .checked_add(index_bytes as u64)
            .ok_or_else(|| err("chunk index extends past the end of the container"))?;
        if index_offset < HEADER_BYTES as u64 || index_end != file_len - TRAILER_BYTES as u64 {
            return Err(err(format!(
                "chunk index [{index_offset}, {index_end}) does not fit the container"
            )));
        }

        // `index_bytes` is bounded by the real file size via the check
        // above, so this allocation is at most the on-disk index size.
        let mut raw_index = vec![0u8; index_bytes];
        read_at(&mut reader, index_offset, &mut raw_index)?;
        let mut index = Vec::with_capacity(index_bytes / INDEX_ENTRY_BYTES);
        let mut expected_offset = HEADER_BYTES as u64;
        let mut record_sum = 0u64;
        for entry in raw_index.chunks_exact(INDEX_ENTRY_BYTES) {
            let offset = u64::from_le_bytes(entry[0..8].try_into().expect("8 bytes"));
            let len = u64::from_le_bytes(entry[8..16].try_into().expect("8 bytes"));
            let count = u64::from_le_bytes(entry[16..24].try_into().expect("8 bytes"));
            if offset != expected_offset {
                return Err(err(format!(
                    "chunk at offset {offset} is not contiguous (expected {expected_offset})"
                )));
            }
            if count == 0 || count > TRACE_CHUNK_OPS as u64 {
                return Err(err(format!(
                    "chunk record count {count} outside 1..={TRACE_CHUNK_OPS}"
                )));
            }
            if len < CHUNK_HEADER_BYTES as u64 {
                return Err(err(format!("chunk length {len} below the chunk header")));
            }
            expected_offset = offset
                .checked_add(len)
                .filter(|&end| end <= index_offset)
                .ok_or_else(|| err(format!("chunk at offset {offset} overruns the index")))?;
            record_sum = record_sum
                .checked_add(count)
                .ok_or_else(|| err("chunk record counts overflow"))?;
            index.push(ChunkEntry { offset, len, count });
        }
        if expected_offset != index_offset {
            return Err(err(format!(
                "chunks end at {expected_offset} but the index starts at {index_offset}"
            )));
        }
        if record_sum != total_records {
            return Err(err(format!(
                "index holds {record_sum} records but the header declares {total_records}"
            )));
        }

        Ok(StreamingTraceReader {
            reader,
            index,
            total_records,
            next_chunk: 0,
            scratch: Vec::new(),
        })
    }

    /// Total records across all chunks (validated against the index).
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Number of chunks in the container.
    pub fn chunk_count(&self) -> usize {
        self.index.len()
    }

    /// Rewind to the first chunk.
    pub fn rewind(&mut self) {
        self.next_chunk = 0;
    }

    /// Decode the next chunk into `out` (cleared first), returning
    /// `Ok(false)` when the trace is exhausted. At most
    /// [`TRACE_CHUNK_OPS`] ops are appended per call.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] on IO failure or when the chunk's
    /// payload disagrees with its validated index entry (bad encoding
    /// byte, truncated or oversize payload, invalid op kind, or a delta
    /// that walks an address out of the record layout).
    pub fn next_chunk(&mut self, out: &mut Vec<WorkloadOp>) -> Result<bool, TraceError> {
        out.clear();
        let Some(&entry) = self.index.get(self.next_chunk) else {
            return Ok(false);
        };
        self.next_chunk += 1;

        // The entry's byte range was validated against the real file
        // size at open(), so this scratch buffer is bounded by on-disk
        // bytes, never by a hostile count alone.
        self.scratch.resize(entry.len as usize, 0);
        read_at(&mut self.reader, entry.offset, &mut self.scratch)?;
        let declared = u32::from_le_bytes(self.scratch[0..4].try_into().expect("4 bytes")) as u64;
        if declared != entry.count {
            return Err(err(format!(
                "chunk header declares {declared} records but the index says {}",
                entry.count
            )));
        }
        let encoding = self.scratch[4];
        let payload = &self.scratch[CHUNK_HEADER_BYTES..];
        let count = entry.count as usize;
        out.reserve(count.min(TRACE_CHUNK_OPS));
        match encoding {
            ENC_RAW => {
                let expected = count
                    .checked_mul(RECORD_BYTES)
                    .ok_or_else(|| err("raw chunk size overflows"))?;
                if payload.len() != expected {
                    return Err(err(format!(
                        "raw chunk payload is {} bytes, expected {expected}",
                        payload.len()
                    )));
                }
                for record in payload.chunks_exact(RECORD_BYTES) {
                    let bank = u16::from_le_bytes([record[1], record[2]]);
                    let subarray = u16::from_le_bytes([record[3], record[4]]);
                    let row = u32::from_le_bytes(record[5..9].try_into().expect("4 bytes"));
                    out.push(record_op(record[0], bank, subarray, row)?);
                }
            }
            ENC_DELTA => {
                let mut pos = 0usize;
                let (mut pb, mut ps, mut pr) = (0i64, 0i64, 0i64);
                for _ in 0..count {
                    let &kind = payload
                        .get(pos)
                        .ok_or_else(|| err("truncated record in delta chunk"))?;
                    pos += 1;
                    let db = unzigzag(get_varint(payload, &mut pos)?);
                    let ds = unzigzag(get_varint(payload, &mut pos)?);
                    let dr = unzigzag(get_varint(payload, &mut pos)?);
                    let bank = pb
                        .checked_add(db)
                        .and_then(|v| u16::try_from(v).ok())
                        .ok_or_else(|| err("delta walks bank out of range"))?;
                    let subarray = ps
                        .checked_add(ds)
                        .and_then(|v| u16::try_from(v).ok())
                        .ok_or_else(|| err("delta walks subarray out of range"))?;
                    let row = pr
                        .checked_add(dr)
                        .and_then(|v| u32::try_from(v).ok())
                        .ok_or_else(|| err("delta walks row out of range"))?;
                    out.push(record_op(kind, bank, subarray, row)?);
                    (pb, ps, pr) = (i64::from(bank), i64::from(subarray), i64::from(row));
                }
                if pos != payload.len() {
                    return Err(err(format!(
                        "delta chunk has {} trailing bytes",
                        payload.len() - pos
                    )));
                }
            }
            other => return Err(err(format!("unknown chunk encoding {other}"))),
        }
        Ok(true)
    }
}

/// Seek + read-exact with IO errors mapped onto [`TraceError`].
fn read_at<R: Read + Seek>(reader: &mut R, offset: u64, buf: &mut [u8]) -> Result<(), TraceError> {
    reader
        .seek(SeekFrom::Start(offset))
        .map_err(|e| err(format!("seek to {offset} failed: {e}")))?;
    reader.read_exact(buf).map_err(|e| {
        err(format!(
            "read of {} bytes at {offset} failed: {e}",
            buf.len()
        ))
    })
}

/// Materialize a full v2 container (the non-streaming path used by
/// [`super::decode_any`]).
///
/// # Errors
///
/// Returns any [`StreamingTraceReader`] decode error.
pub fn decode_v2(bytes: &[u8]) -> Result<Vec<WorkloadOp>, TraceError> {
    let mut reader = StreamingTraceReader::open(Cursor::new(bytes))?;
    // total_records was validated against the per-chunk sums, which are
    // themselves bounded by real on-disk chunk bytes.
    let mut ops = Vec::with_capacity(
        usize::try_from(reader.total_records())
            .unwrap_or(usize::MAX)
            .min(bytes.len() / 4),
    );
    let mut chunk = Vec::new();
    while reader.next_chunk(&mut chunk)? {
        ops.extend_from_slice(&chunk);
    }
    Ok(ops)
}

// --- streaming replay -------------------------------------------------

/// Replay a v2 container as a [`WorkloadGenerator`] without ever
/// materializing it — the streaming counterpart of
/// [`super::TraceReplay`], bit-identical over the same op stream.
///
/// Construction makes one full validating pass over every chunk (also
/// collecting the distinct rows touched, in first-touch order, so a
/// driver can derive the benign universe), then rewinds; after that,
/// [`Self::next_op`] holds at most one chunk in memory and cycles when
/// the trace is exhausted.
pub struct StreamingReplay<R: Read + Seek> {
    reader: StreamingTraceReader<R>,
    buf: Vec<WorkloadOp>,
    pos: usize,
    laps: u64,
    rows: Vec<GlobalRowId>,
}

impl<R: Read + Seek> StreamingReplay<R> {
    /// Open and fully validate a v2 container for replay.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the container fails to decode
    /// (any [`StreamingTraceReader`] error) or holds no records.
    pub fn open(reader: R) -> Result<Self, TraceError> {
        let mut reader = StreamingTraceReader::open(reader)?;
        if reader.total_records() == 0 {
            return Err(err("trace holds no records"));
        }
        // Validating pass: decode every chunk once so replay can treat
        // later decode failures as impossible, and collect the row
        // universe while we are at it.
        let mut rows = Vec::new();
        let mut seen = std::collections::HashSet::new();
        let mut chunk = Vec::new();
        while reader.next_chunk(&mut chunk)? {
            for op in &chunk {
                if seen.insert(op.row) {
                    rows.push(op.row);
                }
            }
        }
        reader.rewind();
        Ok(StreamingReplay {
            reader,
            buf: Vec::new(),
            pos: 0,
            laps: 0,
            rows,
        })
    }

    /// Distinct rows the trace touches, in first-touch order.
    pub fn rows(&self) -> &[GlobalRowId] {
        &self.rows
    }

    /// Total records in one pass of the trace.
    pub fn len(&self) -> u64 {
        self.reader.total_records()
    }

    /// Always `false`: [`Self::open`] rejects empty containers, the
    /// same contract as [`super::TraceReplay::is_empty`].
    pub fn is_empty(&self) -> bool {
        debug_assert!(self.reader.total_records() > 0, "invariant violated");
        false
    }

    /// Whether at least one full pass has been replayed.
    pub fn exhausted(&self) -> bool {
        self.laps > 0
    }
}

impl<R: Read + Seek + Send> WorkloadGenerator for StreamingReplay<R> {
    fn label(&self) -> &str {
        "trace-replay-streaming"
    }

    /// # Panics
    ///
    /// The container was fully validated at [`Self::open`], so decode
    /// errors cannot recur; this panics only if the underlying reader
    /// fails *after* validation (e.g. the file is truncated mid-run),
    /// which is unrecoverable for an infallible generator.
    fn next_op(&mut self) -> WorkloadOp {
        while self.pos == self.buf.len() {
            self.pos = 0;
            let more = self
                .reader
                .next_chunk(&mut self.buf)
                .expect("validated trace failed mid-replay");
            if !more {
                self.reader.rewind();
                self.laps += 1;
            }
        }
        let op = self.buf[self.pos];
        self.pos += 1;
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::OpKind;
    use crate::trace::TraceReplay;

    fn big_ops(n: usize) -> Vec<WorkloadOp> {
        (0..n)
            .map(|i| WorkloadOp {
                kind: if i % 3 == 0 {
                    OpKind::Write
                } else {
                    OpKind::Read
                },
                row: GlobalRowId::new(i % 8, (i / 3) % 4, (i * 37) % 1000),
            })
            .collect()
    }

    #[test]
    fn round_trips_both_encodings_across_chunk_boundaries() {
        for n in [
            0,
            1,
            TRACE_CHUNK_OPS - 1,
            TRACE_CHUNK_OPS,
            TRACE_CHUNK_OPS + 1,
            1300,
        ] {
            let ops = big_ops(n);
            for delta in [false, true] {
                let bytes = encode_v2(&ops, delta);
                assert_eq!(
                    decode_v2(&bytes).expect("decode"),
                    ops,
                    "n={n} delta={delta}"
                );
            }
        }
    }

    #[test]
    fn delta_encoding_is_smaller_on_local_traffic() {
        // Benign-like traffic: small address deltas.
        let ops: Vec<WorkloadOp> = (0..2000)
            .map(|i| WorkloadOp {
                kind: OpKind::Read,
                row: GlobalRowId::new(0, 0, 100 + (i % 7)),
            })
            .collect();
        let raw = encode_v2(&ops, false);
        let delta = encode_v2(&ops, true);
        assert!(
            delta.len() < raw.len(),
            "delta ({}) not smaller than raw ({})",
            delta.len(),
            raw.len()
        );
    }

    #[test]
    fn streaming_reader_yields_batch_sized_chunks() {
        let ops = big_ops(TRACE_CHUNK_OPS * 2 + 17);
        let bytes = encode_v2(&ops, true);
        let mut reader = StreamingTraceReader::open(Cursor::new(&bytes[..])).expect("open");
        assert_eq!(reader.total_records(), ops.len() as u64);
        assert_eq!(reader.chunk_count(), 3);
        let mut chunk = Vec::new();
        let mut all = Vec::new();
        let mut sizes = Vec::new();
        while reader.next_chunk(&mut chunk).expect("chunk") {
            sizes.push(chunk.len());
            all.extend_from_slice(&chunk);
        }
        assert_eq!(sizes, vec![TRACE_CHUNK_OPS, TRACE_CHUNK_OPS, 17]);
        assert_eq!(all, ops);
        // Rewind replays from the top.
        reader.rewind();
        assert!(reader.next_chunk(&mut chunk).expect("chunk"));
        assert_eq!(chunk, ops[..TRACE_CHUNK_OPS]);
    }

    #[test]
    fn streaming_replay_matches_materialized_replay() {
        let ops = big_ops(TRACE_CHUNK_OPS + 100);
        let bytes = encode_v2(&ops, true);
        let mut streaming = StreamingReplay::open(Cursor::new(bytes.clone())).expect("open");
        let mut materialized = TraceReplay::from_bytes(&bytes).expect("decode");
        assert_eq!(streaming.len(), ops.len() as u64);
        assert!(!streaming.is_empty());
        // Two full laps plus a bit: cycling must agree too.
        for i in 0..(ops.len() * 2 + 31) {
            assert_eq!(streaming.next_op(), materialized.next_op(), "op {i}");
        }
        assert!(streaming.exhausted());
    }

    #[test]
    fn streaming_replay_collects_first_touch_row_universe() {
        let ops = vec![
            WorkloadOp {
                kind: OpKind::Read,
                row: GlobalRowId::new(1, 0, 5),
            },
            WorkloadOp {
                kind: OpKind::Write,
                row: GlobalRowId::new(0, 0, 9),
            },
            WorkloadOp {
                kind: OpKind::Read,
                row: GlobalRowId::new(1, 0, 5),
            },
        ];
        let replay = StreamingReplay::open(Cursor::new(encode_v2(&ops, false))).expect("open");
        assert_eq!(
            replay.rows(),
            &[GlobalRowId::new(1, 0, 5), GlobalRowId::new(0, 0, 9)]
        );
    }

    #[test]
    fn empty_container_round_trips_but_cannot_replay() {
        let bytes = encode_v2(&[], true);
        assert_eq!(decode_v2(&bytes).expect("decode"), vec![]);
        assert!(StreamingReplay::open(Cursor::new(bytes)).is_err());
    }

    #[test]
    fn corrupt_containers_are_rejected() {
        let ops = big_ops(700);
        let good = encode_v2(&ops, true);

        // Truncated chunk index / trailer.
        for cut in [1, TRAILER_BYTES, TRAILER_BYTES + 10] {
            let truncated = &good[..good.len() - cut];
            assert!(
                StreamingTraceReader::open(Cursor::new(truncated)).is_err(),
                "cut {cut} accepted"
            );
        }

        // Footer magic damaged.
        let mut bad_footer = good.clone();
        let n = bad_footer.len();
        bad_footer[n - 1] = b'?';
        assert!(StreamingTraceReader::open(Cursor::new(bad_footer)).is_err());

        // High-byte version (256 + 2): the low-byte-only check would
        // miss this.
        let mut high_version = good.clone();
        high_version[5] = 1;
        assert!(StreamingTraceReader::open(Cursor::new(high_version)).is_err());

        // Header count disagrees with the index.
        let mut bad_count = good.clone();
        bad_count[8..16].copy_from_slice(&9999u64.to_le_bytes());
        assert!(StreamingTraceReader::open(Cursor::new(bad_count)).is_err());

        // Unknown flag bits.
        let mut bad_flags = good.clone();
        bad_flags[6] = 0xfe;
        assert!(StreamingTraceReader::open(Cursor::new(bad_flags)).is_err());

        // Unknown chunk encoding byte (first chunk header at offset 16).
        let mut bad_enc = good.clone();
        bad_enc[HEADER_BYTES + 4] = 9;
        let mut r = StreamingTraceReader::open(Cursor::new(bad_enc)).expect("framing ok");
        assert!(r.next_chunk(&mut Vec::new()).is_err());

        // Zero-length container and bare header.
        assert!(StreamingTraceReader::open(Cursor::new(Vec::new())).is_err());
        assert!(StreamingTraceReader::open(Cursor::new(good[..HEADER_BYTES].to_vec())).is_err());
    }

    #[test]
    fn varint_codec_round_trips() {
        for v in [0i64, 1, -1, 63, -64, 300, -300, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            put_varint(&mut buf, zigzag(v));
            let mut pos = 0;
            assert_eq!(unzigzag(get_varint(&buf, &mut pos).expect("varint")), v);
            assert_eq!(pos, buf.len());
        }
        // Truncated and overlong varints are rejected.
        assert!(get_varint(&[0x80], &mut 0).is_err());
        assert!(get_varint(&[0xff; 11], &mut 0).is_err());
    }
}
