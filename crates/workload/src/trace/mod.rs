//! The compact binary workload-trace formats (record + replay).
//!
//! Any driver run can capture the exact benign op stream it executed and
//! replay it later byte-identically — across processes, machines, and
//! (as long as the version header matches) releases. Two on-disk layouts
//! share the `DDWT` magic and the 16-byte header:
//!
//! * [`v1`] — the original monolithic layout: header + `9 * n` fixed
//!   records. Exact, trivial to parse, kept readable forever; the golden
//!   file `tests/golden/benign_v1.trace` pins it.
//! * [`v2`] — the fleet-scale layout: records framed into chunks sized
//!   to the batched kernel's [`dd_dram::BATCH_CHUNK_OPS`] boundary, each
//!   chunk raw or varint-delta encoded, with a seekable chunk index
//!   footer so a [`v2::StreamingTraceReader`] can replay a day-long
//!   trace chunk-by-chunk without materializing it. The golden file
//!   `tests/golden/corpus_v2.trace` pins it.
//!
//! Decoding either version rejects bad magic, unknown versions,
//! truncated bodies, and trailing bytes — and is hardened against
//! *hostile* headers: record counts are validated against the actual
//! body length with overflow-checked arithmetic before any allocation,
//! so a crafted 16-byte file can neither wrap a length check nor force
//! a multi-GB pre-allocation. `tests/trace_hostile.rs` holds the
//! committed hostile corpus and the never-panic proptests.

use dd_dram::GlobalRowId;

use crate::generator::{OpKind, WorkloadGenerator, WorkloadOp};

pub mod v1;
pub mod v2;

pub use v1::{decode, encode, HEADER_BYTES, RECORD_BYTES, TRACE_MAGIC, TRACE_VERSION};
pub use v2::{encode_v2, StreamingReplay, StreamingTraceReader, TRACE_CHUNK_OPS, TRACE_VERSION_V2};

/// Why a trace failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace error: {}", self.message)
    }
}

impl std::error::Error for TraceError {}

pub(crate) fn err(message: impl Into<String>) -> TraceError {
    TraceError {
        message: message.into(),
    }
}

/// Decode a trace of either supported version, dispatching on the
/// header's version field ([`v1::decode`] or a materializing pass of
/// [`v2::StreamingTraceReader`]).
///
/// # Errors
///
/// Returns a [`TraceError`] on bad magic, an unsupported version, or any
/// version-specific decode failure.
pub fn decode_any(bytes: &[u8]) -> Result<Vec<WorkloadOp>, TraceError> {
    if bytes.len() < HEADER_BYTES {
        return Err(err(format!("truncated header: {} bytes", bytes.len())));
    }
    if bytes[0..4] != TRACE_MAGIC {
        return Err(err("bad magic (not a DDWT trace)"));
    }
    match u16::from_le_bytes([bytes[4], bytes[5]]) {
        TRACE_VERSION => v1::decode(bytes),
        TRACE_VERSION_V2 => v2::decode_v2(bytes),
        version => Err(err(format!(
            "unsupported trace version {version} (this build reads v{TRACE_VERSION} and \
             v{TRACE_VERSION_V2})"
        ))),
    }
}

/// Shared record-field validation: the encoders of both versions panic
/// identically when an address does not fit the record layout.
pub(crate) fn record_fields(op: &WorkloadOp) -> (u8, u16, u16, u32) {
    let bank = u16::try_from(op.row.bank.0).expect("bank exceeds trace format (u16)");
    let subarray = u16::try_from(op.row.subarray.0).expect("subarray exceeds trace format (u16)");
    let row = u32::try_from(op.row.row.0).expect("row exceeds trace format (u32)");
    let kind = match op.kind {
        OpKind::Read => 0,
        OpKind::Write => 1,
    };
    (kind, bank, subarray, row)
}

/// Shared inverse of [`record_fields`].
pub(crate) fn record_op(
    kind: u8,
    bank: u16,
    subarray: u16,
    row: u32,
) -> Result<WorkloadOp, TraceError> {
    let kind = match kind {
        0 => OpKind::Read,
        1 => OpKind::Write,
        k => return Err(err(format!("invalid op kind {k}"))),
    };
    Ok(WorkloadOp {
        kind,
        row: GlobalRowId::new(bank as usize, subarray as usize, row as usize),
    })
}

/// Replay a recorded op stream as a [`WorkloadGenerator`].
///
/// The stream cycles when exhausted, so a short trace can back an
/// arbitrarily long run; [`TraceReplay::exhausted`] tells a driver that
/// wants exactly one pass when to stop. For traces too large to
/// materialize, use [`v2::StreamingReplay`] instead — the two are
/// bit-identical over the same op stream.
pub struct TraceReplay {
    ops: Vec<WorkloadOp>,
    pos: usize,
    laps: u64,
}

impl TraceReplay {
    /// Replay `ops` from the start.
    ///
    /// # Panics
    ///
    /// Panics when `ops` is empty.
    pub fn new(ops: Vec<WorkloadOp>) -> Self {
        assert!(!ops.is_empty(), "cannot replay an empty trace");
        TraceReplay {
            ops,
            pos: 0,
            laps: 0,
        }
    }

    /// Decode and replay a binary trace (either version; see
    /// [`decode_any`]).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] when the bytes do not decode or decode
    /// to an empty stream.
    pub fn from_bytes(bytes: &[u8]) -> Result<TraceReplay, TraceError> {
        let ops = decode_any(bytes)?;
        if ops.is_empty() {
            return Err(err("trace holds no records"));
        }
        Ok(TraceReplay::new(ops))
    }

    /// Whether at least one full pass over the trace has been replayed.
    pub fn exhausted(&self) -> bool {
        self.laps > 0
    }

    /// Number of records in the trace.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always `false`: construction rejects empty traces, so a live
    /// replay holds at least one record. (Kept so `len`/`is_empty` form
    /// the usual pair; the constructor is where emptiness is handled.)
    pub fn is_empty(&self) -> bool {
        debug_assert!(!self.ops.is_empty(), "TraceReplay invariant violated");
        false
    }
}

impl WorkloadGenerator for TraceReplay {
    fn label(&self) -> &str {
        "trace-replay"
    }

    fn next_op(&mut self) -> WorkloadOp {
        let op = self.ops[self.pos];
        self.pos += 1;
        if self.pos == self.ops.len() {
            self.pos = 0;
            self.laps += 1;
        }
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<WorkloadOp> {
        vec![
            WorkloadOp {
                kind: OpKind::Read,
                row: GlobalRowId::new(0, 0, 0),
            },
            WorkloadOp {
                kind: OpKind::Write,
                row: GlobalRowId::new(15, 7, 125),
            },
            WorkloadOp {
                kind: OpKind::Read,
                row: GlobalRowId::new(3, 2, 1),
            },
        ]
    }

    #[test]
    fn decode_any_dispatches_on_version() {
        let ops = ops();
        assert_eq!(decode_any(&encode(&ops)).expect("v1"), ops);
        assert_eq!(decode_any(&encode_v2(&ops, true)).expect("v2"), ops);
        assert_eq!(decode_any(&encode_v2(&ops, false)).expect("v2 raw"), ops);
        let mut future = encode(&ops);
        future[4..6].copy_from_slice(&3u16.to_le_bytes());
        assert!(decode_any(&future).is_err(), "future version accepted");
    }

    #[test]
    fn replay_cycles_and_reports_exhaustion() {
        let mut replay = TraceReplay::new(ops());
        assert_eq!(replay.len(), 3);
        assert!(!replay.is_empty());
        let first: Vec<WorkloadOp> = (0..3).map(|_| replay.next_op()).collect();
        assert_eq!(first, ops());
        assert!(replay.exhausted());
        assert_eq!(replay.next_op(), ops()[0], "replay must cycle");
    }

    #[test]
    fn from_bytes_reads_both_versions() {
        let mut a = TraceReplay::from_bytes(&encode(&ops())).expect("v1");
        let mut b = TraceReplay::from_bytes(&encode_v2(&ops(), true)).expect("v2");
        for _ in 0..5 {
            assert_eq!(a.next_op(), b.next_op());
        }
        assert!(TraceReplay::from_bytes(&encode(&[])).is_err(), "empty ok'd");
    }
}
