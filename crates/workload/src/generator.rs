//! Synthetic benign-traffic generators.
//!
//! Every generator is a deterministic, seeded stream of row-granular
//! memory operations ([`WorkloadOp`]) over an explicit row universe, so a
//! run is reproducible bit-for-bit from `(generator config, seed)` alone
//! — and capturable/replayable through [`crate::trace`]. The catalogue
//! models the serving traffic the paper's defense must coexist with:
//!
//! * [`ZipfianServing`] — skewed read traffic over the rows holding
//!   model weights (inference serving: a few hot layers dominate);
//! * [`StreamingScan`] — sequential sweeps with periodic writes
//!   (logging, checkpointing, batch ETL);
//! * [`PointerChase`] — dependent single-row lookups over a seeded
//!   permutation (index/graph traversal, cache-hostile);
//! * [`TenantMix`] — a weighted interleave of per-tenant sub-streams,
//!   each confined to its own bank slice ([`tenant_rows`]), modelling
//!   co-located tenants with placement affinity.

use dd_dram::{DramConfig, GlobalRowId};
use dnn_defender::{StableHash, StableHasher};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What a benign memory operation does to its row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Full-row read (`ACT` + `RD` + `PRE`).
    Read,
    /// Full-row write (`ACT` + `WR` + `PRE`).
    Write,
}

/// One benign row-granular memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkloadOp {
    /// Operation kind.
    pub kind: OpKind,
    /// Target row.
    pub row: GlobalRowId,
}

/// The deterministic single-byte tenant payload a benign write fills its
/// row with. One definition on purpose: the per-command and batched
/// issue paths (and the `repro kernel` benchmark) must agree on the
/// exact bytes a replayed write produces, or row payloads diverge.
pub fn tenant_fill(row: dd_dram::RowInSubarray) -> u8 {
    row.0 as u8 ^ 0xA5
}

/// A deterministic source of benign traffic.
///
/// Generators never touch the device themselves; the driver executes the
/// ops they emit, which is what makes record/replay exact. Generators are
/// `Send` so a paused cell (traffic included) can migrate between the
/// scenario matrix's worker threads for cross-cell sweep grouping.
pub trait WorkloadGenerator: Send {
    /// Short label for reports and traces.
    fn label(&self) -> &str;

    /// Produce the next operation of the stream.
    fn next_op(&mut self) -> WorkloadOp;
}

/// Fisher–Yates shuffle with the vendored RNG (deterministic per seed).
fn shuffle<T>(items: &mut [T], rng: &mut StdRng) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// Zipf-distributed read traffic over a row universe.
///
/// Rank order (which row is hottest) is a seeded permutation of the
/// input rows; popularity follows `P(rank k) ∝ 1/(k+1)^s`. Inference
/// serving reads weights far more than anything else writes them, so the
/// stream is read-only.
pub struct ZipfianServing {
    rows: Vec<GlobalRowId>,
    /// Cumulative (unnormalized) popularity, aligned with `rows`.
    cdf: Vec<f64>,
    total: f64,
    rng: StdRng,
}

impl ZipfianServing {
    /// Build over `rows` with Zipf exponent `exponent` (1.0 is classic).
    ///
    /// # Panics
    ///
    /// Panics when `rows` is empty.
    pub fn new(mut rows: Vec<GlobalRowId>, exponent: f64, seed: u64) -> Self {
        assert!(!rows.is_empty(), "zipfian universe must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        shuffle(&mut rows, &mut rng);
        let mut cdf = Vec::with_capacity(rows.len());
        let mut total = 0.0;
        for k in 0..rows.len() {
            total += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        ZipfianServing {
            rows,
            cdf,
            total,
            rng,
        }
    }

    /// The hottest `n` rows (rank order), for tests and diagnostics.
    pub fn hottest(&self, n: usize) -> &[GlobalRowId] {
        &self.rows[..n.min(self.rows.len())]
    }
}

impl WorkloadGenerator for ZipfianServing {
    fn label(&self) -> &str {
        "zipfian-serving"
    }

    fn next_op(&mut self) -> WorkloadOp {
        let u = self.rng.gen_range(0.0..self.total);
        let idx = self.cdf.partition_point(|&c| c <= u);
        WorkloadOp {
            kind: OpKind::Read,
            row: self.rows[idx.min(self.rows.len() - 1)],
        }
    }
}

/// Sequential sweep over a row universe with periodic writes.
pub struct StreamingScan {
    rows: Vec<GlobalRowId>,
    pos: usize,
    /// Every `write_every`-th op is a write (0 = read-only scan).
    write_every: u64,
    issued: u64,
}

impl StreamingScan {
    /// Scan `rows` in order, writing every `write_every`-th row.
    ///
    /// # Panics
    ///
    /// Panics when `rows` is empty.
    pub fn new(rows: Vec<GlobalRowId>, write_every: u64) -> Self {
        assert!(!rows.is_empty(), "scan universe must be non-empty");
        StreamingScan {
            rows,
            pos: 0,
            write_every,
            issued: 0,
        }
    }
}

impl WorkloadGenerator for StreamingScan {
    fn label(&self) -> &str {
        "streaming-scan"
    }

    fn next_op(&mut self) -> WorkloadOp {
        let row = self.rows[self.pos];
        self.pos = (self.pos + 1) % self.rows.len();
        let kind = if self.write_every > 0 && self.issued % self.write_every == self.write_every - 1
        {
            OpKind::Write
        } else {
            OpKind::Read
        };
        self.issued += 1;
        WorkloadOp { kind, row }
    }
}

/// Dependent lookups along a seeded single-cycle permutation of the
/// universe: each op's target is determined by the previous one, like an
/// index or linked-structure traversal. Read-only.
pub struct PointerChase {
    rows: Vec<GlobalRowId>,
    /// `next_of[i]` is the index visited after index `i` (one full cycle).
    next_of: Vec<usize>,
    pos: usize,
}

impl PointerChase {
    /// Build a chase over `rows` with a seed-determined cycle.
    ///
    /// # Panics
    ///
    /// Panics when `rows` is empty.
    pub fn new(rows: Vec<GlobalRowId>, seed: u64) -> Self {
        assert!(!rows.is_empty(), "chase universe must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..rows.len()).collect();
        shuffle(&mut order, &mut rng);
        let mut next_of = vec![0usize; rows.len()];
        for (i, &at) in order.iter().enumerate() {
            next_of[at] = order[(i + 1) % order.len()];
        }
        PointerChase {
            rows,
            next_of,
            pos: 0,
        }
    }
}

impl WorkloadGenerator for PointerChase {
    fn label(&self) -> &str {
        "pointer-chase"
    }

    fn next_op(&mut self) -> WorkloadOp {
        self.pos = self.next_of[self.pos];
        WorkloadOp {
            kind: OpKind::Read,
            row: self.rows[self.pos],
        }
    }
}

/// Weighted interleave of per-tenant sub-streams.
///
/// Each draw picks a tenant with probability proportional to its weight
/// and forwards that tenant's next op — co-located serving where tenants
/// share the device but keep bank/subarray placement affinity (build the
/// sub-streams over [`tenant_rows`] slices).
pub struct TenantMix {
    tenants: Vec<(Box<dyn WorkloadGenerator>, u32)>,
    total_weight: u32,
    rng: StdRng,
}

impl TenantMix {
    /// Mix `(stream, weight)` tenants.
    ///
    /// # Panics
    ///
    /// Panics when `tenants` is empty or all weights are zero.
    pub fn new(tenants: Vec<(Box<dyn WorkloadGenerator>, u32)>, seed: u64) -> Self {
        let total_weight: u32 = tenants.iter().map(|(_, w)| w).sum();
        assert!(total_weight > 0, "tenant mix needs positive total weight");
        TenantMix {
            tenants,
            total_weight,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of tenants in the mix.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }
}

impl WorkloadGenerator for TenantMix {
    fn label(&self) -> &str {
        "multi-tenant"
    }

    fn next_op(&mut self) -> WorkloadOp {
        let mut pick = self.rng.gen_range(0..self.total_weight);
        for (gen, weight) in &mut self.tenants {
            if pick < *weight {
                return gen.next_op();
            }
            pick -= *weight;
        }
        unreachable!("weighted pick within total weight")
    }
}

/// The data rows of the banks assigned to `tenant` out of `tenants`
/// co-located tenants (banks striped round-robin: tenant `t` owns every
/// bank `b` with `b % tenants == t`). This is the placement-affinity
/// universe for [`TenantMix`] sub-streams.
///
/// # Panics
///
/// Panics when `tenants` is zero or exceeds the bank count.
pub fn tenant_rows(config: &DramConfig, tenant: usize, tenants: usize) -> Vec<GlobalRowId> {
    assert!(
        tenants > 0 && tenants <= config.banks,
        "tenant count must be in 1..=banks"
    );
    let data_rows = config.data_rows_per_subarray();
    let mut rows = Vec::new();
    for bank in (tenant % tenants..config.banks).step_by(tenants) {
        for subarray in 0..config.subarrays_per_bank {
            for row in 0..data_rows {
                rows.push(GlobalRowId::new(bank, subarray, row));
            }
        }
    }
    rows
}

/// Every data row of the device, in address order.
pub fn all_data_rows(config: &DramConfig) -> Vec<GlobalRowId> {
    tenant_rows(config, 0, 1)
}

/// The background-load axis of the scenario matrix: how much benign
/// traffic shares the device with the attack.
///
/// Each level is a fixed recipe of generators, per-window op budget, and
/// batch factor ([`BackgroundLoad::batch`]) — all deterministic given a
/// seed, so a load level is a *configuration*, hashable into cell cache
/// keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackgroundLoad {
    /// No benign traffic (the attacker-only cells of earlier PRs).
    None,
    /// A single zipfian serving stream at modest volume.
    Light,
    /// Serving + streaming scan + pointer chase at high volume.
    Heavy,
    /// Four co-located tenants with bank affinity ([`TenantMix`]).
    MultiTenant,
}

impl BackgroundLoad {
    /// Every load level, in increasing-interference order.
    pub const ALL: [BackgroundLoad; 4] = [
        BackgroundLoad::None,
        BackgroundLoad::Light,
        BackgroundLoad::Heavy,
        BackgroundLoad::MultiTenant,
    ];

    /// Canonical label — used in scenario rows, cell seeds, and docs.
    pub fn label(self) -> &'static str {
        match self {
            BackgroundLoad::None => "none",
            BackgroundLoad::Light => "light",
            BackgroundLoad::Heavy => "heavy",
            BackgroundLoad::MultiTenant => "multi-tenant",
        }
    }

    /// Parse a canonical label.
    pub fn parse(label: &str) -> Option<BackgroundLoad> {
        BackgroundLoad::ALL.into_iter().find(|l| l.label() == label)
    }

    /// Benign ops issued per refresh window (the thinned sample rate).
    pub fn ops_per_window(self) -> u64 {
        match self {
            BackgroundLoad::None => 0,
            BackgroundLoad::Light => 128,
            BackgroundLoad::Heavy => 512,
            BackgroundLoad::MultiTenant => 256,
        }
    }

    /// How many real activations each sampled op stands for. The driver
    /// executes one data-moving command per op plus `batch - 1` extra
    /// activations, so disturbance and counter pressure scale with the
    /// nominal traffic intensity without simulating every command. At
    /// the heavy level a zipfian hotspot sees thousands of activations
    /// per refresh window — enough to cross counter-defense trip points,
    /// which is exactly the false-positive regime the workload
    /// experiment measures.
    pub fn batch(self) -> u64 {
        match self {
            BackgroundLoad::None => 0,
            BackgroundLoad::Light => 16,
            BackgroundLoad::Heavy => 64,
            BackgroundLoad::MultiTenant => 32,
        }
    }

    /// Build the load's generator streams as `(stream, weight)` pairs for
    /// the event-driven merge. `hot` is the serving working set (the
    /// weight rows when a model is deployed); `cold` is the non-weight
    /// data region that scans and writes are confined to. Returns an
    /// empty vector for [`BackgroundLoad::None`].
    pub fn build_streams(
        self,
        seed: u64,
        config: &DramConfig,
        hot: &[GlobalRowId],
        cold: &[GlobalRowId],
    ) -> Vec<(Box<dyn WorkloadGenerator>, u32)> {
        let hot = if hot.is_empty() { cold } else { hot };
        match self {
            BackgroundLoad::None => Vec::new(),
            BackgroundLoad::Light => vec![(
                Box::new(ZipfianServing::new(hot.to_vec(), 1.0, seed))
                    as Box<dyn WorkloadGenerator>,
                1,
            )],
            BackgroundLoad::Heavy => vec![
                (
                    Box::new(ZipfianServing::new(hot.to_vec(), 1.0, seed))
                        as Box<dyn WorkloadGenerator>,
                    4,
                ),
                (Box::new(StreamingScan::new(cold.to_vec(), 16)), 2),
                (Box::new(PointerChase::new(cold.to_vec(), seed ^ 0xc4a5)), 1),
            ],
            BackgroundLoad::MultiTenant => {
                let tenants: Vec<(Box<dyn WorkloadGenerator>, u32)> = (0..4)
                    .map(|t| {
                        let affinity = tenant_rows(config, t, 4);
                        let stream: Box<dyn WorkloadGenerator> = match t {
                            // Tenant 0 serves the model; the rest run
                            // their own mixes inside their bank slices.
                            0 => Box::new(ZipfianServing::new(hot.to_vec(), 1.0, seed)),
                            1 => Box::new(StreamingScan::new(affinity, 8)),
                            2 => Box::new(ZipfianServing::new(affinity, 0.8, seed ^ 0x7e2a)),
                            _ => Box::new(PointerChase::new(affinity, seed ^ 0x11d7)),
                        };
                        (stream, if t == 0 { 3 } else { 1 })
                    })
                    .collect();
                vec![(
                    Box::new(TenantMix::new(tenants, seed ^ 0x9bb1)) as Box<dyn WorkloadGenerator>,
                    1,
                )]
            }
        }
    }
}

impl std::fmt::Display for BackgroundLoad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl StableHash for BackgroundLoad {
    fn stable_hash(&self, hasher: &mut StableHasher) {
        // The label is injective over the variants; the per-level recipe
        // constants are versioned by `crate::WORKLOAD_PROTOCOL_VERSION`.
        hasher.write_str("BackgroundLoad");
        hasher.write_str(self.label());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe(n: usize) -> Vec<GlobalRowId> {
        (0..n).map(|r| GlobalRowId::new(0, 0, r)).collect()
    }

    #[test]
    fn zipfian_is_deterministic_and_skewed() {
        let mut a = ZipfianServing::new(universe(64), 1.0, 7);
        let mut b = ZipfianServing::new(universe(64), 1.0, 7);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..4000 {
            let (oa, ob) = (a.next_op(), b.next_op());
            assert_eq!(oa, ob, "same seed must replay identically");
            *counts.entry(oa.row).or_insert(0u64) += 1;
            assert_eq!(oa.kind, OpKind::Read);
        }
        let hottest = counts[&a.hottest(1)[0]];
        let median_row = a.hottest(64)[32];
        assert!(
            hottest > 8 * counts.get(&median_row).copied().unwrap_or(0).max(1) / 2,
            "zipf skew missing: hottest={hottest}"
        );
    }

    #[test]
    fn zipfian_seeds_differ() {
        let mut a = ZipfianServing::new(universe(64), 1.0, 1);
        let mut b = ZipfianServing::new(universe(64), 1.0, 2);
        let same = (0..100).filter(|_| a.next_op() == b.next_op()).count();
        assert!(same < 100, "different seeds produced identical streams");
    }

    #[test]
    fn scan_sweeps_sequentially_with_writes() {
        let mut s = StreamingScan::new(universe(8), 4);
        let ops: Vec<WorkloadOp> = (0..16).map(|_| s.next_op()).collect();
        for (i, op) in ops.iter().enumerate() {
            assert_eq!(op.row.row.0, i % 8, "scan must be sequential");
        }
        let writes = ops.iter().filter(|o| o.kind == OpKind::Write).count();
        assert_eq!(writes, 4, "one write per write_every ops");
    }

    #[test]
    fn pointer_chase_visits_every_row_once_per_cycle() {
        let mut c = PointerChase::new(universe(16), 5);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            seen.insert(c.next_op().row);
        }
        assert_eq!(seen.len(), 16, "chase must cycle through the universe");
    }

    #[test]
    fn tenant_rows_partition_banks() {
        let config = DramConfig::lpddr4_small();
        let mut all = std::collections::HashSet::new();
        for t in 0..4 {
            for row in tenant_rows(&config, t, 4) {
                assert_eq!(row.bank.0 % 4, t, "row outside tenant's bank slice");
                assert!(all.insert(row), "tenant universes overlap");
            }
        }
        assert_eq!(all.len(), 16 * 8 * 126);
    }

    #[test]
    fn load_labels_round_trip_and_streams_build() {
        let config = DramConfig::lpddr4_small();
        let hot = universe(32);
        let cold = tenant_rows(&config, 1, 2);
        for load in BackgroundLoad::ALL {
            assert_eq!(BackgroundLoad::parse(load.label()), Some(load));
            let streams = load.build_streams(9, &config, &hot, &cold);
            assert_eq!(streams.is_empty(), load == BackgroundLoad::None);
            for (mut gen, weight) in streams {
                assert!(weight > 0);
                let _ = gen.next_op();
            }
        }
    }

    #[test]
    fn multi_tenant_mix_draws_from_all_tenants() {
        let config = DramConfig::lpddr4_small();
        let hot: Vec<GlobalRowId> = tenant_rows(&config, 0, 4).into_iter().take(64).collect();
        let cold = all_data_rows(&config);
        let mut streams = BackgroundLoad::MultiTenant.build_streams(3, &config, &hot, &cold);
        let (gen, _) = &mut streams[0];
        let mut banks = std::collections::HashSet::new();
        for _ in 0..2000 {
            banks.insert(gen.next_op().row.bank.0 % 4);
        }
        assert_eq!(banks.len(), 4, "a tenant never got scheduled");
    }
}
