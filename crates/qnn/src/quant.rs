//! Symmetric 8-bit weight quantization and two's-complement bit access.
//!
//! The paper attacks 8-bit weight-quantized DNNs whose weights are stored
//! in two's-complement form ({Bₗ} in §2.2). We use symmetric per-tensor
//! quantization: `q = clamp(round(w / scale), -128, 127)` with
//! `scale = max|w| / 127`, and expose the raw bit view the RowHammer
//! attacker manipulates.

use serde::{Deserialize, Serialize};

/// Number of bits per quantized weight.
pub const WEIGHT_BITS: u8 = 8;

/// Scale factor of a symmetric 8-bit quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    /// Dequantization scale: `w ≈ scale * q`.
    pub scale: f32,
}

impl QuantParams {
    /// Fit a symmetric quantizer to a weight slice.
    ///
    /// Degenerate all-zero tensors get scale 1 so that dequantization is
    /// well defined.
    pub fn fit(weights: &[f32]) -> Self {
        let max_abs = weights.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
        QuantParams {
            scale: if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 },
        }
    }

    /// Quantize one weight.
    pub fn quantize(&self, w: f32) -> i8 {
        (w / self.scale).round().clamp(-128.0, 127.0) as i8
    }

    /// Dequantize one weight.
    pub fn dequantize(&self, q: i8) -> f32 {
        self.scale * q as f32
    }
}

/// Read bit `bit` (0 = LSB … 7 = sign) of a two's-complement weight.
///
/// # Panics
///
/// Panics if `bit >= 8`.
pub fn weight_bit(q: i8, bit: u8) -> bool {
    assert!(bit < WEIGHT_BITS, "bit index out of range");
    (q as u8 >> bit) & 1 == 1
}

/// Flip bit `bit` of a two's-complement weight, returning the new value.
///
/// # Panics
///
/// Panics if `bit >= 8`.
pub fn flip_weight_bit(q: i8, bit: u8) -> i8 {
    assert!(bit < WEIGHT_BITS, "bit index out of range");
    (q as u8 ^ (1u8 << bit)) as i8
}

/// Signed change in the integer value caused by flipping `bit` of `q`:
/// `flip(q) - q` without actually flipping. Used for gradient-based bit
/// ranking (`∂L/∂b ≈ g_w · scale · Δq`).
pub fn flip_delta(q: i8, bit: u8) -> i32 {
    let magnitude: i32 = if bit == 7 { -128 } else { 1 << bit };
    if weight_bit(q, bit) {
        -magnitude
    } else {
        magnitude
    }
}

/// Hamming distance between two quantized buffers — the attack-budget
/// metric the BFA minimizes (§2.2).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn hamming_distance(a: &[i8], b: &[i8]) -> u64 {
    assert_eq!(a.len(), b.len(), "hamming distance requires equal lengths");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| ((x as u8) ^ (y as u8)).count_ones() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_quantize_roundtrip_error_is_small() {
        let ws = [-1.0f32, -0.5, 0.0, 0.3, 0.9];
        let qp = QuantParams::fit(&ws);
        for &w in &ws {
            let q = qp.quantize(w);
            assert!((qp.dequantize(q) - w).abs() <= qp.scale / 2.0 + 1e-6);
        }
    }

    #[test]
    fn fit_handles_all_zero() {
        let qp = QuantParams::fit(&[0.0, 0.0]);
        assert_eq!(qp.scale, 1.0);
        assert_eq!(qp.quantize(0.0), 0);
    }

    #[test]
    fn extremes_map_to_limits() {
        let qp = QuantParams::fit(&[2.0, -2.0]);
        assert_eq!(qp.quantize(2.0), 127);
        assert_eq!(qp.quantize(-2.0), -127);
        // Values beyond the fit range clamp.
        assert_eq!(qp.quantize(100.0), 127);
        assert_eq!(qp.quantize(-100.0), -128);
    }

    #[test]
    fn bit_view_is_twos_complement() {
        // -1 = 0b1111_1111
        assert!((0..8).all(|b| weight_bit(-1, b)));
        // 1 = 0b0000_0001
        assert!(weight_bit(1, 0));
        assert!(!(1..8).any(|b| weight_bit(1, b)));
        // Sign bit of a negative number.
        assert!(weight_bit(-128, 7));
        assert!(!weight_bit(127, 7));
    }

    #[test]
    fn flip_bit_matches_paper_example() {
        // Fig. 3: 1001 -> 0011 involves flipping bits 3 and 1 of a 4-bit
        // pattern; we verify our 8-bit primitive behaves bitwise.
        let q = 0b0000_1001i8; // 9
        let q = flip_weight_bit(q, 3); // clear bit 3 -> 1
        let q = flip_weight_bit(q, 1); // set bit 1 -> 3
        assert_eq!(q, 0b0000_0011);
    }

    #[test]
    fn flip_is_involution() {
        for q in i8::MIN..=i8::MAX {
            for bit in 0..8 {
                assert_eq!(flip_weight_bit(flip_weight_bit(q, bit), bit), q);
            }
        }
    }

    #[test]
    fn flip_delta_predicts_flip() {
        for q in i8::MIN..=i8::MAX {
            for bit in 0..8 {
                let predicted = q as i32 + flip_delta(q, bit);
                assert_eq!(predicted, flip_weight_bit(q, bit) as i32, "q={q} bit={bit}");
            }
        }
    }

    #[test]
    fn msb_flip_is_most_damaging() {
        // Flipping the sign bit of a large positive weight swings it by 256
        // scale units — the paper's observation that MSBs dominate BFA.
        assert_eq!(flip_delta(127, 7), -128);
        assert_eq!(flip_weight_bit(127, 7), -1);
    }

    #[test]
    fn hamming_distance_counts_bits() {
        assert_eq!(hamming_distance(&[0, 0], &[0, 0]), 0);
        assert_eq!(hamming_distance(&[0b101, 0], &[0, 0]), 2);
        assert_eq!(hamming_distance(&[-1], &[0]), 8);
    }
}
