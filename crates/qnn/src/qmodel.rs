//! The quantized model: a float [`Network`] kept in sync with the `i8`
//! two's-complement weight store that the RowHammer attacker corrupts.
//!
//! Inference always runs through the float network with *dequantized*
//! weights (exactly how an 8-bit model executes after the weights leave
//! DRAM), so a bit flip in the quantized store immediately affects
//! accuracy once synced.

use serde::{Deserialize, Serialize};

use crate::qtensor::QTensor;
use crate::quant::{flip_delta, WEIGHT_BITS};
use dd_nn::loss::{cross_entropy, cross_entropy_grad};
use dd_nn::model::Network;
use dd_nn::Tensor;

/// Address of one bit in the quantized weight store.
///
/// `param` indexes the quantizable parameters in network visit order (the
/// "layer" of the paper's `(l, k)` notation), `index` the weight within
/// that parameter, `bit` the bit position (0 = LSB, 7 = sign).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BitAddr {
    /// Quantizable-parameter index (layer).
    pub param: usize,
    /// Weight index within the parameter.
    pub index: usize,
    /// Bit position within the 8-bit weight.
    pub bit: u8,
}

/// Record of one applied bit flip (enough to undo it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitFlip {
    /// Where.
    pub addr: BitAddr,
    /// Quantized value before.
    pub old: i8,
    /// Quantized value after.
    pub new: i8,
}

/// An 8-bit weight-quantized network.
#[derive(Debug)]
pub struct QModel {
    net: Network,
    qtensors: Vec<QTensor>,
    /// Position of each quantizable parameter in the full visit order.
    param_positions: Vec<usize>,
}

impl QModel {
    /// Quantize a trained float network. The float weights are replaced by
    /// their dequantized values so that float inference matches 8-bit
    /// inference exactly.
    pub fn from_network(mut net: Network) -> Self {
        let mut qtensors = Vec::new();
        let mut param_positions = Vec::new();
        let mut pos = 0;
        net.visit_params(&mut |p| {
            if p.quantizable {
                let qt = QTensor::quantize(p.name.clone(), &p.value);
                p.value = qt.dequantize();
                qtensors.push(qt);
                param_positions.push(pos);
            }
            pos += 1;
        });
        QModel {
            net,
            qtensors,
            param_positions,
        }
    }

    /// The underlying float network (weights are dequantized-in-sync).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Display name.
    pub fn name(&self) -> &str {
        self.net.name()
    }

    /// Number of quantizable parameters ("layers" in attack terms).
    pub fn num_qparams(&self) -> usize {
        self.qtensors.len()
    }

    /// Quantized view of parameter `param`.
    ///
    /// # Panics
    ///
    /// Panics if `param` is out of range.
    pub fn qtensor(&self, param: usize) -> &QTensor {
        &self.qtensors[param]
    }

    /// Total number of attackable weight bits.
    pub fn total_bits(&self) -> usize {
        self.qtensors.iter().map(QTensor::bits).sum()
    }

    /// Total number of quantized weights.
    pub fn total_weights(&self) -> usize {
        self.qtensors.iter().map(QTensor::len).sum()
    }

    /// Read one bit.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn bit(&self, addr: BitAddr) -> bool {
        self.qtensors[addr.param].bit(addr.index, addr.bit)
    }

    /// Flip one bit in the quantized store and propagate to the float
    /// network.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn flip_bit(&mut self, addr: BitAddr) -> BitFlip {
        let (old, new) = self.qtensors[addr.param].flip_bit(addr.index, addr.bit);
        self.sync_weight(addr.param, addr.index);
        BitFlip { addr, old, new }
    }

    /// Undo a flip produced by [`QModel::flip_bit`].
    pub fn unflip(&mut self, flip: BitFlip) {
        let current = self.qtensors[flip.addr.param].get(flip.addr.index);
        debug_assert_eq!(current, flip.new, "unflip of a stale flip record");
        self.qtensors[flip.addr.param].flip_bit(flip.addr.index, flip.addr.bit);
        self.sync_weight(flip.addr.param, flip.addr.index);
    }

    fn sync_weight(&mut self, param: usize, index: usize) {
        let value = self.qtensors[param].dequantize_at(index);
        let target = self.param_positions[param];
        let mut pos = 0;
        self.net.visit_params(&mut |p| {
            if pos == target {
                p.value.as_mut_slice()[index] = value;
            }
            pos += 1;
        });
    }

    /// Rewrite one whole parameter of the float network from its qtensor.
    fn sync_param(&mut self, param: usize) {
        let value = self.qtensors[param].dequantize();
        let target = self.param_positions[param];
        let mut pos = 0;
        self.net.visit_params(&mut |p| {
            if pos == target {
                p.value = value.clone();
            }
            pos += 1;
        });
    }

    /// Overwrite the quantized store of parameter `param` from a byte
    /// image (e.g. read back from simulated DRAM) and resync.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn load_param_bytes(&mut self, param: usize, bytes: &[u8]) {
        self.qtensors[param].load_bytes(bytes);
        self.sync_param(param);
    }

    /// Snapshot the full quantized state.
    pub fn snapshot_q(&self) -> Vec<Vec<i8>> {
        self.qtensors.iter().map(|qt| qt.as_q().to_vec()).collect()
    }

    /// Restore a snapshot taken with [`QModel::snapshot_q`] and resync the
    /// float network.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot does not match the model structure.
    pub fn restore_q(&mut self, snapshot: &[Vec<i8>]) {
        assert_eq!(snapshot.len(), self.qtensors.len(), "snapshot mismatch");
        for (i, q) in snapshot.iter().enumerate() {
            let bytes: Vec<u8> = q.iter().map(|&v| v as u8).collect();
            self.qtensors[i].load_bytes(&bytes);
            self.sync_param(i);
        }
    }

    /// Hamming distance of the current weights from a snapshot — the
    /// attacker's bit budget consumed so far.
    pub fn hamming_from(&self, snapshot: &[Vec<i8>]) -> u64 {
        self.qtensors
            .iter()
            .zip(snapshot)
            .map(|(qt, snap)| crate::quant::hamming_distance(qt.as_q(), snap))
            .sum()
    }

    /// Inference forward pass.
    pub fn forward(&mut self, images: &Tensor) -> Tensor {
        self.net.forward(images, false)
    }

    /// Mean cross-entropy loss on a batch.
    pub fn loss(&mut self, images: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.forward(images);
        cross_entropy(&logits, labels)
    }

    /// Classification accuracy on a batch.
    pub fn accuracy(&mut self, images: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.forward(images);
        dd_nn::loss::accuracy(&logits, labels)
    }

    /// Gradients of the loss w.r.t. every quantizable parameter
    /// (dequantized scale), in `param` order. This is the `|∇_B L|` the
    /// BFA ranks bits by.
    pub fn weight_grads(&mut self, images: &Tensor, labels: &[usize]) -> Vec<Tensor> {
        self.net.zero_grad();
        let logits = self.net.forward(images, false);
        let grad = cross_entropy_grad(&logits, labels);
        self.net.backward(&grad);
        let mut grads = Vec::with_capacity(self.qtensors.len());
        self.net.visit_params(&mut |p| {
            if p.quantizable {
                grads.push(p.grad.clone());
            }
        });
        grads
    }

    /// First-order estimate of the loss increase from flipping `addr`,
    /// given precomputed weight gradients: `g · scale · Δq`.
    ///
    /// # Panics
    ///
    /// Panics if the address or gradient list is inconsistent.
    pub fn flip_gain(&self, grads: &[Tensor], addr: BitAddr) -> f32 {
        let qt = &self.qtensors[addr.param];
        let g = grads[addr.param].as_slice()[addr.index];
        let delta = flip_delta(qt.get(addr.index), addr.bit) as f32;
        g * qt.quant_params().scale * delta
    }

    /// Iterate all bit addresses of one parameter.
    pub fn param_bits(&self, param: usize) -> impl Iterator<Item = BitAddr> + '_ {
        let len = self.qtensors[param].len();
        (0..len)
            .flat_map(move |index| (0..WEIGHT_BITS).map(move |bit| BitAddr { param, index, bit }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_nn::init::seeded_rng;
    use dd_nn::layers::{Flatten, Linear, Relu};

    fn tiny_qmodel() -> QModel {
        let mut rng = seeded_rng(3);
        let net = Network::new("tiny")
            .push(Flatten::new())
            .push(Linear::kaiming("fc1", 8, 16, &mut rng))
            .push(Relu::new())
            .push(Linear::kaiming("fc2", 16, 4, &mut rng));
        QModel::from_network(net)
    }

    fn batch() -> (Tensor, Vec<usize>) {
        let mut rng = seeded_rng(5);
        let x = dd_nn::init::normal(&[6, 1, 2, 4], 1.0, &mut rng);
        (x, vec![0, 1, 2, 3, 0, 1])
    }

    #[test]
    fn structure_is_discovered() {
        let qm = tiny_qmodel();
        assert_eq!(qm.num_qparams(), 2);
        assert_eq!(qm.total_weights(), 8 * 16 + 16 * 4);
        assert_eq!(qm.total_bits(), qm.total_weights() * 8);
    }

    #[test]
    fn flip_changes_inference() {
        let mut qm = tiny_qmodel();
        let (x, _) = batch();
        let before = qm.forward(&x);
        // Flip the sign bit of several weights of the first layer.
        for index in 0..8 {
            qm.flip_bit(BitAddr {
                param: 0,
                index,
                bit: 7,
            });
        }
        let after = qm.forward(&x);
        assert_ne!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn unflip_restores_exactly() {
        let mut qm = tiny_qmodel();
        let (x, _) = batch();
        let before = qm.forward(&x);
        let snap = qm.snapshot_q();
        let flip = qm.flip_bit(BitAddr {
            param: 1,
            index: 3,
            bit: 6,
        });
        assert_eq!(qm.hamming_from(&snap), 1);
        qm.unflip(flip);
        assert_eq!(qm.hamming_from(&snap), 0);
        let after = qm.forward(&x);
        assert_eq!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut qm = tiny_qmodel();
        let snap = qm.snapshot_q();
        for i in 0..5 {
            qm.flip_bit(BitAddr {
                param: 0,
                index: i,
                bit: 7,
            });
        }
        assert_eq!(qm.hamming_from(&snap), 5);
        qm.restore_q(&snap);
        assert_eq!(qm.hamming_from(&snap), 0);
    }

    #[test]
    fn flip_gain_predicts_loss_direction() {
        let mut qm = tiny_qmodel();
        let (x, labels) = batch();
        let grads = qm.weight_grads(&x, &labels);
        // Find the highest-gain MSB flip in layer 0 and verify the real
        // loss moves in the predicted direction.
        let base = qm.loss(&x, &labels);
        let best = qm
            .param_bits(0)
            .filter(|a| a.bit == 7)
            .max_by(|a, b| {
                qm.flip_gain(&grads, *a)
                    .partial_cmp(&qm.flip_gain(&grads, *b))
                    .unwrap()
            })
            .unwrap();
        let gain = qm.flip_gain(&grads, best);
        assert!(gain > 0.0, "no positive-gain flip found");
        qm.flip_bit(best);
        let after = qm.loss(&x, &labels);
        assert!(after > base, "predicted-harmful flip did not increase loss");
    }

    #[test]
    fn load_param_bytes_syncs_float_net() {
        let mut qm = tiny_qmodel();
        let (x, _) = batch();
        let before = qm.forward(&x);
        let mut bytes = qm.qtensor(0).to_bytes();
        for b in bytes.iter_mut().take(16) {
            *b ^= 0x80; // flip sign bits
        }
        qm.load_param_bytes(0, &bytes);
        let after = qm.forward(&x);
        assert_ne!(before.as_slice(), after.as_slice());
    }

    #[test]
    fn param_bits_enumerates_all() {
        let qm = tiny_qmodel();
        assert_eq!(qm.param_bits(1).count(), 16 * 4 * 8);
    }
}
