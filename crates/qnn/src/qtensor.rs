//! A quantized parameter tensor: `i8` storage + scale + bit addressing.

use serde::{Deserialize, Serialize};

use crate::quant::{flip_weight_bit, hamming_distance, weight_bit, QuantParams, WEIGHT_BITS};
use dd_nn::Tensor;

/// One quantized weight tensor of a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTensor {
    name: String,
    shape: Vec<usize>,
    q: Vec<i8>,
    params: QuantParams,
}

impl QTensor {
    /// Quantize a float tensor.
    pub fn quantize(name: impl Into<String>, value: &Tensor) -> Self {
        let params = QuantParams::fit(value.as_slice());
        let q = value
            .as_slice()
            .iter()
            .map(|&w| params.quantize(w))
            .collect();
        QTensor {
            name: name.into(),
            shape: value.shape().to_vec(),
            q,
            params,
        }
    }

    /// Parameter name (mirrors the float parameter it was derived from).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of weights.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Number of addressable bits.
    pub fn bits(&self) -> usize {
        self.q.len() * WEIGHT_BITS as usize
    }

    /// Quantizer parameters.
    pub fn quant_params(&self) -> QuantParams {
        self.params
    }

    /// Raw quantized values.
    pub fn as_q(&self) -> &[i8] {
        &self.q
    }

    /// Quantized value at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn get(&self, index: usize) -> i8 {
        self.q[index]
    }

    /// Read bit `bit` of weight `index`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn bit(&self, index: usize, bit: u8) -> bool {
        weight_bit(self.q[index], bit)
    }

    /// Flip bit `bit` of weight `index`, returning `(old, new)` values.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn flip_bit(&mut self, index: usize, bit: u8) -> (i8, i8) {
        let old = self.q[index];
        let new = flip_weight_bit(old, bit);
        self.q[index] = new;
        (old, new)
    }

    /// Dequantize the whole tensor into a float [`Tensor`].
    pub fn dequantize(&self) -> Tensor {
        let data = self.q.iter().map(|&q| self.params.dequantize(q)).collect();
        Tensor::from_vec(&self.shape, data)
    }

    /// Dequantized value of one weight.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn dequantize_at(&self, index: usize) -> f32 {
        self.params.dequantize(self.q[index])
    }

    /// Hamming distance from another quantized state of the same tensor.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn hamming_to(&self, other: &QTensor) -> u64 {
        hamming_distance(&self.q, &other.q)
    }

    /// Pack the quantized weights into bytes for storage in DRAM rows.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.q.iter().map(|&v| v as u8).collect()
    }

    /// Overwrite the quantized values from a byte image (the DRAM-resident
    /// copy after RowHammer corruption).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn load_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(bytes.len(), self.q.len(), "byte image length mismatch");
        for (q, &b) in self.q.iter_mut().zip(bytes) {
            *q = b as i8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QTensor {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, -1.0, 0.5, 0.0]);
        QTensor::quantize("w", &t)
    }

    #[test]
    fn quantize_dequantize_close() {
        let qt = sample();
        let back = qt.dequantize();
        for (a, b) in back.as_slice().iter().zip(&[1.0, -1.0, 0.5, 0.0]) {
            assert!((a - b).abs() < 0.01);
        }
        assert_eq!(qt.bits(), 32);
    }

    #[test]
    fn flip_bit_changes_value_and_back() {
        let mut qt = sample();
        let before = qt.get(0);
        let (old, new) = qt.flip_bit(0, 7);
        assert_eq!(old, before);
        assert_ne!(new, before);
        qt.flip_bit(0, 7);
        assert_eq!(qt.get(0), before);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut qt = sample();
        let bytes = qt.to_bytes();
        let orig = qt.clone();
        qt.flip_bit(2, 3);
        qt.load_bytes(&bytes);
        assert_eq!(qt, orig);
    }

    #[test]
    fn hamming_counts_flips() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.hamming_to(&b), 0);
        b.flip_bit(0, 0);
        b.flip_bit(1, 5);
        assert_eq!(a.hamming_to(&b), 2);
    }
}
