//! Victim model zoo: scaled-down VGG-11 and ResNet-18/20/34 plus an MLP.
//!
//! The topologies match the paper's victims (VGG conv stacks, ResNet basic
//! blocks with identity/projection shortcuts); widths are divided by a
//! large factor so that CPU-only pure-Rust experiments finish (see the
//! substitution table in DESIGN.md). `base_width` scales every stage.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dd_nn::layers::{ChannelNorm, Conv2d, Flatten, GlobalAvgPool, Layer, Linear, Relu};
use dd_nn::model::{Network, ResidualBlock};
use dd_nn::ops::ConvGeometry;

/// Which victim architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// Two-layer MLP (sanity-check victim).
    Mlp,
    /// VGG-11-style conv stack (paper: CIFAR-10 victim, Fig 9a).
    Vgg11,
    /// ResNet-18-style residual net (paper: ImageNet victim, Fig 9b).
    ResNet18,
    /// ResNet-20-style residual net (paper: Table 3 victim).
    ResNet20,
    /// ResNet-34-style residual net (paper: Fig 1b / Fig 9c victim).
    ResNet34,
}

impl Architecture {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Architecture::Mlp => "mlp",
            Architecture::Vgg11 => "vgg11",
            Architecture::ResNet18 => "resnet18",
            Architecture::ResNet20 => "resnet20",
            Architecture::ResNet34 => "resnet34",
        }
    }
}

/// Model-construction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Architecture to build.
    pub arch: Architecture,
    /// Input channels (3 for the synthetic image datasets).
    pub in_channels: usize,
    /// Input spatial side (16 for the synthetic datasets).
    pub image_side: usize,
    /// Output classes.
    pub classes: usize,
    /// Base channel width (stage widths are multiples of this).
    pub base_width: usize,
}

impl ModelConfig {
    /// Default config for an architecture on a given dataset shape.
    pub fn new(arch: Architecture, classes: usize) -> Self {
        ModelConfig {
            arch,
            in_channels: 3,
            image_side: 16,
            classes,
            base_width: 8,
        }
    }

    /// Override the base width (used by fast benches).
    pub fn with_base_width(mut self, w: usize) -> Self {
        self.base_width = w;
        self
    }
}

fn conv3(name: &str, ic: usize, oc: usize, stride: usize, rng: &mut impl Rng) -> Conv2d {
    let g = ConvGeometry {
        in_channels: ic,
        out_channels: oc,
        kernel: 3,
        stride,
        padding: 1,
    };
    Conv2d::kaiming(name, g, rng)
}

fn conv1(name: &str, ic: usize, oc: usize, stride: usize, rng: &mut impl Rng) -> Conv2d {
    let g = ConvGeometry {
        in_channels: ic,
        out_channels: oc,
        kernel: 1,
        stride,
        padding: 0,
    };
    Conv2d::kaiming(name, g, rng)
}

/// ResNet basic block `ic → oc` with the given stride.
fn basic_block(
    name: &str,
    ic: usize,
    oc: usize,
    stride: usize,
    rng: &mut impl Rng,
) -> ResidualBlock {
    let main: Vec<Box<dyn Layer>> = vec![
        Box::new(conv3(&format!("{name}.conv1"), ic, oc, stride, rng)),
        Box::new(ChannelNorm::new(format!("{name}.bn1"), oc)),
        Box::new(Relu::new()),
        Box::new(conv3(&format!("{name}.conv2"), oc, oc, 1, rng)),
        Box::new(ChannelNorm::new(format!("{name}.bn2"), oc)),
    ];
    let shortcut: Vec<Box<dyn Layer>> = if stride != 1 || ic != oc {
        vec![
            Box::new(conv1(&format!("{name}.downsample"), ic, oc, stride, rng)),
            Box::new(ChannelNorm::new(format!("{name}.bn_ds"), oc)),
        ]
    } else {
        Vec::new()
    };
    ResidualBlock::new(name.to_string(), main, shortcut)
}

fn resnet(
    name: &str,
    config: &ModelConfig,
    stage_blocks: &[usize],
    stage_width_mults: &[usize],
    rng: &mut impl Rng,
) -> Network {
    let w = config.base_width;
    let mut net = Network::new(name);
    net.push_boxed(Box::new(conv3("stem.conv", config.in_channels, w, 1, rng)));
    net.push_boxed(Box::new(ChannelNorm::new("stem.bn", w)));
    net.push_boxed(Box::new(Relu::new()));
    let mut ic = w;
    for (s, (&blocks, &mult)) in stage_blocks.iter().zip(stage_width_mults).enumerate() {
        let oc = w * mult;
        for b in 0..blocks {
            let stride = if s > 0 && b == 0 { 2 } else { 1 };
            let bname = format!("layer{}.{}", s + 1, b);
            net.push_boxed(Box::new(basic_block(&bname, ic, oc, stride, rng)));
            ic = oc;
        }
    }
    net.push_boxed(Box::new(GlobalAvgPool::new()));
    net.push_boxed(Box::new(Linear::kaiming("fc", ic, config.classes, rng)));
    net
}

fn vgg11(config: &ModelConfig, rng: &mut impl Rng) -> Network {
    let w = config.base_width;
    let mut net = Network::new("vgg11");
    // Stage plan mirrors VGG-11: 8 convs in 5 stages + 3 FC layers,
    // pooling after stages 2–5 (16 → 8 → 4 → 2 → 1).
    let stages: &[(usize, usize)] = &[(1, w), (1, 2 * w), (2, 4 * w), (2, 8 * w), (2, 8 * w)];
    let mut ic = config.in_channels;
    let mut conv_idx = 0;
    for (s, &(convs, oc)) in stages.iter().enumerate() {
        for _ in 0..convs {
            conv_idx += 1;
            net.push_boxed(Box::new(conv3(&format!("conv{conv_idx}"), ic, oc, 1, rng)));
            net.push_boxed(Box::new(ChannelNorm::new(format!("bn{conv_idx}"), oc)));
            net.push_boxed(Box::new(Relu::new()));
            ic = oc;
        }
        if s > 0 {
            net.push_boxed(Box::new(dd_nn::layers::AvgPool2::new()));
        }
    }
    net.push_boxed(Box::new(Flatten::new()));
    net.push_boxed(Box::new(Linear::kaiming("fc1", ic, 8 * w, rng)));
    net.push_boxed(Box::new(Relu::new()));
    net.push_boxed(Box::new(Linear::kaiming("fc2", 8 * w, 8 * w, rng)));
    net.push_boxed(Box::new(Relu::new()));
    net.push_boxed(Box::new(Linear::kaiming("fc3", 8 * w, config.classes, rng)));
    net
}

fn mlp(config: &ModelConfig, rng: &mut impl Rng) -> Network {
    let input = config.in_channels * config.image_side * config.image_side;
    let hidden = 16 * config.base_width;
    Network::new("mlp")
        .push(Flatten::new())
        .push(Linear::kaiming("fc1", input, hidden, rng))
        .push(Relu::new())
        .push(Linear::kaiming("fc2", hidden, hidden / 2, rng))
        .push(Relu::new())
        .push(Linear::kaiming("fc3", hidden / 2, config.classes, rng))
}

/// Build an untrained victim network.
pub fn build_model(config: &ModelConfig, rng: &mut impl Rng) -> Network {
    match config.arch {
        Architecture::Mlp => mlp(config, rng),
        Architecture::Vgg11 => vgg11(config, rng),
        Architecture::ResNet18 => resnet("resnet18", config, &[2, 2, 2, 2], &[1, 2, 4, 8], rng),
        Architecture::ResNet20 => resnet("resnet20", config, &[3, 3, 3], &[1, 2, 4], rng),
        Architecture::ResNet34 => resnet("resnet34", config, &[3, 4, 6, 3], &[1, 2, 4, 8], rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_nn::init::seeded_rng;
    use dd_nn::Tensor;

    fn forward_shape(arch: Architecture) -> Vec<usize> {
        let mut rng = seeded_rng(1);
        let config = ModelConfig::new(arch, 10).with_base_width(4);
        let mut net = build_model(&config, &mut rng);
        net.forward(&Tensor::zeros(&[2, 3, 16, 16]), false)
            .shape()
            .to_vec()
    }

    #[test]
    fn all_architectures_produce_logits() {
        for arch in [
            Architecture::Mlp,
            Architecture::Vgg11,
            Architecture::ResNet18,
            Architecture::ResNet20,
            Architecture::ResNet34,
        ] {
            assert_eq!(forward_shape(arch), vec![2, 10], "{}", arch.name());
        }
    }

    #[test]
    fn resnet34_is_deeper_than_resnet18() {
        let mut rng = seeded_rng(2);
        let c18 = ModelConfig::new(Architecture::ResNet18, 10).with_base_width(4);
        let c34 = ModelConfig::new(Architecture::ResNet34, 10).with_base_width(4);
        let mut n18 = build_model(&c18, &mut rng);
        let mut n34 = build_model(&c34, &mut rng);
        assert!(n34.param_count() > n18.param_count());
    }

    #[test]
    fn vgg11_has_eleven_weight_layers() {
        let mut rng = seeded_rng(3);
        let config = ModelConfig::new(Architecture::Vgg11, 10).with_base_width(4);
        let mut net = build_model(&config, &mut rng);
        let mut weight_layers = 0;
        net.visit_params(&mut |p| {
            if p.quantizable {
                weight_layers += 1;
            }
        });
        // 8 convs + 3 linears = the "11" of VGG-11.
        assert_eq!(weight_layers, 11);
    }

    #[test]
    fn backward_runs_on_resnet() {
        let mut rng = seeded_rng(4);
        let config = ModelConfig::new(Architecture::ResNet20, 10).with_base_width(4);
        let mut net = build_model(&config, &mut rng);
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = net.forward(&x, true);
        net.zero_grad();
        let gx = net.backward(&y);
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Architecture::Vgg11.name(), "vgg11");
        assert_eq!(Architecture::ResNet34.name(), "resnet34");
    }
}
