//! # dd-qnn — 8-bit weight quantization and the victim model zoo
//!
//! Bridges the float training substrate (`dd-nn`) and the bit-level world
//! the RowHammer attacker lives in:
//!
//! * [`quant`] — symmetric 8-bit quantization and two's-complement bit
//!   primitives (`weight_bit`, `flip_weight_bit`, `flip_delta`);
//! * [`qtensor`] — a quantized parameter tensor with byte/DRAM views;
//! * [`qmodel`] — [`qmodel::QModel`]: a float network kept in exact sync
//!   with its `i8` weight store, plus [`qmodel::BitAddr`] bit addressing
//!   and gradient-based flip-gain estimation;
//! * [`models`] — scaled-down VGG-11 / ResNet-18/20/34 victim builders.
//!
//! ## Example
//!
//! ```
//! use dd_nn::init::seeded_rng;
//! use dd_nn::layers::{Flatten, Linear};
//! use dd_nn::model::Network;
//! use dd_qnn::{BitAddr, QModel};
//!
//! let mut rng = seeded_rng(1);
//! let net = Network::new("m")
//!     .push(Flatten::new())
//!     .push(Linear::kaiming("fc", 4, 2, &mut rng));
//! let mut qm = QModel::from_network(net);
//!
//! // Flip the sign bit of weight 0 and undo it.
//! let flip = qm.flip_bit(BitAddr { param: 0, index: 0, bit: 7 });
//! assert_ne!(flip.old, flip.new);
//! qm.unflip(flip);
//! ```

pub mod models;
pub mod qmodel;
pub mod qtensor;
pub mod quant;

pub use models::{build_model, Architecture, ModelConfig};
pub use qmodel::{BitAddr, BitFlip, QModel};
pub use qtensor::QTensor;
pub use quant::{
    flip_delta, flip_weight_bit, hamming_distance, weight_bit, QuantParams, WEIGHT_BITS,
};
