//! Batched fast-path command decoding for bulk trace replay.
//!
//! The per-command [`crate::MemoryController`] API pays, for every benign
//! workload op, an address re-validation, two bank/subarray lookups, a
//! row-payload allocation (reads), and three to six per-row `HashMap`
//! operations in the RowHammer tracker. Replaying millions of commands —
//! the scenario matrix's background traffic and the workload driver's
//! replay loop — spends most of its wall time there.
//!
//! [`DecodedBatch`] is the fast path's front end: ops are *decoded once*
//! (validated against the device geometry and flattened to dense row
//! indices) when they are [pushed](DecodedBatch::push), and
//! [`crate::MemoryController::issue_batch`] then executes the whole chunk
//! with
//!
//! * structure-of-arrays disturbance counters (`count` / `epoch_tag` /
//!   `flags`, indexed by flat row id) instead of per-row hash-map
//!   entries, loaded lazily on first touch and flushed back once per
//!   chunk;
//! * refresh-epoch tracking amortized to one comparison per time
//!   advance instead of one division per disturbance event;
//! * per-chunk (not per-command) accumulation of stats, busy time, and
//!   trace counters.
//!
//! The slow path stays authoritative: `issue_batch` on a
//! [`crate::TraceMode::Full`] controller replays the same ops through the
//! ordinary per-command methods, and the two paths are proven
//! bit-identical by `tests/kernel_differential.rs` and benchmarked
//! against each other by `repro kernel` (see `docs/perf.md`).

use crate::error::DramError;
use crate::geometry::{BankId, DramConfig, GlobalRowId, RowInSubarray, SubarrayId};
use crate::rowhammer::HammerTracker;
use crate::timing::Nanos;

/// The canonical ops-per-chunk boundary of the batched replay plane.
///
/// Consumers that feed [`DecodedBatch`] chunk-by-chunk — the workload
/// driver's batched issue loop, the cross-cell sweep, and the v2 trace
/// container's chunk framing — size their chunks to this constant, so a
/// streamed trace chunk maps 1:1 onto one `issue_batch` call without
/// re-buffering.
pub const BATCH_CHUNK_OPS: usize = 512;

/// What one batched op does to its (pre-decoded) target row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOpKind {
    /// Full-row read (`ACT` + `RD` + `PRE`). The payload is not copied
    /// out — bulk replay discards it; use
    /// [`crate::MemoryController::read_row`] when the data matters.
    Read,
    /// Full-row write (`ACT` + `WR` + `PRE`) filling the row with one
    /// byte value (the deterministic tenant payloads the workload
    /// generators emit).
    Write(u8),
    /// A bulk activate/precharge storm against the row (the
    /// [`crate::MemoryController::hammer`] primitive); the count is the
    /// op's `extra` field.
    Hammer,
}

/// One decoded op of a batch: target row (validated, with its dense flat
/// index precomputed), the command, and the op's share of the simulated
/// schedule.
#[derive(Debug, Clone, Copy)]
pub struct BatchOp {
    /// Advance the clock to this instant before issuing (0 = issue at
    /// the current time). Carries the event-driven driver's idle gaps.
    pub advance_to: u128,
    /// The target row.
    pub row: GlobalRowId,
    /// Dense flat index of `row` (precomputed at push).
    pub(crate) flat: u32,
    /// The command.
    pub kind: BatchOpKind,
    /// Bulk activations to apply after the data command (the workload
    /// intensity model's `batch - 1`), or the whole hammer count for
    /// [`BatchOpKind::Hammer`].
    pub extra: u64,
}

/// Dense per-row scratch-state flags (see [`DecodedBatch`]).
pub(crate) const SLOT_LOADED: u8 = 1;
pub(crate) const SLOT_PRESENT: u8 = 2;
pub(crate) const SLOT_DIRTY: u8 = 4;

/// A chunk of pre-decoded commands plus the dense counter scratch the
/// fast path runs on.
///
/// Build one per device with [`DecodedBatch::new`] and reuse it across
/// chunks — the scratch arrays are sized to the device's total row count
/// and reset lazily (only rows actually touched by a chunk are cleaned
/// up when the chunk is issued).
///
/// # Example
///
/// ```
/// use dd_dram::{BatchOpKind, DecodedBatch, DramConfig, GlobalRowId, MemoryController, TraceMode};
///
/// # fn main() -> Result<(), dd_dram::DramError> {
/// let config = DramConfig::lpddr4_small();
/// let mut mem = MemoryController::try_new(config.clone())?;
/// mem.set_trace_mode(TraceMode::CountersOnly);
/// let mut batch = DecodedBatch::new(&config);
/// batch.push(GlobalRowId::new(0, 0, 10), BatchOpKind::Read, 15, None)?;
/// batch.push(GlobalRowId::new(0, 0, 12), BatchOpKind::Write(0xA5), 15, None)?;
/// mem.issue_batch(&mut batch)?;
/// assert_eq!(mem.stats().reads, 1);
/// assert_eq!(mem.stats().writes, 1);
/// assert_eq!(mem.stats().acts, 2 + 30);
/// assert_eq!(mem.disturbance(GlobalRowId::new(0, 0, 11)), 32);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DecodedBatch {
    pub(crate) banks: usize,
    pub(crate) subarrays_per_bank: usize,
    pub(crate) rows_per_subarray: usize,
    /// The decoded ops of the current chunk (drained by `issue_batch`).
    pub(crate) ops: Vec<BatchOp>,
    /// Disturbance accumulated this epoch, per flat row (valid when the
    /// row's `SLOT_LOADED` flag is set).
    pub(crate) count: Vec<u64>,
    /// Epoch the row's count belongs to (lazy rollover, mirroring the
    /// hash-map tracker's tags).
    pub(crate) epoch_tag: Vec<u64>,
    /// Per-row `SLOT_*` state flags.
    pub(crate) flags: Vec<u8>,
    /// Flat indices loaded this chunk (the flush/reset worklist).
    pub(crate) touched: Vec<u32>,
}

impl DecodedBatch {
    /// Scratch sized for `config`'s geometry.
    pub fn new(config: &DramConfig) -> Self {
        let total = config.total_rows();
        DecodedBatch {
            banks: config.banks,
            subarrays_per_bank: config.subarrays_per_bank,
            rows_per_subarray: config.rows_per_subarray,
            ops: Vec::new(),
            count: vec![0; total],
            epoch_tag: vec![0; total],
            flags: vec![0; total],
            touched: Vec::new(),
        }
    }

    /// Whether this batch was decoded for `config`'s geometry (the flat
    /// indices are only meaningful on a matching device).
    pub fn matches(&self, config: &DramConfig) -> bool {
        self.banks == config.banks
            && self.subarrays_per_bank == config.subarrays_per_bank
            && self.rows_per_subarray == config.rows_per_subarray
    }

    /// Decode and append one op. `extra` is the bulk activation count
    /// ([`BatchOp::extra`]); `advance_to` is the op's scheduled issue
    /// instant, if the clock should jump forward first.
    ///
    /// # Errors
    ///
    /// Returns the same out-of-range error the per-command path would
    /// produce for an invalid address, and [`DramError::InvalidConfig`]
    /// for a [`BatchOpKind::Hammer`] with `extra == 0` (a zero-count
    /// hammer is not a meaningful command).
    pub fn push(
        &mut self,
        row: GlobalRowId,
        kind: BatchOpKind,
        extra: u64,
        advance_to: Option<Nanos>,
    ) -> Result<(), DramError> {
        if row.bank.0 >= self.banks {
            return Err(DramError::BankOutOfRange {
                bank: row.bank,
                banks: self.banks,
            });
        }
        if row.subarray.0 >= self.subarrays_per_bank {
            return Err(DramError::SubarrayOutOfRange {
                subarray: row.subarray,
                subarrays: self.subarrays_per_bank,
            });
        }
        if row.row.0 >= self.rows_per_subarray {
            return Err(DramError::RowOutOfRange {
                row: row.row,
                rows: self.rows_per_subarray,
            });
        }
        if kind == BatchOpKind::Hammer && extra == 0 {
            return Err(DramError::InvalidConfig(
                "batched hammer needs a positive activation count".into(),
            ));
        }
        let flat = (row.bank.0 * self.subarrays_per_bank + row.subarray.0) * self.rows_per_subarray
            + row.row.0;
        self.ops.push(BatchOp {
            advance_to: advance_to.map_or(0, |n| n.0),
            row,
            flat: flat as u32,
            kind,
            extra,
        });
        Ok(())
    }

    /// Ops queued in the current chunk.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the current chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Drop any queued ops without issuing them.
    pub fn clear(&mut self) {
        self.ops.clear();
    }

    /// Lazily mirror a row's `(epoch, count)` tracker entry into the
    /// dense arrays on its first touch this chunk.
    #[inline]
    fn load_slot(&mut self, hammer: &HammerTracker, flat: usize) {
        if self.flags[flat] & SLOT_LOADED != 0 {
            return;
        }
        self.touched.push(flat as u32);
        match hammer.raw_get(self.row_of(flat)) {
            Some((epoch, count)) => {
                self.epoch_tag[flat] = epoch;
                self.count[flat] = count;
                self.flags[flat] = SLOT_LOADED | SLOT_PRESENT;
            }
            None => self.flags[flat] = SLOT_LOADED,
        }
    }

    /// Dense equivalent of [`HammerTracker::disturb`]: add `n` units to
    /// a row's count, restarting it when the entry is absent or tagged
    /// with a stale epoch.
    #[inline]
    pub(crate) fn disturb_slot(&mut self, hammer: &HammerTracker, flat: usize, n: u64, epoch: u64) {
        self.load_slot(hammer, flat);
        let f = self.flags[flat];
        if f & SLOT_PRESENT == 0 || self.epoch_tag[flat] != epoch {
            self.epoch_tag[flat] = epoch;
            self.count[flat] = n;
        } else {
            self.count[flat] += n;
        }
        self.flags[flat] = f | SLOT_PRESENT | SLOT_DIRTY;
    }

    /// Dense equivalent of [`HammerTracker::refresh`]: drop the row's
    /// entry (an activation recharged it).
    #[inline]
    pub(crate) fn refresh_slot(&mut self, hammer: &HammerTracker, flat: usize) {
        self.load_slot(hammer, flat);
        if self.flags[flat] & SLOT_PRESENT != 0 {
            self.flags[flat] = (self.flags[flat] | SLOT_DIRTY) & !SLOT_PRESENT;
        }
    }

    /// Write every touched slot whose state diverged back into the
    /// hash-map tracker and reset the scratch for the next chunk.
    pub(crate) fn flush_slots(&mut self, hammer: &mut HammerTracker) {
        while let Some(flat) = self.touched.pop() {
            let flat = flat as usize;
            let f = self.flags[flat];
            self.flags[flat] = 0;
            if f & SLOT_DIRTY != 0 {
                let row = self.row_of(flat);
                if f & SLOT_PRESENT != 0 {
                    hammer.raw_set(row, self.epoch_tag[flat], self.count[flat]);
                } else {
                    hammer.raw_remove(row);
                }
            }
        }
    }

    /// Reconstruct the [`GlobalRowId`] of a flat index.
    pub(crate) fn row_of(&self, flat: usize) -> GlobalRowId {
        let rows = self.rows_per_subarray;
        let sub = flat / rows;
        GlobalRowId {
            bank: BankId(sub / self.subarrays_per_bank),
            subarray: SubarrayId(sub % self.subarrays_per_bank),
            row: RowInSubarray(flat % rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_like_check_addr() {
        let config = DramConfig::lpddr4_small();
        let mut b = DecodedBatch::new(&config);
        assert!(matches!(
            b.push(GlobalRowId::new(16, 0, 0), BatchOpKind::Read, 0, None),
            Err(DramError::BankOutOfRange { .. })
        ));
        assert!(matches!(
            b.push(GlobalRowId::new(0, 8, 0), BatchOpKind::Read, 0, None),
            Err(DramError::SubarrayOutOfRange { .. })
        ));
        assert!(matches!(
            b.push(GlobalRowId::new(0, 0, 128), BatchOpKind::Read, 0, None),
            Err(DramError::RowOutOfRange { .. })
        ));
        assert!(matches!(
            b.push(GlobalRowId::new(0, 0, 0), BatchOpKind::Hammer, 0, None),
            Err(DramError::InvalidConfig(_))
        ));
        b.push(GlobalRowId::new(0, 0, 0), BatchOpKind::Read, 0, None)
            .unwrap();
        assert_eq!(b.len(), 1);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn flat_indices_round_trip() {
        let config = DramConfig::lpddr4_small();
        let mut b = DecodedBatch::new(&config);
        for row in [
            GlobalRowId::new(0, 0, 0),
            GlobalRowId::new(3, 5, 77),
            GlobalRowId::new(15, 7, 127),
        ] {
            b.push(row, BatchOpKind::Read, 0, None).unwrap();
            let op = *b.ops.last().unwrap();
            assert_eq!(b.row_of(op.flat as usize), row);
        }
    }

    #[test]
    fn geometry_mismatch_is_detected() {
        let small = DramConfig::lpddr4_small();
        let b = DecodedBatch::new(&small);
        assert!(b.matches(&small));
        // Same geometry, different threshold/timing: still compatible.
        assert!(b.matches(&small.clone().with_rowhammer_threshold(2400)));
        assert!(!b.matches(&small.clone().with_rows_per_subarray(64)));
    }
}
