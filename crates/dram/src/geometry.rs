//! DRAM device geometry: bank / subarray / row hierarchy and typed addresses.
//!
//! The simulator follows the organization described in §2.1 of the paper
//! (Fig. 2): a device is a set of banks; each bank is a stack of 2-D
//! subarrays (mats); each subarray holds a contiguous range of rows that
//! share sense amplifiers — which is what makes RowClone possible between
//! two rows of the *same* subarray, and what makes physically adjacent rows
//! RowHammer victims of each other.

use serde::{Deserialize, Serialize};

use crate::error::DramError;

/// Index of a bank inside the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BankId(pub usize);

/// Index of a subarray inside a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubarrayId(pub usize);

/// Physical row index *within one subarray* (0-based from the subarray's
/// first wordline). Adjacency at this granularity is what RowHammer exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowInSubarray(pub usize);

impl RowInSubarray {
    /// The two physical neighbours (victims when `self` is an aggressor).
    ///
    /// Rows at the subarray edge only have one neighbour.
    pub fn neighbours(self, rows_per_subarray: usize) -> impl Iterator<Item = RowInSubarray> {
        let up = self.0.checked_sub(1).map(RowInSubarray);
        let down = if self.0 + 1 < rows_per_subarray {
            Some(RowInSubarray(self.0 + 1))
        } else {
            None
        };
        up.into_iter().chain(down)
    }
}

/// Fully qualified physical row address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GlobalRowId {
    /// Bank holding the row.
    pub bank: BankId,
    /// Subarray within the bank.
    pub subarray: SubarrayId,
    /// Row within the subarray.
    pub row: RowInSubarray,
}

impl GlobalRowId {
    /// Convenience constructor.
    pub fn new(bank: usize, subarray: usize, row: usize) -> Self {
        GlobalRowId {
            bank: BankId(bank),
            subarray: SubarrayId(subarray),
            row: RowInSubarray(row),
        }
    }
}

/// Static geometry + policy parameters of a simulated DRAM device.
///
/// Use one of the presets ([`DramConfig::ddr4_32gb`],
/// [`DramConfig::lpddr4_small`]) or the builder-style setters to construct a
/// custom device, then validate with [`DramConfig::validate`] (done
/// automatically by [`crate::MemoryController::try_new`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of banks in the device (16 for the paper's DDR4 setup).
    pub banks: usize,
    /// Number of subarrays per bank.
    pub subarrays_per_bank: usize,
    /// Number of rows per subarray (typically 512).
    pub rows_per_subarray: usize,
    /// Row size in bytes (8 KiB for DDR4).
    pub row_bytes: usize,
    /// Number of rows at the top of each subarray reserved for the
    /// DNN-Defender swap mechanism. These hold no user data.
    ///
    /// The paper stresses the reserved region is *not* a capacity overhead
    /// because ordinary DRAM already provisions spare rows for remapping;
    /// we still model them explicitly.
    pub reserved_rows_per_subarray: usize,
    /// RowHammer activation threshold `T_RH`: activations of one aggressor
    /// row within a single refresh window needed to disturb its neighbours.
    pub rowhammer_threshold: u64,
    /// Timing parameters (see [`crate::timing::TimingParams`]).
    pub timing: crate::timing::TimingParams,
}

impl DramConfig {
    /// The paper's comparison platform: 32 GB, 16-bank DDR4.
    ///
    /// 16 banks × 512 subarrays × 512 rows × 8 KiB = 32 GiB.
    pub fn ddr4_32gb() -> Self {
        DramConfig {
            banks: 16,
            subarrays_per_bank: 512,
            rows_per_subarray: 512,
            row_bytes: 8192,
            reserved_rows_per_subarray: 2,
            rowhammer_threshold: 10_000,
            timing: crate::timing::TimingParams::ddr4(),
        }
    }

    /// A small LPDDR4-like device for fast simulation: 16 banks,
    /// 8 subarrays × 128 rows × 64 B rows, `T_RH` = 4800 (the LPDDR4(new)
    /// threshold in Fig. 1(a)).
    ///
    /// The tiny row size keeps full-system experiments (model weights mapped
    /// into rows, thousands of swaps) fast while preserving the adjacency
    /// and timing behaviour that the defense depends on.
    pub fn lpddr4_small() -> Self {
        DramConfig {
            banks: 16,
            subarrays_per_bank: 8,
            rows_per_subarray: 128,
            row_bytes: 64,
            reserved_rows_per_subarray: 2,
            rowhammer_threshold: 4800,
            timing: crate::timing::TimingParams::lpddr4(),
        }
    }

    /// Set the RowHammer threshold (`T_RH`), returning the modified config.
    pub fn with_rowhammer_threshold(mut self, t_rh: u64) -> Self {
        self.rowhammer_threshold = t_rh;
        self
    }

    /// Set the number of reserved rows per subarray.
    pub fn with_reserved_rows(mut self, reserved: usize) -> Self {
        self.reserved_rows_per_subarray = reserved;
        self
    }

    /// Set the number of rows per subarray.
    pub fn with_rows_per_subarray(mut self, rows: usize) -> Self {
        self.rows_per_subarray = rows;
        self
    }

    /// Set the row payload size in bytes.
    pub fn with_row_bytes(mut self, bytes: usize) -> Self {
        self.row_bytes = bytes;
        self
    }

    /// Set the number of banks.
    pub fn with_banks(mut self, banks: usize) -> Self {
        self.banks = banks;
        self
    }

    /// Set the number of subarrays per bank.
    pub fn with_subarrays_per_bank(mut self, subarrays: usize) -> Self {
        self.subarrays_per_bank = subarrays;
        self
    }

    /// Number of data rows (non-reserved) per subarray.
    pub fn data_rows_per_subarray(&self) -> usize {
        self.rows_per_subarray - self.reserved_rows_per_subarray
    }

    /// First reserved row index; rows `[first_reserved_row(),
    /// rows_per_subarray)` form the reserved region.
    pub fn first_reserved_row(&self) -> usize {
        self.data_rows_per_subarray()
    }

    /// Total rows in the device.
    pub fn total_rows(&self) -> usize {
        self.banks * self.subarrays_per_bank * self.rows_per_subarray
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.total_rows() * self.row_bytes
    }

    /// Bits per row.
    pub fn row_bits(&self) -> usize {
        self.row_bytes * 8
    }

    /// Check internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when any dimension is zero, when
    /// the reserved region swallows the whole subarray, or when `T_RH` is 0.
    pub fn validate(&self) -> Result<(), DramError> {
        if self.banks == 0 {
            return Err(DramError::InvalidConfig(
                "device must have at least one bank".into(),
            ));
        }
        if self.subarrays_per_bank == 0 {
            return Err(DramError::InvalidConfig(
                "bank must have at least one subarray".into(),
            ));
        }
        if self.rows_per_subarray < 2 {
            return Err(DramError::InvalidConfig(
                "subarray must have at least two rows".into(),
            ));
        }
        if self.row_bytes == 0 {
            return Err(DramError::InvalidConfig("row size must be non-zero".into()));
        }
        if self.reserved_rows_per_subarray >= self.rows_per_subarray {
            return Err(DramError::InvalidConfig(
                "reserved region must leave at least one data row".into(),
            ));
        }
        if self.rowhammer_threshold == 0 {
            return Err(DramError::InvalidConfig(
                "rowhammer threshold must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Validate a fully qualified row address against this geometry.
    ///
    /// # Errors
    ///
    /// Returns the corresponding out-of-range error for the first coordinate
    /// that does not fit the configured device.
    pub fn check_addr(&self, addr: GlobalRowId) -> Result<(), DramError> {
        if addr.bank.0 >= self.banks {
            return Err(DramError::BankOutOfRange {
                bank: addr.bank,
                banks: self.banks,
            });
        }
        if addr.subarray.0 >= self.subarrays_per_bank {
            return Err(DramError::SubarrayOutOfRange {
                subarray: addr.subarray,
                subarrays: self.subarrays_per_bank,
            });
        }
        if addr.row.0 >= self.rows_per_subarray {
            return Err(DramError::RowOutOfRange {
                row: addr.row,
                rows: self.rows_per_subarray,
            });
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::lpddr4_small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_preset_is_32_gib() {
        let c = DramConfig::ddr4_32gb();
        assert_eq!(c.capacity_bytes(), 32 * (1usize << 30));
        c.validate().unwrap();
    }

    #[test]
    fn lpddr4_small_validates() {
        DramConfig::lpddr4_small().validate().unwrap();
    }

    #[test]
    fn neighbours_of_interior_row() {
        let n: Vec<_> = RowInSubarray(5).neighbours(128).collect();
        assert_eq!(n, vec![RowInSubarray(4), RowInSubarray(6)]);
    }

    #[test]
    fn neighbours_of_edge_rows() {
        let first: Vec<_> = RowInSubarray(0).neighbours(128).collect();
        assert_eq!(first, vec![RowInSubarray(1)]);
        let last: Vec<_> = RowInSubarray(127).neighbours(128).collect();
        assert_eq!(last, vec![RowInSubarray(126)]);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(DramConfig::lpddr4_small().with_banks(0).validate().is_err());
        assert!(DramConfig::lpddr4_small()
            .with_row_bytes(0)
            .validate()
            .is_err());
        assert!(DramConfig::lpddr4_small()
            .with_rows_per_subarray(1)
            .validate()
            .is_err());
        assert!(DramConfig::lpddr4_small()
            .with_reserved_rows(128)
            .validate()
            .is_err());
        let mut c = DramConfig::lpddr4_small();
        c.rowhammer_threshold = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn check_addr_bounds() {
        let c = DramConfig::lpddr4_small();
        assert!(c.check_addr(GlobalRowId::new(0, 0, 0)).is_ok());
        assert!(matches!(
            c.check_addr(GlobalRowId::new(16, 0, 0)),
            Err(DramError::BankOutOfRange { .. })
        ));
        assert!(matches!(
            c.check_addr(GlobalRowId::new(0, 8, 0)),
            Err(DramError::SubarrayOutOfRange { .. })
        ));
        assert!(matches!(
            c.check_addr(GlobalRowId::new(0, 0, 128)),
            Err(DramError::RowOutOfRange { .. })
        ));
    }

    #[test]
    fn reserved_region_layout() {
        let c = DramConfig::lpddr4_small().with_reserved_rows(4);
        assert_eq!(c.data_rows_per_subarray(), 124);
        assert_eq!(c.first_reserved_row(), 124);
    }
}
