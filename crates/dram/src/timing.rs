//! Timing constants and the `Nanos` time newtype.
//!
//! The paper's security analysis (§5.1) is driven entirely by four
//! quantities: `T_ACT` (time per activation, which bounds how fast an
//! attacker can hammer), `T_AAP` (ACT–ACT–PRE, the cost of one RowClone
//! copy), `T_swap = 3 × T_AAP` (one four-step-amortized swap) and
//! `T_ref = 64 ms` (the auto-refresh interval that closes a RowHammer
//! window). We reproduce those constants here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A duration in nanoseconds.
///
/// A newtype is used instead of `std::time::Duration` because simulated DRAM
/// time is arithmetic-heavy (scaled, divided into windows) and we want
/// integer-exact behaviour plus `u128` headroom for multi-year
/// time-to-break computations.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Nanos(pub u128);

impl Nanos {
    /// Zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Construct from microseconds.
    pub fn from_micros(us: u128) -> Self {
        Nanos(us * 1_000)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u128) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub fn from_secs(s: u128) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Value in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in (fractional) days — used for time-to-break reporting.
    pub fn as_days_f64(self) -> f64 {
        self.as_secs_f64() / 86_400.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl Mul<u128> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u128) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u128> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u128) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Div<Nanos> for Nanos {
    /// How many times `rhs` fits in `self` (integer division) — used for
    /// "swaps per threshold window"-style capacity computations.
    type Output = u128;
    fn div(self, rhs: Nanos) -> u128 {
        self.0 / rhs.0
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// DRAM timing parameters used by the simulator and the analytical models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Row activation-to-activation time (`tRC`-like): the minimum time
    /// between two hammering activations of the same aggressor. Bounds the
    /// attacker's hammer rate.
    pub t_act: Nanos,
    /// Precharge time.
    pub t_pre: Nanos,
    /// Column read latency.
    pub t_rd: Nanos,
    /// Column write latency.
    pub t_wr: Nanos,
    /// ACT–ACT–PRE time of one RowClone copy (90 ns in the paper, from
    /// SHADOW's unmodified-DRAM timing baseline).
    pub t_aap: Nanos,
    /// Auto-refresh interval (`T_ref`, 64 ms).
    pub t_ref: Nanos,
}

impl TimingParams {
    /// DDR4-flavoured constants.
    pub fn ddr4() -> Self {
        TimingParams {
            t_act: Nanos(45),
            t_pre: Nanos(15),
            t_rd: Nanos(15),
            t_wr: Nanos(15),
            t_aap: Nanos(90),
            t_ref: Nanos::from_millis(64),
        }
    }

    /// LPDDR4-flavoured constants. `t_act` is calibrated so the maximum
    /// number of in-window BFAs matches the paper's Fig. 8(b) anchor points
    /// (≈55 K attempts per `T_ref` at `T_RH` = 1k on a 16-bank device;
    /// see EXPERIMENTS.md).
    pub fn lpddr4() -> Self {
        TimingParams {
            t_act: Nanos(18),
            t_pre: Nanos(15),
            t_rd: Nanos(15),
            t_wr: Nanos(15),
            t_aap: Nanos(90),
            t_ref: Nanos::from_millis(64),
        }
    }

    /// `T_swap = 3 × T_AAP`: the steady-state cost of one DNN-Defender swap.
    ///
    /// A full four-step swap issues four RowClone copies, but the Fig. 6
    /// pipeline overlaps step 1 of swap *n+1* with step 4 of swap *n*, so
    /// the amortized cost is three copies (§5.1: `T_swap = 3 × T_AAP`).
    pub fn t_swap(&self) -> Nanos {
        self.t_aap * 3
    }

    /// The RowHammer threshold window: the shortest wall-clock time in which
    /// an attacker can drive one aggressor from 0 to `t_rh` activations.
    pub fn threshold_window(&self, t_rh: u64) -> Nanos {
        self.t_act * u128::from(t_rh)
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::lpddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_swap_is_three_t_aap() {
        let t = TimingParams::ddr4();
        assert_eq!(t.t_swap(), Nanos(270));
    }

    #[test]
    fn threshold_window_scales_linearly() {
        let t = TimingParams::ddr4();
        assert_eq!(t.threshold_window(1000), Nanos(45_000));
        assert_eq!(t.threshold_window(2000), Nanos(90_000));
    }

    #[test]
    fn nanos_conversions() {
        assert_eq!(Nanos::from_millis(64).0, 64_000_000);
        assert_eq!(Nanos::from_secs(1), Nanos::from_millis(1000));
        assert!((Nanos::from_secs(86_400).as_days_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nanos_arithmetic() {
        let a = Nanos(100);
        let b = Nanos(30);
        assert_eq!(a + b, Nanos(130));
        assert_eq!(a - b, Nanos(70));
        assert_eq!(a * 3, Nanos(300));
        assert_eq!(a / 3, Nanos(33));
        assert_eq!(a / b, 3);
        assert_eq!(b.saturating_sub(a), Nanos::ZERO);
        let total: Nanos = [a, b, Nanos(1)].into_iter().sum();
        assert_eq!(total, Nanos(131));
    }

    #[test]
    fn nanos_display_units() {
        assert_eq!(Nanos(17).to_string(), "17ns");
        assert_eq!(Nanos(1_500).to_string(), "1.500us");
        assert_eq!(Nanos(2_000_000).to_string(), "2.000ms");
        assert_eq!(Nanos::from_secs(3).to_string(), "3.000s");
    }
}
