//! Error type for the DRAM simulator.

use std::error::Error;
use std::fmt;

use crate::geometry::{BankId, RowInSubarray, SubarrayId};

/// Errors returned by the DRAM simulator.
///
/// Every fallible public operation in this crate returns
/// `Result<_, DramError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// A bank index was out of range for the configured device.
    BankOutOfRange {
        /// The offending bank.
        bank: BankId,
        /// Banks the device has.
        banks: usize,
    },
    /// A subarray index was out of range for the configured bank.
    SubarrayOutOfRange {
        /// The offending subarray.
        subarray: SubarrayId,
        /// Subarrays each bank has.
        subarrays: usize,
    },
    /// A row index was out of range for the configured subarray.
    RowOutOfRange {
        /// The offending row.
        row: RowInSubarray,
        /// Rows each subarray has.
        rows: usize,
    },
    /// The written buffer did not match the configured row size.
    RowSizeMismatch {
        /// The configured row size in bytes.
        expected: usize,
        /// The buffer size that was passed.
        got: usize,
    },
    /// RowClone requires source and destination in the same subarray.
    CrossSubarrayClone,
    /// A bit offset exceeded the number of bits in a row.
    BitOutOfRange {
        /// The offending bit offset.
        bit: usize,
        /// Bits each row holds.
        bits: usize,
    },
    /// The configuration was internally inconsistent (e.g. zero rows).
    InvalidConfig(String),
    /// A reserved row was addressed through the normal data path.
    ReservedRowAccess {
        /// The reserved row that was addressed.
        row: RowInSubarray,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::BankOutOfRange { bank, banks } => {
                write!(f, "bank {} out of range (device has {banks} banks)", bank.0)
            }
            DramError::SubarrayOutOfRange {
                subarray,
                subarrays,
            } => write!(
                f,
                "subarray {} out of range (bank has {subarrays} subarrays)",
                subarray.0
            ),
            DramError::RowOutOfRange { row, rows } => {
                write!(f, "row {} out of range (subarray has {rows} rows)", row.0)
            }
            DramError::RowSizeMismatch { expected, got } => {
                write!(
                    f,
                    "row buffer size mismatch: expected {expected} bytes, got {got}"
                )
            }
            DramError::CrossSubarrayClone => {
                write!(f, "rowclone source and destination must share a subarray")
            }
            DramError::BitOutOfRange { bit, bits } => {
                write!(f, "bit offset {bit} out of range (row holds {bits} bits)")
            }
            DramError::InvalidConfig(msg) => write!(f, "invalid dram configuration: {msg}"),
            DramError::ReservedRowAccess { row } => {
                write!(f, "row {} is reserved for the defense mechanism", row.0)
            }
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            DramError::BankOutOfRange {
                bank: BankId(17),
                banks: 16,
            },
            DramError::SubarrayOutOfRange {
                subarray: SubarrayId(99),
                subarrays: 64,
            },
            DramError::RowOutOfRange {
                row: RowInSubarray(600),
                rows: 512,
            },
            DramError::RowSizeMismatch {
                expected: 8192,
                got: 64,
            },
            DramError::CrossSubarrayClone,
            DramError::BitOutOfRange {
                bit: 1 << 20,
                bits: 65536,
            },
            DramError::InvalidConfig("zero rows".into()),
            DramError::ReservedRowAccess {
                row: RowInSubarray(510),
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }
}
