//! RowHammer disturbance model.
//!
//! The model is *victim-centric*, matching the paper's hardware threat model
//! (§3) and the defense's victim-focused design: every row accumulates a
//! **disturbance count** equal to the number of activations of its physical
//! neighbours since the row itself was last refreshed (by auto-refresh, by
//! its own activation, or by a defense RowClone touching it). Once the
//! disturbance reaches `T_RH` inside one refresh window, attacker-chosen
//! bits in the row can flip.
//!
//! Activating a row restores its charge, so an `ACT` of row `r`:
//! * resets `r`'s own disturbance to zero, and
//! * adds one unit of disturbance to both of `r`'s neighbours.
//!
//! Auto-refresh is modelled lazily: each counter is tagged with the refresh
//! window (epoch) it was accumulated in, and reads as zero once the window
//! has rolled over.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::geometry::{DramConfig, GlobalRowId, RowInSubarray};
use crate::timing::Nanos;

/// Per-row disturbance bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct HammerTracker {
    /// `(epoch, accumulated neighbour activations)` per row. Rows missing
    /// from the map have zero disturbance.
    counts: HashMap<GlobalRowId, (u64, u64)>,
    /// Total disturbance events recorded (diagnostic).
    total_events: u64,
}

impl HammerTracker {
    /// New, empty tracker.
    pub fn new() -> Self {
        HammerTracker::default()
    }

    /// Current refresh-window index for a timestamp.
    pub fn epoch(now: Nanos, t_ref: Nanos) -> u64 {
        (now.0 / t_ref.0) as u64
    }

    /// Add `n` units of disturbance to `row` at time `now`.
    pub fn disturb(&mut self, row: GlobalRowId, n: u64, epoch: u64) {
        self.total_events += n;
        let entry = self.counts.entry(row).or_insert((epoch, 0));
        if entry.0 != epoch {
            *entry = (epoch, 0);
        }
        entry.1 += n;
    }

    /// Reset `row`'s disturbance (the row was refreshed/activated/cloned).
    pub fn refresh(&mut self, row: GlobalRowId) {
        self.counts.remove(&row);
    }

    /// Reset every row (an explicit all-bank refresh).
    pub fn refresh_all(&mut self) {
        self.counts.clear();
    }

    /// Current disturbance of `row` within epoch `epoch`.
    pub fn disturbance(&self, row: GlobalRowId, epoch: u64) -> u64 {
        match self.counts.get(&row) {
            Some(&(e, n)) if e == epoch => n,
            _ => 0,
        }
    }

    /// Total disturbance events ever recorded.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Raw `(epoch, count)` entry of a row, if one exists — the batched
    /// fast path's lazy slot load (see [`crate::batch::DecodedBatch`]).
    pub(crate) fn raw_get(&self, row: GlobalRowId) -> Option<(u64, u64)> {
        self.counts.get(&row).copied()
    }

    /// Install a raw `(epoch, count)` entry (batched flush).
    pub(crate) fn raw_set(&mut self, row: GlobalRowId, epoch: u64, count: u64) {
        self.counts.insert(row, (epoch, count));
    }

    /// Remove a row's entry without touching `total_events` (batched
    /// flush of a refreshed row).
    pub(crate) fn raw_remove(&mut self, row: GlobalRowId) {
        self.counts.remove(&row);
    }

    /// Add `n` to the diagnostic event total (batched disturbance is
    /// accumulated densely and credited once per chunk).
    pub(crate) fn raw_add_events(&mut self, n: u64) {
        self.total_events += n;
    }

    /// Number of rows currently carrying non-zero disturbance from `epoch`.
    pub fn dirty_rows(&self, epoch: u64) -> usize {
        self.counts
            .values()
            .filter(|&&(e, n)| e == epoch && n > 0)
            .count()
    }
}

/// Outcome of an attempted RowHammer bit-flip on a victim row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlipOutcome {
    /// The victim's disturbance reached `T_RH`; the listed bit offsets were
    /// flipped in the row payload.
    Flipped {
        /// The flipped bit offsets within the row payload.
        bits: Vec<usize>,
    },
    /// The victim was refreshed recently enough that the disturbance is
    /// still below threshold — the defense (or plain auto-refresh) won.
    Resisted {
        /// Disturbance accumulated so far in the current window.
        disturbance: u64,
        /// The configured threshold `T_RH`.
        threshold: u64,
    },
}

impl FlipOutcome {
    /// `true` when bits actually flipped.
    pub fn flipped(&self) -> bool {
        matches!(self, FlipOutcome::Flipped { .. })
    }
}

/// Static RowHammer parameters derived from a [`DramConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowHammerModel {
    /// Activation threshold `T_RH`.
    pub threshold: u64,
    /// Rows per subarray (for neighbour computation).
    pub rows_per_subarray: usize,
}

impl RowHammerModel {
    /// Build the model from a device configuration.
    pub fn from_config(config: &DramConfig) -> Self {
        RowHammerModel {
            threshold: config.rowhammer_threshold,
            rows_per_subarray: config.rows_per_subarray,
        }
    }

    /// Victim rows of an aggressor (same bank + subarray, ±1 row).
    pub fn victims_of(&self, aggressor: GlobalRowId) -> Vec<GlobalRowId> {
        aggressor
            .row
            .neighbours(self.rows_per_subarray)
            .map(|row| GlobalRowId {
                bank: aggressor.bank,
                subarray: aggressor.subarray,
                row,
            })
            .collect()
    }

    /// Aggressor rows able to disturb a victim (the same ±1 set).
    pub fn aggressors_of(&self, victim: GlobalRowId) -> Vec<GlobalRowId> {
        // Adjacency is symmetric.
        self.victims_of(victim)
    }

    /// The hammer count an attacker must still apply to `victim` given its
    /// current disturbance.
    pub fn remaining(&self, disturbance: u64) -> u64 {
        self.threshold.saturating_sub(disturbance)
    }
}

/// Convenience: the aggressor row a single-sided attacker would pick for a
/// victim (prefers the row below, falls back to the row above at the edge).
pub fn preferred_aggressor(victim: GlobalRowId, rows_per_subarray: usize) -> GlobalRowId {
    let row = if victim.row.0 + 1 < rows_per_subarray {
        RowInSubarray(victim.row.0 + 1)
    } else {
        RowInSubarray(victim.row.0 - 1)
    };
    GlobalRowId {
        bank: victim.bank,
        subarray: victim.subarray,
        row,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gid(row: usize) -> GlobalRowId {
        GlobalRowId::new(0, 0, row)
    }

    #[test]
    fn disturb_accumulates_within_epoch() {
        let mut t = HammerTracker::new();
        t.disturb(gid(5), 100, 0);
        t.disturb(gid(5), 50, 0);
        assert_eq!(t.disturbance(gid(5), 0), 150);
        assert_eq!(t.total_events(), 150);
    }

    #[test]
    fn epoch_rollover_clears_counts() {
        let mut t = HammerTracker::new();
        t.disturb(gid(5), 100, 0);
        assert_eq!(t.disturbance(gid(5), 1), 0);
        // Writing in the new epoch restarts the count.
        t.disturb(gid(5), 7, 1);
        assert_eq!(t.disturbance(gid(5), 1), 7);
    }

    #[test]
    fn refresh_resets_single_row() {
        let mut t = HammerTracker::new();
        t.disturb(gid(1), 10, 0);
        t.disturb(gid(2), 10, 0);
        t.refresh(gid(1));
        assert_eq!(t.disturbance(gid(1), 0), 0);
        assert_eq!(t.disturbance(gid(2), 0), 10);
        t.refresh_all();
        assert_eq!(t.disturbance(gid(2), 0), 0);
    }

    #[test]
    fn epoch_computation() {
        let t_ref = Nanos::from_millis(64);
        assert_eq!(HammerTracker::epoch(Nanos(0), t_ref), 0);
        assert_eq!(HammerTracker::epoch(Nanos::from_millis(63), t_ref), 0);
        assert_eq!(HammerTracker::epoch(Nanos::from_millis(64), t_ref), 1);
        assert_eq!(HammerTracker::epoch(Nanos::from_millis(129), t_ref), 2);
    }

    #[test]
    fn victims_are_symmetric_neighbours() {
        let m = RowHammerModel {
            threshold: 1000,
            rows_per_subarray: 128,
        };
        assert_eq!(m.victims_of(gid(10)), vec![gid(9), gid(11)]);
        assert_eq!(m.aggressors_of(gid(10)), vec![gid(9), gid(11)]);
        assert_eq!(m.victims_of(gid(0)), vec![gid(1)]);
        assert_eq!(m.victims_of(gid(127)), vec![gid(126)]);
    }

    #[test]
    fn preferred_aggressor_is_adjacent() {
        assert_eq!(preferred_aggressor(gid(10), 128), gid(11));
        assert_eq!(preferred_aggressor(gid(127), 128), gid(126));
    }

    #[test]
    fn remaining_saturates() {
        let m = RowHammerModel {
            threshold: 1000,
            rows_per_subarray: 128,
        };
        assert_eq!(m.remaining(0), 1000);
        assert_eq!(m.remaining(999), 1);
        assert_eq!(m.remaining(5000), 0);
    }

    #[test]
    fn dirty_rows_counts_current_epoch_only() {
        let mut t = HammerTracker::new();
        t.disturb(gid(1), 3, 0);
        t.disturb(gid(2), 3, 0);
        assert_eq!(t.dirty_rows(0), 2);
        assert_eq!(t.dirty_rows(1), 0);
    }
}
