//! DRAM command protocol and command tracing.
//!
//! The memory controller drives the device with the classic command set
//! (§2.1): `ACT`, `PRE`, `RD`, `WR` — plus the RowClone `AAP` pair (two
//! back-to-back `ACT`s without an intervening `PRE`) that DNN-Defender's
//! swaps are built from. A bounded [`CommandTrace`] records issued commands
//! for inspection in tests and experiments.

use serde::{Deserialize, Serialize};

use crate::geometry::GlobalRowId;
use crate::timing::Nanos;

/// The kind of a DRAM bus command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// Activate a row (open it into the row buffer).
    Act,
    /// Precharge the open row.
    Pre,
    /// Column read from the open row.
    Rd,
    /// Column write into the open row.
    Wr,
    /// RowClone copy: ACT(src), ACT(dst), PRE — counted as one fused op.
    RowClone,
    /// Per-row refresh (restores charge, clears the hammer count).
    Refresh,
}

/// One issued command with its target and issue timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramCommand {
    /// What was issued.
    pub kind: CommandKind,
    /// Primary target row (for `RowClone` this is the *source*).
    pub target: GlobalRowId,
    /// Secondary row (`RowClone` destination), if any.
    pub aux: Option<GlobalRowId>,
    /// Simulated time at which the command was issued.
    pub at: Nanos,
}

/// How much work the controller spends on command tracing.
///
/// Tracing exists for tests and experiment forensics; replaying millions
/// of workload commands must not pay for it. The controller checks the
/// mode *before* building a [`DramCommand`], so [`TraceMode::Disabled`]
/// and [`TraceMode::CountersOnly`] skip the struct construction entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceMode {
    /// Retain the most recent commands in the ring (the default).
    Full,
    /// Keep only per-kind issue counters — no commands are retained.
    CountersOnly,
    /// Record nothing, count nothing. The cheapest mode; used by the
    /// scenario matrix and the workload driver for bulk replay runs.
    Disabled,
}

/// A bounded ring of recently issued commands.
///
/// Keeps the last `capacity` commands; older entries are dropped. The
/// total issued count keeps counting regardless (unless the trace is
/// [`TraceMode::Disabled`]).
#[derive(Debug, Clone)]
pub struct CommandTrace {
    buf: Vec<DramCommand>,
    capacity: usize,
    head: usize,
    issued: u64,
    mode: TraceMode,
    /// Issue counts per [`CommandKind`], indexed by discriminant order.
    kind_counts: [u64; 6],
}

impl CommandTrace {
    /// Create a trace retaining up to `capacity` most recent commands.
    pub fn new(capacity: usize) -> Self {
        CommandTrace {
            buf: Vec::with_capacity(capacity.min(1024)),
            capacity,
            head: 0,
            issued: 0,
            mode: TraceMode::Full,
            kind_counts: [0; 6],
        }
    }

    /// Create a counters-only or disabled trace (no ring allocation).
    pub fn with_mode(mode: TraceMode) -> Self {
        let mut trace = CommandTrace::new(match mode {
            TraceMode::Full => 4096,
            TraceMode::CountersOnly | TraceMode::Disabled => 0,
        });
        trace.mode = mode;
        trace
    }

    /// The current trace mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Switch the trace mode. Entering a cheaper mode drops the retained
    /// ring; counters always survive the switch.
    pub fn set_mode(&mut self, mode: TraceMode) {
        if mode != TraceMode::Full {
            self.buf = Vec::new();
            self.head = 0;
        }
        self.mode = mode;
    }

    /// Whether [`CommandTrace::record`] currently does any work — the
    /// controller's cheap pre-check before building a command struct.
    pub fn is_recording(&self) -> bool {
        self.mode != TraceMode::Disabled
    }

    /// Count one issued command of `kind` without retaining it (the
    /// [`TraceMode::CountersOnly`] fast path).
    pub fn count(&mut self, kind: CommandKind) {
        self.count_n(kind, 1);
    }

    /// Count `n` issued commands of `kind` in one step — the batched
    /// kernel accumulates per-kind totals over a whole chunk and credits
    /// them here once, instead of once per command.
    pub fn count_n(&mut self, kind: CommandKind, n: u64) {
        self.issued += n;
        self.kind_counts[kind as usize] += n;
    }

    /// Record a command.
    pub fn record(&mut self, cmd: DramCommand) {
        match self.mode {
            TraceMode::Disabled => return,
            TraceMode::CountersOnly => {
                self.count(cmd.kind);
                return;
            }
            TraceMode::Full => {}
        }
        self.count(cmd.kind);
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(cmd);
        } else {
            self.buf[self.head] = cmd;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Total commands issued over the lifetime of the trace.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Iterate over retained commands from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &DramCommand> {
        let (older, newer) = self.buf.split_at(self.head.min(self.buf.len()));
        newer.iter().chain(older.iter())
    }

    /// Number of retained commands.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no commands are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Count retained commands of a given kind.
    pub fn count_kind(&self, kind: CommandKind) -> usize {
        self.iter().filter(|c| c.kind == kind).count()
    }

    /// Total commands of `kind` issued over the lifetime of the trace
    /// (maintained in every mode except [`TraceMode::Disabled`]).
    pub fn issued_of(&self, kind: CommandKind) -> u64 {
        self.kind_counts[kind as usize]
    }
}

impl Default for CommandTrace {
    fn default() -> Self {
        CommandTrace::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(kind: CommandKind, t: u128) -> DramCommand {
        DramCommand {
            kind,
            target: GlobalRowId::new(0, 0, 0),
            aux: None,
            at: Nanos(t),
        }
    }

    #[test]
    fn trace_retains_most_recent() {
        let mut tr = CommandTrace::new(3);
        for i in 0..5 {
            tr.record(cmd(CommandKind::Act, i));
        }
        assert_eq!(tr.issued(), 5);
        assert_eq!(tr.len(), 3);
        let times: Vec<u128> = tr.iter().map(|c| c.at.0).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_trace_counts_only() {
        let mut tr = CommandTrace::new(0);
        tr.record(cmd(CommandKind::Pre, 1));
        assert_eq!(tr.issued(), 1);
        assert!(tr.is_empty());
    }

    #[test]
    fn counters_only_counts_without_retaining() {
        let mut tr = CommandTrace::with_mode(TraceMode::CountersOnly);
        for i in 0..5 {
            tr.record(cmd(CommandKind::Act, i));
        }
        tr.record(cmd(CommandKind::Rd, 5));
        assert_eq!(tr.issued(), 6);
        assert_eq!(tr.issued_of(CommandKind::Act), 5);
        assert_eq!(tr.issued_of(CommandKind::Rd), 1);
        assert!(tr.is_empty());
        assert!(tr.is_recording());
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let mut tr = CommandTrace::with_mode(TraceMode::Disabled);
        tr.record(cmd(CommandKind::Act, 0));
        assert_eq!(tr.issued(), 0);
        assert!(tr.is_empty());
        assert!(!tr.is_recording());
    }

    #[test]
    fn mode_switch_drops_ring_keeps_counters() {
        let mut tr = CommandTrace::new(8);
        tr.record(cmd(CommandKind::Act, 0));
        tr.record(cmd(CommandKind::Wr, 1));
        assert_eq!(tr.len(), 2);
        tr.set_mode(TraceMode::CountersOnly);
        assert!(tr.is_empty());
        tr.record(cmd(CommandKind::Act, 2));
        assert_eq!(tr.issued(), 3);
        assert_eq!(tr.issued_of(CommandKind::Act), 2);
    }

    #[test]
    fn count_kind_filters() {
        let mut tr = CommandTrace::new(10);
        tr.record(cmd(CommandKind::Act, 0));
        tr.record(cmd(CommandKind::RowClone, 1));
        tr.record(cmd(CommandKind::Act, 2));
        assert_eq!(tr.count_kind(CommandKind::Act), 2);
        assert_eq!(tr.count_kind(CommandKind::RowClone), 1);
        assert_eq!(tr.count_kind(CommandKind::Wr), 0);
    }
}
