//! DRAM command protocol and command tracing.
//!
//! The memory controller drives the device with the classic command set
//! (§2.1): `ACT`, `PRE`, `RD`, `WR` — plus the RowClone `AAP` pair (two
//! back-to-back `ACT`s without an intervening `PRE`) that DNN-Defender's
//! swaps are built from. A bounded [`CommandTrace`] records issued commands
//! for inspection in tests and experiments.

use serde::{Deserialize, Serialize};

use crate::geometry::GlobalRowId;
use crate::timing::Nanos;

/// The kind of a DRAM bus command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommandKind {
    /// Activate a row (open it into the row buffer).
    Act,
    /// Precharge the open row.
    Pre,
    /// Column read from the open row.
    Rd,
    /// Column write into the open row.
    Wr,
    /// RowClone copy: ACT(src), ACT(dst), PRE — counted as one fused op.
    RowClone,
    /// Per-row refresh (restores charge, clears the hammer count).
    Refresh,
}

/// One issued command with its target and issue timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramCommand {
    /// What was issued.
    pub kind: CommandKind,
    /// Primary target row (for `RowClone` this is the *source*).
    pub target: GlobalRowId,
    /// Secondary row (`RowClone` destination), if any.
    pub aux: Option<GlobalRowId>,
    /// Simulated time at which the command was issued.
    pub at: Nanos,
}

/// A bounded ring of recently issued commands.
///
/// Keeps the last `capacity` commands; older entries are dropped. The
/// total issued count keeps counting regardless.
#[derive(Debug, Clone)]
pub struct CommandTrace {
    buf: Vec<DramCommand>,
    capacity: usize,
    head: usize,
    issued: u64,
}

impl CommandTrace {
    /// Create a trace retaining up to `capacity` most recent commands.
    pub fn new(capacity: usize) -> Self {
        CommandTrace {
            buf: Vec::with_capacity(capacity.min(1024)),
            capacity,
            head: 0,
            issued: 0,
        }
    }

    /// Record a command.
    pub fn record(&mut self, cmd: DramCommand) {
        self.issued += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(cmd);
        } else {
            self.buf[self.head] = cmd;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Total commands issued over the lifetime of the trace.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Iterate over retained commands from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &DramCommand> {
        let (older, newer) = self.buf.split_at(self.head.min(self.buf.len()));
        newer.iter().chain(older.iter())
    }

    /// Number of retained commands.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no commands are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Count retained commands of a given kind.
    pub fn count_kind(&self, kind: CommandKind) -> usize {
        self.iter().filter(|c| c.kind == kind).count()
    }
}

impl Default for CommandTrace {
    fn default() -> Self {
        CommandTrace::new(4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(kind: CommandKind, t: u128) -> DramCommand {
        DramCommand {
            kind,
            target: GlobalRowId::new(0, 0, 0),
            aux: None,
            at: Nanos(t),
        }
    }

    #[test]
    fn trace_retains_most_recent() {
        let mut tr = CommandTrace::new(3);
        for i in 0..5 {
            tr.record(cmd(CommandKind::Act, i));
        }
        assert_eq!(tr.issued(), 5);
        assert_eq!(tr.len(), 3);
        let times: Vec<u128> = tr.iter().map(|c| c.at.0).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_trace_counts_only() {
        let mut tr = CommandTrace::new(0);
        tr.record(cmd(CommandKind::Pre, 1));
        assert_eq!(tr.issued(), 1);
        assert!(tr.is_empty());
    }

    #[test]
    fn count_kind_filters() {
        let mut tr = CommandTrace::new(10);
        tr.record(cmd(CommandKind::Act, 0));
        tr.record(cmd(CommandKind::RowClone, 1));
        tr.record(cmd(CommandKind::Act, 2));
        assert_eq!(tr.count_kind(CommandKind::Act), 2);
        assert_eq!(tr.count_kind(CommandKind::RowClone), 1);
        assert_eq!(tr.count_kind(CommandKind::Wr), 0);
    }
}
