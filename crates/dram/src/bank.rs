//! Bank model and the logical→physical row-indirection utility used by
//! swap-based mitigations (RRS/SRS keep such a table in SRAM; DNN-Defender
//! tracks target relocation at the mapping-file level).

use std::collections::HashMap;

use crate::error::DramError;
use crate::geometry::{RowInSubarray, SubarrayId};
use crate::subarray::Subarray;

/// One DRAM bank: a stack of subarrays.
#[derive(Debug, Clone)]
pub struct Bank {
    subarrays: Vec<Subarray>,
}

impl Bank {
    /// Create a bank of `subarrays` zero-initialized subarrays.
    pub fn new(subarrays: usize, rows_per_subarray: usize, row_bytes: usize) -> Self {
        Bank {
            subarrays: (0..subarrays)
                .map(|_| Subarray::new(rows_per_subarray, row_bytes))
                .collect(),
        }
    }

    /// Number of subarrays.
    pub fn subarrays(&self) -> usize {
        self.subarrays.len()
    }

    /// Immutable subarray access.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::SubarrayOutOfRange`] for an invalid index.
    pub fn subarray(&self, id: SubarrayId) -> Result<&Subarray, DramError> {
        self.subarrays
            .get(id.0)
            .ok_or(DramError::SubarrayOutOfRange {
                subarray: id,
                subarrays: self.subarrays.len(),
            })
    }

    /// Direct mutable subarray access for pre-validated indices (the
    /// batched fast path decodes and bounds-checks addresses once per
    /// chunk, so the per-command range check would be pure overhead).
    pub(crate) fn subarray_raw_mut(&mut self, idx: usize) -> &mut Subarray {
        &mut self.subarrays[idx]
    }

    /// Mutable subarray access.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::SubarrayOutOfRange`] for an invalid index.
    pub fn subarray_mut(&mut self, id: SubarrayId) -> Result<&mut Subarray, DramError> {
        let n = self.subarrays.len();
        self.subarrays
            .get_mut(id.0)
            .ok_or(DramError::SubarrayOutOfRange {
                subarray: id,
                subarrays: n,
            })
    }
}

/// A sparse logical→physical row map for one subarray.
///
/// Starts as the identity; mitigations record swaps here. Lookup is O(1)
/// and unmapped rows resolve to themselves, so the table only grows with
/// the number of *displaced* rows — mirroring the bounded SRAM row
/// indirection tables of RRS/SRS.
#[derive(Debug, Clone, Default)]
pub struct RowIndirection {
    map: HashMap<usize, usize>,
}

impl RowIndirection {
    /// Identity mapping.
    pub fn new() -> Self {
        RowIndirection::default()
    }

    /// Physical row currently backing `logical`.
    pub fn resolve(&self, logical: RowInSubarray) -> RowInSubarray {
        RowInSubarray(*self.map.get(&logical.0).unwrap_or(&logical.0))
    }

    /// Record that the contents of logical rows `a` and `b` exchanged
    /// physical locations.
    pub fn swap(&mut self, a: RowInSubarray, b: RowInSubarray) {
        let pa = self.resolve(a).0;
        let pb = self.resolve(b).0;
        self.map.insert(a.0, pb);
        self.map.insert(b.0, pa);
        // Keep the table sparse: drop identity entries.
        if self.map.get(&a.0) == Some(&a.0) {
            self.map.remove(&a.0);
        }
        if self.map.get(&b.0) == Some(&b.0) {
            self.map.remove(&b.0);
        }
    }

    /// Number of displaced (non-identity) entries.
    pub fn displaced(&self) -> usize {
        self.map.len()
    }

    /// Reset to the identity mapping (an "unswap all").
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_exposes_subarrays() {
        let mut b = Bank::new(4, 16, 8);
        assert_eq!(b.subarrays(), 4);
        assert!(b.subarray(SubarrayId(3)).is_ok());
        assert!(b.subarray(SubarrayId(4)).is_err());
        assert!(b.subarray_mut(SubarrayId(4)).is_err());
    }

    #[test]
    fn indirection_starts_identity() {
        let r = RowIndirection::new();
        assert_eq!(r.resolve(RowInSubarray(42)), RowInSubarray(42));
        assert_eq!(r.displaced(), 0);
    }

    #[test]
    fn swap_exchanges_mappings() {
        let mut r = RowIndirection::new();
        r.swap(RowInSubarray(1), RowInSubarray(9));
        assert_eq!(r.resolve(RowInSubarray(1)), RowInSubarray(9));
        assert_eq!(r.resolve(RowInSubarray(9)), RowInSubarray(1));
        assert_eq!(r.displaced(), 2);
    }

    #[test]
    fn double_swap_restores_identity() {
        let mut r = RowIndirection::new();
        r.swap(RowInSubarray(1), RowInSubarray(9));
        r.swap(RowInSubarray(1), RowInSubarray(9));
        assert_eq!(r.resolve(RowInSubarray(1)), RowInSubarray(1));
        assert_eq!(r.resolve(RowInSubarray(9)), RowInSubarray(9));
        assert_eq!(r.displaced(), 0);
    }

    #[test]
    fn chained_swaps_compose() {
        let mut r = RowIndirection::new();
        r.swap(RowInSubarray(1), RowInSubarray(2));
        r.swap(RowInSubarray(2), RowInSubarray(3));
        // 1 -> 2, then the content at logical 2 (physical 1) moves to 3.
        assert_eq!(r.resolve(RowInSubarray(1)), RowInSubarray(2));
        assert_eq!(r.resolve(RowInSubarray(2)), RowInSubarray(3));
        assert_eq!(r.resolve(RowInSubarray(3)), RowInSubarray(1));
        r.clear();
        assert_eq!(r.displaced(), 0);
    }
}
