//! Memory operation statistics and the analytical energy model.

use serde::{Deserialize, Serialize};

use crate::timing::Nanos;

/// Counters for every class of DRAM operation plus accumulated busy time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Row activations issued (including those inside fused ops).
    pub acts: u64,
    /// Precharges issued.
    pub pres: u64,
    /// Full-row reads.
    pub reads: u64,
    /// Full-row writes.
    pub writes: u64,
    /// RowClone copy operations (each is ACT–ACT–PRE).
    pub row_clones: u64,
    /// Explicit row refreshes.
    pub refreshes: u64,
    /// Total simulated busy time of the command bus.
    pub busy: Nanos,
}

impl MemStats {
    /// New all-zero stats.
    pub fn new() -> Self {
        MemStats::default()
    }

    /// Difference (`self - earlier`) for interval measurements.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` has larger counters than `self` (it must be a
    /// snapshot taken before `self` on the same controller).
    pub fn since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            acts: self.acts - earlier.acts,
            pres: self.pres - earlier.pres,
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            row_clones: self.row_clones - earlier.row_clones,
            refreshes: self.refreshes - earlier.refreshes,
            busy: self.busy - earlier.busy,
        }
    }
}

/// Per-operation energy in picojoules.
///
/// Default numbers follow the RowClone paper's relative costs: an in-DRAM
/// copy consumes roughly 74× less energy than moving a row over the memory
/// channel, which is what gives DNN-Defender its negligible energy overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per activation (pJ).
    pub e_act: f64,
    /// Energy per precharge (pJ).
    pub e_pre: f64,
    /// Energy per full-row read over the channel (pJ).
    pub e_rd: f64,
    /// Energy per full-row write over the channel (pJ).
    pub e_wr: f64,
    /// Energy per RowClone copy (pJ) — in-array, no channel transfer.
    pub e_row_clone: f64,
    /// Energy per explicit refresh (pJ).
    pub e_refresh: f64,
}

impl EnergyModel {
    /// DDR4-flavoured defaults.
    pub fn ddr4() -> Self {
        EnergyModel {
            e_act: 909.0,
            e_pre: 632.0,
            // Channel transfer of an 8 KiB row dominates rd/wr energy.
            e_rd: 35_000.0,
            e_wr: 35_000.0,
            // RowClone: two ACTs + PRE, no channel transfer (~74x cheaper
            // than a read-modify-write copy through the controller).
            e_row_clone: 2.0 * 909.0 + 632.0,
            e_refresh: 1_200.0,
        }
    }

    /// Total energy (pJ) for a set of operation counts.
    pub fn energy_pj(&self, stats: &MemStats) -> f64 {
        stats.acts as f64 * self.e_act
            + stats.pres as f64 * self.e_pre
            + stats.reads as f64 * self.e_rd
            + stats.writes as f64 * self.e_wr
            + stats.row_clones as f64 * self.e_row_clone
            + stats.refreshes as f64 * self.e_refresh
    }

    /// Energy (pJ) of copying one row via the memory channel
    /// (read + write), for comparison against [`EnergyModel::e_row_clone`].
    pub fn channel_copy_pj(&self) -> f64 {
        self.e_rd + self.e_wr
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::ddr4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_counters() {
        let early = MemStats {
            acts: 10,
            busy: Nanos(100),
            ..MemStats::new()
        };
        let late = MemStats {
            acts: 25,
            busy: Nanos(400),
            ..MemStats::new()
        };
        let d = late.since(&early);
        assert_eq!(d.acts, 15);
        assert_eq!(d.busy, Nanos(300));
    }

    #[test]
    fn rowclone_is_much_cheaper_than_channel_copy() {
        let e = EnergyModel::ddr4();
        assert!(e.channel_copy_pj() / e.e_row_clone > 20.0);
    }

    #[test]
    fn energy_accumulates_per_op() {
        let e = EnergyModel::ddr4();
        let s = MemStats {
            acts: 2,
            pres: 1,
            row_clones: 3,
            ..MemStats::new()
        };
        let expected = 2.0 * e.e_act + e.e_pre + 3.0 * e.e_row_clone;
        assert!((e.energy_pj(&s) - expected).abs() < 1e-9);
    }
}
