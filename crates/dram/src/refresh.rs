//! Auto-refresh scheduling model.
//!
//! DDR devices refresh all rows once per `T_ref` (64 ms) using `8192`
//! distributed `REF` commands, each refreshing a bundle of rows and
//! stalling the bank for `t_rfc`. DNN-Defender's security argument leans
//! on this window: any disturbance that has not reached `T_RH` by the
//! time the victim's refresh bundle comes around is wiped. This module
//! models the schedule analytically (the lazy epoch mechanism in
//! [`crate::rowhammer`] already provides the window semantics; here we
//! account for *which rows refresh when* and what the refresh traffic
//! costs).

use serde::{Deserialize, Serialize};

use crate::geometry::DramConfig;
use crate::timing::Nanos;

/// Distributed-refresh schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RefreshSchedule {
    /// Refresh interval over which every row is refreshed once.
    pub t_ref: Nanos,
    /// Number of `REF` commands per interval (8192 for DDR4).
    pub commands_per_interval: u32,
    /// Bank-stall time per `REF` command.
    pub t_rfc: Nanos,
    /// Rows refreshed by one `REF` command.
    pub rows_per_command: u32,
}

impl RefreshSchedule {
    /// Standard schedule for a device configuration.
    pub fn from_config(config: &DramConfig) -> Self {
        let commands_per_interval = 8192u32;
        let rows = config.rows_per_subarray * config.subarrays_per_bank;
        RefreshSchedule {
            t_ref: config.timing.t_ref,
            commands_per_interval,
            t_rfc: Nanos(350),
            rows_per_command: (rows as u32).div_ceil(commands_per_interval).max(1),
        }
    }

    /// Interval between consecutive `REF` commands (`t_refi`, ~7.8 µs).
    pub fn t_refi(&self) -> Nanos {
        self.t_ref / u128::from(self.commands_per_interval)
    }

    /// Time at which a given row (by its per-bank refresh order) is next
    /// refreshed after `now`.
    pub fn next_refresh_of(&self, row_order: u32, now: Nanos) -> Nanos {
        let slot = row_order / self.rows_per_command;
        let slot_offset = self.t_refi() * u128::from(slot);
        let period_start = Nanos(now.0 - now.0 % self.t_ref.0);
        let this_period = period_start + slot_offset;
        if this_period.0 > now.0 {
            this_period
        } else {
            this_period + self.t_ref
        }
    }

    /// The longest time any row can go unrefreshed (its exposure window):
    /// exactly one full `t_ref`.
    pub fn max_exposure(&self) -> Nanos {
        self.t_ref
    }

    /// Fraction of bank time consumed by refresh
    /// (`commands × t_rfc / t_ref`).
    pub fn bandwidth_overhead(&self) -> f64 {
        (self.t_rfc.0 as f64 * f64::from(self.commands_per_interval)) / self.t_ref.0 as f64
    }

    /// How many hammer activations fit between two refreshes of the same
    /// victim — the quantity that must stay below `T_RH` for plain
    /// auto-refresh to be safe on its own.
    pub fn activations_per_exposure(&self, t_act: Nanos) -> u64 {
        (self.max_exposure() / t_act) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::TimingParams;

    fn schedule() -> RefreshSchedule {
        RefreshSchedule::from_config(&DramConfig::lpddr4_small())
    }

    #[test]
    fn t_refi_is_about_7_8_us() {
        let s = schedule();
        let refi = s.t_refi();
        assert!(refi.0 > 7_000 && refi.0 < 8_000, "t_refi = {refi}");
    }

    #[test]
    fn refresh_overhead_is_a_few_percent() {
        let s = schedule();
        let o = s.bandwidth_overhead();
        assert!(o > 0.01 && o < 0.1, "overhead = {o}");
    }

    #[test]
    fn every_row_refreshes_within_one_interval() {
        let s = schedule();
        let rows = 128 * 8; // lpddr4_small rows per bank
        for order in [0u32, 1, 511, rows - 1] {
            let t = s.next_refresh_of(order, Nanos(0));
            assert!(t <= s.t_ref, "row {order} refreshed late: {t}");
        }
    }

    #[test]
    fn next_refresh_is_strictly_in_the_future() {
        let s = schedule();
        let now = Nanos::from_millis(10);
        for order in [0u32, 100, 1000] {
            assert!(s.next_refresh_of(order, now) > now);
        }
    }

    #[test]
    fn auto_refresh_alone_cannot_stop_modern_rowhammer() {
        // The paper's premise: within one t_ref an attacker fits far more
        // than T_RH = 4800 activations, so auto-refresh alone fails and a
        // targeted mechanism is needed.
        let s = schedule();
        let t = TimingParams::lpddr4();
        let acts = s.activations_per_exposure(t.t_act);
        assert!(
            acts > 4800 * 100,
            "exposure window only admits {acts} activations"
        );
    }
}
