//! Subarray model: row storage, row buffer, RowClone.
//!
//! A subarray is the unit inside which (a) rows are physically adjacent —
//! the RowHammer blast radius — and (b) RowClone can copy a whole row in
//! one ACT–ACT pair because the rows share sense amplifiers (§2.1).

use serde::{Deserialize, Serialize};

use crate::error::DramError;
use crate::geometry::RowInSubarray;

/// The payload of one DRAM row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowData {
    bytes: Vec<u8>,
}

impl RowData {
    /// An all-zero row of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        RowData {
            bytes: vec![0; len],
        }
    }

    /// Wrap an existing byte buffer.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        RowData { bytes }
    }

    /// Byte view.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable byte view.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the row holds zero bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Read bit `bit` (LSB-first within each byte).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BitOutOfRange`] when `bit >= 8 * len()`.
    pub fn bit(&self, bit: usize) -> Result<bool, DramError> {
        let byte = bit / 8;
        if byte >= self.bytes.len() {
            return Err(DramError::BitOutOfRange {
                bit,
                bits: self.bytes.len() * 8,
            });
        }
        Ok(self.bytes[byte] >> (bit % 8) & 1 == 1)
    }

    /// Flip bit `bit`, returning its new value.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::BitOutOfRange`] when `bit >= 8 * len()`.
    pub fn flip_bit(&mut self, bit: usize) -> Result<bool, DramError> {
        let byte = bit / 8;
        if byte >= self.bytes.len() {
            return Err(DramError::BitOutOfRange {
                bit,
                bits: self.bytes.len() * 8,
            });
        }
        self.bytes[byte] ^= 1 << (bit % 8);
        Ok(self.bytes[byte] >> (bit % 8) & 1 == 1)
    }
}

/// One DRAM subarray: a stack of physically adjacent rows plus a row buffer.
#[derive(Debug, Clone)]
pub struct Subarray {
    rows: Vec<RowData>,
    row_bytes: usize,
    /// Currently open row, if any (the row latched in the sense amplifiers).
    open_row: Option<RowInSubarray>,
}

impl Subarray {
    /// Create a zero-initialized subarray of `rows` rows × `row_bytes` bytes.
    pub fn new(rows: usize, row_bytes: usize) -> Self {
        Subarray {
            rows: (0..rows).map(|_| RowData::zeroed(row_bytes)).collect(),
            row_bytes,
            open_row: None,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Row payload size in bytes.
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// The row currently latched in the row buffer, if any.
    pub fn open_row(&self) -> Option<RowInSubarray> {
        self.open_row
    }

    fn check(&self, row: RowInSubarray) -> Result<(), DramError> {
        if row.0 >= self.rows.len() {
            Err(DramError::RowOutOfRange {
                row,
                rows: self.rows.len(),
            })
        } else {
            Ok(())
        }
    }

    /// `ACT`: open `row` into the row buffer.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for an invalid row.
    pub fn activate(&mut self, row: RowInSubarray) -> Result<(), DramError> {
        self.check(row)?;
        self.open_row = Some(row);
        Ok(())
    }

    /// `PRE`: close the open row.
    pub fn precharge(&mut self) {
        self.open_row = None;
    }

    /// Fill a pre-validated row with one byte value (the batched write
    /// path; the deterministic tenant payloads are single-byte fills).
    pub(crate) fn fill_row_raw(&mut self, row: usize, byte: u8) {
        self.rows[row].as_bytes_mut().fill(byte);
    }

    /// Immutable access to a row's payload.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for an invalid row.
    pub fn row(&self, row: RowInSubarray) -> Result<&RowData, DramError> {
        self.check(row)?;
        Ok(&self.rows[row.0])
    }

    /// Mutable access to a row's payload (models a full-row write through
    /// the row buffer).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for an invalid row.
    pub fn row_mut(&mut self, row: RowInSubarray) -> Result<&mut RowData, DramError> {
        self.check(row)?;
        Ok(&mut self.rows[row.0])
    }

    /// Overwrite a row's payload.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] for an invalid row and
    /// [`DramError::RowSizeMismatch`] when `data` is not exactly one row.
    pub fn write_row(&mut self, row: RowInSubarray, data: &[u8]) -> Result<(), DramError> {
        self.check(row)?;
        if data.len() != self.row_bytes {
            return Err(DramError::RowSizeMismatch {
                expected: self.row_bytes,
                got: data.len(),
            });
        }
        self.rows[row.0].as_bytes_mut().copy_from_slice(data);
        Ok(())
    }

    /// RowClone: copy `src` into `dst` entirely inside the subarray
    /// (ACT(src) latches the row into the sense amps, ACT(dst) drives it
    /// into the destination cells). Leaves `dst` open, mirroring the
    /// back-to-back-ACT sequence.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] when either row is invalid.
    pub fn row_clone(&mut self, src: RowInSubarray, dst: RowInSubarray) -> Result<(), DramError> {
        self.check(src)?;
        self.check(dst)?;
        if src != dst {
            let data = self.rows[src.0].clone();
            self.rows[dst.0] = data;
        }
        self.open_row = Some(dst);
        Ok(())
    }

    /// Swap the payloads of two rows (three RowClone copies through a
    /// scratch location are modelled at the controller level; this is the
    /// end state).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::RowOutOfRange`] when either row is invalid.
    pub fn swap_rows(&mut self, a: RowInSubarray, b: RowInSubarray) -> Result<(), DramError> {
        self.check(a)?;
        self.check(b)?;
        self.rows.swap(a.0, b.0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rowdata_bit_ops() {
        let mut r = RowData::zeroed(2);
        assert!(!r.bit(0).unwrap());
        assert!(r.flip_bit(0).unwrap());
        assert!(r.bit(0).unwrap());
        assert!(r.flip_bit(9).unwrap());
        assert_eq!(r.as_bytes(), &[0b1, 0b10]);
        assert!(r.bit(16).is_err());
        assert!(r.flip_bit(16).is_err());
    }

    #[test]
    fn activate_precharge_tracks_open_row() {
        let mut s = Subarray::new(8, 4);
        assert_eq!(s.open_row(), None);
        s.activate(RowInSubarray(3)).unwrap();
        assert_eq!(s.open_row(), Some(RowInSubarray(3)));
        s.precharge();
        assert_eq!(s.open_row(), None);
        assert!(s.activate(RowInSubarray(8)).is_err());
    }

    #[test]
    fn row_clone_copies_payload() {
        let mut s = Subarray::new(8, 4);
        s.write_row(RowInSubarray(1), &[1, 2, 3, 4]).unwrap();
        s.row_clone(RowInSubarray(1), RowInSubarray(5)).unwrap();
        assert_eq!(s.row(RowInSubarray(5)).unwrap().as_bytes(), &[1, 2, 3, 4]);
        // Source unchanged.
        assert_eq!(s.row(RowInSubarray(1)).unwrap().as_bytes(), &[1, 2, 3, 4]);
        // Destination left open (second ACT of the AAP pair).
        assert_eq!(s.open_row(), Some(RowInSubarray(5)));
    }

    #[test]
    fn row_clone_same_row_is_noop() {
        let mut s = Subarray::new(4, 2);
        s.write_row(RowInSubarray(0), &[9, 9]).unwrap();
        s.row_clone(RowInSubarray(0), RowInSubarray(0)).unwrap();
        assert_eq!(s.row(RowInSubarray(0)).unwrap().as_bytes(), &[9, 9]);
    }

    #[test]
    fn write_row_validates_size() {
        let mut s = Subarray::new(4, 4);
        assert!(matches!(
            s.write_row(RowInSubarray(0), &[1, 2]),
            Err(DramError::RowSizeMismatch {
                expected: 4,
                got: 2
            })
        ));
    }

    #[test]
    fn swap_rows_exchanges_payloads() {
        let mut s = Subarray::new(4, 1);
        s.write_row(RowInSubarray(0), &[7]).unwrap();
        s.write_row(RowInSubarray(2), &[8]).unwrap();
        s.swap_rows(RowInSubarray(0), RowInSubarray(2)).unwrap();
        assert_eq!(s.row(RowInSubarray(0)).unwrap().as_bytes(), &[8]);
        assert_eq!(s.row(RowInSubarray(2)).unwrap().as_bytes(), &[7]);
    }
}
