//! Cross-cell sweep kernel: one decoded command stream replayed against
//! N defense/counter states in a single pass.
//!
//! The batched kernel ([`crate::batch::DecodedBatch`] +
//! [`MemoryController::issue_batch`]) went structure-of-arrays *within*
//! one device. This module goes SoA *across* matrix cells: scenario
//! cells that share a device geometry and a trace stream differ only in
//! their per-cell counter state (the defense refreshed different rows,
//! earlier windows left different residues), so the expensive part of a
//! replay — walking the op schedule, advancing the clock, rolling
//! refresh epochs, accumulating stats — is identical for every cell and
//! needs to run once, not N times.
//!
//! [`CellSweep`] exploits a stronger fact: for cells advancing in
//! lockstep, the *sequence of counter events* per row (`refresh`,
//! `disturb n @ epoch`) is also identical, so the whole chunk can be
//! executed **symbolically** once. Each touched row ends the session in
//! one of three outcome classes:
//!
//! * **removed** — the last event was a refresh; every cell drops the
//!   row's entry (prior state is irrelevant);
//! * **absolute** `(epoch, count)` — the stream reset the row mid-chunk
//!   (a refresh or an epoch rollover restart happened before the final
//!   accumulation run), erasing the prior; every cell gets the same
//!   final entry;
//! * **delta** `(epoch, n)` — the row only ever accumulated within one
//!   epoch; each cell's final count is `n` plus its own prior count
//!   when that prior carries the same epoch.
//!
//! Only the *delta* class depends on per-cell state at all, and only
//! through one prior lookup per touched row — per-cell work collapses
//! from `O(ops)` to `O(touched rows)`. At [`CellSweep::finish`] the
//! symbolic outcomes are resolved into a flat `[cell][row]` SoA arena
//! (each cell's slice contiguous, so the per-cell flush is a linear
//! sweep) and written back to each cell's tracker, payloads and
//! precharge state.
//!
//! Cells that cannot join the lockstep pass — a [`TraceMode::Full`]
//! controller that must keep an exact command ring, a cell whose clock
//! or timing parameters diverged — fall back to an ordinary per-cell
//! [`MemoryController::issue_batch`] of the same ops, which *is* the
//! reference the contract is stated against: a sweep over N cells must
//! be bit-identical to N independent `issue_batch` runs. The N-way
//! differential oracle in `tests/kernel_differential.rs` and the
//! grouping-invariance law in `tests/trait_conformance.rs` enforce
//! exactly that, and `repro kernel` measures the matrix-throughput win
//! (see `docs/perf.md`).

use crate::batch::{BatchOpKind, DecodedBatch};
use crate::command::{CommandKind, TraceMode};
use crate::controller::MemoryController;
use crate::error::DramError;
use crate::geometry::{BankId, DramConfig, GlobalRowId, RowInSubarray, SubarrayId};
use crate::timing::Nanos;

/// Symbolic per-row outcome class (low two bits of `sym_state`).
const SYM_MASK: u8 = 0b11;
/// No counter event touched the row this session.
const SYM_UNTOUCHED: u8 = 0;
/// Accumulating onto an unknown prior within one epoch.
const SYM_DELTA: u8 = 1;
/// Final entry fully determined by the stream.
const SYM_ABS: u8 = 2;
/// Final event was a refresh; the entry is dropped.
const SYM_REMOVED: u8 = 3;
/// The row's payload was overwritten (last fill wins).
const SYM_WRITTEN: u8 = 4;

/// Arena flag: the resolved entry is present in the cell's tracker.
const ARENA_PRESENT: u8 = 1;

/// Per-session lockstep bookkeeping, captured at the first
/// [`CellSweep::issue`] and retired by [`CellSweep::finish`].
struct Session {
    /// Shared simulated clock of the lockstep cells.
    now: u128,
    /// Current refresh epoch at `now`.
    epoch: u64,
    /// First instant past the current epoch.
    epoch_end: u128,
    /// Which cells run through the symbolic pass (the rest fall back to
    /// per-cell [`MemoryController::issue_batch`]).
    lockstep: Vec<bool>,
    /// Which lockstep cells keep [`TraceMode::CountersOnly`] counters.
    counting: Vec<bool>,
    /// Timing parameters shared by the lockstep set.
    t_act: u128,
    t_pre: u128,
    t_rd: u128,
    t_wr: u128,
    t_ref: u128,
}

/// The cross-cell sweep kernel: a symbolic session over one decoded op
/// stream plus the `[cell][row]` resolve arena.
///
/// Build one per (device geometry, cell count) with [`CellSweep::new`],
/// then per session: any number of [`CellSweep::issue`] calls followed
/// by one [`CellSweep::finish`]. Between `issue` and `finish` the
/// lockstep cells' clocks and stats are current but their disturbance
/// trackers, row payloads and precharge state are *deferred* — do not
/// read or mutate them until the session is finished. (The workload
/// layer's grouped drive upholds this by finishing before every
/// disturbance sample; see `dd_workload`.)
///
/// # Example
///
/// ```
/// use dd_dram::{BatchOpKind, CellSweep, DecodedBatch, DramConfig, GlobalRowId,
///               MemoryController, TraceMode};
///
/// # fn main() -> Result<(), dd_dram::DramError> {
/// let config = DramConfig::lpddr4_small();
/// let mut a = MemoryController::try_new(config.clone())?;
/// let mut b = MemoryController::try_new(config.clone())?;
/// a.set_trace_mode(TraceMode::CountersOnly);
/// b.set_trace_mode(TraceMode::CountersOnly);
/// // The cells differ in prior counter state…
/// b.hammer(GlobalRowId::new(0, 0, 20), 7)?;
/// a.advance(b.now() - a.now()); // …but advance in lockstep.
///
/// let mut batch = DecodedBatch::new(&config);
/// batch.push(GlobalRowId::new(0, 0, 10), BatchOpKind::Read, 3, None)?;
/// let mut sweep = CellSweep::new(&config, 2);
/// sweep.issue(&mut [&mut a, &mut b], &mut batch)?;
/// sweep.finish(&mut [&mut a, &mut b])?;
/// assert_eq!(a.stats().reads, 1);
/// assert_eq!(b.stats().reads, 1);
/// # Ok(())
/// # }
/// ```
pub struct CellSweep {
    banks: usize,
    subarrays_per_bank: usize,
    rows_per_subarray: usize,
    cells: usize,
    /// Shared symbolic outcome class per flat row (`SYM_*`).
    sym_state: Vec<u8>,
    /// Epoch of the symbolic entry (valid for `SYM_DELTA`/`SYM_ABS`).
    sym_epoch: Vec<u64>,
    /// Count of the symbolic entry (valid for `SYM_DELTA`/`SYM_ABS`).
    sym_count: Vec<u64>,
    /// Flat rows touched by counter events this session.
    touched: Vec<u32>,
    /// Last payload fill per flat row (valid when `SYM_WRITTEN`).
    fill: Vec<u8>,
    /// Flat rows carrying a deferred payload fill.
    written: Vec<u32>,
    /// Whether a data op touched the (global) subarray this session.
    sub_touched: Vec<bool>,
    /// Global subarray indices with a deferred precharge.
    subs: Vec<u32>,
    /// `[cell][row]` resolved counter state: each cell's contiguous
    /// slice holds the final `(epoch, count, present)` of every row the
    /// last finished session touched.
    cell_epoch: Vec<u64>,
    cell_count: Vec<u64>,
    cell_flags: Vec<u8>,
    session: Option<Session>,
}

impl CellSweep {
    /// Kernel scratch for `cells` controllers of `config`'s geometry.
    ///
    /// # Panics
    ///
    /// Panics when `cells` is zero.
    pub fn new(config: &DramConfig, cells: usize) -> Self {
        assert!(cells > 0, "a sweep needs at least one cell");
        let total = config.total_rows();
        CellSweep {
            banks: config.banks,
            subarrays_per_bank: config.subarrays_per_bank,
            rows_per_subarray: config.rows_per_subarray,
            cells,
            sym_state: vec![0; total],
            sym_epoch: vec![0; total],
            sym_count: vec![0; total],
            touched: Vec::new(),
            fill: vec![0; total],
            written: Vec::new(),
            sub_touched: vec![false; config.banks * config.subarrays_per_bank],
            subs: Vec::new(),
            cell_epoch: vec![0; total * cells],
            cell_count: vec![0; total * cells],
            cell_flags: vec![0; total * cells],
            session: None,
        }
    }

    /// Number of cells this kernel sweeps per pass.
    pub fn cells(&self) -> usize {
        self.cells
    }

    /// Whether a session is open (issued but not yet finished).
    pub fn active(&self) -> bool {
        self.session.is_some()
    }

    /// Whether this kernel was sized for `config`'s geometry.
    pub fn matches(&self, config: &DramConfig) -> bool {
        self.banks == config.banks
            && self.subarrays_per_bank == config.subarrays_per_bank
            && self.rows_per_subarray == config.rows_per_subarray
    }

    /// The last finished session's resolved counter state of `row` in
    /// `cell`: `Some((epoch, count))` when the cell's tracker holds an
    /// entry for the row, `None` when it does not (or the row was not
    /// touched). Mirrors what the flush wrote back — tests assert the
    /// arena and the trackers agree.
    pub fn resolved(&self, cell: usize, row: GlobalRowId) -> Option<(u64, u64)> {
        let flat = self.flat_of(row);
        let slot = cell * self.total_rows() + flat;
        if self.cell_flags[slot] & ARENA_PRESENT != 0 {
            Some((self.cell_epoch[slot], self.cell_count[slot]))
        } else {
            None
        }
    }

    fn total_rows(&self) -> usize {
        self.banks * self.subarrays_per_bank * self.rows_per_subarray
    }

    fn flat_of(&self, row: GlobalRowId) -> usize {
        (row.bank.0 * self.subarrays_per_bank + row.subarray.0) * self.rows_per_subarray + row.row.0
    }

    fn row_of(&self, flat: usize) -> GlobalRowId {
        let rows = self.rows_per_subarray;
        let sub = flat / rows;
        GlobalRowId {
            bank: BankId(sub / self.subarrays_per_bank),
            subarray: SubarrayId(sub % self.subarrays_per_bank),
            row: RowInSubarray(flat % rows),
        }
    }

    /// Symbolic [`crate::rowhammer::HammerTracker::disturb`]: compose
    /// one disturbance event onto the row's outcome class.
    #[inline]
    fn sym_disturb(&mut self, flat: usize, n: u64, epoch: u64) {
        let s = self.sym_state[flat];
        match s & SYM_MASK {
            SYM_UNTOUCHED => {
                self.touched.push(flat as u32);
                self.sym_state[flat] = s | SYM_DELTA;
                self.sym_epoch[flat] = epoch;
                self.sym_count[flat] = n;
            }
            // After any first disturb the entry's epoch is pinned in
            // every cell, so an epoch mismatch restarts absolutely.
            SYM_DELTA | SYM_ABS if self.sym_epoch[flat] != epoch => {
                self.sym_state[flat] = (s & !SYM_MASK) | SYM_ABS;
                self.sym_epoch[flat] = epoch;
                self.sym_count[flat] = n;
            }
            SYM_DELTA | SYM_ABS => self.sym_count[flat] += n,
            _ => {
                // SYM_REMOVED: the refresh erased the prior; the entry
                // restarts absolutely from this event.
                self.sym_state[flat] = (s & !SYM_MASK) | SYM_ABS;
                self.sym_epoch[flat] = epoch;
                self.sym_count[flat] = n;
            }
        }
    }

    /// Symbolic [`crate::rowhammer::HammerTracker::refresh`].
    #[inline]
    fn sym_refresh(&mut self, flat: usize) {
        let s = self.sym_state[flat];
        if s & SYM_MASK == SYM_UNTOUCHED {
            self.touched.push(flat as u32);
        }
        self.sym_state[flat] = (s & !SYM_MASK) | SYM_REMOVED;
    }

    fn begin(&mut self, mems: &[&mut MemoryController]) -> Session {
        let reference = mems
            .iter()
            .find(|m| m.trace_mode() != TraceMode::Full)
            .map(|m| (m.now().0, m.config().timing));
        let (now, timing) = match reference {
            Some(r) => r,
            // Every cell keeps a full trace: the whole sweep is
            // per-cell fallback and the shared clock is unused.
            None => (0, mems[0].config().timing),
        };
        let lockstep: Vec<bool> = mems
            .iter()
            .map(|m| {
                m.trace_mode() != TraceMode::Full && m.now().0 == now && m.config().timing == timing
            })
            .collect();
        let counting = mems
            .iter()
            .map(|m| m.trace_mode() == TraceMode::CountersOnly)
            .collect();
        let t_ref = timing.t_ref.0;
        Session {
            now,
            epoch: (now / t_ref) as u64,
            epoch_end: (now / t_ref + 1) * t_ref,
            lockstep,
            counting,
            t_act: timing.t_act.0,
            t_pre: timing.t_pre.0,
            t_rd: timing.t_rd.0,
            t_wr: timing.t_wr.0,
            t_ref,
        }
    }

    fn validate(
        &self,
        mems: &[&mut MemoryController],
        batch: &DecodedBatch,
    ) -> Result<(), DramError> {
        if mems.len() != self.cells {
            return Err(DramError::InvalidConfig(format!(
                "sweep sized for {} cells, got {}",
                self.cells,
                mems.len()
            )));
        }
        if !(batch.matches(mems[0].config()) && self.matches(mems[0].config())) {
            return Err(DramError::InvalidConfig(
                "sweep/batch decoded for a different device geometry".into(),
            ));
        }
        for m in mems.iter() {
            if !batch.matches(m.config()) {
                return Err(DramError::InvalidConfig(
                    "sweep cell has a different device geometry".into(),
                ));
            }
        }
        Ok(())
    }

    fn check_session(session: &Session, mems: &[&mut MemoryController]) -> Result<(), DramError> {
        for (c, m) in mems.iter().enumerate() {
            if session.lockstep[c]
                && (m.now().0 != session.now || m.trace_mode() == TraceMode::Full)
            {
                return Err(DramError::InvalidConfig(
                    "sweep session invariant violated: a lockstep cell's clock or \
                     trace mode changed between issues"
                        .into(),
                ));
            }
        }
        Ok(())
    }

    /// Execute one chunk of pre-decoded commands against every cell,
    /// draining `batch`'s op queue — equivalent to restoring the same
    /// ops and calling [`MemoryController::issue_batch`] on each cell
    /// independently, which is exactly what non-lockstep cells do.
    /// Opens a session on first use; the lockstep membership is fixed
    /// until [`CellSweep::finish`].
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] on a geometry or cell-count
    /// mismatch, or when a lockstep cell's clock or trace mode was
    /// changed mid-session; propagates per-cell errors from fallback
    /// replays.
    pub fn issue(
        &mut self,
        mems: &mut [&mut MemoryController],
        batch: &mut DecodedBatch,
    ) -> Result<(), DramError> {
        self.validate(mems, batch)?;
        match &self.session {
            None => self.session = Some(self.begin(mems)),
            Some(session) => Self::check_session(session, mems)?,
        }
        let mut session = self.session.take().expect("session open");
        let ops = std::mem::take(&mut batch.ops);

        // Per-cell fallback replays: full-trace or clock-diverged cells
        // issue the same ops through the ordinary batched entry point.
        let result = (|| -> Result<(), DramError> {
            if session.lockstep.iter().any(|&l| !l) {
                for (c, lock) in session.lockstep.iter().enumerate() {
                    if !lock {
                        batch.ops.clear();
                        batch.ops.extend_from_slice(&ops);
                        mems[c].issue_batch(batch)?;
                    }
                }
            }
            {
                let cells = mems.len();
                let _span = dd_obs::span_with("sweep.classify", || format!("cells={cells}"));
                dd_obs::observe("sweep.chunk_ops", ops.len() as u64);
                // Stall-only chaos probe, keyed by the lockstep clock
                // (see `MemoryController::issue_batch`): simulated state
                // is untouched, so sweep-vs-replay equivalence holds.
                if dd_chaos::fires("kernel.chunk_stall", session.now as u64) {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                }
                self.symbolic_pass(&mut session, mems, &ops);
            }
            Ok(())
        })();

        batch.ops = ops;
        batch.ops.clear();
        self.session = Some(session);
        result
    }

    /// The shared symbolic chunk execution: one walk over the ops
    /// computes the lockstep cells' common clock/epoch trajectory, stats
    /// and per-row outcome classes. Mirrors the single-cell fast path
    /// (`MemoryController::issue_batch_fast`) event for event.
    fn symbolic_pass(
        &mut self,
        session: &mut Session,
        mems: &mut [&mut MemoryController],
        ops: &[crate::batch::BatchOp],
    ) {
        if !session.lockstep.iter().any(|&l| l) {
            return;
        }
        let rows_per = self.rows_per_subarray;
        let (t_act, t_pre, t_rd, t_wr) = (session.t_act, session.t_pre, session.t_rd, session.t_wr);
        let t_ref = session.t_ref;
        let mut now = session.now;
        let mut epoch = session.epoch;
        let mut epoch_end = session.epoch_end;
        let (mut acts, mut pres, mut reads, mut writes) = (0u64, 0u64, 0u64, 0u64);
        let (mut c_act, mut c_rd, mut c_wr, mut c_pre) = (0u64, 0u64, 0u64, 0u64);
        let mut busy = 0u128;
        let mut events = 0u64;

        for op in ops {
            if op.advance_to > now {
                now = op.advance_to;
            }
            let flat = op.flat as usize;
            let in_row = flat % rows_per;
            if op.kind != BatchOpKind::Hammer {
                now += t_act;
                if now >= epoch_end {
                    epoch = (now / t_ref) as u64;
                    epoch_end = (now / t_ref + 1) * t_ref;
                }
                self.sym_refresh(flat);
                if in_row > 0 {
                    self.sym_disturb(flat - 1, 1, epoch);
                    events += 1;
                }
                if in_row + 1 < rows_per {
                    self.sym_disturb(flat + 1, 1, epoch);
                    events += 1;
                }
                match op.kind {
                    BatchOpKind::Read => {
                        now += t_rd;
                        reads += 1;
                        c_rd += 1;
                        busy += t_act + t_rd + t_pre;
                    }
                    BatchOpKind::Write(fill) => {
                        // Mid-chunk payloads are unobservable: only the
                        // last fill per row survives to the flush.
                        if self.sym_state[flat] & SYM_WRITTEN == 0 {
                            self.sym_state[flat] |= SYM_WRITTEN;
                            self.written.push(flat as u32);
                        }
                        self.fill[flat] = fill;
                        now += t_wr;
                        writes += 1;
                        c_wr += 1;
                        busy += t_act + t_wr + t_pre;
                    }
                    BatchOpKind::Hammer => unreachable!("guarded above"),
                }
                // The closing PRE: deferred to one precharge per data-op
                // subarray at finish (end state is identical).
                let sub_global = flat / rows_per;
                if !self.sub_touched[sub_global] {
                    self.sub_touched[sub_global] = true;
                    self.subs.push(sub_global as u32);
                }
                now += t_pre;
                acts += 1;
                pres += 1;
                c_act += 1;
                c_pre += 1;
            }
            if op.extra > 0 {
                now += t_act * u128::from(op.extra);
                if now >= epoch_end {
                    epoch = (now / t_ref) as u64;
                    epoch_end = (now / t_ref + 1) * t_ref;
                }
                self.sym_refresh(flat);
                if in_row > 0 {
                    self.sym_disturb(flat - 1, op.extra, epoch);
                    events += op.extra;
                }
                if in_row + 1 < rows_per {
                    self.sym_disturb(flat + 1, op.extra, epoch);
                    events += op.extra;
                }
                acts += op.extra;
                pres += op.extra;
                busy += t_act * u128::from(op.extra);
                c_act += 1;
            }
        }

        session.now = now;
        session.epoch = epoch;
        session.epoch_end = epoch_end;

        // The shared chunk outcome lands on every lockstep cell: O(cells)
        // per chunk, independent of the op count.
        for (c, m) in mems.iter_mut().enumerate() {
            if !session.lockstep[c] {
                continue;
            }
            let p = m.raw_parts();
            *p.now = Nanos(now);
            p.stats.acts += acts;
            p.stats.pres += pres;
            p.stats.reads += reads;
            p.stats.writes += writes;
            p.stats.busy += Nanos(busy);
            if session.counting[c] {
                p.trace.count_n(CommandKind::Act, c_act);
                p.trace.count_n(CommandKind::Rd, c_rd);
                p.trace.count_n(CommandKind::Wr, c_wr);
                p.trace.count_n(CommandKind::Pre, c_pre);
            }
            p.hammer.raw_add_events(events);
        }
    }

    /// Close the session: resolve every touched row's symbolic outcome
    /// against each lockstep cell's prior state — materialized through
    /// the `[cell][row]` arena, one contiguous per-cell sweep — and
    /// write trackers, deferred payload fills and subarray precharges
    /// back. After `finish` every cell's state is settled and
    /// bit-identical to N independent [`MemoryController::issue_batch`]
    /// runs of the same chunks. No-op when no session is open.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] on a cell-count mismatch or
    /// when a lockstep cell's clock was changed since the last issue.
    pub fn finish(&mut self, mems: &mut [&mut MemoryController]) -> Result<(), DramError> {
        let Some(session) = self.session.take() else {
            return Ok(());
        };
        if mems.len() != self.cells {
            self.session = Some(session);
            return Err(DramError::InvalidConfig(format!(
                "sweep sized for {} cells, got {}",
                self.cells,
                mems.len()
            )));
        }
        if let Err(e) = Self::check_session(&session, mems) {
            self.session = Some(session);
            return Err(e);
        }
        let cells = mems.len();
        let _span = dd_obs::span_with("sweep.resolve", || format!("cells={cells}"));

        let total = self.total_rows();
        let rows_per = self.rows_per_subarray;
        let spb = self.subarrays_per_bank;
        for (c, m) in mems.iter_mut().enumerate() {
            if !session.lockstep[c] {
                continue;
            }
            let base = c * total;
            let p = m.raw_parts();
            for i in 0..self.touched.len() {
                let flat = self.touched[i] as usize;
                let row = self.row_of(flat);
                let slot = base + flat;
                match self.sym_state[flat] & SYM_MASK {
                    SYM_REMOVED => {
                        self.cell_flags[slot] = 0;
                        p.hammer.raw_remove(row);
                    }
                    SYM_ABS => {
                        self.cell_epoch[slot] = self.sym_epoch[flat];
                        self.cell_count[slot] = self.sym_count[flat];
                        self.cell_flags[slot] = ARENA_PRESENT;
                        p.hammer
                            .raw_set(row, self.sym_epoch[flat], self.sym_count[flat]);
                    }
                    SYM_DELTA => {
                        let e = self.sym_epoch[flat];
                        let mut n = self.sym_count[flat];
                        if let Some((pe, pc)) = p.hammer.raw_get(row) {
                            if pe == e {
                                n += pc;
                            }
                        }
                        self.cell_epoch[slot] = e;
                        self.cell_count[slot] = n;
                        self.cell_flags[slot] = ARENA_PRESENT;
                        p.hammer.raw_set(row, e, n);
                    }
                    _ => unreachable!("touched rows are never untouched"),
                }
            }
            for &flat32 in &self.written {
                let flat = flat32 as usize;
                let sub =
                    p.banks[flat / (spb * rows_per)].subarray_raw_mut((flat / rows_per) % spb);
                sub.fill_row_raw(flat % rows_per, self.fill[flat]);
            }
            for &sub32 in &self.subs {
                let sub_global = sub32 as usize;
                p.banks[sub_global / spb]
                    .subarray_raw_mut(sub_global % spb)
                    .precharge();
            }
        }

        // Reset the shared scratch for the next session.
        for &flat32 in &self.touched {
            self.sym_state[flat32 as usize] = 0;
        }
        self.touched.clear();
        self.written.clear();
        for &sub32 in &self.subs {
            self.sub_touched[sub32 as usize] = false;
        }
        self.subs.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::DecodedBatch;

    fn config() -> DramConfig {
        DramConfig::lpddr4_small()
    }

    fn cell(history: u64) -> MemoryController {
        let mut m = MemoryController::try_new(config()).expect("valid config");
        m.set_trace_mode(TraceMode::CountersOnly);
        // Distinct prior counter state per cell, then clocks re-aligned.
        for k in 0..history {
            m.hammer(GlobalRowId::new(0, 0, (3 + 7 * k as usize) % 120), 5 + k)
                .expect("hammer");
        }
        m
    }

    fn align(cells: &mut [MemoryController]) {
        let latest = cells.iter().map(|m| m.now()).max().expect("cells");
        for m in cells.iter_mut() {
            let gap = latest - m.now();
            m.advance(gap);
        }
    }

    /// A deterministic op mix: reads/writes/hammers over several banks,
    /// subarray edges (rows 0 and last), idle gaps, and an epoch-crossing
    /// hammer storm.
    fn push_mix(batch: &mut DecodedBatch, seed: u64, base_now: u128) {
        let mut x = seed | 1;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..200u64 {
            let r = next();
            let row = GlobalRowId::new(
                (r % 4) as usize,
                ((r >> 8) % 2) as usize,
                ((r >> 16) % 128) as usize,
            );
            let advance_to = if i % 31 == 0 {
                Some(Nanos(base_now + u128::from(i) * 90_000))
            } else {
                None
            };
            match r % 5 {
                0 => batch.push(row, BatchOpKind::Write((r >> 3) as u8), 3, advance_to),
                1 => batch.push(row, BatchOpKind::Hammer, 1 + r % 700, advance_to),
                2 => batch.push(
                    GlobalRowId::new(0, 0, if r % 2 == 0 { 0 } else { 127 }),
                    BatchOpKind::Read,
                    0,
                    advance_to,
                ),
                _ => batch.push(row, BatchOpKind::Read, 2, advance_to),
            }
            .expect("valid op");
        }
        // A storm long enough to cross a refresh-epoch boundary.
        batch
            .push(
                GlobalRowId::new(1, 0, 64),
                BatchOpKind::Hammer,
                500_000,
                None,
            )
            .expect("valid op");
    }

    fn assert_cells_identical(a: &mut MemoryController, b: &mut MemoryController, tag: &str) {
        assert_eq!(a.now(), b.now(), "{tag}: clock");
        assert_eq!(a.stats(), b.stats(), "{tag}: stats");
        for kind in [
            CommandKind::Act,
            CommandKind::Rd,
            CommandKind::Wr,
            CommandKind::Pre,
        ] {
            assert_eq!(
                a.trace().issued_of(kind),
                b.trace().issued_of(kind),
                "{tag}: {kind:?} counter"
            );
        }
        let (pa, pb) = (a.raw_parts(), b.raw_parts());
        assert_eq!(
            pa.hammer.total_events(),
            pb.hammer.total_events(),
            "{tag}: events"
        );
        let cfg = config();
        for bank in 0..cfg.banks {
            for sub in 0..cfg.subarrays_per_bank {
                for row in 0..cfg.rows_per_subarray {
                    let gid = GlobalRowId::new(bank, sub, row);
                    assert_eq!(
                        pa.hammer.raw_get(gid),
                        pb.hammer.raw_get(gid),
                        "{tag}: tracker entry {gid:?}"
                    );
                }
            }
        }
        // Payload + precharge end state: raw row bytes, open-row latch.
        for bank in 0..cfg.banks {
            for sub in 0..cfg.subarrays_per_bank {
                let sa = pa.banks[bank].subarray_raw_mut(sub);
                let sb = pb.banks[bank].subarray_raw_mut(sub);
                assert_eq!(sa.open_row(), sb.open_row(), "{tag}: open row");
                for row in 0..cfg.rows_per_subarray {
                    let rid = RowInSubarray(row);
                    assert_eq!(
                        sa.row(rid).expect("row").as_bytes(),
                        sb.row(rid).expect("row").as_bytes(),
                        "{tag}: payload"
                    );
                }
            }
        }
    }

    #[test]
    fn sweep_is_bit_identical_to_independent_issue_batch_runs() {
        const N: usize = 4;
        let mut swept: Vec<MemoryController> = (0..N as u64).map(cell).collect();
        let mut solo: Vec<MemoryController> = (0..N as u64).map(cell).collect();
        align(&mut swept);
        align(&mut solo);

        let mut sweep = CellSweep::new(&config(), N);
        let mut batch = DecodedBatch::new(&config());
        let mut solo_batch = DecodedBatch::new(&config());
        // Three chunks per session, two sessions.
        for session in 0..2u64 {
            for chunk in 0..3u64 {
                let base = swept[0].now().0;
                push_mix(&mut batch, 1 + session * 10 + chunk, base);
                push_mix(&mut solo_batch, 1 + session * 10 + chunk, base);
                {
                    let mut mems: Vec<&mut MemoryController> = swept.iter_mut().collect();
                    sweep.issue(&mut mems, &mut batch).expect("sweep issue");
                }
                for m in solo.iter_mut() {
                    let mut fresh = DecodedBatch::new(&config());
                    fresh.ops.extend_from_slice(&solo_batch.ops);
                    m.issue_batch(&mut fresh).expect("solo issue");
                }
                solo_batch.ops.clear();
            }
            let mut mems: Vec<&mut MemoryController> = swept.iter_mut().collect();
            sweep.finish(&mut mems).expect("sweep finish");
        }
        for (i, (a, b)) in swept.iter_mut().zip(solo.iter_mut()).enumerate() {
            assert_cells_identical(a, b, &format!("cell {i}"));
        }
        // The resolve arena mirrors the trackers it flushed.
        for (c, m) in swept.iter_mut().enumerate() {
            let p = m.raw_parts();
            for row in [
                GlobalRowId::new(1, 0, 63),
                GlobalRowId::new(1, 0, 65),
                GlobalRowId::new(0, 0, 1),
            ] {
                if let Some(r) = sweep.resolved(c, row) {
                    assert_eq!(p.hammer.raw_get(row), Some(r), "arena/tracker drift");
                }
            }
        }
    }

    #[test]
    fn full_trace_and_diverged_cells_fall_back_per_cell() {
        // Cell 1 keeps a full command ring; cell 2's clock diverges.
        let build = || {
            let mut cells = vec![cell(1), cell(2), cell(3)];
            align(&mut cells);
            cells[1].set_trace_mode(TraceMode::Full);
            cells[2].advance(Nanos(5));
            cells
        };
        let mut swept = build();
        let mut solo = build();
        let base = swept[0].now().0;

        let mut sweep = CellSweep::new(&config(), 3);
        let mut batch = DecodedBatch::new(&config());
        push_mix(&mut batch, 99, base);
        {
            let mut mems: Vec<&mut MemoryController> = swept.iter_mut().collect();
            sweep.issue(&mut mems, &mut batch).expect("issue");
            sweep.finish(&mut mems).expect("finish");
        }
        for m in solo.iter_mut() {
            let mut b = DecodedBatch::new(&config());
            push_mix(&mut b, 99, base);
            m.issue_batch(&mut b).expect("solo issue");
        }
        for (i, (a, b)) in swept.iter_mut().zip(solo.iter_mut()).enumerate() {
            if i == 1 {
                // Full-trace cells also retain identical command rings.
                assert_eq!(a.trace().len(), b.trace().len(), "ring length");
            }
            assert_cells_identical(a, b, &format!("fallback cell {i}"));
        }
    }

    #[test]
    fn session_invariant_violation_is_an_error() {
        let mut cells = vec![cell(0), cell(1)];
        align(&mut cells);
        let mut sweep = CellSweep::new(&config(), 2);
        let mut batch = DecodedBatch::new(&config());
        push_mix(&mut batch, 7, cells[0].now().0);
        {
            let mut mems: Vec<&mut MemoryController> = cells.iter_mut().collect();
            sweep.issue(&mut mems, &mut batch).expect("first issue");
        }
        // Touching a lockstep cell's clock mid-session breaks the
        // contract and must be caught.
        cells[0].advance(Nanos(3));
        push_mix(&mut batch, 8, cells[1].now().0);
        let mut mems: Vec<&mut MemoryController> = cells.iter_mut().collect();
        assert!(matches!(
            sweep.issue(&mut mems, &mut batch),
            Err(DramError::InvalidConfig(_))
        ));
    }

    #[test]
    fn validation_rejects_mismatched_rosters_and_geometry() {
        let mut a = cell(0);
        let mut sweep = CellSweep::new(&config(), 2);
        let mut batch = DecodedBatch::new(&config());
        batch
            .push(GlobalRowId::new(0, 0, 1), BatchOpKind::Read, 0, None)
            .expect("push");
        let mut mems: Vec<&mut MemoryController> = vec![&mut a];
        assert!(matches!(
            sweep.issue(&mut mems, &mut batch),
            Err(DramError::InvalidConfig(_))
        ));

        let other = config().with_rows_per_subarray(64);
        let mut c = MemoryController::try_new(other.clone()).expect("valid");
        c.set_trace_mode(TraceMode::CountersOnly);
        let mut d = cell(0);
        let mut sweep2 = CellSweep::new(&config(), 2);
        let mut mems2: Vec<&mut MemoryController> = vec![&mut d, &mut c];
        assert!(matches!(
            sweep2.issue(&mut mems2, &mut batch),
            Err(DramError::InvalidConfig(_))
        ));
    }

    #[test]
    fn finish_without_session_is_a_no_op() {
        let mut a = cell(0);
        let mut sweep = CellSweep::new(&config(), 1);
        let mut mems: Vec<&mut MemoryController> = vec![&mut a];
        sweep.finish(&mut mems).expect("no-op finish");
        assert!(!sweep.active());
    }
}
