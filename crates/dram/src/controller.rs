//! The memory controller: the single entry point through which attackers
//! and defenses drive the simulated device.
//!
//! All data movement, timing accounting, command tracing and RowHammer
//! disturbance bookkeeping flow through this type, so an experiment that
//! holds a `MemoryController` sees a consistent global clock ([`MemoryController::now`])
//! and consistent per-row disturbance state.

use crate::bank::Bank;
use crate::batch::{BatchOpKind, DecodedBatch};
use crate::command::{CommandKind, CommandTrace, DramCommand, TraceMode};
use crate::error::DramError;
use crate::geometry::{BankId, DramConfig, GlobalRowId, RowInSubarray, SubarrayId};
use crate::rowhammer::{FlipOutcome, HammerTracker, RowHammerModel};
use crate::stats::MemStats;
use crate::timing::Nanos;

/// The simulated memory controller.
///
/// # Example
///
/// ```
/// use dd_dram::{DramConfig, MemoryController, BankId, SubarrayId, RowInSubarray};
///
/// # fn main() -> Result<(), dd_dram::DramError> {
/// let mut mem = MemoryController::try_new(DramConfig::lpddr4_small())?;
/// let (b, s) = (BankId(0), SubarrayId(0));
///
/// // A victim row with data; the attacker hammers its neighbour.
/// mem.write_row(b, s, RowInSubarray(10), &[0xFF; 64])?;
/// let victim = dd_dram::GlobalRowId { bank: b, subarray: s, row: RowInSubarray(10) };
/// let aggressor = dd_dram::GlobalRowId { bank: b, subarray: s, row: RowInSubarray(11) };
///
/// mem.hammer(aggressor, 4800)?; // reach T_RH
/// let outcome = mem.attempt_flip(victim, &[0])?;
/// assert!(outcome.flipped());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemoryController {
    config: DramConfig,
    banks: Vec<Bank>,
    now: Nanos,
    stats: MemStats,
    trace: CommandTrace,
    hammer: HammerTracker,
    rh_model: RowHammerModel,
}

impl MemoryController {
    /// Build a controller over a freshly zeroed device.
    ///
    /// This is the single construction path: configurations are validated
    /// and the error surfaced, never panicked over. (An infallible `new`
    /// used to exist; it was removed so that the two construction idioms
    /// cannot drift apart again.)
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when the configuration is
    /// inconsistent.
    pub fn try_new(config: DramConfig) -> Result<Self, DramError> {
        config.validate()?;
        let banks = (0..config.banks)
            .map(|_| {
                Bank::new(
                    config.subarrays_per_bank,
                    config.rows_per_subarray,
                    config.row_bytes,
                )
            })
            .collect();
        let rh_model = RowHammerModel::from_config(&config);
        Ok(MemoryController {
            config,
            banks,
            now: Nanos::ZERO,
            stats: MemStats::new(),
            trace: CommandTrace::default(),
            hammer: HammerTracker::new(),
            rh_model,
        })
    }

    /// Device configuration.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The RowHammer model parameters in force.
    pub fn rowhammer_model(&self) -> RowHammerModel {
        self.rh_model
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Operation statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// The bounded command trace.
    pub fn trace(&self) -> &CommandTrace {
        &self.trace
    }

    /// Set the tracing effort (see [`TraceMode`]). Matrix and workload
    /// runs use [`TraceMode::CountersOnly`] so replaying millions of
    /// commands does not pay per-command ring maintenance; tests that
    /// inspect issued commands keep the default [`TraceMode::Full`].
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace.set_mode(mode);
    }

    /// The tracing effort currently in force.
    pub fn trace_mode(&self) -> TraceMode {
        self.trace.mode()
    }

    /// Current refresh-window epoch.
    pub fn epoch(&self) -> u64 {
        HammerTracker::epoch(self.now, self.config.timing.t_ref)
    }

    /// Advance simulated time by `dt` without issuing commands (idle).
    pub fn advance(&mut self, dt: Nanos) {
        self.now += dt;
    }

    fn bank_mut(&mut self, bank: BankId) -> Result<&mut Bank, DramError> {
        let n = self.banks.len();
        self.banks
            .get_mut(bank.0)
            .ok_or(DramError::BankOutOfRange { bank, banks: n })
    }

    fn bank_ref(&self, bank: BankId) -> Result<&Bank, DramError> {
        self.banks.get(bank.0).ok_or(DramError::BankOutOfRange {
            bank,
            banks: self.banks.len(),
        })
    }

    fn record(&mut self, kind: CommandKind, target: GlobalRowId, aux: Option<GlobalRowId>) {
        // Cheap pre-check: in counters-only/disabled mode, never build
        // the command struct at all (the per-command hot path).
        match self.trace.mode() {
            TraceMode::Disabled => {}
            TraceMode::CountersOnly => self.trace.count(kind),
            TraceMode::Full => {
                let at = self.now;
                self.trace.record(DramCommand {
                    kind,
                    target,
                    aux,
                    at,
                });
            }
        }
    }

    /// Apply the RowHammer side effects of activating `row`: the row itself
    /// is recharged, its physical neighbours each take `n` disturbance.
    fn disturb_neighbours(&mut self, row: GlobalRowId, n: u64) {
        let epoch = self.epoch();
        self.hammer.refresh(row);
        for victim in self.rh_model.victims_of(row) {
            self.hammer.disturb(victim, n, epoch);
        }
    }

    /// `ACT`: open a row. Advances time by `t_act` and disturbs neighbours.
    ///
    /// # Errors
    ///
    /// Returns an out-of-range error for an invalid address.
    pub fn activate(&mut self, addr: GlobalRowId) -> Result<(), DramError> {
        self.config.check_addr(addr)?;
        self.bank_mut(addr.bank)?
            .subarray_mut(addr.subarray)?
            .activate(addr.row)?;
        self.now += self.config.timing.t_act;
        self.stats.acts += 1;
        self.stats.busy += self.config.timing.t_act;
        self.record(CommandKind::Act, addr, None);
        self.disturb_neighbours(addr, 1);
        Ok(())
    }

    /// `PRE`: close the open row of a subarray.
    ///
    /// # Errors
    ///
    /// Returns an out-of-range error for an invalid bank/subarray.
    pub fn precharge(&mut self, bank: BankId, subarray: SubarrayId) -> Result<(), DramError> {
        self.bank_mut(bank)?.subarray_mut(subarray)?.precharge();
        self.now += self.config.timing.t_pre;
        self.stats.pres += 1;
        self.stats.busy += self.config.timing.t_pre;
        self.record(
            CommandKind::Pre,
            GlobalRowId {
                bank,
                subarray,
                row: RowInSubarray(0),
            },
            None,
        );
        Ok(())
    }

    /// Read a full row (ACT + RD + PRE).
    ///
    /// # Errors
    ///
    /// Returns an out-of-range error for an invalid address.
    pub fn read_row(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        row: RowInSubarray,
    ) -> Result<Vec<u8>, DramError> {
        let addr = GlobalRowId {
            bank,
            subarray,
            row,
        };
        self.activate(addr)?;
        let data = self
            .bank_ref(bank)?
            .subarray(subarray)?
            .row(row)?
            .as_bytes()
            .to_vec();
        self.now += self.config.timing.t_rd;
        self.stats.reads += 1;
        self.stats.busy += self.config.timing.t_rd;
        self.record(CommandKind::Rd, addr, None);
        self.precharge(bank, subarray)?;
        Ok(data)
    }

    /// Write a full row (ACT + WR + PRE).
    ///
    /// # Errors
    ///
    /// Returns an out-of-range error for an invalid address, or
    /// [`DramError::RowSizeMismatch`] when `data` is not one full row.
    pub fn write_row(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        row: RowInSubarray,
        data: &[u8],
    ) -> Result<(), DramError> {
        let addr = GlobalRowId {
            bank,
            subarray,
            row,
        };
        self.activate(addr)?;
        self.bank_mut(bank)?
            .subarray_mut(subarray)?
            .write_row(row, data)?;
        self.now += self.config.timing.t_wr;
        self.stats.writes += 1;
        self.stats.busy += self.config.timing.t_wr;
        self.record(CommandKind::Wr, addr, None);
        self.precharge(bank, subarray)?;
        Ok(())
    }

    /// Direct (zero-time) access to row contents for test setup and
    /// model-accuracy evaluation. Does not issue commands, advance time, or
    /// disturb neighbours — use [`MemoryController::read_row`] for
    /// behaviourally accurate accesses.
    pub fn peek_row(
        &self,
        bank: BankId,
        subarray: SubarrayId,
        row: RowInSubarray,
    ) -> Result<&[u8], DramError> {
        Ok(self
            .bank_ref(bank)?
            .subarray(subarray)?
            .row(row)?
            .as_bytes())
    }

    /// Zero-time counterpart of [`MemoryController::write_row`] for test
    /// setup (e.g. loading model weights without paying simulated time).
    pub fn poke_row(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        row: RowInSubarray,
        data: &[u8],
    ) -> Result<(), DramError> {
        self.bank_mut(bank)?
            .subarray_mut(subarray)?
            .write_row(row, data)
    }

    /// RowClone: copy `src` → `dst` within one subarray (ACT–ACT–PRE,
    /// `t_aap`). Both rows are recharged (their disturbance resets) and
    /// both rows' neighbours take one activation of disturbance.
    ///
    /// # Errors
    ///
    /// Returns an out-of-range error for invalid rows.
    pub fn row_clone(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        src: RowInSubarray,
        dst: RowInSubarray,
    ) -> Result<(), DramError> {
        let src_addr = GlobalRowId {
            bank,
            subarray,
            row: src,
        };
        let dst_addr = GlobalRowId {
            bank,
            subarray,
            row: dst,
        };
        self.config.check_addr(src_addr)?;
        self.config.check_addr(dst_addr)?;
        self.bank_mut(bank)?
            .subarray_mut(subarray)?
            .row_clone(src, dst)?;
        self.now += self.config.timing.t_aap;
        self.stats.row_clones += 1;
        self.stats.acts += 2;
        self.stats.pres += 1;
        self.stats.busy += self.config.timing.t_aap;
        self.record(CommandKind::RowClone, src_addr, Some(dst_addr));
        self.disturb_neighbours(src_addr, 1);
        self.disturb_neighbours(dst_addr, 1);
        Ok(())
    }

    /// Explicitly refresh one row (recharge; clears its disturbance).
    ///
    /// # Errors
    ///
    /// Returns an out-of-range error for an invalid address.
    pub fn refresh_row(&mut self, addr: GlobalRowId) -> Result<(), DramError> {
        self.config.check_addr(addr)?;
        self.hammer.refresh(addr);
        self.stats.refreshes += 1;
        self.now += self.config.timing.t_act;
        self.stats.busy += self.config.timing.t_act;
        self.record(CommandKind::Refresh, addr, None);
        Ok(())
    }

    /// Hammer: issue `count` activate/precharge pairs against `aggressor`
    /// as fast as timing allows. This is the attacker's primitive.
    ///
    /// Returns the disturbance each neighbour of the aggressor now carries.
    ///
    /// # Errors
    ///
    /// Returns an out-of-range error for an invalid address.
    pub fn hammer(&mut self, aggressor: GlobalRowId, count: u64) -> Result<u64, DramError> {
        self.config.check_addr(aggressor)?;
        // Bulk-model the ACT storm instead of issuing `count` commands:
        // identical end state, O(1) work.
        self.now += self.config.timing.t_act * u128::from(count);
        self.stats.acts += count;
        self.stats.pres += count;
        self.stats.busy += self.config.timing.t_act * u128::from(count);
        self.record(CommandKind::Act, aggressor, None);
        self.disturb_neighbours(aggressor, count);
        let epoch = self.epoch();
        Ok(self
            .rh_model
            .victims_of(aggressor)
            .first()
            .map(|v| self.hammer.disturbance(*v, epoch))
            .unwrap_or(0))
    }

    /// Current disturbance of a row in the present refresh window.
    pub fn disturbance(&self, row: GlobalRowId) -> u64 {
        self.hammer.disturbance(row, self.epoch())
    }

    /// Attempt to flip `bits` (bit offsets within the row payload) in
    /// `victim`. Succeeds only when the victim's accumulated disturbance
    /// has reached `T_RH` in the current refresh window; on success the
    /// bits flip in storage and the victim's disturbance resets (its cells
    /// have discharged and the next hammer campaign starts fresh).
    ///
    /// # Errors
    ///
    /// Returns an out-of-range error for an invalid address or bit offset.
    pub fn attempt_flip(
        &mut self,
        victim: GlobalRowId,
        bits: &[usize],
    ) -> Result<FlipOutcome, DramError> {
        self.config.check_addr(victim)?;
        let epoch = self.epoch();
        let disturbance = self.hammer.disturbance(victim, epoch);
        if disturbance < self.rh_model.threshold {
            return Ok(FlipOutcome::Resisted {
                disturbance,
                threshold: self.rh_model.threshold,
            });
        }
        let row = self
            .bank_mut(victim.bank)?
            .subarray_mut(victim.subarray)?
            .row_mut(victim.row)?;
        for &bit in bits {
            row.flip_bit(bit)?;
        }
        self.hammer.refresh(victim);
        Ok(FlipOutcome::Flipped {
            bits: bits.to_vec(),
        })
    }

    /// Swap two rows of a subarray through a scratch row using three
    /// RowClone copies (`scratch ← a`, `a ← b`, `b ← scratch`). This is
    /// the primitive that swap-based mitigations build on; DNN-Defender's
    /// four-step variant lives in the `dnn-defender` crate.
    ///
    /// # Errors
    ///
    /// Returns an out-of-range error for invalid rows.
    pub fn swap_rows_via(
        &mut self,
        bank: BankId,
        subarray: SubarrayId,
        a: RowInSubarray,
        b: RowInSubarray,
        scratch: RowInSubarray,
    ) -> Result<(), DramError> {
        self.row_clone(bank, subarray, a, scratch)?;
        self.row_clone(bank, subarray, b, a)?;
        self.row_clone(bank, subarray, scratch, b)?;
        Ok(())
    }

    /// Execute a chunk of pre-decoded commands, draining `batch`'s op
    /// queue. This is the bulk-replay entry point the scenario matrix's
    /// background traffic and the workload driver's replay loop issue
    /// through (see `docs/perf.md`).
    ///
    /// On a [`TraceMode::CountersOnly`] or [`TraceMode::Disabled`]
    /// controller the chunk runs on the batched fast path: dense
    /// structure-of-arrays disturbance counters instead of per-row
    /// hash-map entries, refresh-epoch checks amortized to one comparison
    /// per time advance, stats/trace counters accumulated once per chunk,
    /// and no row-payload allocation on reads. On a [`TraceMode::Full`]
    /// controller the same ops replay through the ordinary per-command
    /// methods ([`MemoryController::issue_batch_reference`]) so the
    /// command ring stays exact.
    ///
    /// Both paths leave the controller in the *identical* end state —
    /// simulated clock, [`MemStats`], trace counters, per-row disturbance
    /// and row payloads — a contract enforced by the differential oracle
    /// in `tests/kernel_differential.rs`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when `batch` was decoded for
    /// a different device geometry, and propagates per-command errors
    /// from the reference replay (ops are pre-validated at
    /// [`DecodedBatch::push`], so well-formed batches cannot fail).
    pub fn issue_batch(&mut self, batch: &mut DecodedBatch) -> Result<(), DramError> {
        if !batch.matches(&self.config) {
            return Err(DramError::InvalidConfig(
                "batch was decoded for a different device geometry".into(),
            ));
        }
        // Observability is amortized per chunk, never per command: one
        // span plus one histogram sample here, and both are a single
        // relaxed atomic load when the sink is disabled (the `repro
        // kernel` overhead gate measures exactly this path).
        let _span = dd_obs::span("chunk.issue");
        dd_obs::observe("chunk.ops", batch.ops.len() as u64);
        // Fault plane: a stall-only probe on the chunk hot path, keyed by
        // the deterministic simulated clock. Stalls never mutate state,
        // so the differential oracles (fast vs reference, sweep vs
        // per-cell) hold verbatim under an armed plan.
        if dd_chaos::fires("kernel.chunk_stall", self.now.0 as u64) {
            std::thread::sleep(std::time::Duration::from_micros(50));
        }
        match self.trace.mode() {
            TraceMode::Full => self.issue_batch_reference(batch),
            TraceMode::CountersOnly | TraceMode::Disabled => {
                self.issue_batch_fast(batch);
                Ok(())
            }
        }
    }

    /// Replay a batch through the per-command reference path
    /// ([`MemoryController::read_row`] / [`MemoryController::write_row`]
    /// / [`MemoryController::hammer`]), draining the op queue. This is
    /// the oracle the fast path is measured and differentially tested
    /// against; it is also what [`MemoryController::issue_batch`] runs
    /// under [`TraceMode::Full`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`DramError`] any replayed command produced
    /// (remaining ops are dropped, matching an aborted per-command loop).
    pub fn issue_batch_reference(&mut self, batch: &mut DecodedBatch) -> Result<(), DramError> {
        let ops = std::mem::take(&mut batch.ops);
        let mut fill_buf = vec![0u8; self.config.row_bytes];
        let mut outcome = Ok(());
        for op in &ops {
            if op.advance_to > self.now.0 {
                let gap = Nanos(op.advance_to) - self.now;
                self.advance(gap);
            }
            let issued = match op.kind {
                BatchOpKind::Read => self
                    .read_row(op.row.bank, op.row.subarray, op.row.row)
                    .map(|_| ()),
                BatchOpKind::Write(fill) => {
                    fill_buf.fill(fill);
                    self.write_row(op.row.bank, op.row.subarray, op.row.row, &fill_buf)
                }
                BatchOpKind::Hammer => Ok(()),
            }
            .and_then(|()| {
                if op.extra > 0 {
                    self.hammer(op.row, op.extra).map(|_| ())
                } else {
                    Ok(())
                }
            });
            if let Err(e) = issued {
                outcome = Err(e);
                break;
            }
        }
        batch.ops = ops;
        batch.ops.clear();
        outcome
    }

    /// Split borrows of the controller's mutable internals for the
    /// cross-cell sweep kernel (see [`crate::batch_sweep`]), which
    /// advances N controllers through one decoded op stream and needs
    /// simultaneous access to clock, stats, trace, tracker and banks.
    pub(crate) fn raw_parts(&mut self) -> RawParts<'_> {
        RawParts {
            now: &mut self.now,
            stats: &mut self.stats,
            trace: &mut self.trace,
            hammer: &mut self.hammer,
            banks: &mut self.banks,
        }
    }

    /// The batched kernel: dense counters, amortized epoch checks, one
    /// stats/trace flush per chunk. Infallible — ops were validated when
    /// pushed and the geometry was checked by the caller.
    fn issue_batch_fast(&mut self, batch: &mut DecodedBatch) {
        let ops = std::mem::take(&mut batch.ops);
        let t = self.config.timing;
        let (t_act, t_pre, t_rd, t_wr, t_ref) =
            (t.t_act.0, t.t_pre.0, t.t_rd.0, t.t_wr.0, t.t_ref.0);
        let rows_per = batch.rows_per_subarray;
        let spb = batch.subarrays_per_bank;
        let counting = self.trace.mode() == TraceMode::CountersOnly;
        let mut now = self.now.0;
        let mut epoch = (now / t_ref) as u64;
        let mut epoch_end = (now / t_ref + 1) * t_ref;
        let (mut acts, mut pres, mut reads, mut writes) = (0u64, 0u64, 0u64, 0u64);
        let (mut c_act, mut c_rd, mut c_wr, mut c_pre) = (0u64, 0u64, 0u64, 0u64);
        let mut busy = 0u128;
        let mut events = 0u64;

        for op in &ops {
            if op.advance_to > now {
                now = op.advance_to;
            }
            let flat = op.flat as usize;
            let in_row = flat % rows_per;
            if op.kind != BatchOpKind::Hammer {
                // The data command's ACT: the row recharges and its
                // neighbours take one disturbance at the post-ACT
                // instant, exactly as `activate` orders it.
                now += t_act;
                if now >= epoch_end {
                    epoch = (now / t_ref) as u64;
                    epoch_end = (now / t_ref + 1) * t_ref;
                }
                batch.refresh_slot(&self.hammer, flat);
                if in_row > 0 {
                    batch.disturb_slot(&self.hammer, flat - 1, 1, epoch);
                    events += 1;
                }
                if in_row + 1 < rows_per {
                    batch.disturb_slot(&self.hammer, flat + 1, 1, epoch);
                    events += 1;
                }
                let sub =
                    self.banks[flat / (spb * rows_per)].subarray_raw_mut((flat / rows_per) % spb);
                match op.kind {
                    BatchOpKind::Read => {
                        now += t_rd;
                        reads += 1;
                        c_rd += 1;
                        busy += t_act + t_rd + t_pre;
                    }
                    BatchOpKind::Write(fill) => {
                        sub.fill_row_raw(in_row, fill);
                        now += t_wr;
                        writes += 1;
                        c_wr += 1;
                        busy += t_act + t_wr + t_pre;
                    }
                    BatchOpKind::Hammer => unreachable!("guarded above"),
                }
                // The ACT latched the row; the closing PRE releases it.
                sub.precharge();
                now += t_pre;
                acts += 1;
                pres += 1;
                c_act += 1;
                c_pre += 1;
            }
            if op.extra > 0 {
                // The bulk ACT storm (`hammer`): time advances for the
                // whole storm first, then the target recharges and the
                // neighbours take the burst at the post-storm instant —
                // the per-command path's exact order.
                now += t_act * u128::from(op.extra);
                if now >= epoch_end {
                    epoch = (now / t_ref) as u64;
                    epoch_end = (now / t_ref + 1) * t_ref;
                }
                batch.refresh_slot(&self.hammer, flat);
                if in_row > 0 {
                    batch.disturb_slot(&self.hammer, flat - 1, op.extra, epoch);
                    events += op.extra;
                }
                if in_row + 1 < rows_per {
                    batch.disturb_slot(&self.hammer, flat + 1, op.extra, epoch);
                    events += op.extra;
                }
                acts += op.extra;
                pres += op.extra;
                busy += t_act * u128::from(op.extra);
                // `hammer` records one bulk ACT regardless of count.
                c_act += 1;
            }
        }

        self.now = Nanos(now);
        self.stats.acts += acts;
        self.stats.pres += pres;
        self.stats.reads += reads;
        self.stats.writes += writes;
        self.stats.busy += Nanos(busy);
        if counting {
            self.trace.count_n(CommandKind::Act, c_act);
            self.trace.count_n(CommandKind::Rd, c_rd);
            self.trace.count_n(CommandKind::Wr, c_wr);
            self.trace.count_n(CommandKind::Pre, c_pre);
        }
        batch.flush_slots(&mut self.hammer);
        self.hammer.raw_add_events(events);
        batch.ops = ops;
        batch.ops.clear();
    }
}

/// Split mutable borrows of one controller's internals, handed to the
/// cross-cell sweep kernel ([`crate::batch_sweep::CellSweep`]).
pub(crate) struct RawParts<'a> {
    pub now: &'a mut Nanos,
    pub stats: &'a mut MemStats,
    pub trace: &'a mut CommandTrace,
    pub hammer: &'a mut HammerTracker,
    pub banks: &'a mut Vec<Bank>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemoryController {
        MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config")
    }

    fn gid(row: usize) -> GlobalRowId {
        GlobalRowId::new(0, 0, row)
    }

    #[test]
    fn read_back_what_was_written() {
        let mut m = mem();
        let data = vec![0x5A; 64];
        m.write_row(BankId(0), SubarrayId(0), RowInSubarray(3), &data)
            .unwrap();
        let back = m
            .read_row(BankId(0), SubarrayId(0), RowInSubarray(3))
            .unwrap();
        assert_eq!(back, data);
        assert!(m.stats().reads == 1 && m.stats().writes == 1);
    }

    #[test]
    fn hammer_below_threshold_resists() {
        let mut m = mem();
        m.hammer(gid(11), 4799).unwrap();
        let out = m.attempt_flip(gid(10), &[0]).unwrap();
        assert_eq!(
            out,
            FlipOutcome::Resisted {
                disturbance: 4799,
                threshold: 4800
            }
        );
    }

    #[test]
    fn hammer_at_threshold_flips() {
        let mut m = mem();
        m.poke_row(BankId(0), SubarrayId(0), RowInSubarray(10), &[0u8; 64])
            .unwrap();
        m.hammer(gid(11), 4800).unwrap();
        let out = m.attempt_flip(gid(10), &[5]).unwrap();
        assert!(out.flipped());
        let row = m
            .peek_row(BankId(0), SubarrayId(0), RowInSubarray(10))
            .unwrap();
        assert_eq!(row[0], 1 << 5);
    }

    #[test]
    fn double_sided_hammer_accumulates() {
        let mut m = mem();
        m.hammer(gid(9), 2400).unwrap();
        m.hammer(gid(11), 2400).unwrap();
        assert_eq!(m.disturbance(gid(10)), 4800);
        assert!(m.attempt_flip(gid(10), &[0]).unwrap().flipped());
    }

    #[test]
    fn victim_refresh_resets_disturbance() {
        let mut m = mem();
        m.hammer(gid(11), 4000).unwrap();
        m.refresh_row(gid(10)).unwrap();
        m.hammer(gid(11), 799).unwrap();
        let out = m.attempt_flip(gid(10), &[0]).unwrap();
        assert!(!out.flipped());
    }

    #[test]
    fn row_clone_refreshes_both_rows() {
        let mut m = mem();
        m.hammer(gid(11), 4000).unwrap();
        assert_eq!(m.disturbance(gid(10)), 4000);
        // Cloning the victim elsewhere recharges it.
        m.row_clone(
            BankId(0),
            SubarrayId(0),
            RowInSubarray(10),
            RowInSubarray(50),
        )
        .unwrap();
        assert_eq!(m.disturbance(gid(10)), 0);
    }

    #[test]
    fn refresh_window_rollover_clears_disturbance() {
        let mut m = mem();
        m.hammer(gid(11), 4000).unwrap();
        // Jump past the end of the refresh window.
        m.advance(Nanos::from_millis(65));
        assert_eq!(m.disturbance(gid(10)), 0);
        assert!(!m.attempt_flip(gid(10), &[0]).unwrap().flipped());
    }

    #[test]
    fn hammering_own_row_does_not_flip_it() {
        let mut m = mem();
        m.hammer(gid(10), 10_000).unwrap();
        assert_eq!(m.disturbance(gid(10)), 0);
        assert!(!m.attempt_flip(gid(10), &[0]).unwrap().flipped());
    }

    #[test]
    fn activation_disturbs_both_neighbours() {
        let mut m = mem();
        m.activate(gid(10)).unwrap();
        assert_eq!(m.disturbance(gid(9)), 1);
        assert_eq!(m.disturbance(gid(11)), 1);
        assert_eq!(m.disturbance(gid(10)), 0);
    }

    #[test]
    fn swap_rows_via_scratch_exchanges_data() {
        let mut m = mem();
        m.poke_row(BankId(0), SubarrayId(0), RowInSubarray(1), &[1; 64])
            .unwrap();
        m.poke_row(BankId(0), SubarrayId(0), RowInSubarray(2), &[2; 64])
            .unwrap();
        m.swap_rows_via(
            BankId(0),
            SubarrayId(0),
            RowInSubarray(1),
            RowInSubarray(2),
            RowInSubarray(127),
        )
        .unwrap();
        assert_eq!(
            m.peek_row(BankId(0), SubarrayId(0), RowInSubarray(1))
                .unwrap()[0],
            2
        );
        assert_eq!(
            m.peek_row(BankId(0), SubarrayId(0), RowInSubarray(2))
                .unwrap()[0],
            1
        );
        assert_eq!(m.stats().row_clones, 3);
        // 3 RowClones at t_aap each.
        assert_eq!(m.stats().busy, m.config().timing.t_aap * 3);
    }

    #[test]
    fn timing_accumulates() {
        let mut m = mem();
        let t = m.config().timing;
        m.hammer(gid(5), 100).unwrap();
        assert_eq!(m.now(), t.t_act * 100);
    }

    #[test]
    fn flip_consumes_disturbance() {
        let mut m = mem();
        m.hammer(gid(11), 4800).unwrap();
        assert!(m.attempt_flip(gid(10), &[0]).unwrap().flipped());
        // A second flip needs a fresh hammering campaign.
        assert!(!m.attempt_flip(gid(10), &[1]).unwrap().flipped());
    }

    #[test]
    fn counters_only_controller_tracks_issue_counts() {
        let mut m = mem();
        m.set_trace_mode(TraceMode::CountersOnly);
        m.write_row(BankId(0), SubarrayId(0), RowInSubarray(3), &[0u8; 64])
            .unwrap();
        m.read_row(BankId(0), SubarrayId(0), RowInSubarray(3))
            .unwrap();
        assert!(m.trace().is_empty(), "counters-only mode retained commands");
        assert_eq!(m.trace().issued_of(CommandKind::Wr), 1);
        assert_eq!(m.trace().issued_of(CommandKind::Rd), 1);
        assert_eq!(m.trace().issued_of(CommandKind::Act), 2);
        // Simulation results are identical regardless of trace mode.
        assert_eq!(m.stats().reads, 1);
        assert_eq!(m.stats().writes, 1);
    }

    #[test]
    fn invalid_addresses_error() {
        let mut m = mem();
        assert!(m.activate(GlobalRowId::new(99, 0, 0)).is_err());
        assert!(m
            .read_row(BankId(0), SubarrayId(99), RowInSubarray(0))
            .is_err());
        assert!(m.hammer(GlobalRowId::new(0, 0, 999), 1).is_err());
    }

    /// A mixed op chunk for the batch-equivalence tests: reads, writes,
    /// bulk hammers, scheduled idle gaps, and enough activations to roll
    /// the refresh epoch mid-chunk.
    fn mixed_chunk(batch: &mut DecodedBatch) {
        use crate::batch::BatchOpKind as K;
        for i in 0..200u64 {
            let row = GlobalRowId::new((i % 3) as usize, (i % 5) as usize, 2 + (i % 90) as usize);
            let kind = if i % 4 == 3 {
                K::Write(i as u8 ^ 0xA5)
            } else {
                K::Read
            };
            let advance = (i % 7 == 0).then(|| Nanos(i as u128 * 700_000));
            batch.push(row, kind, (i % 3) * 8, advance).unwrap();
            if i % 11 == 0 {
                batch
                    .push(GlobalRowId::new(0, 0, 40), K::Hammer, 900, None)
                    .unwrap();
            }
        }
        // Edge rows: only one neighbour exists.
        batch
            .push(GlobalRowId::new(1, 1, 0), K::Read, 4, None)
            .unwrap();
        batch
            .push(GlobalRowId::new(1, 1, 127), K::Write(0x3C), 4, None)
            .unwrap();
    }

    fn assert_same_end_state(fast: &MemoryController, reference: &MemoryController) {
        assert_eq!(fast.now(), reference.now(), "clock diverged");
        assert_eq!(fast.stats(), reference.stats(), "stats diverged");
        for kind in [
            CommandKind::Act,
            CommandKind::Pre,
            CommandKind::Rd,
            CommandKind::Wr,
        ] {
            assert_eq!(
                fast.trace().issued_of(kind),
                reference.trace().issued_of(kind),
                "issue counter diverged for {kind:?}"
            );
        }
        let config = fast.config().clone();
        for bank in 0..config.banks {
            for sub in 0..config.subarrays_per_bank {
                for row in 0..config.rows_per_subarray {
                    let gid = GlobalRowId::new(bank, sub, row);
                    assert_eq!(
                        fast.disturbance(gid),
                        reference.disturbance(gid),
                        "disturbance diverged at {gid:?}"
                    );
                    assert_eq!(
                        fast.peek_row(gid.bank, gid.subarray, gid.row).unwrap(),
                        reference.peek_row(gid.bank, gid.subarray, gid.row).unwrap(),
                        "row payload diverged at {gid:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn issue_batch_fast_path_matches_reference() {
        let mut fast = mem();
        fast.set_trace_mode(TraceMode::CountersOnly);
        let mut reference = mem();
        reference.set_trace_mode(TraceMode::CountersOnly);

        let mut batch = DecodedBatch::new(fast.config());
        mixed_chunk(&mut batch);
        let mut ref_batch = DecodedBatch::new(reference.config());
        mixed_chunk(&mut ref_batch);

        fast.issue_batch(&mut batch).unwrap();
        reference.issue_batch_reference(&mut ref_batch).unwrap();
        assert!(batch.is_empty() && ref_batch.is_empty());
        assert_same_end_state(&fast, &reference);

        // A second chunk on the same (already-dirty) state: the lazy
        // slot load/flush must pick up where the hash map left off.
        mixed_chunk(&mut batch);
        mixed_chunk(&mut ref_batch);
        fast.issue_batch(&mut batch).unwrap();
        reference.issue_batch_reference(&mut ref_batch).unwrap();
        assert_same_end_state(&fast, &reference);
    }

    #[test]
    fn issue_batch_full_mode_replays_per_command() {
        let mut m = mem();
        assert_eq!(m.trace_mode(), TraceMode::Full);
        let mut batch = DecodedBatch::new(m.config());
        batch
            .push(gid(10), crate::batch::BatchOpKind::Read, 2, None)
            .unwrap();
        m.issue_batch(&mut batch).unwrap();
        // Full mode keeps the command ring: ACT, RD, PRE, bulk ACT.
        assert_eq!(m.trace().len(), 4);
        assert_eq!(m.stats().reads, 1);
        assert_eq!(m.stats().acts, 3);
    }

    #[test]
    fn issue_batch_rejects_foreign_geometry() {
        let mut m = mem();
        m.set_trace_mode(TraceMode::CountersOnly);
        let other = DramConfig::lpddr4_small().with_rows_per_subarray(64);
        let mut batch = DecodedBatch::new(&other);
        batch
            .push(gid(10), crate::batch::BatchOpKind::Read, 0, None)
            .unwrap();
        assert!(m.issue_batch(&mut batch).is_err());
    }

    #[test]
    fn issue_batch_preserves_defense_visible_state_across_interleaving() {
        // A chunk, then per-command defensive ops (swap + refresh), then
        // another chunk: the flush/load cycle must stay coherent with
        // the per-command mutations in between.
        let mut fast = mem();
        fast.set_trace_mode(TraceMode::CountersOnly);
        let mut reference = mem();
        reference.set_trace_mode(TraceMode::CountersOnly);
        let mut batch = DecodedBatch::new(fast.config());
        let mut ref_batch = DecodedBatch::new(reference.config());

        mixed_chunk(&mut batch);
        mixed_chunk(&mut ref_batch);
        fast.issue_batch(&mut batch).unwrap();
        reference.issue_batch_reference(&mut ref_batch).unwrap();

        for m in [&mut fast, &mut reference] {
            m.swap_rows_via(
                BankId(0),
                SubarrayId(0),
                RowInSubarray(41),
                RowInSubarray(80),
                RowInSubarray(126),
            )
            .unwrap();
            m.refresh_row(gid(39)).unwrap();
        }

        mixed_chunk(&mut batch);
        mixed_chunk(&mut ref_batch);
        fast.issue_batch(&mut batch).unwrap();
        reference.issue_batch_reference(&mut ref_batch).unwrap();
        assert_same_end_state(&fast, &reference);
    }
}
