//! # dd-dram — DRAM + RowHammer simulator substrate
//!
//! A behavioural DRAM simulator built for the DNN-Defender (DAC 2024)
//! reproduction. It models the parts of a DRAM device that matter for
//! RowHammer attack/defense studies:
//!
//! * the bank / subarray / row hierarchy and the command protocol
//!   (`ACT` / `PRE` / `RD` / `WR`) — [`geometry`], [`command`], [`bank`],
//!   [`subarray`], [`controller`];
//! * **RowClone** in-DRAM bulk copy (two back-to-back `ACT`s, no `PRE`
//!   in between) used by DNN-Defender's swap operations — [`subarray`];
//! * a deterministic **RowHammer fault model**: a row activated at least
//!   `T_RH` times inside one refresh window disturbs its two physical
//!   neighbours — [`rowhammer`];
//! * an analytical **timing and energy model** with the constants the paper
//!   uses (`T_AAP` = 90 ns, `T_swap` = 3·`T_AAP`, `T_ref` = 64 ms) —
//!   [`timing`], [`stats`].
//!
//! The simulator is fully deterministic: all randomness is injected by the
//! caller through seeded RNGs.
//!
//! ## Example
//!
//! ```
//! use dd_dram::{DramConfig, MemoryController};
//!
//! # fn main() -> Result<(), dd_dram::DramError> {
//! let config = DramConfig::lpddr4_small();
//! let mut mem = MemoryController::try_new(config)?;
//!
//! // Write a pattern, RowClone it to another row in the same subarray,
//! // and read it back.
//! let bank = dd_dram::BankId(0);
//! let sub = dd_dram::SubarrayId(0);
//! mem.write_row(bank, sub, dd_dram::RowInSubarray(3), &[0xAB; 64])?;
//! mem.row_clone(bank, sub, dd_dram::RowInSubarray(3), dd_dram::RowInSubarray(7))?;
//! let copy = mem.read_row(bank, sub, dd_dram::RowInSubarray(7))?;
//! assert!(copy.iter().all(|&b| b == 0xAB));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod addressing;
pub mod bank;
pub mod batch;
pub mod batch_sweep;
pub mod command;
pub mod controller;
pub mod error;
pub mod geometry;
pub mod refresh;
pub mod rowhammer;
pub mod stats;
pub mod subarray;
pub mod timing;

pub use addressing::{AddressMapping, DecodedAddr, PhysAddr};
pub use bank::Bank;
pub use batch::{BatchOp, BatchOpKind, DecodedBatch, BATCH_CHUNK_OPS};
pub use batch_sweep::CellSweep;
pub use command::{CommandKind, CommandTrace, DramCommand, TraceMode};
pub use controller::MemoryController;
pub use error::DramError;
pub use geometry::{BankId, DramConfig, GlobalRowId, RowInSubarray, SubarrayId};
pub use refresh::RefreshSchedule;
pub use rowhammer::{FlipOutcome, HammerTracker, RowHammerModel};
pub use stats::{EnergyModel, MemStats};
pub use subarray::{RowData, Subarray};
pub use timing::{Nanos, TimingParams};
