//! Physical-address ↔ DRAM-coordinate mapping.
//!
//! The white-box threat model (§3, Fig. 4) grants the attacker "complete
//! knowledge of the DRAM addressing scheme": the function from physical
//! addresses to (bank, subarray, row) coordinates, including the XOR bank
//! hash real controllers use to spread row-buffer conflicts. Reverse
//! engineering this mapping (DRAMA-style) is what makes double-sided
//! RowHammer possible in practice; here both sides of the simulation get
//! it from the same [`AddressMapping`].

use serde::{Deserialize, Serialize};

use crate::error::DramError;
use crate::geometry::{DramConfig, GlobalRowId};

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhysAddr(pub u64);

/// Decoded coordinates of a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedAddr {
    /// Row coordinates.
    pub row: GlobalRowId,
    /// Byte offset within the row (column).
    pub column: usize,
}

/// Bit-field address mapping with an optional XOR bank hash.
///
/// Layout (LSB→MSB): column | bank | subarray | row, with
/// `bank_xor = bank ⊕ (low row bits)` when hashing is enabled — the
/// standard trick that makes consecutive rows of one bank land in
/// different banks from the OS's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressMapping {
    column_bits: u32,
    bank_bits: u32,
    subarray_bits: u32,
    row_bits: u32,
    /// XOR the bank index with the low row bits (rank/bank hashing).
    pub xor_bank_hash: bool,
}

impl AddressMapping {
    /// Derive a mapping from a device configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when any dimension is not a
    /// power of two (bit-field mappings require that).
    pub fn from_config(config: &DramConfig, xor_bank_hash: bool) -> Result<Self, DramError> {
        let bits_of = |n: usize, what: &str| -> Result<u32, DramError> {
            if !n.is_power_of_two() {
                return Err(DramError::InvalidConfig(format!(
                    "{what} ({n}) must be a power of two for bit-field addressing"
                )));
            }
            Ok(n.trailing_zeros())
        };
        Ok(AddressMapping {
            column_bits: bits_of(config.row_bytes, "row size")?,
            bank_bits: bits_of(config.banks, "bank count")?,
            subarray_bits: bits_of(config.subarrays_per_bank, "subarray count")?,
            row_bits: bits_of(config.rows_per_subarray, "rows per subarray")?,
            xor_bank_hash,
        })
    }

    /// Total addressable bytes.
    pub fn capacity(&self) -> u64 {
        1u64 << (self.column_bits + self.bank_bits + self.subarray_bits + self.row_bits)
    }

    fn mask(bits: u32) -> u64 {
        (1u64 << bits) - 1
    }

    fn hash_bank(&self, bank: u64, row: u64) -> u64 {
        if self.xor_bank_hash {
            (bank ^ row) & Self::mask(self.bank_bits)
        } else {
            bank
        }
    }

    /// Decode a physical address.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::InvalidConfig`] when the address exceeds the
    /// device capacity.
    pub fn decode(&self, addr: PhysAddr) -> Result<DecodedAddr, DramError> {
        if addr.0 >= self.capacity() {
            return Err(DramError::InvalidConfig(format!(
                "physical address {:#x} beyond capacity {:#x}",
                addr.0,
                self.capacity()
            )));
        }
        let mut a = addr.0;
        let column = (a & Self::mask(self.column_bits)) as usize;
        a >>= self.column_bits;
        let raw_bank = a & Self::mask(self.bank_bits);
        a >>= self.bank_bits;
        let subarray = (a & Self::mask(self.subarray_bits)) as usize;
        a >>= self.subarray_bits;
        let row = a & Self::mask(self.row_bits);
        // The hash is an involution: decode applies the same XOR.
        let bank = self.hash_bank(raw_bank, row) as usize;
        Ok(DecodedAddr {
            row: GlobalRowId::new(bank, subarray, row as usize),
            column,
        })
    }

    /// Encode coordinates back to a physical address (inverse of
    /// [`AddressMapping::decode`]).
    pub fn encode(&self, decoded: DecodedAddr) -> PhysAddr {
        let row = decoded.row.row.0 as u64;
        let raw_bank = self.hash_bank(decoded.row.bank.0 as u64, row);
        let mut a = row;
        a = (a << self.subarray_bits) | decoded.row.subarray.0 as u64;
        a = (a << self.bank_bits) | raw_bank;
        a = (a << self.column_bits) | decoded.column as u64;
        PhysAddr(a)
    }

    /// The physical addresses of a row's two RowHammer victims — what a
    /// DRAMA-style attacker computes once it has the mapping.
    pub fn victim_addrs(&self, addr: PhysAddr, rows_per_subarray: usize) -> Vec<PhysAddr> {
        let Ok(decoded) = self.decode(addr) else {
            return Vec::new();
        };
        decoded
            .row
            .row
            .neighbours(rows_per_subarray)
            .map(|row| {
                self.encode(DecodedAddr {
                    row: GlobalRowId { row, ..decoded.row },
                    column: decoded.column,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping(xor: bool) -> AddressMapping {
        AddressMapping::from_config(&DramConfig::lpddr4_small(), xor).unwrap()
    }

    #[test]
    fn capacity_matches_config() {
        let config = DramConfig::lpddr4_small();
        let m = mapping(false);
        assert_eq!(m.capacity() as usize, config.capacity_bytes());
    }

    #[test]
    fn decode_encode_roundtrip_no_hash() {
        let m = mapping(false);
        for addr in [0u64, 1, 63, 64, 8191, 100_000, m.capacity() - 1] {
            let d = m.decode(PhysAddr(addr)).unwrap();
            assert_eq!(m.encode(d).0, addr, "addr {addr:#x}");
        }
    }

    #[test]
    fn decode_encode_roundtrip_with_hash() {
        let m = mapping(true);
        for addr in (0..m.capacity()).step_by(97_777) {
            let d = m.decode(PhysAddr(addr)).unwrap();
            assert_eq!(m.encode(d).0, addr, "addr {addr:#x}");
        }
    }

    #[test]
    fn hash_spreads_consecutive_rows() {
        let m = mapping(true);
        let config = DramConfig::lpddr4_small();
        // Same (raw bank, subarray), consecutive rows: the hash must put
        // them in different banks.
        let stride = (config.row_bytes * config.banks * config.subarrays_per_bank) as u64;
        let d0 = m.decode(PhysAddr(0)).unwrap();
        let d1 = m.decode(PhysAddr(stride)).unwrap();
        assert_eq!(d0.row.subarray, d1.row.subarray);
        assert_ne!(d0.row.bank, d1.row.bank, "xor hash had no effect");
    }

    #[test]
    fn out_of_range_rejected() {
        let m = mapping(false);
        assert!(m.decode(PhysAddr(m.capacity())).is_err());
    }

    #[test]
    fn non_power_of_two_rejected() {
        let bad = DramConfig::lpddr4_small().with_rows_per_subarray(100);
        assert!(AddressMapping::from_config(&bad, false).is_err());
    }

    #[test]
    fn victim_addrs_are_row_neighbours() {
        let m = mapping(false);
        let config = DramConfig::lpddr4_small();
        // Pick a mid-subarray row.
        let base = m.encode(DecodedAddr {
            row: GlobalRowId::new(3, 2, 10),
            column: 5,
        });
        let victims = m.victim_addrs(base, config.rows_per_subarray);
        assert_eq!(victims.len(), 2);
        for v in victims {
            let d = m.decode(v).unwrap();
            assert_eq!(d.row.bank.0, 3);
            assert_eq!(d.row.subarray.0, 2);
            assert!(d.row.row.0 == 9 || d.row.row.0 == 11);
            assert_eq!(d.column, 5);
        }
    }
}
