//! Property-based tests for the DRAM simulator invariants.

use dd_dram::{BankId, DramConfig, GlobalRowId, MemoryController, RowInSubarray, SubarrayId};
use proptest::prelude::*;

fn small_config() -> DramConfig {
    DramConfig::lpddr4_small()
        .with_banks(2)
        .with_subarrays_per_bank(2)
        .with_rows_per_subarray(32)
        .with_row_bytes(16)
}

proptest! {
    /// Writing then reading any row returns the written bytes.
    #[test]
    fn write_read_roundtrip(row in 0usize..32, data in proptest::collection::vec(any::<u8>(), 16)) {
        let mut mem = MemoryController::try_new(small_config()).expect("valid config");
        mem.write_row(BankId(0), SubarrayId(0), RowInSubarray(row), &data).unwrap();
        let back = mem.read_row(BankId(0), SubarrayId(0), RowInSubarray(row)).unwrap();
        prop_assert_eq!(back, data);
    }

    /// RowClone always makes dst equal to src and never corrupts src.
    #[test]
    fn row_clone_preserves_source(
        src in 0usize..32,
        dst in 0usize..32,
        data in proptest::collection::vec(any::<u8>(), 16),
    ) {
        let mut mem = MemoryController::try_new(small_config()).expect("valid config");
        mem.poke_row(BankId(1), SubarrayId(1), RowInSubarray(src), &data).unwrap();
        mem.row_clone(BankId(1), SubarrayId(1), RowInSubarray(src), RowInSubarray(dst)).unwrap();
        prop_assert_eq!(mem.peek_row(BankId(1), SubarrayId(1), RowInSubarray(src)).unwrap(), &data[..]);
        prop_assert_eq!(mem.peek_row(BankId(1), SubarrayId(1), RowInSubarray(dst)).unwrap(), &data[..]);
    }

    /// A victim can never flip with fewer than T_RH aggregate neighbour
    /// activations, and always can at exactly T_RH (fresh window).
    #[test]
    fn threshold_is_exact(count in 0u64..6000) {
        let mut mem = MemoryController::try_new(small_config().with_rowhammer_threshold(3000)).expect("valid config");
        let aggressor = GlobalRowId::new(0, 0, 11);
        let victim = GlobalRowId::new(0, 0, 10);
        mem.hammer(aggressor, count).unwrap();
        let out = mem.attempt_flip(victim, &[3]).unwrap();
        prop_assert_eq!(out.flipped(), count >= 3000);
    }

    /// Disturbance from two aggressors adds linearly.
    #[test]
    fn double_sided_adds(a in 0u64..3000, b in 0u64..3000) {
        let mut mem = MemoryController::try_new(small_config().with_rowhammer_threshold(100_000)).expect("valid config");
        mem.hammer(GlobalRowId::new(0, 0, 9), a).unwrap();
        mem.hammer(GlobalRowId::new(0, 0, 11), b).unwrap();
        prop_assert_eq!(mem.disturbance(GlobalRowId::new(0, 0, 10)), a + b);
    }

    /// swap_rows_via is an involution: applying it twice restores both rows.
    #[test]
    fn swap_twice_is_identity(
        a in 0usize..30,
        b in 0usize..30,
        da in proptest::collection::vec(any::<u8>(), 16),
        db in proptest::collection::vec(any::<u8>(), 16),
    ) {
        prop_assume!(a != b);
        let mut mem = MemoryController::try_new(small_config()).expect("valid config");
        mem.poke_row(BankId(0), SubarrayId(0), RowInSubarray(a), &da).unwrap();
        mem.poke_row(BankId(0), SubarrayId(0), RowInSubarray(b), &db).unwrap();
        let scratch = RowInSubarray(31);
        mem.swap_rows_via(BankId(0), SubarrayId(0), RowInSubarray(a), RowInSubarray(b), scratch).unwrap();
        mem.swap_rows_via(BankId(0), SubarrayId(0), RowInSubarray(a), RowInSubarray(b), scratch).unwrap();
        prop_assert_eq!(mem.peek_row(BankId(0), SubarrayId(0), RowInSubarray(a)).unwrap(), &da[..]);
        prop_assert_eq!(mem.peek_row(BankId(0), SubarrayId(0), RowInSubarray(b)).unwrap(), &db[..]);
    }

    /// Simulated time is monotone under any operation sequence.
    #[test]
    fn time_is_monotone(ops in proptest::collection::vec(0u8..4, 1..50)) {
        let mut mem = MemoryController::try_new(small_config()).expect("valid config");
        let mut last = mem.now();
        for op in ops {
            match op {
                0 => { mem.activate(GlobalRowId::new(0, 0, 5)).unwrap(); }
                1 => { mem.precharge(BankId(0), SubarrayId(0)).unwrap(); }
                2 => { mem.row_clone(BankId(0), SubarrayId(0), RowInSubarray(1), RowInSubarray(2)).unwrap(); }
                _ => { mem.hammer(GlobalRowId::new(0, 0, 7), 10).unwrap(); }
            }
            prop_assert!(mem.now() >= last);
            last = mem.now();
        }
    }
}
