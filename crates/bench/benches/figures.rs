//! Criterion benches of the per-figure series generators (the analytical
//! models that regenerate Fig. 1(a) and Fig. 8 rows, plus the Table 2
//! builder). These quantify the cost of regenerating each published
//! artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dd_dram::DramConfig;
use dnn_defender::{overhead_table, rh_thresholds, DefenseOp, SecurityModel};

fn bench_fig1a_series(c: &mut Criterion) {
    c.bench_function("figures/fig1a_rh_thresholds", |b| {
        b.iter(|| black_box(rh_thresholds()))
    });
}

fn bench_fig8a_series(c: &mut Criterion) {
    let model = SecurityModel::from_config(&DramConfig::lpddr4_small());
    c.bench_function("figures/fig8a_time_to_break_series", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for t_rh in [1000u64, 2000, 4000, 8000] {
                total += model.time_to_break_days(t_rh, DefenseOp::DnnDefenderSwap);
                total += model.time_to_break_days(t_rh, DefenseOp::ShadowShuffle);
                total += model.max_defended_bfas(t_rh) as f64;
            }
            black_box(total)
        })
    });
}

fn bench_fig8b_series(c: &mut Criterion) {
    let model = SecurityModel::from_config(&DramConfig::lpddr4_small());
    c.bench_function("figures/fig8b_latency_series", |b| {
        b.iter(|| {
            let mut total = 0u128;
            for n in [7_000u64, 14_000, 28_000, 55_000] {
                total += model.latency_per_tref(n, DefenseOp::DnnDefenderSwap).0;
                total += model.latency_per_tref(n, DefenseOp::ShadowShuffle).0;
            }
            black_box(total)
        })
    });
}

fn bench_table2_builder(c: &mut Criterion) {
    let config = DramConfig::ddr4_32gb();
    c.bench_function("figures/table2_overhead_table", |b| {
        b.iter(|| black_box(overhead_table(&config).len()))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_fig1a_series, bench_fig8a_series, bench_fig8b_series, bench_table2_builder
);
criterion_main!(benches);
