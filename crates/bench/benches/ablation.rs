//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * pipelined (Fig. 6) vs naive swap chains;
//! * bank-parallel vs serial swap scheduling;
//! * four-step swap vs plain three-copy swap (the step-4 non-target
//!   refresh);
//! * defense on vs off on the critical attack path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dd_dram::{DramConfig, MemoryController, RowInSubarray, TimingParams};
use dnn_defender::{chain_schedule, parallel_schedule};

fn bench_chain_overlap(c: &mut Criterion) {
    let timing = TimingParams::lpddr4();
    let mut group = c.benchmark_group("ablation/swap_chain_256");
    group.bench_function("pipelined", |b| {
        b.iter(|| black_box(chain_schedule(256, &timing, true).latency))
    });
    group.bench_function("naive", |b| {
        b.iter(|| black_box(chain_schedule(256, &timing, false).latency))
    });
    group.finish();
    // Report the modelled latency difference once.
    let fast = chain_schedule(256, &timing, true).latency;
    let slow = chain_schedule(256, &timing, false).latency;
    eprintln!(
        "[ablation] 256-swap chain: pipelined {fast} vs naive {slow} \
         ({:.1}% saved)",
        100.0 * (1.0 - fast.0 as f64 / slow.0 as f64)
    );
}

fn bench_parallel_banks(c: &mut Criterion) {
    let timing = TimingParams::lpddr4();
    let mut group = c.benchmark_group("ablation/swap_schedule_4096");
    group.bench_function("serial", |b| {
        b.iter(|| black_box(chain_schedule(4096, &timing, true).latency))
    });
    group.bench_function("16_banks", |b| {
        b.iter(|| black_box(parallel_schedule(4096, 16, &timing, true).latency))
    });
    group.finish();
}

fn bench_three_vs_four_copy_swap(c: &mut Criterion) {
    let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
    let mut group = c.benchmark_group("ablation/swap_copies");
    group.bench_function("three_copy", |b| {
        b.iter(|| {
            mem.row_clone(
                dd_dram::BankId(0),
                dd_dram::SubarrayId(0),
                RowInSubarray(1),
                RowInSubarray(126),
            )
            .unwrap();
            mem.row_clone(
                dd_dram::BankId(0),
                dd_dram::SubarrayId(0),
                RowInSubarray(2),
                RowInSubarray(1),
            )
            .unwrap();
            mem.row_clone(
                dd_dram::BankId(0),
                dd_dram::SubarrayId(0),
                RowInSubarray(126),
                RowInSubarray(2),
            )
            .unwrap();
        })
    });
    group.bench_function("four_copy_with_non_target_refresh", |b| {
        b.iter(|| {
            mem.row_clone(
                dd_dram::BankId(0),
                dd_dram::SubarrayId(0),
                RowInSubarray(1),
                RowInSubarray(126),
            )
            .unwrap();
            mem.row_clone(
                dd_dram::BankId(0),
                dd_dram::SubarrayId(0),
                RowInSubarray(2),
                RowInSubarray(1),
            )
            .unwrap();
            mem.row_clone(
                dd_dram::BankId(0),
                dd_dram::SubarrayId(0),
                RowInSubarray(126),
                RowInSubarray(2),
            )
            .unwrap();
            mem.row_clone(
                dd_dram::BankId(0),
                dd_dram::SubarrayId(0),
                RowInSubarray(3),
                RowInSubarray(126),
            )
            .unwrap();
        })
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_chain_overlap, bench_parallel_banks, bench_three_vs_four_copy_swap
);
criterion_main!(benches);
