//! Criterion benches for the attack and defense inner loops: one BFA
//! search iteration, the four-step swap through the full system, and
//! the priority profiling step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashSet;
use std::hint::black_box;

use dd_attack::{run_bfa, AttackConfig, AttackData};
use dd_dram::DramConfig;
use dd_nn::data::{Dataset, SyntheticSpec};
use dd_nn::init::seeded_rng;
use dd_nn::train::{train, TrainConfig};
use dd_qnn::{build_model, Architecture, BitAddr, ModelConfig, QModel};
use dnn_defender::{DefenseConfig, ProtectedSystem};

fn victim() -> (QModel, AttackData) {
    let mut rng = seeded_rng(5);
    let spec = SyntheticSpec {
        classes: 4,
        channels: 1,
        height: 8,
        width: 8,
        train_per_class: 32,
        test_per_class: 16,
        noise: 0.4,
        brightness_jitter: 0.1,
    };
    let ds = Dataset::generate(spec, &mut rng);
    let config = ModelConfig {
        arch: Architecture::Mlp,
        in_channels: 1,
        image_side: 8,
        classes: 4,
        base_width: 4,
    };
    let mut net = build_model(&config, &mut rng);
    let tc = TrainConfig {
        epochs: 4,
        batch_size: 32,
        lr: 0.1,
        momentum: 0.9,
        weight_decay: 0.0,
    };
    train(&mut net, &ds, tc, &mut rng);
    let model = QModel::from_network(net);
    let batch = ds.attack_batch(32, &mut rng);
    (model, AttackData::single_batch(batch.images, batch.labels))
}

fn bench_bfa_iteration(c: &mut Criterion) {
    let (mut model, data) = victim();
    let snapshot = model.snapshot_q();
    let config = AttackConfig {
        target_accuracy: 0.0,
        max_flips: 1,
        ..Default::default()
    };
    c.bench_function("attack/bfa_one_iteration", |b| {
        b.iter(|| {
            let report = run_bfa(&mut model, &data, &config, &HashSet::new());
            model.restore_q(&snapshot);
            black_box(report.bit_flips)
        })
    });
}

fn bench_protected_attack(c: &mut Criterion) {
    let (model, _) = victim();
    let mut system = ProtectedSystem::deploy(
        model,
        DramConfig::lpddr4_small(),
        DefenseConfig::default(),
        3,
    )
    .expect("deploy");
    let addr = BitAddr {
        param: 0,
        index: 0,
        bit: 7,
    };
    system.protect([addr]);
    c.bench_function("defense/attack_protected_bit_full_swap", |b| {
        b.iter(|| black_box(system.attack_bit(addr).unwrap()))
    });
}

fn bench_unprotected_attack(c: &mut Criterion) {
    let (model, _) = victim();
    let mut system = ProtectedSystem::deploy(
        model,
        DramConfig::lpddr4_small(),
        DefenseConfig {
            enabled: false,
            ..Default::default()
        },
        4,
    )
    .expect("deploy");
    let addr = BitAddr {
        param: 0,
        index: 1,
        bit: 0,
    };
    c.bench_function("defense/attack_unprotected_bit", |b| {
        b.iter(|| black_box(system.attack_bit(addr).unwrap()))
    });
}

fn bench_profiling_round(c: &mut Criterion) {
    let (mut model, data) = victim();
    let config = AttackConfig {
        target_accuracy: 0.3,
        max_flips: 5,
        ..Default::default()
    };
    c.bench_function("defense/profile_one_round_5_flips", |b| {
        b.iter(|| {
            black_box(
                dd_attack::multi_round_profile(&mut model, &data, &config, 1)
                    .bits
                    .len(),
            )
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_bfa_iteration, bench_protected_attack, bench_unprotected_attack, bench_profiling_round
);
criterion_main!(benches);
