//! Criterion benches for quantized inference and gradient computation —
//! the inner loop of every attack and profiling run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dd_nn::init::seeded_rng;
use dd_qnn::{build_model, Architecture, ModelConfig, QModel};

fn make_model(arch: Architecture) -> QModel {
    let mut rng = seeded_rng(1);
    let config = ModelConfig::new(arch, 10).with_base_width(2);
    QModel::from_network(build_model(&config, &mut rng))
}

fn batch() -> (dd_nn::Tensor, Vec<usize>) {
    let mut rng = seeded_rng(2);
    let x = dd_nn::init::normal(&[16, 3, 16, 16], 1.0, &mut rng);
    let labels = (0..16).map(|i| i % 10).collect();
    (x, labels)
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("qnn/forward_batch16");
    for arch in [
        Architecture::Mlp,
        Architecture::Vgg11,
        Architecture::ResNet20,
    ] {
        let mut model = make_model(arch);
        let (x, _) = batch();
        group.bench_function(arch.name(), |b| {
            b.iter(|| black_box(model.forward(black_box(&x))));
        });
    }
    group.finish();
}

fn bench_weight_grads(c: &mut Criterion) {
    let mut group = c.benchmark_group("qnn/weight_grads_batch16");
    for arch in [Architecture::Mlp, Architecture::ResNet20] {
        let mut model = make_model(arch);
        let (x, labels) = batch();
        group.bench_function(arch.name(), |b| {
            b.iter(|| black_box(model.weight_grads(black_box(&x), &labels)));
        });
    }
    group.finish();
}

fn bench_bit_flip_sync(c: &mut Criterion) {
    let mut model = make_model(Architecture::ResNet20);
    let addr = dd_qnn::BitAddr {
        param: 3,
        index: 7,
        bit: 7,
    };
    c.bench_function("qnn/flip_bit_sync", |b| {
        b.iter(|| {
            let flip = model.flip_bit(black_box(addr));
            model.unflip(flip);
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_forward, bench_weight_grads, bench_bit_flip_sync
);
criterion_main!(benches);
