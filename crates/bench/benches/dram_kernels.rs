//! Criterion benches for the DRAM simulator kernels behind every
//! experiment: activation, hammer bursts, RowClone, and the swap path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dd_dram::{BankId, DramConfig, GlobalRowId, MemoryController, RowInSubarray, SubarrayId};

fn bench_activate(c: &mut Criterion) {
    let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
    c.bench_function("dram/activate", |b| {
        b.iter(|| {
            mem.activate(black_box(GlobalRowId::new(0, 0, 5))).unwrap();
            mem.precharge(BankId(0), SubarrayId(0)).unwrap();
        })
    });
}

fn bench_hammer_burst(c: &mut Criterion) {
    let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
    c.bench_function("dram/hammer_4800", |b| {
        b.iter(|| {
            mem.hammer(black_box(GlobalRowId::new(0, 0, 11)), 4800)
                .unwrap();
        })
    });
}

fn bench_row_clone(c: &mut Criterion) {
    let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
    mem.poke_row(BankId(0), SubarrayId(0), RowInSubarray(1), &[0xA5; 64])
        .unwrap();
    c.bench_function("dram/row_clone", |b| {
        b.iter(|| {
            mem.row_clone(BankId(0), SubarrayId(0), RowInSubarray(1), RowInSubarray(2))
                .unwrap();
        })
    });
}

fn bench_full_row_write_read(c: &mut Criterion) {
    let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
    let data = vec![0x3C; 64];
    c.bench_function("dram/write_read_row", |b| {
        b.iter(|| {
            mem.write_row(BankId(1), SubarrayId(1), RowInSubarray(9), black_box(&data))
                .unwrap();
            black_box(
                mem.read_row(BankId(1), SubarrayId(1), RowInSubarray(9))
                    .unwrap(),
            );
        })
    });
}

fn bench_swap_via_scratch(c: &mut Criterion) {
    let mut mem = MemoryController::try_new(DramConfig::lpddr4_small()).expect("valid config");
    c.bench_function("dram/swap_rows_via_scratch", |b| {
        b.iter(|| {
            mem.swap_rows_via(
                BankId(0),
                SubarrayId(0),
                RowInSubarray(3),
                RowInSubarray(4),
                RowInSubarray(127),
            )
            .unwrap();
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_activate, bench_hammer_burst, bench_row_clone, bench_full_row_write_read, bench_swap_via_scratch
);
criterion_main!(benches);
