//! CLI contract tests for the `repro` binary (ISSUE 6 satellite).
//!
//! Locks the exit-code behavior scripts depend on: every unknown
//! subcommand, unknown option, malformed value, or empty invocation must
//! exit non-zero and print the usage text to stderr — never exit 0 with
//! nothing done.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro runs")
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

#[test]
fn unknown_subcommand_exits_nonzero_with_usage() {
    let out = repro(&["tabel3"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("unknown command `tabel3`"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
}

#[test]
fn unknown_option_exits_nonzero_with_usage() {
    let out = repro(&["all", "--froce"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("unknown option `--froce`"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");
}

#[test]
fn no_arguments_exits_nonzero_with_usage() {
    let out = repro(&[]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("usage: repro"));
}

#[test]
fn malformed_option_values_exit_nonzero() {
    for args in [
        ["all", "--jobs", "zero"].as_slice(),
        ["all", "--jobs", "0"].as_slice(),
        ["all", "--artifacts-dir"].as_slice(),
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(1), "{args:?}");
        assert!(stderr(&out).contains("usage: repro"), "{args:?}");
    }
}

#[test]
fn kernel_sweep_flags_reject_bad_input_nonzero() {
    // The cross-cell sweep needs at least two cells — 0, 1, and
    // non-integers are all contract violations, as is a dangling flag.
    for args in [
        ["kernel", "--sweep-cells", "0"].as_slice(),
        ["kernel", "--sweep-cells", "1"].as_slice(),
        ["kernel", "--sweep-cells", "eight"].as_slice(),
        ["kernel", "--sweep-cells"].as_slice(),
    ] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(1), "{args:?}");
        let err = stderr(&out);
        assert!(
            err.contains("--sweep-cells needs an integer of at least 2"),
            "{args:?}: {err}"
        );
        assert!(err.contains("usage: repro"), "{args:?}: {err}");
    }

    // An unknown kernel flag keeps the global contract.
    let out = repro(&["kernel", "--sweep-cell", "4"]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("unknown option `--sweep-cell`"), "{err}");
    assert!(err.contains("usage: repro"), "{err}");

    // The usage text documents the flag.
    let out = repro(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stderr(&out).contains("--sweep-cells"));
}

#[test]
fn help_exits_zero_with_usage() {
    for args in [["--help"].as_slice(), ["serve", "--help"].as_slice()] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(0), "{args:?}");
        assert!(stderr(&out).contains("usage: repro"), "{args:?}");
    }
}

#[test]
fn service_subcommands_reject_bad_input_nonzero() {
    // A malformed cell spec is a structured submit error, exit 1.
    let out = repro(&["submit", "--smoke", "Fortress:BFA:lpddr4_small:none"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown defense `Fortress`"));

    // `submit` with no specs has nothing to do — that is an error too.
    let out = repro(&["submit", "--smoke"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("no cell specs"));

    // `serve` takes no bare arguments.
    let out = repro(&["serve", "--smoke", "stray"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unexpected arguments"));

    // Unknown service option.
    let out = repro(&["serve", "--sockte", "/tmp/x"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("unknown option `--sockte`"));
}
