//! The chaos campaign as a test (ISSUE 9 tentpole).
//!
//! Two layers:
//!
//! * the **smoke campaign** itself — the exact `repro chaos --smoke`
//!   run — must hold every invariant and fire every injection site, so
//!   a hardening regression fails `cargo test` before it fails CI's
//!   artifact job;
//! * a **random-interleaving property** — arbitrary fault mixes
//!   (panic/stall/transient rates and plan seeds drawn at random) against
//!   an in-process server: whatever fires, every response stays
//!   structured, the budget ledger balances, and the server answers the
//!   next request. This is the "no fault interleaving can corrupt the
//!   ledger" claim the scripted phases cannot sweep by construction.
//!
//! `dd-chaos` sessions serialize on a process-global lock, so these
//! tests (and any parallel test in this binary) cannot pollute each
//! other's plans.

use dd_bench::chaos::{ledger_balanced, run_chaos_campaign, CHAOS_SITES};
use dd_bench::serve::{RetryPolicy, ServiceClient, REFERENCE_DEVICE_ROWS};
use dd_chaos::ChaosPlan;
use dd_server::{CellSpec, ServerConfig, SweepServer};
use dnn_defender::{CostModel, Json};
use proptest::prelude::*;

#[test]
fn smoke_campaign_holds_every_invariant_and_covers_every_site() {
    let report = run_chaos_campaign(true).expect("campaign harness");
    let failed = report.failed_invariants();
    assert!(
        failed.is_empty(),
        "resilience invariants failed: {failed:?}"
    );
    assert_eq!(
        report.sites_missing(),
        Vec::<&str>::new(),
        "injection sites never fired"
    );
    assert_eq!(report.sites_covered.len(), CHAOS_SITES.len());
    // The artifact the campaign writes round-trips losslessly.
    let text = report.to_json().render_pretty();
    let back = dd_bench::chaos::ChaosCampaignReport::parse(&text).expect("parse back");
    assert_eq!(back, report);
}

fn quick_server() -> SweepServer {
    SweepServer::new(
        ServerConfig {
            quick: true,
            workers: 2,
            capacity_micros: 60_000_000,
            default_grant_micros: 10_000_000,
        },
        CostModel::new(200_000_000, REFERENCE_DEVICE_ROWS),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random fault interleavings never corrupt the ledger or kill the
    /// server. Rates and the plan seed are drawn at random; the submit
    /// may succeed, partially fail, or exhaust its retries — all legal —
    /// but the conservation law and process survival are unconditional.
    #[test]
    fn random_fault_interleavings_preserve_conservation_and_survival(
        plan_seed in 0u64..1_000_000,
        panic_ppm in 0u32..1_000_000,
        stall_ppm in 0u32..1_000_000,
        transient_ppm in 0u32..700_000,
    ) {
        let session = dd_chaos::arm(
            ChaosPlan::inert(plan_seed)
                .with_rule("executor.job_panic", panic_ppm)
                .with_rule("executor.job_stall", stall_ppm)
                .with_rule("client.submit_transient", transient_ppm),
        );
        let mut client = ServiceClient::local(
            quick_server(),
            RetryPolicy {
                attempts: 4,
                base_delay_ms: 1,
                seed: plan_seed,
            },
        );
        let request = Json::obj()
            .with("op", Json::str("submit"))
            .with("client", Json::str("prop"))
            .with("quick", Json::Bool(true))
            .with(
                "cells",
                Json::Arr(vec![CellSpec::parse_compact(
                    "Baseline (undefended):BFA:lpddr4_small:none",
                )
                .expect("spec")
                .to_json()]),
            );
        let submitted = client.request_json(&request);
        let report = session.finish();

        // Whatever interleaving fired, a delivered response is
        // structured and its ledger balances.
        if let Ok(response) = &submitted {
            prop_assert!(response.field_bool("ok").is_ok());
            if let Ok(ledger) = response.field("ledger") {
                prop_assert!(
                    ledger_balanced(ledger),
                    "conservation broken under {report:?}"
                );
            }
        }
        // Survival + final conservation, read without client faults.
        let mut server = client.into_local_server().expect("local server");
        let stats = Json::parse(&server.handle_line("{\"op\":\"stats\"}"))
            .expect("stats parses");
        prop_assert_eq!(stats.field_bool("ok"), Ok(true));
        if let Ok(Json::Obj(clients)) = stats.field("clients") {
            for (name, ledger) in clients {
                prop_assert!(
                    ledger_balanced(ledger),
                    "client {name} ledger unbalanced under {report:?}"
                );
            }
        }
    }
}
