//! End-to-end checks of the matrix-as-a-service path (ISSUE 6).
//!
//! The server's promise is that serving a cell is *transparent*: the
//! bytes a client gets back are exactly the bytes the batch harness
//! would have produced for the same spec. That only holds while the
//! server's [`SweepBase`] constants track the bench crate's
//! `workload_matrix` — these tests lock both directions.

use std::collections::{HashMap, HashSet};

use dd_baselines::{BackgroundLoad, DefenseKind, MatrixReport};
use dd_bench::cache::{parse_cell_cache, render_cell_cache};
use dd_bench::experiments::{workload_matrix, ExperimentId, RunContext};
use dd_bench::report::Artifact;
use dd_bench::serve::{response_cells, submit_specs};
use dd_server::{CellSpec, DeviceSpec, ServerConfig, SweepBase, SweepServer};
use dnn_defender::{CostModel, Json};

fn quick_server() -> SweepServer {
    let config = ServerConfig {
        quick: true,
        workers: 2,
        capacity_micros: 60_000_000,
        default_grant_micros: 10_000_000,
    };
    SweepServer::new(config, CostModel::new(200_000_000, 16 * 8 * 128))
}

fn spec(defense: DefenseKind, load: BackgroundLoad) -> CellSpec {
    CellSpec {
        defense,
        attacker: dd_baselines::AttackerKind::Bfa,
        device: DeviceSpec::parse("lpddr4_small").expect("device"),
        load,
        priority: 0,
    }
}

/// The server's sweep base and the bench workload matrix must produce the
/// same content-addressed keys for the specs they share — this is what
/// makes server-computed cells reusable by `repro workload` and vice
/// versa. If this test fails, one side's constants drifted.
#[test]
fn sweep_base_keys_match_workload_matrix() {
    for quick in [true, false] {
        let base = SweepBase::standard(quick);
        let batch_keys: HashSet<u64> = workload_matrix(quick)
            .cell_keys()
            .into_iter()
            .map(|(_, key)| key)
            .collect();
        let mut shared = 0;
        for defense in [DefenseKind::Undefended, DefenseKind::DnnDefender] {
            for load in BackgroundLoad::ALL {
                let key = base.cell_key(&spec(defense, load)).1;
                assert!(
                    batch_keys.contains(&key),
                    "server key for {defense:?}×{load:?} not in the workload matrix"
                );
                shared += 1;
            }
        }
        assert_eq!(
            shared,
            batch_keys.len(),
            "the matrices cover the same cells"
        );
    }
}

/// Cells served over the protocol are byte-identical to a batch run of
/// the same specs (the tentpole acceptance criterion).
#[test]
fn served_cells_are_byte_identical_to_batch() {
    let specs = [
        spec(DefenseKind::Undefended, BackgroundLoad::None),
        spec(DefenseKind::DnnDefender, BackgroundLoad::Light),
    ];

    let mut server = quick_server();
    let response = submit_specs(&mut server, "e2e", &specs, true).expect("submit");
    let served = MatrixReport {
        cells: response_cells(&response).expect("all cells done"),
    };

    let base = SweepBase::standard(true);
    let mut batch_cells = Vec::new();
    for s in &specs {
        let report = base.matrix_for(s).run().expect("batch run");
        batch_cells.extend(report.cells);
    }
    let batch = MatrixReport { cells: batch_cells };

    assert_eq!(
        served.to_json().render_pretty(),
        batch.to_json().render_pretty(),
        "server and batch paths must produce identical bytes"
    );

    // And a warm resubmit serves the same bytes from cache.
    let warm = submit_specs(&mut server, "e2e", &specs, true).expect("warm submit");
    for result in warm.field_arr("results").expect("results") {
        assert_eq!(result.field_bool("cache_hit"), Ok(true));
    }
    let warm_cells = MatrixReport {
        cells: response_cells(&warm).expect("warm cells"),
    };
    assert_eq!(
        warm_cells.to_json().render_pretty(),
        batch.to_json().render_pretty()
    );
}

/// A client whose budget cannot cover a cell gets a structured rejection
/// — never a hang, never unpriced work (the satellite acceptance
/// criterion, exercised through the public protocol surface).
#[test]
fn exhausted_budget_is_a_structured_rejection() {
    let mut server = quick_server();
    let grant = Json::obj()
        .with("op", Json::str("budget"))
        .with("client", Json::str("pauper"))
        .with("grant_micros", Json::uint(1));
    let response = Json::parse(&server.handle_line(&grant.render_compact())).expect("grant");
    assert_eq!(response.field_bool("ok"), Ok(true));

    let response = submit_specs(
        &mut server,
        "pauper",
        &[spec(DefenseKind::Undefended, BackgroundLoad::None)],
        true,
    )
    .expect("submit answers");
    let results = response.field_arr("results").expect("results");
    assert_eq!(results[0].field_str("status"), Ok("rejected"));
    assert_eq!(results[0].field_str("reason"), Ok("budget_exhausted"));
    assert!(results[0].field_u64("estimate_micros").expect("priced") > 1);
}

/// The socket front end multiplexes connections: an idle client holding
/// a connection open must not block another client's accept + request
/// (the one-connection-at-a-time limit called out in ROADMAP).
#[test]
fn socket_serves_second_client_while_first_holds_connection_open() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;

    let socket = std::env::temp_dir().join(format!("dd-serve-e2e-{}.sock", std::process::id()));
    let opts = dd_bench::serve::ServeOptions {
        artifacts_dir: std::env::temp_dir().join("dd-serve-e2e-no-artifacts"),
        socket: Some(socket.clone()),
        jobs: Some(1),
        capacity_micros: None,
        grant_micros: None,
        quick: true,
    };
    let server = std::thread::spawn(move || dd_bench::serve::run_serve(&opts));

    // Wait for the listener to come up.
    let mut tries = 0;
    let connect = loop {
        match UnixStream::connect(&socket) {
            Ok(stream) => break stream,
            Err(_) if tries < 200 => {
                tries += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("server socket never came up: {e}"),
        }
    };

    // Client A connects and says nothing — under the old single-threaded
    // accept loop this parks the server forever.
    let idle = connect;

    // Client B must still get served, promptly.
    let stream = UnixStream::connect(&socket).expect("second client connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{{\"op\":\"hello\"}}").expect("write hello");
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .expect("hello answered while another connection is open");
    let hello = Json::parse(line.trim_end()).expect("hello parses");
    assert_eq!(hello.field_bool("ok"), Ok(true));

    writeln!(writer, "{{\"op\":\"shutdown\"}}").expect("write shutdown");
    line.clear();
    reader.read_line(&mut line).expect("shutdown answered");
    drop(idle);
    server
        .join()
        .expect("server thread exits")
        .expect("serve loop exits cleanly");
    assert!(!socket.exists(), "socket file cleaned up on shutdown");
}

/// The `server` experiment's artifact round-trips through the schema and
/// its session cells land in the shared cell cache under keys the cache
/// file format preserves.
#[test]
fn server_artifact_schema_round_trips() {
    let mut cells = HashMap::new();
    let mut ctx = RunContext {
        quick: true,
        jobs: Some(2),
        cells: &mut cells,
        verbose: false,
    };
    let artifact = ExperimentId::Server
        .run(&mut ctx)
        .expect("scripted session");
    assert_eq!(artifact.experiment, "server");
    assert_eq!(artifact.cache.cells, 22);
    assert_eq!(artifact.cache.cache_hits, 10);

    let text = artifact.to_json().render_pretty();
    let back = Artifact::parse(&text).expect("round trip");
    assert_eq!(back, artifact);
    assert_eq!(back.to_json().render_pretty(), text);

    // Session cells flow into the shared cache and survive the on-disk
    // format (alice's four, bob's computed one, carol's survivor...).
    assert!(cells.len() >= 6, "session cells merged into the run cache");
    let rendered = render_cell_cache(&cells);
    let reloaded = parse_cell_cache(&Json::parse(&rendered).expect("cache parses"));
    assert_eq!(reloaded.len(), cells.len());
}
