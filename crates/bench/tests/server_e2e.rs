//! End-to-end checks of the matrix-as-a-service path (ISSUE 6).
//!
//! The server's promise is that serving a cell is *transparent*: the
//! bytes a client gets back are exactly the bytes the batch harness
//! would have produced for the same spec. That only holds while the
//! server's [`SweepBase`] constants track the bench crate's
//! `workload_matrix` — these tests lock both directions.

use std::collections::{HashMap, HashSet};

use dd_baselines::{BackgroundLoad, DefenseKind, MatrixReport};
use dd_bench::cache::{parse_cell_cache, render_cell_cache};
use dd_bench::experiments::{workload_matrix, ExperimentId, RunContext};
use dd_bench::report::Artifact;
use dd_bench::serve::{
    response_cells, submit_specs, BoundListener, Endpoint, Remote, RetryPolicy, ServiceClient,
};
use dd_server::{CellSpec, DeviceSpec, ServerConfig, SweepBase, SweepServer};
use dnn_defender::{CostModel, Json};
use std::io::{Read, Write};

fn quick_server() -> SweepServer {
    let config = ServerConfig {
        quick: true,
        workers: 2,
        capacity_micros: 60_000_000,
        default_grant_micros: 10_000_000,
    };
    SweepServer::new(config, CostModel::new(200_000_000, 16 * 8 * 128))
}

fn spec(defense: DefenseKind, load: BackgroundLoad) -> CellSpec {
    CellSpec {
        defense,
        attacker: dd_baselines::AttackerKind::Bfa,
        device: DeviceSpec::parse("lpddr4_small").expect("device"),
        load,
        priority: 0,
    }
}

/// The server's sweep base and the bench workload matrix must produce the
/// same content-addressed keys for the specs they share — this is what
/// makes server-computed cells reusable by `repro workload` and vice
/// versa. If this test fails, one side's constants drifted.
#[test]
fn sweep_base_keys_match_workload_matrix() {
    for quick in [true, false] {
        let base = SweepBase::standard(quick);
        let batch_keys: HashSet<u64> = workload_matrix(quick)
            .cell_keys()
            .into_iter()
            .map(|(_, key)| key)
            .collect();
        let mut shared = 0;
        for defense in [DefenseKind::Undefended, DefenseKind::DnnDefender] {
            for load in BackgroundLoad::ALL {
                let key = base.cell_key(&spec(defense, load)).1;
                assert!(
                    batch_keys.contains(&key),
                    "server key for {defense:?}×{load:?} not in the workload matrix"
                );
                shared += 1;
            }
        }
        assert_eq!(
            shared,
            batch_keys.len(),
            "the matrices cover the same cells"
        );
    }
}

/// Cells served over the protocol are byte-identical to a batch run of
/// the same specs (the tentpole acceptance criterion).
#[test]
fn served_cells_are_byte_identical_to_batch() {
    let specs = [
        spec(DefenseKind::Undefended, BackgroundLoad::None),
        spec(DefenseKind::DnnDefender, BackgroundLoad::Light),
    ];

    let mut server = quick_server();
    let response = submit_specs(&mut server, "e2e", &specs, true).expect("submit");
    let served = MatrixReport {
        cells: response_cells(&response).expect("all cells done"),
    };

    let base = SweepBase::standard(true);
    let mut batch_cells = Vec::new();
    for s in &specs {
        let report = base.matrix_for(s).run().expect("batch run");
        batch_cells.extend(report.cells);
    }
    let batch = MatrixReport { cells: batch_cells };

    assert_eq!(
        served.to_json().render_pretty(),
        batch.to_json().render_pretty(),
        "server and batch paths must produce identical bytes"
    );

    // And a warm resubmit serves the same bytes from cache.
    let warm = submit_specs(&mut server, "e2e", &specs, true).expect("warm submit");
    for result in warm.field_arr("results").expect("results") {
        assert_eq!(result.field_bool("cache_hit"), Ok(true));
    }
    let warm_cells = MatrixReport {
        cells: response_cells(&warm).expect("warm cells"),
    };
    assert_eq!(
        warm_cells.to_json().render_pretty(),
        batch.to_json().render_pretty()
    );
}

/// A client whose budget cannot cover a cell gets a structured rejection
/// — never a hang, never unpriced work (the satellite acceptance
/// criterion, exercised through the public protocol surface).
#[test]
fn exhausted_budget_is_a_structured_rejection() {
    let mut server = quick_server();
    let grant = Json::obj()
        .with("op", Json::str("budget"))
        .with("client", Json::str("pauper"))
        .with("grant_micros", Json::uint(1));
    let response = Json::parse(&server.handle_line(&grant.render_compact())).expect("grant");
    assert_eq!(response.field_bool("ok"), Ok(true));

    let response = submit_specs(
        &mut server,
        "pauper",
        &[spec(DefenseKind::Undefended, BackgroundLoad::None)],
        true,
    )
    .expect("submit answers");
    let results = response.field_arr("results").expect("results");
    assert_eq!(results[0].field_str("status"), Ok("rejected"));
    assert_eq!(results[0].field_str("reason"), Ok("budget_exhausted"));
    assert!(results[0].field_u64("estimate_micros").expect("priced") > 1);
}

/// Spawn a quick server on the given transport, returning the join
/// handle and the client-side address. Binding happens before the
/// thread starts, so connects never race the listener.
fn spawn_server(
    transport: &str,
) -> (
    std::thread::JoinHandle<Result<(), String>>,
    Remote,
    Option<std::path::PathBuf>,
) {
    use std::time::Duration;
    let (endpoint, socket_path) = match transport {
        "unix" => {
            let socket = std::env::temp_dir().join(format!(
                "dd-serve-e2e-{}-{:?}.sock",
                std::process::id(),
                std::thread::current().id(),
            ));
            (Endpoint::Unix(socket.clone()), Some(socket))
        }
        _ => (Endpoint::Tcp("127.0.0.1:0".to_string()), None),
    };
    let bound = BoundListener::bind(&endpoint).expect("bind");
    let remote = match &endpoint {
        Endpoint::Unix(path) => Remote::Unix(path.clone()),
        Endpoint::Tcp(_) => Remote::Tcp(bound.tcp_addr().expect("tcp addr").to_string()),
        Endpoint::Stdio => unreachable!(),
    };
    let handle =
        std::thread::spawn(move || bound.serve(quick_server(), Some(Duration::from_secs(30))));
    (handle, remote, socket_path)
}

fn raw_connect(remote: &Remote) -> (Box<dyn std::io::Write>, Box<dyn std::io::Read>) {
    match remote {
        Remote::Unix(path) => {
            let stream = std::os::unix::net::UnixStream::connect(path).expect("connect");
            (
                Box::new(stream.try_clone().expect("clone")),
                Box::new(stream),
            )
        }
        Remote::Tcp(addr) => {
            let stream = std::net::TcpStream::connect(addr.as_str()).expect("connect");
            (
                Box::new(stream.try_clone().expect("clone")),
                Box::new(stream),
            )
        }
    }
}

/// Both socket front ends multiplex connections: an idle client holding
/// a connection open must not block another client's accept + request
/// (the one-connection-at-a-time limit called out in ROADMAP), and
/// shutdown drains the idle connection instead of waiting out its
/// deadline.
#[test]
fn serves_second_client_while_first_holds_connection_open() {
    for transport in ["unix", "tcp"] {
        let (server, remote, socket_path) = spawn_server(transport);

        // Client A connects and says nothing — under the old
        // single-threaded accept loop this parks the server forever.
        let (idle_writer, mut idle_reader) = raw_connect(&remote);

        // Client B must still get served, promptly.
        let mut client = ServiceClient::remote(remote, RetryPolicy::default());
        let hello = client.request("{\"op\":\"hello\"}").expect("hello");
        assert_eq!(hello.field_bool("ok"), Ok(true), "{transport}");
        let bye = client.request("{\"op\":\"shutdown\"}").expect("shutdown");
        assert_eq!(bye.field_bool("ok"), Ok(true), "{transport}");

        // Shutdown closes the idle connection (EOF), so the server
        // thread joins without waiting out A's read deadline.
        let mut scratch = [0u8; 8];
        let n = idle_reader.read(&mut scratch).expect("idle read");
        assert_eq!(n, 0, "{transport}: idle connection drained on shutdown");
        drop(idle_writer);
        server
            .join()
            .expect("server thread exits")
            .expect("serve loop exits cleanly");
        if let Some(socket) = socket_path {
            assert!(!socket.exists(), "socket file cleaned up on shutdown");
        }
    }
}

/// A client that disconnects mid-frame (no trailing newline) must not
/// wedge or kill the server: the partial request is dropped with the
/// connection and the next client is served normally — on both
/// transports.
#[test]
fn mid_frame_disconnect_leaves_server_serving() {
    for transport in ["unix", "tcp"] {
        let (server, remote, _socket) = spawn_server(transport);

        {
            let (mut writer, reader) = raw_connect(&remote);
            writer
                .write_all(b"{\"op\":\"subm")
                .expect("partial frame written");
            writer.flush().expect("flush");
            drop(writer);
            drop(reader);
        }

        let mut client = ServiceClient::remote(remote, RetryPolicy::default());
        let hello = client.request("{\"op\":\"hello\"}").expect("hello");
        assert_eq!(hello.field_bool("ok"), Ok(true), "{transport}");
        client.request("{\"op\":\"shutdown\"}").expect("shutdown");
        server
            .join()
            .expect("server thread exits")
            .expect("serve loop exits cleanly");
    }
}

/// The `server` experiment's artifact round-trips through the schema and
/// its session cells land in the shared cell cache under keys the cache
/// file format preserves.
#[test]
fn server_artifact_schema_round_trips() {
    let mut cells = HashMap::new();
    let mut ctx = RunContext {
        quick: true,
        jobs: Some(2),
        cells: &mut cells,
        verbose: false,
    };
    let artifact = ExperimentId::Server
        .run(&mut ctx)
        .expect("scripted session");
    assert_eq!(artifact.experiment, "server");
    assert_eq!(artifact.cache.cells, 22);
    assert_eq!(artifact.cache.cache_hits, 10);

    let text = artifact.to_json().render_pretty();
    let back = Artifact::parse(&text).expect("round trip");
    assert_eq!(back, artifact);
    assert_eq!(back.to_json().render_pretty(), text);

    // Session cells flow into the shared cache and survive the on-disk
    // format (alice's four, bob's computed one, carol's survivor...).
    assert!(cells.len() >= 6, "session cells merged into the run cache");
    let rendered = render_cell_cache(&cells);
    let reloaded = parse_cell_cache(&Json::parse(&rendered).expect("cache parses"));
    assert_eq!(reloaded.len(), cells.len());
}
