//! Integration test for the `repro corpus` campaign: the smoke-sized
//! fleet-day sweep must complete with every invariant held — above all
//! the streaming-vs-materialized bit-identity across the whole defense
//! roster — and its report must survive the JSON round trip that the
//! EXPERIMENTS.md `--check` gate depends on.

use dd_baselines::DefenseKind;
use dd_bench::corpus::{run_corpus_campaign, CorpusReport, CORPUS_REPORT_SCHEMA_VERSION};

#[test]
fn smoke_campaign_holds_every_invariant() {
    let report = run_corpus_campaign(true).expect("harness");
    assert!(
        report.all_pass(),
        "corpus invariants failed: {:?}",
        report.failed_invariants()
    );
    assert!(report.smoke);
    assert_eq!(report.experiment, "corpus");
    assert_eq!(report.phases.len(), 6, "the fleet day has six phases");
    assert_eq!(
        report.defenses.len(),
        DefenseKind::TABLE3.len(),
        "every defense in the roster gets a row"
    );
    for d in &report.defenses {
        assert!(
            d.streaming_identical,
            "{} diverged under streaming",
            d.defense
        );
        assert!(d.benign_ops > 0, "{} ran no traffic", d.defense);
        assert!(d.commands > 0, "{} issued no commands", d.defense);
    }
    // The trace plane: delta chunks actually compress, and the chunk
    // count matches the 512-op batch boundary.
    assert!(report.trace.v2_bytes < report.trace.v1_bytes);
    assert_eq!(report.trace.chunks, report.trace.records.div_ceil(512));

    // The report the campaign would write round-trips byte-stably (the
    // `repro report --check` property).
    let text = report.to_json().render_pretty();
    let back = CorpusReport::parse(&text).expect("parse back");
    assert_eq!(back, report);
    assert_eq!(back.to_json().render_pretty(), text);
    // And the rendered section names every defense.
    let md = report.render_markdown();
    for kind in DefenseKind::TABLE3 {
        assert!(
            md.contains(kind.label()),
            "{} missing from markdown",
            kind.label()
        );
    }
}

#[test]
fn campaign_is_deterministic() {
    let a = run_corpus_campaign(true).expect("harness");
    let b = run_corpus_campaign(true).expect("harness");
    assert_eq!(
        a.to_json().render_pretty(),
        b.to_json().render_pretty(),
        "the corpus report must be machine-independent and run-stable"
    );
}

#[test]
fn committed_corpus_report_is_fresh() {
    // The committed artifact must parse under the current schema and
    // hold every invariant it recorded — a stale or failing report
    // cannot sit in artifacts/ feeding EXPERIMENTS.md.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../artifacts/CORPUS_report.json"
    );
    let text = std::fs::read_to_string(path).expect("committed CORPUS_report.json exists");
    let report = CorpusReport::parse(&text).expect("committed report parses");
    assert_eq!(report.schema_version, CORPUS_REPORT_SCHEMA_VERSION);
    assert_eq!(report.experiment, "corpus");
    assert!(!report.smoke, "the committed report is the full-sized run");
    assert!(
        report.all_pass(),
        "committed report records failures: {:?}",
        report.failed_invariants()
    );
    assert_eq!(report.defenses.len(), DefenseKind::TABLE3.len());
    assert!(report.defenses.iter().all(|d| d.streaming_identical));
    // Byte stability: rerunning `repro corpus` rewrites the file through
    // this exact renderer, so parse -> render must reproduce the
    // committed bytes (the `--check` property).
    assert_eq!(report.to_json().render_pretty(), text);
}
