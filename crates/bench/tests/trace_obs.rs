//! Obs-enabled integration tests for `repro trace`: the determinism
//! law, the golden deterministic document, and the Perfetto export.
//!
//! Everything that records through `dd_obs` lives in this one test
//! binary: integration-test files are separate processes, and the
//! recording sink is process-global — sessions serialize on the global
//! session lock, so tests here can run concurrently without polluting
//! each other, but a second test *file* would race a different process's
//! view of nothing at all. The observed scenario is shared through a
//! `OnceLock` so the file costs two trace runs total (one shared, one
//! more for the determinism law's independent rerun).

use std::sync::OnceLock;

use dd_bench::trace::{run_trace, TraceOutcome, TraceSummary, TRACE_SCHEMA_VERSION};
use dnn_defender::Json;

/// The shared observed run (smoke sizing, default workers).
fn traced() -> &'static TraceOutcome {
    static RUN: OnceLock<TraceOutcome> = OnceLock::new();
    RUN.get_or_init(|| run_trace(true, None).expect("trace scenario runs"))
}

/// The determinism law: two independent runs of the full observed
/// scenario — fresh matrix, fresh driver, fresh server, fresh threads —
/// produce byte-identical deterministic documents. Durations, thread
/// ids, and steal attribution are excluded by construction; span/event
/// counts, counters, and histograms are all included.
#[test]
fn determinism_law_two_runs_agree_byte_for_byte() {
    let first = traced().summary.deterministic_document().render_pretty();
    let rerun = run_trace(true, None).expect("second trace scenario runs");
    let second = rerun.summary.deterministic_document().render_pretty();
    assert_eq!(
        first, second,
        "the deterministic trace section drifted between two identical runs — \
         some probe is recording a run-varying value into a deterministic aggregate"
    );
    // The rendered docs section is a function of the deterministic
    // document, so it must agree too.
    assert_eq!(
        traced().summary.render_markdown(),
        rerun.summary.render_markdown()
    );
}

/// The golden deterministic document: the quick-sized scenario's
/// deterministic section is pinned byte-for-byte (machine-independent —
/// the simulation, the scheduler's job set, and the server script are
/// all deterministic). Regenerate with `REGEN_GOLDEN=1 cargo test`.
#[test]
fn deterministic_document_matches_golden_file() {
    let document = traced().summary.deterministic_document().render_pretty();
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/trace_summary.json"
        );
        std::fs::write(path, &document).expect("regen golden");
    }
    let expected = include_str!("golden/trace_summary.json");
    assert_eq!(
        document, expected,
        "TRACE_summary.json deterministic section drifted from \
         tests/golden/trace_summary.json — if the change is intentional \
         (new spans, resized scenario), bump TRACE_SCHEMA_VERSION if the shape \
         changed and regenerate with REGEN_GOLDEN=1"
    );
    // The golden document itself parses under the committed schema.
    let golden = Json::parse(expected).expect("golden parses");
    assert_eq!(golden.field_u64("schema_version"), Ok(TRACE_SCHEMA_VERSION));
    assert_eq!(golden.field_str("experiment"), Ok("trace"));
}

/// The snapshot covers every instrumented layer: per-chunk kernel spans,
/// the cross-cell sweep phases, matrix scheduling, the executor, and the
/// server's five submit passes with regime/shed events.
#[test]
fn observed_scenario_covers_the_span_taxonomy() {
    let snap = &traced().snapshot;
    let count = |name: &str| snap.spans.iter().filter(|s| s.name == name).count();
    for name in [
        "chunk.issue",
        "chunk.decode",
        "chunk.observe",
        "sweep.classify",
        "sweep.resolve",
        "matrix.cell_setup",
        "matrix.cell_attack",
        "matrix.warmup_solo",
        "matrix.warmup_group",
        "executor.job",
        "server.parse",
        "server.shed",
        "server.execute",
        "server.resolve",
        "server.respond",
    ] {
        assert!(count(name) > 0, "span `{name}` missing from the scenario");
    }
    // The sweep phases carry their cell-count label.
    assert!(snap
        .spans
        .iter()
        .any(|s| s.name == "sweep.classify" && s.label.as_deref() == Some("cells=2")));
    // Regime transitions and shed decisions surface as events: the
    // scripted session goes calm (Alice) then storm (Carol, 3 sheds).
    let regimes: Vec<&str> = snap
        .events
        .iter()
        .filter(|e| e.name == "server.regime")
        .map(|e| e.label.as_str())
        .collect();
    assert_eq!(regimes.len(), 2, "one calm + one storm transition");
    assert!(regimes[0].starts_with("regime=calm"));
    assert!(regimes[1].starts_with("regime=storm"));
    assert_eq!(
        snap.events
            .iter()
            .filter(|e| e.name == "server.shed_cell")
            .count(),
        3,
        "Carol's storm sheds three cold cells"
    );
    // Deterministic counters/histograms landed.
    assert!(snap.counters.get("driver.ops").copied().unwrap_or(0) > 0);
    assert!(snap.counters.get("driver.sweep_ops").copied().unwrap_or(0) > 0);
    assert_eq!(snap.counters.get("matrix.sweep_groups"), Some(&1));
    assert!(snap.hists.contains_key("chunk.ops"));
    assert!(snap.hists.contains_key("sweep.chunk_ops"));
    assert_eq!(snap.dropped_spans, 0);
}

/// The Perfetto export is valid Chrome trace-event JSON carrying the
/// whole timeline: complete spans, instant events, and thread metadata.
#[test]
fn perfetto_export_parses_and_carries_the_timeline() {
    let outcome = traced();
    let doc = Json::parse(&outcome.perfetto).expect("Chrome trace JSON parses");
    assert_eq!(doc.field_str("displayTimeUnit"), Ok("ms"));
    let events = doc.field_arr("traceEvents").expect("traceEvents");
    assert_eq!(
        events
            .iter()
            .filter(|e| e.field_str("ph") == Ok("X"))
            .count(),
        outcome.snapshot.spans.len(),
        "every span becomes one complete event"
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| e.field_str("ph") == Ok("i"))
            .count(),
        outcome.snapshot.events.len(),
        "every event becomes one instant"
    );
    // Thread metadata names each recorder lane.
    assert!(events
        .iter()
        .any(|e| e.field_str("ph") == Ok("M") && e.field_str("name") == Ok("thread_name")));
    // Spot-check one span of each layer by name.
    for name in [
        "chunk.issue",
        "sweep.classify",
        "server.parse",
        "executor.job",
    ] {
        assert!(
            events
                .iter()
                .any(|e| e.field_str("ph") == Ok("X") && e.field_str("name") == Ok(name)),
            "span `{name}` missing from the timeline"
        );
    }
    // Durations are microseconds with sub-microsecond precision intact:
    // every complete event carries numeric ts/dur.
    for e in events.iter().filter(|e| e.field_str("ph") == Ok("X")) {
        assert!(e.field_f64("ts").is_ok() && e.field_f64("dur").is_ok());
    }
}

/// Satellite: the executor utilization summary (jobs, steals, queue
/// delay, per-worker busy fractions) reaches the timing section through
/// the server's stats reply, wired from the same `JobRun` records the
/// scheduler already returns.
#[test]
fn executor_summary_lands_in_the_timing_section() {
    let summary = &traced().summary;
    let stats = summary
        .timing
        .field("server_stats")
        .and_then(|s| s.field("stats"))
        .expect("server stats in timing");
    let executor = stats.field("executor").expect("executor summary");
    // Alice's 4 computed cells + Carol's 1 surviving cold cell.
    assert_eq!(executor.field_u64("jobs"), Ok(5));
    let workers = executor.field_arr("workers").expect("per-worker rows");
    assert_eq!(workers.len(), 2, "default trace run pins 2 workers");
    for w in workers {
        let busy = w.field_f64("busy_fraction").expect("busy fraction");
        assert!((0.0..=1.0).contains(&busy));
    }
    // Shed/refund accounting per regime: Carol's 3 sheds in the storm.
    let shed = stats.field("shed_by_regime").expect("shed by regime");
    assert_eq!(shed.field_u64("storm"), Ok(3));
    let refunded = stats
        .field("refunded_micros_by_regime")
        .expect("refunds by regime");
    assert!(refunded.field_u64("storm").expect("storm refunds") > 0);
    // Wall/queue histograms recorded one sample per executed job.
    let hists = stats.field("histograms").expect("server histograms");
    assert_eq!(
        hists
            .field("wall_micros")
            .and_then(|h| h.field_u64("count")),
        Ok(5)
    );
}

/// The full summary round-trips through its disk format, and a parsed
/// copy renders the identical docs section (`repro report --check`'s
/// idempotence property).
#[test]
fn summary_disk_format_round_trips() {
    let summary = &traced().summary;
    let text = summary.to_json().render_pretty();
    let back = TraceSummary::parse(&text).expect("parse back");
    assert_eq!(&back, summary);
    assert_eq!(back.to_json().render_pretty(), text);
    assert_eq!(back.render_markdown(), summary.render_markdown());
    let md = summary.render_markdown();
    for needle in ["`chunk.issue`", "`sweep.classify`", "`server.parse`"] {
        assert!(md.contains(needle), "docs section missing {needle}");
    }
}
