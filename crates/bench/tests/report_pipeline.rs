//! Integration tests for the `repro` artifact pipeline: the markdown
//! renderer (golden file), the artifact JSON schema (round trip), and
//! the content-addressed cache keys (stability across runs).

use std::collections::HashMap;

use dd_baselines::{CellReport, MatrixRunSummary};
use dd_bench::experiments::{table3_matrix, ExperimentId, RunContext};
use dd_bench::kernel::{
    KernelBench, PathMeasure, CHAOS_OVERHEAD_CEILING_PCT, KERNEL_BENCH_SCHEMA_VERSION,
    KERNEL_SPEEDUP_FLOOR, OBS_OVERHEAD_CEILING_PCT, STREAMING_RATIO_FLOOR, SWEEP_SPEEDUP_FLOOR,
};
use dd_bench::report::{splice_section, Artifact, TableArtifact, ARTIFACT_SCHEMA_VERSION};
use dnn_defender::Json;

/// The fixed artifact behind the golden render — every formatting
/// feature in one place: multiple tables, pipe escaping, notes, and the
/// full metadata footer.
fn golden_artifact() -> Artifact {
    Artifact {
        schema_version: ARTIFACT_SCHEMA_VERSION,
        experiment: "table3".into(),
        title: "Table 3: BFA defense comparison (scenario matrix)".into(),
        config_hash: 0x06c2_0821_dbac_2fe6,
        seed: 333,
        quick: true,
        wall_millis: 50_100,
        cache: MatrixRunSummary {
            cells: 9,
            cache_hits: 4,
        },
        tables: vec![
            TableArtifact::new(
                "Table 3: BFA defense comparison (ResNet-20, CIFAR-10 stand-in)",
                &["Defense", "Clean acc", "Post-attack acc"],
                vec![
                    vec![
                        "Baseline (undefended)".into(),
                        "91.41%".into(),
                        "10.16%".into(),
                    ],
                    vec!["DNN-Defender".into(), "91.41%".into(), "91.41%".into()],
                ],
            ),
            TableArtifact::new(
                "Fig. 8 (analytical): time-to-break and capacity per T_RH",
                &["T_RH", "DD days", "SHADOW | RRS days"],
                vec![vec!["4000".into(), "1180".into(), "895 | 620".into()]],
            ),
        ],
        notes: vec![
            "Shape check: the baseline collapses; DNN-Defender holds clean accuracy.".into(),
        ],
        raw: None,
    }
}

#[test]
fn markdown_render_matches_golden_file() {
    let expected = include_str!("golden/table3_section.md");
    assert_eq!(
        golden_artifact().render_markdown(),
        expected,
        "renderer output drifted from tests/golden/table3_section.md — \
         if the change is intentional, update the golden file"
    );
}

#[test]
fn artifact_json_round_trips_with_raw_payload() {
    let mut artifact = golden_artifact();
    artifact.raw = Some(
        Json::obj()
            .with("matrix", Json::obj().with("cells", Json::Arr(vec![])))
            .with("anchor", Json::num(4.425)),
    );
    let text = artifact.to_json().render_pretty();
    let back = Artifact::parse(&text).expect("parse back");
    assert_eq!(back, artifact);
    // Rendering the decoded artifact is byte-identical: the docs cannot
    // drift between a write and a later `repro report`.
    assert_eq!(back.render_markdown(), artifact.render_markdown());
    assert_eq!(back.to_json().render_pretty(), text);
}

#[test]
fn experiment_config_hashes_and_cell_keys_are_stable_across_runs() {
    for id in ExperimentId::ALL {
        assert_eq!(id.config_hash(false), id.config_hash(false));
        assert_eq!(id.config_hash(true), id.config_hash(true));
    }
    // The table3 matrix, rebuilt from scratch, reproduces both the
    // matrix-level hash and every per-cell cache key.
    let (a, b) = (table3_matrix(true), table3_matrix(true));
    assert_eq!(a.config_hash(), b.config_hash());
    assert_eq!(a.cell_keys(), b.cell_keys());
    // Quick/full scaling keys differently, cell by cell.
    let full = table3_matrix(false);
    assert_ne!(a.config_hash(), full.config_hash());
    for ((sa, ka), (sf, kf)) in a.cell_keys().iter().zip(full.cell_keys()) {
        assert_eq!(sa.defense, sf.defense);
        assert_ne!(*ka, kf);
    }
}

/// The fixed `BENCH_kernel.json` behind the golden render: every schema
/// field exercised once.
fn golden_kernel_bench() -> KernelBench {
    KernelBench {
        schema_version: KERNEL_BENCH_SCHEMA_VERSION,
        experiment: "kernel".into(),
        quick: true,
        trace_ops: 120_000,
        batch_factor: 16,
        seed: 20240606,
        reference: PathMeasure {
            wall_millis: 250,
            commands: 3_960_000,
            commands_per_sec: 15_840_000.0,
        },
        batch: PathMeasure {
            wall_millis: 50,
            commands: 3_960_000,
            commands_per_sec: 79_200_000.0,
        },
        speedup: 5.5,
        floor: KERNEL_SPEEDUP_FLOOR,
        sweep_cells: 8,
        cell_batch: PathMeasure {
            wall_millis: 100,
            commands: 7_920_000,
            commands_per_sec: 79_200_000.0,
        },
        sweep: PathMeasure {
            wall_millis: 20,
            commands: 7_920_000,
            commands_per_sec: 396_000_000.0,
        },
        sweep_speedup: 5.0,
        sweep_floor: SWEEP_SPEEDUP_FLOOR,
        streaming: PathMeasure {
            wall_millis: 55,
            commands: 3_960_000,
            commands_per_sec: 72_000_000.0,
        },
        streaming_ratio: 0.91,
        streaming_floor: STREAMING_RATIO_FLOOR,
        obs_overhead_batch_pct: 0.4,
        obs_overhead_sweep_pct: 0.6,
        obs_overhead_ceiling_pct: OBS_OVERHEAD_CEILING_PCT,
        chaos_overhead_batch_pct: 0.2,
        chaos_overhead_sweep_pct: 0.3,
        chaos_overhead_ceiling_pct: CHAOS_OVERHEAD_CEILING_PCT,
    }
}

#[test]
fn kernel_bench_render_matches_golden_file() {
    let bench = golden_kernel_bench();
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/bench_kernel.json"
        );
        std::fs::write(path, bench.to_json().render_pretty()).expect("regen golden");
    }
    let expected = include_str!("golden/bench_kernel.json");
    assert_eq!(
        bench.to_json().render_pretty(),
        expected,
        "BENCH_kernel.json schema drifted from tests/golden/bench_kernel.json — \
         if the change is intentional, bump KERNEL_BENCH_SCHEMA_VERSION and update the golden"
    );
    // The golden file itself round-trips through the hand-rolled JSON
    // tree back to the same struct and the same bytes.
    let parsed = KernelBench::parse(expected).expect("golden parses");
    assert_eq!(parsed, bench);
    assert_eq!(parsed.to_json().render_pretty(), expected);
}

#[test]
fn committed_kernel_bench_is_a_valid_baseline() {
    // The committed perf baseline must parse under the current schema,
    // satisfy its own regression floor, and hit the tentpole's >= 3x
    // target on the counters-only replay path.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../artifacts/BENCH_kernel.json"
    );
    let text = std::fs::read_to_string(path).expect("committed BENCH_kernel.json exists");
    let bench = KernelBench::parse(&text).expect("committed baseline parses");
    assert_eq!(bench.schema_version, KERNEL_BENCH_SCHEMA_VERSION);
    assert_eq!(bench.experiment, "kernel");
    assert!(bench.floor >= 1.0, "floor must gate a real speedup");
    assert!(
        bench.speedup >= bench.floor,
        "committed baseline violates its own floor"
    );
    assert!(
        bench.speedup >= 3.0,
        "committed baseline lost the 3x target: {}",
        bench.speedup
    );
    assert_eq!(
        bench.reference.commands, bench.batch.commands,
        "both paths must replay the identical trace"
    );
    // The cross-cell section: same self-consistency, plus the ISSUE's
    // >= 4x matrix-throughput target for the sweep kernel.
    assert!(bench.sweep_cells >= 2, "a sweep needs at least 2 cells");
    assert!(
        bench.sweep_floor >= 1.0,
        "sweep floor must gate a real speedup"
    );
    assert!(
        bench.sweep_speedup >= bench.sweep_floor,
        "committed baseline violates its own sweep floor"
    );
    assert!(
        bench.sweep_speedup >= 4.0,
        "committed baseline lost the 4x cross-cell target: {}",
        bench.sweep_speedup
    );
    assert_eq!(
        bench.cell_batch.commands, bench.sweep.commands,
        "both cross-cell paths must replay the identical roster"
    );
    // The streaming-replay gate: the committed baseline carries its own
    // floor and satisfies it — chunked decode stays close to the
    // decoded-in-RAM path.
    assert!(
        bench.streaming_floor > 0.0,
        "streaming floor must gate something"
    );
    assert!(
        bench.streaming_ratio >= bench.streaming_floor,
        "committed baseline violates its own streaming floor: {} < {}",
        bench.streaming_ratio,
        bench.streaming_floor
    );
    assert_eq!(
        bench.streaming.commands, bench.batch.commands,
        "streaming replays the identical trace off its v2 container"
    );
    // The dd-obs overhead gate: the committed baseline carries its own
    // ceiling and satisfies it on both kernel fast paths.
    assert!(
        bench.obs_overhead_ceiling_pct > 0.0,
        "overhead ceiling must gate something"
    );
    assert!(
        bench.obs_overhead_batch_pct <= bench.obs_overhead_ceiling_pct,
        "committed baseline violates its own obs-overhead ceiling on the batch path: \
         {} > {}",
        bench.obs_overhead_batch_pct,
        bench.obs_overhead_ceiling_pct
    );
    assert!(
        bench.obs_overhead_sweep_pct <= bench.obs_overhead_ceiling_pct,
        "committed baseline violates its own obs-overhead ceiling on the sweep path: \
         {} > {}",
        bench.obs_overhead_sweep_pct,
        bench.obs_overhead_ceiling_pct
    );
    // Cold/warm byte stability: rerunning `repro kernel` rewrites the
    // file through this exact renderer, so parse -> render must
    // reproduce the committed bytes (the `--check` property).
    assert_eq!(bench.to_json().render_pretty(), text);
}

#[test]
fn analytical_artifact_feeds_the_docs_splice() {
    let mut cells: HashMap<u64, CellReport> = HashMap::new();
    let mut ctx = RunContext {
        quick: false,
        jobs: Some(1),
        cells: &mut cells,
        verbose: false,
    };
    let artifact = ExperimentId::Fig8a.run(&mut ctx).expect("fig8a");
    let body = artifact.render_markdown();
    assert!(
        body.contains("| 4k | 1180 | 895 |"),
        "anchor row missing:\n{body}"
    );

    let doc = "# EXPERIMENTS\n\n<!-- repro:begin fig8a -->\nstale\n<!-- repro:end fig8a -->\n";
    let spliced = splice_section(doc, "fig8a", &body).expect("splice");
    assert!(spliced.contains("| 4k | 1180 | 895 |"));
    assert!(!spliced.contains("stale"));
    // Idempotent: a second report pass is byte-identical.
    assert_eq!(
        splice_section(&spliced, "fig8a", &body).expect("resplice"),
        spliced
    );
}
