//! The `repro serve` / `repro submit` front ends over [`dd_server`].
//!
//! `serve` runs a resident [`SweepServer`] speaking the line-delimited
//! JSON protocol on stdin/stdout (default) or a Unix socket, warm-started
//! from the artifact directory's cell cache and calibrated from its
//! `BENCH_kernel.json`. `submit` is the matching client: it prices and
//! runs a list of cell specs through a server (over the socket, or an
//! in-process server when none is given), optionally writing the returned
//! cells as a canonical `MatrixReport` document and cross-checking them
//! byte-for-byte against a fresh batch run of the same specs.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use dd_baselines::{CellReport, MatrixReport};
use dd_server::{CellSpec, ServerConfig, SweepBase, SweepServer};
use dnn_defender::budget::DEFAULT_COMMANDS_PER_SEC;
use dnn_defender::{CostModel, Json};

use crate::cache::load_cell_cache;
use crate::kernel::KernelBench;

/// Row count of the device the kernel benchmark calibrates on
/// (`DramConfig::lpddr4_small`): 16 banks × 8 subarrays × 128 rows.
pub const REFERENCE_DEVICE_ROWS: u64 = 16 * 8 * 128;

/// Build the admission cost model: calibrated from the artifact
/// directory's `BENCH_kernel.json` batched-kernel throughput when present
/// and sane, else the conservative [`DEFAULT_COMMANDS_PER_SEC`].
pub fn calibrated_cost_model(artifacts_dir: &Path) -> CostModel {
    let commands_per_sec = std::fs::read_to_string(artifacts_dir.join("BENCH_kernel.json"))
        .ok()
        .and_then(|text| KernelBench::parse(&text).ok())
        .map(|bench| bench.batch.commands_per_sec)
        .filter(|cps| cps.is_finite() && *cps >= 1.0)
        .map(|cps| cps as u64)
        .unwrap_or(DEFAULT_COMMANDS_PER_SEC);
    CostModel::new(commands_per_sec, REFERENCE_DEVICE_ROWS)
}

/// Options of `repro serve`.
pub struct ServeOptions {
    /// Artifact directory (cell-cache warm start + kernel calibration).
    pub artifacts_dir: PathBuf,
    /// Listen on this Unix socket instead of stdin/stdout.
    pub socket: Option<PathBuf>,
    /// Executor worker threads (default: one per core).
    pub jobs: Option<usize>,
    /// Regime planning capacity override, in estimated microseconds.
    pub capacity_micros: Option<u64>,
    /// Default per-client grant override, in estimated microseconds.
    pub grant_micros: Option<u64>,
    /// Quick (smoke) mode.
    pub quick: bool,
}

fn build_server(opts: &ServeOptions) -> SweepServer {
    let mut config = ServerConfig::standard(opts.quick);
    if let Some(jobs) = opts.jobs {
        config.workers = jobs;
    }
    if let Some(capacity) = opts.capacity_micros {
        config.capacity_micros = capacity;
    }
    if let Some(grant) = opts.grant_micros {
        config.default_grant_micros = grant;
    }
    let cost = calibrated_cost_model(&opts.artifacts_dir);
    let cache = load_cell_cache(&opts.artifacts_dir.join("cache").join("cells.json"));
    eprintln!(
        "repro serve: protocol v{}, {} worker(s), {} cached cell(s), {} cmd/s, quick={}",
        dd_server::SERVER_PROTOCOL_VERSION,
        config.workers,
        cache.len(),
        cost.commands_per_sec(),
        opts.quick,
    );
    SweepServer::new(config, cost).with_cache(cache)
}

/// Run the resident server until a `shutdown` op (or EOF on stdio).
pub fn run_serve(opts: &ServeOptions) -> Result<(), String> {
    let mut server = build_server(opts);
    match &opts.socket {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            for line in stdin.lock().lines() {
                let line = line.map_err(|e| format!("stdin: {e}"))?;
                if line.trim().is_empty() {
                    continue;
                }
                let response = server.handle_line(&line);
                let mut out = stdout.lock();
                writeln!(out, "{response}").map_err(|e| format!("stdout: {e}"))?;
                out.flush().map_err(|e| format!("stdout: {e}"))?;
                if server.is_shutdown() {
                    break;
                }
            }
            Ok(())
        }
        Some(path) => {
            // A stale socket file from a previous run would make bind fail.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)
                .map_err(|e| format!("cannot bind {}: {e}", path.display()))?;
            eprintln!("repro serve: listening on {}", path.display());
            // Connections multiplex: each one gets its own thread, and
            // requests serialize per line at the server mutex — an idle
            // or slow client no longer blocks everyone else's accept
            // (the one-connection-at-a-time limit noted in ROADMAP).
            let server = Mutex::new(server);
            let shutdown = AtomicBool::new(false);
            std::thread::scope(|scope| -> Result<(), String> {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let stream = stream.map_err(|e| format!("accept: {e}"))?;
                    let server = &server;
                    let shutdown = &shutdown;
                    scope.spawn(move || {
                        if let Err(e) = serve_connection(server, stream) {
                            // A broken client must not take the server down.
                            eprintln!("repro serve: connection error: {e}");
                        }
                        if server.lock().expect("server poisoned").is_shutdown() {
                            shutdown.store(true, Ordering::Release);
                            // The acceptor is parked in `accept`; a
                            // throwaway connection wakes it to observe
                            // the flag and exit.
                            let _ = UnixStream::connect(path);
                        }
                    });
                }
                Ok(())
            })?;
            let _ = std::fs::remove_file(path);
            Ok(())
        }
    }
}

fn serve_connection(server: &Mutex<SweepServer>, stream: UnixStream) -> Result<(), String> {
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line.map_err(|e| format!("read: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        // Lock per request line, not per connection: long-lived clients
        // interleave fairly, and the response is written outside the
        // critical section.
        let (response, done) = {
            let mut server = server.lock().expect("server poisoned");
            (server.handle_line(&line), server.is_shutdown())
        };
        writeln!(writer, "{response}").map_err(|e| format!("write: {e}"))?;
        writer.flush().map_err(|e| format!("flush: {e}"))?;
        if done {
            break;
        }
    }
    Ok(())
}

/// Options of `repro submit`.
pub struct SubmitOptions {
    /// Artifact directory (for the in-process server and batch check).
    pub artifacts_dir: PathBuf,
    /// Connect to a `repro serve --socket` server; in-process otherwise.
    pub socket: Option<PathBuf>,
    /// Client name for budget accounting.
    pub client: String,
    /// Grant this many estimated microseconds before submitting.
    pub grant_micros: Option<u64>,
    /// Write the returned cells as a canonical `MatrixReport` document.
    pub out: Option<PathBuf>,
    /// Re-run the same specs through the batch path and require
    /// byte-identical cells.
    pub check_batch: bool,
    /// Quick (smoke) mode — must match the server's.
    pub quick: bool,
    /// Suppress per-cell lines.
    pub quiet: bool,
    /// Cell specs (`defense:attacker:device:load[:priority]`).
    pub specs: Vec<String>,
}

enum Transport {
    Socket(BufReader<UnixStream>, UnixStream),
    Local(Box<SweepServer>),
}

impl Transport {
    fn roundtrip(&mut self, line: &str) -> Result<String, String> {
        match self {
            Transport::Socket(reader, writer) => {
                writeln!(writer, "{line}").map_err(|e| format!("write: {e}"))?;
                writer.flush().map_err(|e| format!("flush: {e}"))?;
                let mut response = String::new();
                let n = reader
                    .read_line(&mut response)
                    .map_err(|e| format!("read: {e}"))?;
                if n == 0 {
                    return Err("server closed the connection".to_string());
                }
                Ok(response.trim_end().to_string())
            }
            Transport::Local(server) => Ok(server.handle_line(line)),
        }
    }
}

/// Submit cell specs, print the per-cell outcomes, and enforce
/// `--out` / `--check-batch`. Any non-`done` cell is an error.
pub fn run_submit(opts: &SubmitOptions) -> Result<(), String> {
    if opts.specs.is_empty() {
        return Err("no cell specs given (defense:attacker:device:load[:priority])".to_string());
    }
    let specs: Vec<CellSpec> = opts
        .specs
        .iter()
        .map(|text| CellSpec::parse_compact(text))
        .collect::<Result<_, _>>()?;

    let mut transport = match &opts.socket {
        Some(path) => {
            let stream = UnixStream::connect(path)
                .map_err(|e| format!("cannot connect to {}: {e}", path.display()))?;
            let reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
            Transport::Socket(reader, stream)
        }
        None => Transport::Local(Box::new(build_server(&ServeOptions {
            artifacts_dir: opts.artifacts_dir.clone(),
            socket: None,
            jobs: None,
            capacity_micros: None,
            grant_micros: None,
            quick: opts.quick,
        }))),
    };

    if let Some(grant) = opts.grant_micros {
        let budget = Json::obj()
            .with("op", Json::str("budget"))
            .with("client", Json::str(opts.client.clone()))
            .with("grant_micros", Json::uint(grant));
        let response = parse_response(&transport.roundtrip(&budget.render_compact())?)?;
        expect_ok(&response)?;
    }

    let request = Json::obj()
        .with("op", Json::str("submit"))
        .with("client", Json::str(opts.client.clone()))
        .with("quick", Json::Bool(opts.quick))
        .with(
            "cells",
            Json::Arr(specs.iter().map(CellSpec::to_json).collect()),
        );
    let response = parse_response(&transport.roundtrip(&request.render_compact())?)?;
    expect_ok(&response)?;

    let regime = response.field_str("regime").unwrap_or("?").to_string();
    let results = response
        .field_arr("results")
        .map_err(|e| e.message.clone())?;
    let mut cells: Vec<CellReport> = Vec::new();
    let mut failures = 0usize;
    for (spec, result) in specs.iter().zip(results) {
        let status = result.field_str("status").unwrap_or("?").to_string();
        if !opts.quiet {
            let detail = match status.as_str() {
                "done" => format!(
                    "cache_hit={} estimate={}us wall={}us",
                    result.field_bool("cache_hit").unwrap_or(false),
                    result.field_u64("estimate_micros").unwrap_or(0),
                    result.field_u64("wall_micros").unwrap_or(0),
                ),
                "rejected" | "shed" => format!(
                    "reason={} estimate={}us",
                    result.field_str("reason").unwrap_or("?"),
                    result.field_u64("estimate_micros").unwrap_or(0),
                ),
                _ => result.field_str("reason").unwrap_or("?").to_string(),
            };
            println!("repro submit: [{status}] {} ({detail})", spec.label());
        }
        if status == "done" {
            let cell = result
                .field("cell")
                .and_then(CellReport::from_json)
                .map_err(|e| format!("bad cell in response: {}", e.message))?;
            cells.push(cell);
        } else {
            failures += 1;
        }
    }
    if !opts.quiet {
        println!(
            "repro submit: {} done / {} other, regime {regime}",
            cells.len(),
            failures
        );
    }

    let report = MatrixReport { cells };
    if let Some(out) = &opts.out {
        if let Some(parent) = out.parent() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir: {e}"))?;
        }
        std::fs::write(out, report.to_json().render_pretty())
            .map_err(|e| format!("write {}: {e}", out.display()))?;
        if !opts.quiet {
            println!("repro submit: wrote {}", out.display());
        }
    }

    if opts.check_batch {
        if failures > 0 {
            return Err("cannot --check-batch: not every cell completed".to_string());
        }
        let batch = batch_report(&specs, opts.quick)?;
        let server_bytes = report.to_json().render_pretty();
        let batch_bytes = batch.to_json().render_pretty();
        if server_bytes != batch_bytes {
            return Err(
                "server and batch paths disagree: returned cells are not byte-identical"
                    .to_string(),
            );
        }
        println!(
            "repro submit: server cells byte-identical to the batch path ({} cells, {} bytes)",
            specs.len(),
            server_bytes.len()
        );
    }

    if failures > 0 {
        return Err(format!("{failures} cell(s) did not complete"));
    }
    Ok(())
}

/// The batch path for the same specs: a fresh [`ScenarioMatrix`] run per
/// cell (no server, no cache) under the shared [`SweepBase`] constants.
///
/// [`ScenarioMatrix`]: dd_baselines::ScenarioMatrix
fn batch_report(specs: &[CellSpec], quick: bool) -> Result<MatrixReport, String> {
    let base = SweepBase::standard(quick);
    let mut cells = Vec::with_capacity(specs.len());
    for spec in specs {
        let report = base
            .matrix_for(spec)
            .run()
            .map_err(|e| format!("batch run of `{}` failed: {e:?}", spec.label()))?;
        cells.extend(report.cells);
    }
    Ok(MatrixReport { cells })
}

fn parse_response(line: &str) -> Result<Json, String> {
    Json::parse(line).map_err(|e| format!("bad response line: {}", e.message))
}

fn expect_ok(response: &Json) -> Result<(), String> {
    if response.field_bool("ok") == Ok(true) {
        return Ok(());
    }
    Err(response
        .field_str("error")
        .map(str::to_string)
        .unwrap_or_else(|_| "server error".to_string()))
}

/// Shared in-process round trip used by tests and the `server`
/// experiment: submit `specs` for `client` against `server`, returning
/// the parsed response.
pub fn submit_specs(
    server: &mut SweepServer,
    client: &str,
    specs: &[CellSpec],
    quick: bool,
) -> Result<Json, String> {
    let request = Json::obj()
        .with("op", Json::str("submit"))
        .with("client", Json::str(client))
        .with("quick", Json::Bool(quick))
        .with(
            "cells",
            Json::Arr(specs.iter().map(CellSpec::to_json).collect()),
        );
    let response = parse_response(&server.handle_line(&request.render_compact()))?;
    expect_ok(&response)?;
    Ok(response)
}

/// Decode the `done` cells of a submit response in request order,
/// erroring on any other status.
pub fn response_cells(response: &Json) -> Result<Vec<CellReport>, String> {
    let results = response
        .field_arr("results")
        .map_err(|e| e.message.clone())?;
    results
        .iter()
        .map(|result| {
            let status = result.field_str("status").unwrap_or("?");
            if status != "done" {
                return Err(format!("cell not done: status {status}"));
            }
            result
                .field("cell")
                .and_then(CellReport::from_json)
                .map_err(|e| e.message.clone())
        })
        .collect()
}

/// Merge a server's computed cells into a batch-side cell cache (used by
/// the `server` experiment to share cells with `repro workload`).
pub fn merge_server_cache(server: SweepServer, cells: &mut HashMap<u64, CellReport>) {
    for (key, cell) in server.into_cache() {
        cells.insert(key, cell);
    }
}
