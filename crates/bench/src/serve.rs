//! The `repro serve` / `repro submit` front ends over [`dd_server`].
//!
//! `serve` runs a resident [`SweepServer`] speaking the line-delimited
//! JSON protocol on stdin/stdout (default), a Unix socket, or a TCP
//! listener, warm-started from the artifact directory's cell cache and
//! calibrated from its `BENCH_kernel.json`. `submit` is the matching
//! client: it prices and runs a list of cell specs through a server
//! (over either socket transport, or an in-process server when none is
//! given), optionally writing the returned cells as a canonical
//! `MatrixReport` document and cross-checking them byte-for-byte against
//! a fresh batch run of the same specs.
//!
//! Resilience posture (see `docs/resilience.md`):
//!
//! * connections read through [`FrameReader`] under a per-connection
//!   read deadline — oversized frames get a structured error and the
//!   stream resyncs, garbage bytes fail JSON parsing as a structured
//!   error, a deadline or mid-frame disconnect closes only that
//!   connection;
//! * submit requests run admit → execute → complete: the server lock is
//!   held for admission and completion only, never while cells simulate;
//! * the client retries transient transport failures (connect/write
//!   errors, dropped or corrupted response frames) with seeded
//!   exponential backoff, reconnecting each time — safe because submits
//!   are idempotent through content-addressed admission and budget
//!   grants carry a `txn` token;
//! * the `server.conn_drop` / `server.frame_corrupt` /
//!   `client.submit_transient` dd-chaos sites inject exactly those
//!   failures deterministically when a chaos plan is armed.

use std::collections::HashMap;
use std::io::{BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use dd_baselines::{CellReport, MatrixReport};
use dd_server::{
    CellSpec, Frame, FrameReader, LineOutcome, ServerConfig, SweepBase, SweepServer,
    MAX_FRAME_BYTES,
};
use dnn_defender::budget::DEFAULT_COMMANDS_PER_SEC;
use dnn_defender::{CostModel, Json};

use crate::cache::load_cell_cache;
use crate::kernel::KernelBench;

/// Row count of the device the kernel benchmark calibrates on
/// (`DramConfig::lpddr4_small`): 16 banks × 8 subarrays × 128 rows.
pub const REFERENCE_DEVICE_ROWS: u64 = 16 * 8 * 128;

/// Default per-connection read deadline: generous enough for a human at
/// a terminal, bounded enough that a wedged peer cannot pin a connection
/// thread forever.
pub const DEFAULT_READ_TIMEOUT_MS: u64 = 120_000;

/// Client-side read deadline while waiting for a response line.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(60);

/// Build the admission cost model: calibrated from the artifact
/// directory's `BENCH_kernel.json` batched-kernel throughput when present
/// and sane, else the conservative [`DEFAULT_COMMANDS_PER_SEC`].
pub fn calibrated_cost_model(artifacts_dir: &Path) -> CostModel {
    let commands_per_sec = std::fs::read_to_string(artifacts_dir.join("BENCH_kernel.json"))
        .ok()
        .and_then(|text| KernelBench::parse(&text).ok())
        .map(|bench| bench.batch.commands_per_sec)
        .filter(|cps| cps.is_finite() && *cps >= 1.0)
        .map(|cps| cps as u64)
        .unwrap_or(DEFAULT_COMMANDS_PER_SEC);
    CostModel::new(commands_per_sec, REFERENCE_DEVICE_ROWS)
}

/// Options of `repro serve`.
pub struct ServeOptions {
    /// Artifact directory (cell-cache warm start + kernel calibration).
    pub artifacts_dir: PathBuf,
    /// Listen on this Unix socket instead of stdin/stdout.
    pub socket: Option<PathBuf>,
    /// Listen on this TCP address (e.g. `127.0.0.1:7979`) instead of
    /// stdin/stdout. Mutually exclusive with `socket`.
    pub tcp: Option<String>,
    /// Per-connection read deadline override, in milliseconds
    /// (default [`DEFAULT_READ_TIMEOUT_MS`]; 0 disables).
    pub read_timeout_ms: Option<u64>,
    /// Executor worker threads (default: one per core).
    pub jobs: Option<usize>,
    /// Regime planning capacity override, in estimated microseconds.
    pub capacity_micros: Option<u64>,
    /// Default per-client grant override, in estimated microseconds.
    pub grant_micros: Option<u64>,
    /// Quick (smoke) mode.
    pub quick: bool,
}

impl ServeOptions {
    fn read_timeout(&self) -> Option<Duration> {
        match self.read_timeout_ms.unwrap_or(DEFAULT_READ_TIMEOUT_MS) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        }
    }
}

/// Where a server listens (or a client connects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// Line-delimited JSON on stdin/stdout (server only).
    Stdio,
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address (`host:port`; port 0 binds an ephemeral port).
    Tcp(String),
}

fn serve_endpoint(opts: &ServeOptions) -> Result<Endpoint, String> {
    match (&opts.socket, &opts.tcp) {
        (Some(_), Some(_)) => Err("--socket and --tcp are mutually exclusive".to_string()),
        (Some(path), None) => Ok(Endpoint::Unix(path.clone())),
        (None, Some(addr)) => Ok(Endpoint::Tcp(addr.clone())),
        (None, None) => Ok(Endpoint::Stdio),
    }
}

/// The common surface of the two socket stream types.
trait Stream: Read + Write + Send + Sized {
    fn try_clone_stream(&self) -> std::io::Result<Self>;
    fn set_read_deadline(&self, timeout: Option<Duration>) -> std::io::Result<()>;
    fn close_both(&self) -> std::io::Result<()>;
}

impl Stream for UnixStream {
    fn try_clone_stream(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn set_read_deadline(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn close_both(&self) -> std::io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

impl Stream for TcpStream {
    fn try_clone_stream(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
    fn set_read_deadline(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn close_both(&self) -> std::io::Result<()> {
        self.shutdown(std::net::Shutdown::Both)
    }
}

enum ListenerKind {
    Unix {
        listener: UnixListener,
        path: PathBuf,
    },
    Tcp {
        listener: TcpListener,
    },
}

/// A bound (but not yet serving) listener. Binding and serving are
/// separate so harnesses can bind an ephemeral TCP port, read the
/// address, and only then hand the listener to a server thread.
pub struct BoundListener {
    kind: ListenerKind,
}

impl BoundListener {
    /// Bind the endpoint ([`Endpoint::Stdio`] is not bindable).
    pub fn bind(endpoint: &Endpoint) -> Result<Self, String> {
        match endpoint {
            Endpoint::Stdio => Err("stdio endpoint cannot be bound".to_string()),
            Endpoint::Unix(path) => {
                // A stale socket file from a previous run would make bind
                // fail.
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)
                    .map_err(|e| format!("cannot bind {}: {e}", path.display()))?;
                Ok(BoundListener {
                    kind: ListenerKind::Unix {
                        listener,
                        path: path.clone(),
                    },
                })
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())
                    .map_err(|e| format!("cannot bind tcp {addr}: {e}"))?;
                Ok(BoundListener {
                    kind: ListenerKind::Tcp { listener },
                })
            }
        }
    }

    /// Human-readable bound address.
    pub fn describe(&self) -> String {
        match &self.kind {
            ListenerKind::Unix { path, .. } => format!("unix {}", path.display()),
            ListenerKind::Tcp { listener } => match listener.local_addr() {
                Ok(addr) => format!("tcp {addr}"),
                Err(_) => "tcp ?".to_string(),
            },
        }
    }

    /// The actual TCP address (resolves port 0 to the bound port).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.kind {
            ListenerKind::Tcp { listener } => listener.local_addr().ok(),
            ListenerKind::Unix { .. } => None,
        }
    }

    /// Serve connections until a `shutdown` op. Connections multiplex:
    /// each one gets its own thread; requests admit and complete at the
    /// server mutex but execute outside it, so a long submit does not
    /// block other clients' requests — and an idle or slow client never
    /// blocks accept. On shutdown, in-flight requests drain and every
    /// open connection is closed.
    pub fn serve(self, server: SweepServer, read_timeout: Option<Duration>) -> Result<(), String> {
        match self.kind {
            ListenerKind::Unix { listener, path } => {
                let wake_path = path.clone();
                let wake = move || {
                    let _ = UnixStream::connect(&wake_path);
                };
                let result = drive(server, listener.incoming(), wake, read_timeout);
                let _ = std::fs::remove_file(&path);
                result
            }
            ListenerKind::Tcp { listener } => {
                let addr = listener
                    .local_addr()
                    .map_err(|e| format!("local_addr: {e}"))?;
                let wake = move || {
                    let _ = TcpStream::connect(addr);
                };
                drive(server, listener.incoming(), wake, read_timeout)
            }
        }
    }
}

fn lock(server: &Mutex<SweepServer>) -> MutexGuard<'_, SweepServer> {
    // Worker panics are caught per job in the executor, so a poisoned
    // lock means a panic in bookkeeping code; the state is still the
    // best copy there is, and dying here would turn one bad request
    // into a dead service.
    server.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The shared accept loop of both socket transports.
fn drive<S, I, W>(
    server: SweepServer,
    incoming: I,
    wake: W,
    read_timeout: Option<Duration>,
) -> Result<(), String>
where
    S: Stream,
    I: Iterator<Item = std::io::Result<S>>,
    W: Fn() + Sync,
{
    let server = Mutex::new(server);
    let shutdown = AtomicBool::new(false);
    // Stream clones of every live connection, so shutdown can unblock
    // readers parked inside their deadline instead of waiting it out.
    let open: Mutex<HashMap<u64, S>> = Mutex::new(HashMap::new());
    let mut next_conn = 0u64;
    std::thread::scope(|scope| -> Result<(), String> {
        for stream in incoming {
            if shutdown.load(Ordering::Acquire) {
                break;
            }
            let stream = stream.map_err(|e| format!("accept: {e}"))?;
            next_conn += 1;
            let conn_id = next_conn;
            if let Ok(clone) = stream.try_clone_stream() {
                if let Ok(mut open) = open.lock() {
                    open.insert(conn_id, clone);
                }
            }
            let server = &server;
            let shutdown = &shutdown;
            let open = &open;
            let wake = &wake;
            scope.spawn(move || {
                if let Err(e) = serve_connection(server, stream, conn_id, read_timeout) {
                    // A broken client must not take the server down.
                    eprintln!("repro serve: connection {conn_id}: {e}");
                }
                if let Ok(mut open) = open.lock() {
                    open.remove(&conn_id);
                }
                if lock(server).is_shutdown() {
                    shutdown.store(true, Ordering::Release);
                    // Drain: close every other open connection (readers
                    // parked in their deadline wake with EOF) and nudge
                    // the acceptor so it observes the flag and exits.
                    if let Ok(open) = open.lock() {
                        for stream in open.values() {
                            let _ = stream.close_both();
                        }
                    }
                    wake();
                }
            });
        }
        Ok(())
    })
}

/// One connection: framed reads under the deadline, three-phase request
/// handling, chaos-injected drops/corruption on the write side.
fn serve_connection<S: Stream>(
    server: &Mutex<SweepServer>,
    stream: S,
    conn_id: u64,
    read_timeout: Option<Duration>,
) -> Result<(), String> {
    stream
        .set_read_deadline(read_timeout)
        .map_err(|e| format!("set read deadline: {e}"))?;
    let mut writer = stream
        .try_clone_stream()
        .map_err(|e| format!("clone: {e}"))?;
    let mut frames = FrameReader::new(BufReader::new(stream), MAX_FRAME_BYTES);
    let mut line_idx = 0u64;
    loop {
        let frame = match frames.next_frame() {
            Ok(frame) => frame,
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Read deadline elapsed: a polite close, not an error.
                eprintln!("repro serve: connection {conn_id}: read deadline elapsed, closing");
                return Ok(());
            }
            Err(e) => return Err(format!("read: {e}")),
        };
        let line = match frame {
            Frame::Eof => return Ok(()),
            Frame::Line {
                terminated: false, ..
            } => {
                // Mid-frame disconnect: the partial request was never
                // admitted; drop it with the connection.
                return Ok(());
            }
            Frame::Oversized { drained } => {
                let response = oversized_response(drained);
                write_response(&mut writer, response.as_bytes())?;
                continue;
            }
            Frame::Line { text, .. } => text,
        };
        if line.trim().is_empty() {
            continue;
        }
        // One deterministic fault key per (connection, request line).
        let fault_key = (conn_id << 20) | (line_idx & 0xF_FFFF);
        line_idx += 1;
        let (response, done) = handle_framed(server, &line);
        if dd_chaos::fires("server.conn_drop", fault_key) {
            // The request was fully handled (charged, executed, cached);
            // dropping before the response forces the client's retry
            // path to prove idempotency: resubmits hit the cell cache,
            // grants carry txn tokens.
            return Ok(());
        }
        let mut bytes = response.into_bytes();
        if dd_chaos::fires("server.frame_corrupt", fault_key) {
            corrupt_frame(
                &mut bytes,
                dd_chaos::payload("server.frame_corrupt", fault_key),
            );
        }
        write_response(&mut writer, &bytes)?;
        if done {
            return Ok(());
        }
    }
}

/// Admit under the lock, execute outside it, complete under the lock.
fn handle_framed(server: &Mutex<SweepServer>, line: &str) -> (String, bool) {
    let prepared = {
        let mut guard = lock(server);
        match guard.begin_line(line) {
            LineOutcome::Response(response) => return (response, guard.is_shutdown()),
            LineOutcome::Submit(prepared) => prepared,
        }
    };
    let executed = SweepServer::execute_prepared(*prepared);
    let mut guard = lock(server);
    let response = guard.complete_submit(executed).render_compact();
    (response, guard.is_shutdown())
}

fn write_response<W: Write>(writer: &mut W, bytes: &[u8]) -> Result<(), String> {
    writer
        .write_all(bytes)
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("write: {e}"))
}

fn oversized_response(drained: usize) -> String {
    Json::obj()
        .with("ok", Json::Bool(false))
        .with("op", Json::str("?"))
        .with("protocol", Json::uint(dd_server::SERVER_PROTOCOL_VERSION))
        .with(
            "error",
            Json::str(format!(
                "request frame exceeds {MAX_FRAME_BYTES} bytes ({drained} discarded)"
            )),
        )
        .with("kind", Json::str("oversized_frame"))
        .render_compact()
}

/// Shape a response frame into garbage, steered by the chaos payload:
/// an invalid-UTF-8 byte, a truncation, or a mid-token replacement. The
/// trailing newline is written separately, so the stream stays framed.
fn corrupt_frame(bytes: &mut Vec<u8>, payload: u64) {
    match payload % 3 {
        0 if !bytes.is_empty() => {
            let index = (payload as usize / 3) % bytes.len();
            bytes[index] = 0xFF;
        }
        1 => bytes.truncate(bytes.len() / 2),
        _ => *bytes = b"{\"ok\":tr".to_vec(),
    }
}

fn build_server(opts: &ServeOptions) -> SweepServer {
    let mut config = ServerConfig::standard(opts.quick);
    if let Some(jobs) = opts.jobs {
        config.workers = jobs;
    }
    if let Some(capacity) = opts.capacity_micros {
        config.capacity_micros = capacity;
    }
    if let Some(grant) = opts.grant_micros {
        config.default_grant_micros = grant;
    }
    let cost = calibrated_cost_model(&opts.artifacts_dir);
    let cache = load_cell_cache(&opts.artifacts_dir.join("cache").join("cells.json"));
    eprintln!(
        "repro serve: protocol v{}, {} worker(s), {} cached cell(s), {} cmd/s, quick={}",
        dd_server::SERVER_PROTOCOL_VERSION,
        config.workers,
        cache.len(),
        cost.commands_per_sec(),
        opts.quick,
    );
    SweepServer::new(config, cost).with_cache(cache)
}

/// Run the resident server until a `shutdown` op (or EOF on stdio).
pub fn run_serve(opts: &ServeOptions) -> Result<(), String> {
    let server = build_server(opts);
    match serve_endpoint(opts)? {
        Endpoint::Stdio => serve_stdio(server),
        endpoint => {
            let bound = BoundListener::bind(&endpoint)?;
            eprintln!("repro serve: listening on {}", bound.describe());
            bound.serve(server, opts.read_timeout())
        }
    }
}

fn serve_stdio(mut server: SweepServer) -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut frames = FrameReader::new(stdin.lock(), MAX_FRAME_BYTES);
    loop {
        let response = match frames.next_frame().map_err(|e| format!("stdin: {e}"))? {
            Frame::Eof => return Ok(()),
            Frame::Line {
                terminated: false, ..
            } => return Ok(()),
            Frame::Oversized { drained } => oversized_response(drained),
            Frame::Line { text, .. } => {
                if text.trim().is_empty() {
                    continue;
                }
                server.handle_line(&text)
            }
        };
        let mut out = stdout.lock();
        writeln!(out, "{response}").map_err(|e| format!("stdout: {e}"))?;
        out.flush().map_err(|e| format!("stdout: {e}"))?;
        if server.is_shutdown() {
            return Ok(());
        }
    }
}

/// Where `repro submit` (or a harness client) connects.
#[derive(Debug, Clone)]
pub enum Remote {
    /// A Unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address (`host:port`).
    Tcp(String),
}

/// Seeded retry policy for transient transport failures.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per request (first try included).
    pub attempts: u32,
    /// Base backoff before the first retry; doubles per retry.
    pub base_delay_ms: u64,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_delay_ms: 10,
            seed: 0x5eed_ba5e,
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based): exponential with
    /// deterministic jitter, capped at 500 ms.
    pub fn delay_ms(&self, retry: u32) -> u64 {
        let base = self
            .base_delay_ms
            .saturating_mul(1u64 << retry.saturating_sub(1).min(16))
            .min(500);
        let jitter = splitmix64(self.seed ^ u64::from(retry)) % (base / 2 + 1);
        base + jitter
    }
}

struct SocketConn<S: Stream> {
    frames: FrameReader<BufReader<S>>,
    writer: S,
}

impl<S: Stream> SocketConn<S> {
    fn new(stream: S) -> std::io::Result<Self> {
        stream.set_read_deadline(Some(CLIENT_READ_TIMEOUT))?;
        let writer = stream.try_clone_stream()?;
        Ok(SocketConn {
            frames: FrameReader::new(BufReader::new(stream), MAX_FRAME_BYTES),
            writer,
        })
    }

    fn send(&mut self, line: &str) -> std::io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// One response line, or a transient-failure description.
    fn recv(&mut self) -> std::io::Result<Result<String, String>> {
        Ok(match self.frames.next_frame()? {
            Frame::Line {
                text,
                terminated: true,
            } => Ok(text),
            Frame::Line {
                terminated: false, ..
            } => Err("connection dropped mid-response".to_string()),
            Frame::Oversized { drained } => Err(format!("oversized response ({drained} bytes)")),
            Frame::Eof => Err("server closed the connection before responding".to_string()),
        })
    }
}

enum ClientConn {
    Unix(SocketConn<UnixStream>),
    Tcp(SocketConn<TcpStream>),
}

impl ClientConn {
    fn send(&mut self, line: &str) -> std::io::Result<()> {
        match self {
            ClientConn::Unix(conn) => conn.send(line),
            ClientConn::Tcp(conn) => conn.send(line),
        }
    }
    fn recv(&mut self) -> std::io::Result<Result<String, String>> {
        match self {
            ClientConn::Unix(conn) => conn.recv(),
            ClientConn::Tcp(conn) => conn.recv(),
        }
    }
}

impl Remote {
    fn connect(&self) -> std::io::Result<ClientConn> {
        match self {
            Remote::Unix(path) => Ok(ClientConn::Unix(SocketConn::new(UnixStream::connect(
                path,
            )?)?)),
            Remote::Tcp(addr) => Ok(ClientConn::Tcp(SocketConn::new(TcpStream::connect(
                addr.as_str(),
            )?)?)),
        }
    }
}

/// A protocol client that survives transient transport failures: any
/// connect/write error, dropped connection, or unparsable response
/// frame triggers a reconnect and a bounded, seeded-backoff retry of
/// the same request line. Safe because the protocol is idempotent at
/// the retry grain: resubmitted cells hit the content-addressed cache
/// (charged once), budget grants carry a `txn` token, and every other
/// op is read-only or naturally idempotent.
pub struct ServiceClient {
    remote: Option<Remote>,
    local: Option<Box<SweepServer>>,
    conn: Option<ClientConn>,
    policy: RetryPolicy,
    requests: u64,
}

impl ServiceClient {
    /// Connect lazily to a socket server.
    pub fn remote(remote: Remote, policy: RetryPolicy) -> Self {
        ServiceClient {
            remote: Some(remote),
            local: None,
            conn: None,
            policy,
            requests: 0,
        }
    }

    /// Drive an in-process server (no sockets).
    pub fn local(server: SweepServer, policy: RetryPolicy) -> Self {
        ServiceClient {
            remote: None,
            local: Some(Box::new(server)),
            conn: None,
            policy,
            requests: 0,
        }
    }

    /// Recover the in-process server (e.g. to merge its cache).
    pub fn into_local_server(self) -> Option<SweepServer> {
        self.local.map(|server| *server)
    }

    /// Send one request line and return the parsed response, retrying
    /// transient transport failures per the policy.
    pub fn request(&mut self, line: &str) -> Result<Json, String> {
        let request_idx = self.requests;
        self.requests += 1;
        let attempts = self.policy.attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(self.policy.delay_ms(attempt)));
            }
            match self.try_once(line, request_idx, attempt) {
                Ok(response) => return Ok(response),
                Err(transient) => {
                    // The stream state is unknown after a transport
                    // fault; reconnect on the next attempt.
                    self.conn = None;
                    last = transient;
                }
            }
        }
        Err(format!(
            "request failed after {attempts} attempt(s): {last}"
        ))
    }

    /// Convenience: send a JSON request object.
    pub fn request_json(&mut self, request: &Json) -> Result<Json, String> {
        self.request(&request.render_compact())
    }

    fn try_once(&mut self, line: &str, request_idx: u64, attempt: u32) -> Result<Json, String> {
        let fault_key = (request_idx << 8) | u64::from(attempt);
        if dd_chaos::fires("client.submit_transient", fault_key) {
            return Err("injected transient submit failure".to_string());
        }
        if let Some(server) = self.local.as_mut() {
            // In-process: no transport to fail.
            return Json::parse(&server.handle_line(line))
                .map_err(|e| format!("bad response line: {}", e.message));
        }
        let remote = self.remote.as_ref().ok_or("client has no endpoint")?;
        if self.conn.is_none() {
            self.conn = Some(remote.connect().map_err(|e| format!("connect: {e}"))?);
        }
        let conn = self.conn.as_mut().ok_or("client has no connection")?;
        conn.send(line).map_err(|e| format!("write: {e}"))?;
        let response = conn.recv().map_err(|e| format!("read: {e}"))??;
        // A corrupted frame fails to parse — that is a transport fault
        // (retry), not a server answer.
        Json::parse(&response).map_err(|e| format!("bad response line: {}", e.message))
    }
}

/// Options of `repro submit`.
pub struct SubmitOptions {
    /// Artifact directory (for the in-process server and batch check).
    pub artifacts_dir: PathBuf,
    /// Connect to a `repro serve --socket` server.
    pub socket: Option<PathBuf>,
    /// Connect to a `repro serve --tcp` server. Mutually exclusive with
    /// `socket`; in-process when neither is given.
    pub tcp: Option<String>,
    /// Client name for budget accounting.
    pub client: String,
    /// Grant this many estimated microseconds before submitting.
    pub grant_micros: Option<u64>,
    /// Retry attempts per request (default 5).
    pub retries: Option<u32>,
    /// Seed of the retry backoff jitter.
    pub retry_seed: Option<u64>,
    /// Write the returned cells as a canonical `MatrixReport` document.
    pub out: Option<PathBuf>,
    /// Re-run the same specs through the batch path and require
    /// byte-identical cells.
    pub check_batch: bool,
    /// Quick (smoke) mode — must match the server's.
    pub quick: bool,
    /// Suppress per-cell lines.
    pub quiet: bool,
    /// Cell specs (`defense:attacker:device:load[:priority]`).
    pub specs: Vec<String>,
}

impl SubmitOptions {
    fn policy(&self) -> RetryPolicy {
        let mut policy = RetryPolicy::default();
        if let Some(attempts) = self.retries {
            policy.attempts = attempts.max(1);
        }
        if let Some(seed) = self.retry_seed {
            policy.seed = seed;
        }
        policy
    }
}

/// Submit cell specs, print the per-cell outcomes, and enforce
/// `--out` / `--check-batch`. Any non-`done` cell is an error.
pub fn run_submit(opts: &SubmitOptions) -> Result<(), String> {
    if opts.specs.is_empty() {
        return Err("no cell specs given (defense:attacker:device:load[:priority])".to_string());
    }
    let specs: Vec<CellSpec> = opts
        .specs
        .iter()
        .map(|text| CellSpec::parse_compact(text))
        .collect::<Result<_, _>>()?;

    let policy = opts.policy();
    let mut client = match (&opts.socket, &opts.tcp) {
        (Some(_), Some(_)) => {
            return Err("--socket and --tcp are mutually exclusive".to_string());
        }
        (Some(path), None) => ServiceClient::remote(Remote::Unix(path.clone()), policy),
        (None, Some(addr)) => ServiceClient::remote(Remote::Tcp(addr.clone()), policy),
        (None, None) => ServiceClient::local(
            build_server(&ServeOptions {
                artifacts_dir: opts.artifacts_dir.clone(),
                socket: None,
                tcp: None,
                read_timeout_ms: None,
                jobs: None,
                capacity_micros: None,
                grant_micros: None,
                quick: opts.quick,
            }),
            policy,
        ),
    };

    if let Some(grant) = opts.grant_micros {
        // The txn token makes a retried grant (response lost to a
        // transport fault) apply exactly once.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let txn = format!("{}-{}-{:x}", opts.client, std::process::id(), nanos);
        let budget = Json::obj()
            .with("op", Json::str("budget"))
            .with("client", Json::str(opts.client.clone()))
            .with("grant_micros", Json::uint(grant))
            .with("txn", Json::str(txn));
        let response = client.request_json(&budget)?;
        expect_ok(&response)?;
    }

    let request = Json::obj()
        .with("op", Json::str("submit"))
        .with("client", Json::str(opts.client.clone()))
        .with("quick", Json::Bool(opts.quick))
        .with(
            "cells",
            Json::Arr(specs.iter().map(CellSpec::to_json).collect()),
        );
    let response = client.request_json(&request)?;
    expect_ok(&response)?;

    let regime = response.field_str("regime").unwrap_or("?").to_string();
    let results = response
        .field_arr("results")
        .map_err(|e| e.message.clone())?;
    let mut cells: Vec<CellReport> = Vec::new();
    let mut failures = 0usize;
    for (spec, result) in specs.iter().zip(results) {
        let status = result.field_str("status").unwrap_or("?").to_string();
        if !opts.quiet {
            let detail = match status.as_str() {
                "done" => format!(
                    "cache_hit={} estimate={}us wall={}us",
                    result.field_bool("cache_hit").unwrap_or(false),
                    result.field_u64("estimate_micros").unwrap_or(0),
                    result.field_u64("wall_micros").unwrap_or(0),
                ),
                "rejected" | "shed" => format!(
                    "reason={} estimate={}us",
                    result.field_str("reason").unwrap_or("?"),
                    result.field_u64("estimate_micros").unwrap_or(0),
                ),
                _ => result.field_str("reason").unwrap_or("?").to_string(),
            };
            println!("repro submit: [{status}] {} ({detail})", spec.label());
        }
        if status == "done" {
            let cell = result
                .field("cell")
                .and_then(CellReport::from_json)
                .map_err(|e| format!("bad cell in response: {}", e.message))?;
            cells.push(cell);
        } else {
            failures += 1;
        }
    }
    if !opts.quiet {
        println!(
            "repro submit: {} done / {} other, regime {regime}",
            cells.len(),
            failures
        );
    }

    let report = MatrixReport { cells };
    if let Some(out) = &opts.out {
        if let Some(parent) = out.parent() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir: {e}"))?;
        }
        std::fs::write(out, report.to_json().render_pretty())
            .map_err(|e| format!("write {}: {e}", out.display()))?;
        if !opts.quiet {
            println!("repro submit: wrote {}", out.display());
        }
    }

    if opts.check_batch {
        if failures > 0 {
            return Err("cannot --check-batch: not every cell completed".to_string());
        }
        let batch = batch_report(&specs, opts.quick)?;
        let server_bytes = report.to_json().render_pretty();
        let batch_bytes = batch.to_json().render_pretty();
        if server_bytes != batch_bytes {
            return Err(
                "server and batch paths disagree: returned cells are not byte-identical"
                    .to_string(),
            );
        }
        println!(
            "repro submit: server cells byte-identical to the batch path ({} cells, {} bytes)",
            specs.len(),
            server_bytes.len()
        );
    }

    if failures > 0 {
        return Err(format!("{failures} cell(s) did not complete"));
    }
    Ok(())
}

/// The batch path for the same specs: a fresh [`ScenarioMatrix`] run per
/// cell (no server, no cache) under the shared [`SweepBase`] constants.
///
/// [`ScenarioMatrix`]: dd_baselines::ScenarioMatrix
pub fn batch_report(specs: &[CellSpec], quick: bool) -> Result<MatrixReport, String> {
    let base = SweepBase::standard(quick);
    let mut cells = Vec::with_capacity(specs.len());
    for spec in specs {
        let report = base
            .matrix_for(spec)
            .run()
            .map_err(|e| format!("batch run of `{}` failed: {e:?}", spec.label()))?;
        cells.extend(report.cells);
    }
    Ok(MatrixReport { cells })
}

fn parse_response(line: &str) -> Result<Json, String> {
    Json::parse(line).map_err(|e| format!("bad response line: {}", e.message))
}

fn expect_ok(response: &Json) -> Result<(), String> {
    if response.field_bool("ok") == Ok(true) {
        return Ok(());
    }
    Err(response
        .field_str("error")
        .map(str::to_string)
        .unwrap_or_else(|_| "server error".to_string()))
}

/// Shared in-process round trip used by tests and the `server`
/// experiment: submit `specs` for `client` against `server`, returning
/// the parsed response.
pub fn submit_specs(
    server: &mut SweepServer,
    client: &str,
    specs: &[CellSpec],
    quick: bool,
) -> Result<Json, String> {
    let request = Json::obj()
        .with("op", Json::str("submit"))
        .with("client", Json::str(client))
        .with("quick", Json::Bool(quick))
        .with(
            "cells",
            Json::Arr(specs.iter().map(CellSpec::to_json).collect()),
        );
    let response = parse_response(&server.handle_line(&request.render_compact()))?;
    expect_ok(&response)?;
    Ok(response)
}

/// Decode the `done` cells of a submit response in request order,
/// erroring on any other status.
pub fn response_cells(response: &Json) -> Result<Vec<CellReport>, String> {
    let results = response
        .field_arr("results")
        .map_err(|e| e.message.clone())?;
    results
        .iter()
        .map(|result| {
            let status = result.field_str("status").unwrap_or("?");
            if status != "done" {
                return Err(format!("cell not done: status {status}"));
            }
            result
                .field("cell")
                .and_then(CellReport::from_json)
                .map_err(|e| e.message.clone())
        })
        .collect()
}

/// Merge a server's computed cells into a batch-side cell cache (used by
/// the `server` experiment to share cells with `repro workload`).
pub fn merge_server_cache(server: SweepServer, cells: &mut HashMap<u64, CellReport>) {
    for (key, cell) in server.into_cache() {
        cells.insert(key, cell);
    }
}
