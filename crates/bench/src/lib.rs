//! # dd-bench — the experiment harness
//!
//! Home of the `repro` artifact pipeline: [`experiments`] implements
//! every figure/table of the paper's evaluation once, [`report`] defines
//! the versioned artifact schema and the EXPERIMENTS.md renderer, and
//! the `repro` binary ties them together with content-hash caching (see
//! `docs/artifacts.md`). The per-figure binaries (`fig1a`, `fig1b`,
//! `table2`, `fig8a`, `fig8b`, `fig9`, `table3`, `power`) are thin
//! wrappers over [`experiments::run_standalone`]; the Criterion benches
//! live under `benches/`. See EXPERIMENTS.md for the paper-vs-measured
//! record.
//!
//! Set `DD_QUICK=1` (or pass `--smoke` to `repro`) to shrink every
//! experiment (fewer training epochs, smaller attack budgets) for smoke
//! runs.

use dd_attack::AttackData;
use dd_nn::data::{Dataset, SyntheticSpec};
use dd_nn::init::seeded_rng;
use dd_nn::train::{train, TrainConfig};
use dd_qnn::{build_model, Architecture, ModelConfig, QModel};

pub mod cache;
pub mod chaos;
pub mod corpus;
pub mod experiments;
pub mod kernel;
pub mod report;
pub mod serve;
pub mod trace;

/// Whether quick (smoke-test) mode is active.
pub fn quick_mode() -> bool {
    std::env::var("DD_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// Which synthetic dataset a victim trains on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// 10-class CIFAR-10 stand-in.
    Cifar10,
    /// 20-class ImageNet stand-in.
    ImageNet,
}

impl DatasetKind {
    /// Spec for the dataset.
    pub fn spec(self) -> SyntheticSpec {
        match self {
            DatasetKind::Cifar10 => SyntheticSpec::cifar10_like(),
            DatasetKind::ImageNet => SyntheticSpec::imagenet_like(),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Cifar10 => "CIFAR-10 (synthetic)",
            DatasetKind::ImageNet => "ImageNet (synthetic)",
        }
    }

    /// Random-guess accuracy.
    pub fn chance(self) -> f32 {
        self.spec().chance_level()
    }
}

/// A trained, quantized victim ready to attack.
pub struct Victim {
    /// The quantized model.
    pub model: QModel,
    /// Attacker's batches (search + eval).
    pub data: AttackData,
    /// The full dataset (for larger evaluations).
    pub dataset: Dataset,
    /// Clean test accuracy after quantization.
    pub clean_accuracy: f32,
    /// Architecture used.
    pub arch: Architecture,
    /// Dataset used.
    pub dataset_kind: DatasetKind,
}

/// Train and quantize a victim model.
///
/// `base_width` controls the channel scaling (see DESIGN.md); the
/// experiment binaries use 4 to keep full paper sweeps tractable on CPU.
/// `quick` selects the smoke-sized schedule — pass the same flag that
/// keyed the experiment's config hash (a [`quick_mode`] mismatch here
/// would mis-label cached artifacts).
pub fn prepare_victim(
    arch: Architecture,
    dataset_kind: DatasetKind,
    base_width: usize,
    seed: u64,
    quick: bool,
) -> Victim {
    let mut rng = seeded_rng(seed);
    let spec = dataset_kind.spec();
    let dataset = Dataset::generate(spec, &mut rng);
    let config = ModelConfig {
        arch,
        in_channels: spec.channels,
        image_side: spec.height,
        classes: spec.classes,
        base_width,
    };
    // Two-phase schedule (main + lr/5 fine-tune). Deep residual victims
    // are occasionally seed-sensitive at this scale, so keep the best of
    // up to three attempts.
    let epochs = if quick { 5 } else { 14 };
    let tc = TrainConfig {
        epochs,
        batch_size: 64,
        lr: 0.03,
        momentum: 0.9,
        weight_decay: 1e-4,
    };
    let ft = TrainConfig {
        epochs: if quick { 2 } else { 6 },
        lr: tc.lr / 5.0,
        ..tc
    };
    let mut best: Option<(dd_nn::Network, f32)> = None;
    for attempt in 0..3 {
        let mut attempt_rng = seeded_rng(seed ^ (attempt as u64) << 32);
        let mut net = build_model(&config, &mut attempt_rng);
        train(&mut net, &dataset, tc, &mut attempt_rng);
        let report = train(&mut net, &dataset, ft, &mut attempt_rng);
        let acc = report.test_accuracy;
        let good_enough = acc > 0.85;
        if best.as_ref().is_none_or(|(_, b)| acc > *b) {
            best = Some((net, acc));
        }
        if good_enough {
            break;
        }
    }
    let (net, _) = best.expect("at least one training attempt");
    let mut model = QModel::from_network(net);

    let batch_size = if quick { 32 } else { 64 };
    let search = dataset.attack_batch(batch_size, &mut rng);
    let eval = dataset.attack_batch(128.min(dataset.test.len()), &mut rng);
    let data = AttackData {
        search_images: search.images,
        search_labels: search.labels,
        eval_images: eval.images,
        eval_labels: eval.labels,
    };
    // Report quantized accuracy on the eval batch for consistency with
    // the attack trajectories.
    let clean_accuracy = model.accuracy(&data.eval_images, &data.eval_labels);
    Victim {
        model,
        data,
        dataset,
        clean_accuracy,
        arch,
        dataset_kind,
    }
}

/// Print a fixed-width ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let line = |sep: &str| {
        let parts: Vec<String> = widths.iter().map(|w| sep.repeat(w + 2)).collect();
        format!("+{}+", parts.join("+"))
    };
    println!("{}", line("-"));
    let hdr: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!(" {h:<w$} "))
        .collect();
    println!("|{}|", hdr.join("|"));
    println!("{}", line("="));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect();
        println!("|{}|", cells.join("|"));
    }
    println!("{}", line("-"));
}

/// Format an accuracy as a percentage.
pub fn pct(x: f32) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_kind_metadata() {
        assert_eq!(DatasetKind::Cifar10.chance(), 0.1);
        assert_eq!(DatasetKind::ImageNet.chance(), 0.05);
        assert!(DatasetKind::ImageNet.name().contains("ImageNet"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9171), "91.71%");
    }

    #[test]
    fn quick_victim_trains_above_chance() {
        let v = prepare_victim(Architecture::Mlp, DatasetKind::Cifar10, 4, 11, true);
        assert!(v.clean_accuracy > 2.0 * DatasetKind::Cifar10.chance());
    }
}
