//! The artifact format and the docs renderer of the `repro` pipeline.
//!
//! Every experiment run writes one [`Artifact`] — a versioned,
//! machine-readable record of what was configured (content hash, seed,
//! quick/full mode) and what was measured (the tables, plus an optional
//! experiment-specific raw payload such as the full
//! [`dd_baselines::MatrixReport`]) — to `artifacts/<experiment>.json`
//! and a flat `artifacts/<experiment>.csv`. `repro report` then renders
//! those artifacts into markdown and splices them into the generated
//! sections of EXPERIMENTS.md between `<!-- repro:begin <experiment> -->`
//! / `<!-- repro:end <experiment> -->` markers, so the documented numbers
//! are always exactly what the code produced.
//!
//! The schema is documented in `docs/artifacts.md`; bump
//! [`ARTIFACT_SCHEMA_VERSION`] on any incompatible change (old artifacts
//! are then recomputed rather than misread).

use std::fmt::Write as _;

use dd_baselines::MatrixRunSummary;
use dnn_defender::{Json, JsonError};

/// Version stamp written into every artifact.
pub const ARTIFACT_SCHEMA_VERSION: u64 = 1;

/// One named table of an artifact: string cells, already formatted the
/// way the figure/table should display them (percentages, day counts, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableArtifact {
    /// Table title.
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells; every row has `headers.len()` entries.
    pub rows: Vec<Vec<String>>,
}

impl TableArtifact {
    /// Build from headers and rows.
    pub fn new(name: impl Into<String>, headers: &[&str], rows: Vec<Vec<String>>) -> Self {
        TableArtifact {
            name: name.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows,
        }
    }

    fn to_json(&self) -> Json {
        Json::obj()
            .with("name", Json::str(&self.name))
            .with(
                "headers",
                Json::Arr(self.headers.iter().map(Json::str).collect()),
            )
            .with(
                "rows",
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(Json::str).collect()))
                        .collect(),
                ),
            )
    }

    fn from_json(value: &Json) -> Result<TableArtifact, JsonError> {
        Ok(TableArtifact {
            name: value.field_str("name")?.to_string(),
            headers: string_array(value.field_arr("headers")?, "`headers`")?,
            rows: value
                .field_arr("rows")?
                .iter()
                .map(|row| {
                    string_array(
                        row.as_arr().ok_or(JsonError {
                            message: "`rows` entry is not an array".into(),
                        })?,
                        "`rows`",
                    )
                })
                .collect::<Result<_, _>>()?,
        })
    }
}

/// Decode an array of strings (table headers, rows, notes).
fn string_array(items: &[Json], what: &str) -> Result<Vec<String>, JsonError> {
    items
        .iter()
        .map(|s| {
            s.as_str().map(str::to_string).ok_or(JsonError {
                message: format!("{what} entry is not a string"),
            })
        })
        .collect()
}

/// A versioned, machine-readable record of one experiment run.
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Schema version ([`ARTIFACT_SCHEMA_VERSION`] at write time).
    pub schema_version: u64,
    /// Experiment id (`"table3"`, `"fig8a"`, …) — also the file stem.
    pub experiment: String,
    /// Human title of the figure/table.
    pub title: String,
    /// Content hash of everything that determines the results (see
    /// `dnn_defender::stablehash`). Reruns with an unchanged hash can
    /// reuse the artifact wholesale.
    pub config_hash: u64,
    /// Base seed of the experiment (0 when purely analytical).
    pub seed: u64,
    /// Whether quick (smoke) mode produced these numbers.
    pub quick: bool,
    /// Wall-clock time of the producing run, in milliseconds.
    pub wall_millis: u64,
    /// Scenario-matrix cell cache tally (`cells == 0` for experiments
    /// that don't run a matrix).
    pub cache: MatrixRunSummary,
    /// The rendered tables, in display order.
    pub tables: Vec<TableArtifact>,
    /// Free-form shape-check notes printed after the tables.
    pub notes: Vec<String>,
    /// Experiment-specific structured payload (e.g. the full
    /// `MatrixReport`), when one exists.
    pub raw: Option<Json>,
}

impl Artifact {
    /// Serialize to the on-disk JSON tree.
    pub fn to_json(&self) -> Json {
        let mut json = Json::obj()
            .with("schema_version", Json::uint(self.schema_version))
            .with("experiment", Json::str(&self.experiment))
            .with("title", Json::str(&self.title))
            .with("config_hash", Json::hex(self.config_hash))
            .with("seed", Json::hex(self.seed))
            .with("quick", Json::Bool(self.quick))
            .with("wall_millis", Json::uint(self.wall_millis))
            .with(
                "cache",
                Json::obj()
                    .with("cells", Json::uint(self.cache.cells as u64))
                    .with("hits", Json::uint(self.cache.cache_hits as u64)),
            )
            .with(
                "tables",
                Json::Arr(self.tables.iter().map(TableArtifact::to_json).collect()),
            )
            .with(
                "notes",
                Json::Arr(self.notes.iter().map(Json::str).collect()),
            );
        if let Some(raw) = &self.raw {
            json = json.with("raw", raw.clone());
        }
        json
    }

    /// Deserialize from the on-disk JSON tree.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on missing/mistyped fields or an
    /// unsupported schema version.
    pub fn from_json(value: &Json) -> Result<Artifact, JsonError> {
        let schema_version = value.field_u64("schema_version")?;
        if schema_version != ARTIFACT_SCHEMA_VERSION {
            return Err(JsonError {
                message: format!(
                    "unsupported artifact schema v{schema_version} (expected v{ARTIFACT_SCHEMA_VERSION})"
                ),
            });
        }
        let cache = value.field("cache")?;
        Ok(Artifact {
            schema_version,
            experiment: value.field_str("experiment")?.to_string(),
            title: value.field_str("title")?.to_string(),
            config_hash: value.field_hex_u64("config_hash")?,
            seed: value.field_hex_u64("seed")?,
            quick: value.field_bool("quick")?,
            wall_millis: value.field_u64("wall_millis")?,
            cache: MatrixRunSummary {
                cells: cache.field_u64("cells")? as usize,
                cache_hits: cache.field_u64("hits")? as usize,
            },
            tables: value
                .field_arr("tables")?
                .iter()
                .map(TableArtifact::from_json)
                .collect::<Result<_, _>>()?,
            notes: string_array(value.field_arr("notes")?, "`notes`")?,
            raw: value.get("raw").cloned(),
        })
    }

    /// Parse an artifact from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON or schema mismatch.
    pub fn parse(text: &str) -> Result<Artifact, JsonError> {
        Artifact::from_json(&Json::parse(text)?)
    }

    /// The flat CSV rendering: one block per table (`# <name>` line,
    /// header row, data rows), blank-line separated.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (i, table) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            let _ = writeln!(out, "# {}", table.name);
            let _ = writeln!(out, "{}", csv_row(&table.headers));
            for row in &table.rows {
                let _ = writeln!(out, "{}", csv_row(row));
            }
        }
        out
    }

    /// Render the generated-docs section body (the content that lives
    /// between this experiment's markers in EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        for table in &self.tables {
            let _ = writeln!(out, "**{}**\n", table.name);
            let _ = writeln!(out, "|{}|", md_row(&table.headers));
            let _ = writeln!(
                out,
                "|{}|",
                table
                    .headers
                    .iter()
                    .map(|_| " --- ")
                    .collect::<Vec<_>>()
                    .join("|")
            );
            for row in &table.rows {
                let _ = writeln!(out, "|{}|", md_row(row));
            }
            out.push('\n');
        }
        for note in &self.notes {
            let _ = writeln!(out, "{note}\n");
        }
        let mode = if self.quick {
            "quick (smoke) mode"
        } else {
            "full mode"
        };
        let mut footer = format!(
            "<sub>`{}` artifact v{} · config `{:#018x}` · seed {} · {} · {}",
            self.experiment,
            self.schema_version,
            self.config_hash,
            self.seed,
            mode,
            render_duration(self.wall_millis),
        );
        if self.cache.cells > 0 {
            let _ = write!(
                footer,
                " · cache {}/{} cells",
                self.cache.cache_hits, self.cache.cells
            );
        }
        footer.push_str("</sub>");
        let _ = writeln!(out, "{footer}");
        out
    }
}

/// Human duration from milliseconds (stable: derived only from the
/// artifact, so re-rendering cannot drift).
pub fn render_duration(millis: u64) -> String {
    if millis < 100 {
        format!("{millis} ms")
    } else {
        format!("{:.1} s", millis as f64 / 1000.0)
    }
}

fn csv_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| csv_escape(c))
        .collect::<Vec<_>>()
        .join(",")
}

/// Quote a CSV field when it contains a delimiter, quote, or newline.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

fn md_row(cells: &[String]) -> String {
    cells
        .iter()
        .map(|c| format!(" {} ", c.replace('|', "\\|")))
        .collect::<Vec<_>>()
        .join("|")
}

/// The opening marker of an experiment's generated section.
pub fn begin_marker(experiment: &str) -> String {
    format!("<!-- repro:begin {experiment} -->")
}

/// The closing marker of an experiment's generated section.
pub fn end_marker(experiment: &str) -> String {
    format!("<!-- repro:end {experiment} -->")
}

/// Why a docs splice failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpliceError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for SpliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "splice error: {}", self.message)
    }
}

impl std::error::Error for SpliceError {}

/// Replace the content between an experiment's markers with `body`
/// (markers stay; `body` is bracketed by exactly one newline on each
/// side). The document must contain the begin marker before the end
/// marker, exactly once each.
///
/// # Errors
///
/// Returns a [`SpliceError`] when either marker is missing, duplicated,
/// or out of order.
pub fn splice_section(doc: &str, experiment: &str, body: &str) -> Result<String, SpliceError> {
    let begin = begin_marker(experiment);
    let end = end_marker(experiment);
    let find_once = |needle: &str| -> Result<usize, SpliceError> {
        let mut hits = doc.match_indices(needle).map(|(i, _)| i);
        let first = hits.next().ok_or(SpliceError {
            message: format!("missing `{needle}`"),
        })?;
        if hits.next().is_some() {
            return Err(SpliceError {
                message: format!("duplicated `{needle}`"),
            });
        }
        Ok(first)
    };
    let begin_at = find_once(&begin)?;
    let end_at = find_once(&end)?;
    if end_at < begin_at {
        return Err(SpliceError {
            message: format!("`{end}` precedes `{begin}`"),
        });
    }
    let mut out = String::with_capacity(doc.len() + body.len());
    out.push_str(&doc[..begin_at + begin.len()]);
    out.push('\n');
    out.push_str(body.trim_end_matches('\n'));
    out.push('\n');
    out.push_str(&doc[end_at..]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        Artifact {
            schema_version: ARTIFACT_SCHEMA_VERSION,
            experiment: "table3".into(),
            title: "Table 3".into(),
            config_hash: 0xabcd_ef01_2345_6789,
            seed: 333,
            quick: true,
            wall_millis: 2345,
            cache: MatrixRunSummary {
                cells: 9,
                cache_hits: 4,
            },
            tables: vec![TableArtifact::new(
                "Table 3: defense comparison",
                &["Defense", "Clean acc"],
                vec![
                    vec!["Baseline (undefended)".into(), "91.41%".into()],
                    vec!["DNN-Defender".into(), "91.41%".into()],
                ],
            )],
            notes: vec!["Shape check: baseline collapses.".into()],
            raw: Some(Json::obj().with("cells", Json::Arr(vec![]))),
        }
    }

    #[test]
    fn artifact_json_round_trips() {
        let artifact = sample();
        let text = artifact.to_json().render_pretty();
        assert_eq!(Artifact::parse(&text).expect("parse"), artifact);
    }

    #[test]
    fn schema_version_is_enforced() {
        let mut json = sample().to_json();
        if let Json::Obj(fields) = &mut json {
            fields[0].1 = Json::uint(ARTIFACT_SCHEMA_VERSION + 1);
        }
        let err = Artifact::from_json(&json).unwrap_err();
        assert!(err.message.contains("unsupported artifact schema"));
    }

    #[test]
    fn csv_quotes_only_when_needed() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        let csv = sample().to_csv();
        assert!(csv.starts_with("# Table 3: defense comparison\n"));
        assert!(csv.contains("Defense,Clean acc\n"));
    }

    #[test]
    fn splice_replaces_only_the_marked_region() {
        let doc = "intro\n<!-- repro:begin t -->\nstale\n<!-- repro:end t -->\noutro\n";
        let out = splice_section(doc, "t", "fresh\n").expect("splice");
        assert_eq!(
            out,
            "intro\n<!-- repro:begin t -->\nfresh\n<!-- repro:end t -->\noutro\n"
        );
        // Idempotent: splicing the same body is a fixed point.
        assert_eq!(splice_section(&out, "t", "fresh\n").unwrap(), out);
        assert!(splice_section(doc, "missing", "x").is_err());
        let reversed = "<!-- repro:end t -->\n<!-- repro:begin t -->";
        assert!(splice_section(reversed, "t", "x").is_err());
    }
}
