//! The `repro corpus` campaign: the fleet-scale diurnal corpus sweep.
//!
//! Drives one compressed fleet day — the six-phase
//! [`DiurnalProfile::fleet_day`] (overnight scans, a morning load ramp,
//! a multi-tenant midday peak with tenant churn, an afternoon hot-key
//! shift, an evening drain) — through the workload engine for **every
//! defense in the roster**, with the serving model's rows secured, and
//! records what each mechanism did under a day of benign traffic into
//! `artifacts/CORPUS_report.json`:
//!
//! * the per-defense sweep rows (benign ops, false defensive operations,
//!   online-tap activity, benign-row disturbance, device commands);
//! * the trace-plane numbers for the same corpus sample — v1 vs v2
//!   encoded size, delta-chunk compression ratio, chunk count;
//! * the asserted invariants, chief among them that **streaming replay
//!   is bit-identical to materialized replay for every defense**: the
//!   same v2 container drives each mechanism twice, once through
//!   `TraceReplay` (fully decoded) and once through `StreamingReplay`
//!   (one chunk in memory), and `DefenseStats` + `MemStats` must match
//!   exactly.
//!
//! Everything is seeded and simulated, so the report is deterministic:
//! the same numbers on every machine, which is what lets the rendered
//! section live in EXPERIMENTS.md under `repro report --check`. Like
//! the chaos campaign, invariant failures are *recorded* (and fail the
//! `repro corpus` exit code) rather than panicking mid-campaign.

use std::collections::HashSet;
use std::io::Cursor;

use dd_baselines::DefenseKind;
use dd_dram::{DramConfig, MemStats, MemoryController, TraceMode};
use dd_workload::{
    decode_any, encode, encode_v2, run_workload, BenignTraffic, DiurnalProfile, DriverConfig,
    StreamingReplay, StreamingTraceReader, WorkloadOp,
};
use dnn_defender::defense::DefenseStats;
use dnn_defender::{Json, JsonError, WeightMap};

use crate::chaos::Invariant;
use crate::experiments::{serving_model, workload_bits};

/// Schema version of `CORPUS_report.json`.
pub const CORPUS_REPORT_SCHEMA_VERSION: u64 = 1;

/// The corpus seed: pins the diurnal profile, every stream permutation,
/// and each defense's internal randomness (mixed with its label).
pub const CORPUS_SEED: u64 = 0x0dac_2024;

/// Secured bits for the corpus runs (matches the workload experiment's
/// full sizing).
const CORPUS_SECURED_BITS: usize = 96;

/// One phase of the swept day, as run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Phase label (e.g. `"midday-peak"`).
    pub name: String,
    /// Benign ops per driver window in this phase.
    pub ops_per_window: u64,
    /// Driver windows actually run (after smoke scaling).
    pub windows: u64,
}

/// One defense's day: the diurnal sweep totals plus the streaming
/// bit-identity verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefenseRow {
    /// Defense label ([`DefenseKind::label`]).
    pub defense: String,
    /// Benign ops executed across the day.
    pub benign_ops: u64,
    /// Defensive operations fired under benign-only traffic — false
    /// positives by construction, summed across phases.
    pub false_defense_ops: u64,
    /// Distinct benign rows whose disturbance reached half the RowHammer
    /// threshold, summed across phases.
    pub disturbed_rows: u64,
    /// Peak disturbance on any non-attacked benign row, across the day.
    pub peak_benign_disturbance: u64,
    /// Total DRAM commands the device saw across the day.
    pub commands: u64,
    /// Whether streaming replay reproduced the materialized replay's
    /// `DefenseStats`/`MemStats` bit-for-bit for this defense.
    pub streaming_identical: bool,
}

/// The corpus sample's trace-plane numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Records in the sample.
    pub records: u64,
    /// v1 (monolithic) encoded size in bytes.
    pub v1_bytes: u64,
    /// v2 (chunked, delta) encoded size in bytes.
    pub v2_bytes: u64,
    /// Chunks in the v2 container.
    pub chunks: u64,
}

/// The `CORPUS_report.json` payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusReport {
    /// Schema version ([`CORPUS_REPORT_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Always `"corpus"`.
    pub experiment: String,
    /// Whether the campaign ran at smoke sizing.
    pub smoke: bool,
    /// The campaign seed.
    pub seed: u64,
    /// The diurnal profile label.
    pub profile: String,
    /// The phases, in diurnal order, as run.
    pub phases: Vec<PhaseSummary>,
    /// One row per defense, in roster order.
    pub defenses: Vec<DefenseRow>,
    /// The corpus sample's trace numbers.
    pub trace: TraceStats,
    /// The asserted invariants, in assertion order.
    pub invariants: Vec<Invariant>,
}

impl CorpusReport {
    /// True when every asserted invariant held.
    pub fn all_pass(&self) -> bool {
        self.failed_invariants().is_empty()
    }

    /// Names of the invariants that failed.
    pub fn failed_invariants(&self) -> Vec<String> {
        self.invariants
            .iter()
            .filter(|i| !i.pass)
            .map(|i| i.name.clone())
            .collect()
    }

    /// Serialize.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema_version", Json::uint(self.schema_version))
            .with("experiment", Json::str(&self.experiment))
            .with("smoke", Json::Bool(self.smoke))
            .with("seed", Json::uint(self.seed))
            .with("profile", Json::str(&self.profile))
            .with(
                "phases",
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj()
                                .with("name", Json::str(&p.name))
                                .with("ops_per_window", Json::uint(p.ops_per_window))
                                .with("windows", Json::uint(p.windows))
                        })
                        .collect(),
                ),
            )
            .with(
                "defenses",
                Json::Arr(
                    self.defenses
                        .iter()
                        .map(|d| {
                            Json::obj()
                                .with("defense", Json::str(&d.defense))
                                .with("benign_ops", Json::uint(d.benign_ops))
                                .with("false_defense_ops", Json::uint(d.false_defense_ops))
                                .with("disturbed_rows", Json::uint(d.disturbed_rows))
                                .with(
                                    "peak_benign_disturbance",
                                    Json::uint(d.peak_benign_disturbance),
                                )
                                .with("commands", Json::uint(d.commands))
                                .with("streaming_identical", Json::Bool(d.streaming_identical))
                        })
                        .collect(),
                ),
            )
            .with(
                "trace",
                Json::obj()
                    .with("records", Json::uint(self.trace.records))
                    .with("v1_bytes", Json::uint(self.trace.v1_bytes))
                    .with("v2_bytes", Json::uint(self.trace.v2_bytes))
                    .with("chunks", Json::uint(self.trace.chunks)),
            )
            .with(
                "invariants",
                Json::Arr(
                    self.invariants
                        .iter()
                        .map(|i| {
                            Json::obj()
                                .with("name", Json::str(&i.name))
                                .with("pass", Json::Bool(i.pass))
                        })
                        .collect(),
                ),
            )
    }

    /// Parse a `CORPUS_report.json` document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON, a missing/mistyped
    /// field, or an unsupported schema version.
    pub fn parse(text: &str) -> Result<CorpusReport, JsonError> {
        let json = Json::parse(text)?;
        let schema_version = json.field_u64("schema_version")?;
        if schema_version != CORPUS_REPORT_SCHEMA_VERSION {
            return Err(JsonError {
                message: format!(
                    "unsupported CORPUS_report schema v{schema_version} \
                     (this build reads v{CORPUS_REPORT_SCHEMA_VERSION})"
                ),
            });
        }
        let phases = json
            .field_arr("phases")?
            .iter()
            .map(|p| {
                Ok(PhaseSummary {
                    name: p.field_str("name")?.to_string(),
                    ops_per_window: p.field_u64("ops_per_window")?,
                    windows: p.field_u64("windows")?,
                })
            })
            .collect::<Result<_, JsonError>>()?;
        let defenses = json
            .field_arr("defenses")?
            .iter()
            .map(|d| {
                Ok(DefenseRow {
                    defense: d.field_str("defense")?.to_string(),
                    benign_ops: d.field_u64("benign_ops")?,
                    false_defense_ops: d.field_u64("false_defense_ops")?,
                    disturbed_rows: d.field_u64("disturbed_rows")?,
                    peak_benign_disturbance: d.field_u64("peak_benign_disturbance")?,
                    commands: d.field_u64("commands")?,
                    streaming_identical: d.field_bool("streaming_identical")?,
                })
            })
            .collect::<Result<_, JsonError>>()?;
        let trace = json
            .get("trace")
            .ok_or_else(|| JsonError {
                message: "missing field `trace`".to_string(),
            })
            .and_then(|t| {
                Ok(TraceStats {
                    records: t.field_u64("records")?,
                    v1_bytes: t.field_u64("v1_bytes")?,
                    v2_bytes: t.field_u64("v2_bytes")?,
                    chunks: t.field_u64("chunks")?,
                })
            })?;
        let invariants = json
            .field_arr("invariants")?
            .iter()
            .map(|i| {
                Ok(Invariant {
                    name: i.field_str("name")?.to_string(),
                    pass: i.field_bool("pass")?,
                })
            })
            .collect::<Result<_, JsonError>>()?;
        Ok(CorpusReport {
            schema_version,
            experiment: json.field_str("experiment")?.to_string(),
            smoke: json.field_bool("smoke")?,
            seed: json.field_u64("seed")?,
            profile: json.field_str("profile")?.to_string(),
            phases,
            defenses,
            trace,
            invariants,
        })
    }

    /// The EXPERIMENTS.md section. Every rendered number is a
    /// deterministic simulated quantity (no wall times), so the splice
    /// is machine-independent.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let windows: u64 = self.phases.iter().map(|p| p.windows).sum();
        out.push_str(&format!(
            "Fleet-scale corpus sweep (`repro corpus`), seed `{:#x}`: the `{}` diurnal \
             profile — {} phases, {} refresh windows per defense — drives every defense \
             in the roster through one compressed fleet day of benign traffic (load \
             ramp, tenant churn, hot-key shift), with the serving model's rows secured. \
             The same corpus sample then replays through the v2 streaming path, and \
             each defense's `DefenseStats`/`MemStats` must be bit-identical to the \
             materialized replay.\n\n",
            self.seed,
            self.profile,
            self.phases.len(),
            windows,
        ));
        out.push_str("| Defense | Benign ops | False defense ops | Disturbed rows | Peak disturbance | Commands | Streaming replay |\n");
        out.push_str("|---|---|---|---|---|---|---|\n");
        for d in &self.defenses {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} |\n",
                d.defense,
                d.benign_ops,
                d.false_defense_ops,
                d.disturbed_rows,
                d.peak_benign_disturbance,
                d.commands,
                if d.streaming_identical {
                    "bit-identical"
                } else {
                    "DIVERGED"
                },
            ));
        }
        let ratio = if self.trace.v1_bytes == 0 {
            0.0
        } else {
            100.0 * self.trace.v2_bytes as f64 / self.trace.v1_bytes as f64
        };
        out.push_str(&format!(
            "\nCorpus sample: {} records; v1 {} bytes \u{2192} v2 {} bytes ({:.0}% of v1, \
             delta chunks) across {} seekable chunks of \u{2264} 512 ops.\n",
            self.trace.records, self.trace.v1_bytes, self.trace.v2_bytes, ratio, self.trace.chunks,
        ));
        out.push_str(&format!(
            "Campaign verdict: {}.\n",
            if self.all_pass() {
                "every invariant held across the defense roster".to_string()
            } else {
                format!(
                    "INVARIANT FAILURES ({}) — see CORPUS_report.json",
                    self.failed_invariants().join(", ")
                )
            },
        ));
        out
    }
}

/// The per-defense seed: the campaign seed FNV-mixed with the defense
/// label, so mechanisms draw independent streams but reproduce exactly.
fn defense_seed(kind: DefenseKind) -> u64 {
    let mut seed = CORPUS_SEED ^ 0x00d3_f227;
    for b in kind.label().bytes() {
        seed = (seed ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
    seed
}

/// One replay run for the bit-identity check: fresh device, fresh
/// defense, secured model rows — same construction both times, only the
/// traffic source differs.
fn replay_run(
    kind: DefenseKind,
    traffic: &mut BenignTraffic,
    windows: u64,
) -> Result<(u64, u64, u64, MemStats, DefenseStats), dd_dram::DramError> {
    let config = DramConfig::lpddr4_small();
    let mut mem = MemoryController::try_new(config.clone())?;
    mem.set_trace_mode(TraceMode::CountersOnly);
    let model = serving_model(CORPUS_SEED);
    let mut map = WeightMap::layout(&model, &config);
    let mut defense = kind.build(defense_seed(kind), &config);
    let bits = workload_bits(&model, CORPUS_SECURED_BITS);
    defense.secure_bits(&bits, Some(&map));
    let report = run_workload(
        &mut mem,
        &mut *defense,
        Some(&mut map),
        traffic,
        &bits,
        &DriverConfig {
            benign_windows: windows,
            attack_windows: 0,
            record: false,
        },
    )?;
    Ok((
        report.benign_ops,
        report.benign_bytes,
        report.commands,
        mem.stats(),
        defense.stats(),
    ))
}

/// Run the corpus campaign. `smoke` shrinks every phase to one window
/// and the replay sample to a few chunks; full sizing runs the whole
/// profile day.
///
/// # Errors
///
/// Returns a [`dd_dram::DramError`] only when the simulation harness
/// itself fails (device construction, driver plumbing) — invariant
/// violations are recorded in the report, not raised.
pub fn run_corpus_campaign(smoke: bool) -> Result<CorpusReport, dd_dram::DramError> {
    let config = DramConfig::lpddr4_small();
    let profile = DiurnalProfile::fleet_day(CORPUS_SEED);
    let mut invariants: Vec<Invariant> = Vec::new();
    let mut check = |name: &str, pass: bool| {
        if !pass {
            eprintln!("[corpus] invariant FAILED: {name}");
        }
        invariants.push(Invariant {
            name: name.to_string(),
            pass,
        });
    };

    // --- trace plane: the corpus sample, v1 vs v2 ---------------------
    let per_phase = if smoke { 256 } else { 1024 };
    let sample: Vec<WorkloadOp> = profile.sample_ops(&config, per_phase);
    let v1_bytes = encode(&sample);
    let v2_bytes = encode_v2(&sample, true);
    let chunks = match StreamingTraceReader::open(Cursor::new(&v2_bytes[..])) {
        Ok(reader) => {
            check(
                "v2 index agrees with the sample size",
                reader.total_records() == sample.len() as u64,
            );
            reader.chunk_count() as u64
        }
        Err(e) => {
            eprintln!("[corpus] v2 container failed to open: {e}");
            check("v2 index agrees with the sample size", false);
            0
        }
    };
    check(
        "v2 container round-trips the corpus sample",
        decode_any(&v2_bytes).as_deref() == Ok(&sample[..]),
    );
    check(
        "delta chunks compress below the v1 encoding",
        v2_bytes.len() < v1_bytes.len(),
    );
    check(
        "chunks sized to the batch boundary",
        chunks == (sample.len() as u64).div_ceil(512),
    );
    let trace = TraceStats {
        records: sample.len() as u64,
        v1_bytes: v1_bytes.len() as u64,
        v2_bytes: v2_bytes.len() as u64,
        chunks,
    };

    // --- the diurnal sweep: one fleet day per defense -----------------
    let phase_windows = |spec_windows: u64| if smoke { 1 } else { spec_windows };
    let phases: Vec<PhaseSummary> = profile
        .phases
        .iter()
        .map(|p| PhaseSummary {
            name: p.name.to_string(),
            ops_per_window: p.ops_per_window,
            windows: phase_windows(p.windows),
        })
        .collect();

    let replay_windows = if smoke { 2 } else { 4 };
    let replay_ops_per_window = 512;
    let mut defenses = Vec::new();
    for kind in DefenseKind::TABLE3 {
        // The day: one device and one defense instance carried across
        // every phase, so defense state (swap tables, counters) sees the
        // full diurnal arc.
        let mut mem = MemoryController::try_new(config.clone())?;
        mem.set_trace_mode(TraceMode::CountersOnly);
        let model = serving_model(CORPUS_SEED);
        let mut map = WeightMap::layout(&model, &config);
        let mut defense = kind.build(defense_seed(kind), &config);
        let bits = workload_bits(&model, CORPUS_SECURED_BITS);
        defense.secure_bits(&bits, Some(&map));

        let mut row = DefenseRow {
            defense: kind.label().to_string(),
            benign_ops: 0,
            false_defense_ops: 0,
            disturbed_rows: 0,
            peak_benign_disturbance: 0,
            commands: 0,
            streaming_identical: false,
        };
        for (i, spec) in profile.phases.iter().enumerate() {
            let mut traffic = profile.traffic(i, &config);
            let report = run_workload(
                &mut mem,
                &mut *defense,
                Some(&mut map),
                &mut traffic,
                &bits,
                &DriverConfig {
                    benign_windows: phase_windows(spec.windows),
                    attack_windows: 0,
                    record: false,
                },
            )?;
            row.benign_ops += report.benign_ops;
            row.false_defense_ops += report.false_defense_ops;
            row.disturbed_rows += report.disturbed_rows;
            row.peak_benign_disturbance = row
                .peak_benign_disturbance
                .max(report.peak_benign_disturbance);
            row.commands += report.commands;
        }

        // The bit-identity twin runs: the same v2 container, once
        // materialized, once streamed, through this defense.
        let materialized = replay_run(
            kind,
            &mut BenignTraffic::from_trace(
                decode_any(&v2_bytes).expect("validated above"),
                replay_ops_per_window,
                32,
                &config,
            ),
            replay_windows,
        )?;
        let streaming = replay_run(
            kind,
            &mut BenignTraffic::from_streaming(
                StreamingReplay::open(Cursor::new(v2_bytes.clone())).expect("validated above"),
                replay_ops_per_window,
                32,
                &config,
            ),
            replay_windows,
        )?;
        row.streaming_identical = materialized == streaming;
        defenses.push(row);
    }
    check(
        "streaming replay bit-identical to materialized replay across the roster",
        defenses.iter().all(|d| d.streaming_identical),
    );
    check(
        "diurnal sweep completed for every defense",
        defenses.len() == DefenseKind::TABLE3.len(),
    );
    check(
        "every defense executed the full day's benign ops",
        defenses
            .iter()
            .map(|d| d.benign_ops)
            .collect::<HashSet<_>>()
            .len()
            == 1,
    );

    Ok(CorpusReport {
        schema_version: CORPUS_REPORT_SCHEMA_VERSION,
        experiment: "corpus".to_string(),
        smoke,
        seed: CORPUS_SEED,
        profile: profile.label.clone(),
        phases,
        defenses,
        trace,
        invariants,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> CorpusReport {
        CorpusReport {
            schema_version: CORPUS_REPORT_SCHEMA_VERSION,
            experiment: "corpus".to_string(),
            smoke: true,
            seed: CORPUS_SEED,
            profile: "fleet-day-0xdac2024".to_string(),
            phases: vec![PhaseSummary {
                name: "night-scan".to_string(),
                ops_per_window: 96,
                windows: 1,
            }],
            defenses: vec![DefenseRow {
                defense: "DNN-Defender".to_string(),
                benign_ops: 96,
                false_defense_ops: 0,
                disturbed_rows: 0,
                peak_benign_disturbance: 3,
                commands: 500,
                streaming_identical: true,
            }],
            trace: TraceStats {
                records: 1536,
                v1_bytes: 13840,
                v2_bytes: 6200,
                chunks: 3,
            },
            invariants: vec![Invariant {
                name: "v2 container round-trips the corpus sample".to_string(),
                pass: true,
            }],
        }
    }

    #[test]
    fn report_json_round_trips() {
        let report = sample_report();
        let text = report.to_json().render_pretty();
        assert_eq!(CorpusReport::parse(&text).expect("parse"), report);
    }

    #[test]
    fn parse_rejects_foreign_schema() {
        let mut report = sample_report();
        report.schema_version = 99;
        let text = report.to_json().render_pretty();
        assert!(CorpusReport::parse(&text).is_err());
    }

    #[test]
    fn verdict_tracks_invariants() {
        let mut report = sample_report();
        assert!(report.all_pass());
        report.invariants.push(Invariant {
            name: "broken".to_string(),
            pass: false,
        });
        assert!(!report.all_pass());
        assert_eq!(report.failed_invariants(), vec!["broken".to_string()]);
        assert!(report.render_markdown().contains("INVARIANT FAILURES"));
    }

    #[test]
    fn markdown_renders_the_roster_table() {
        let md = sample_report().render_markdown();
        assert!(md.contains("| DNN-Defender |"));
        assert!(md.contains("bit-identical"));
        assert!(md.contains("seekable chunks"));
    }
}
