//! The `kernel` perf benchmark: the batched simulation fast path
//! ([`MemoryController::issue_batch`]) raced against the per-command
//! reference path over one fixed seeded trace, with the end states
//! asserted bit-identical before any timing is reported.
//!
//! `repro kernel` runs it and writes `artifacts/BENCH_kernel.json`
//! (schema v1) — the repo's first *comparative* perf baseline: both
//! paths' commands/sec plus their ratio. The committed artifact carries
//! a `floor`; a rerun whose measured speedup falls below that floor
//! exits non-zero, which is the CI perf-regression gate (the floor is
//! deliberately well under the ≥3× target so CI noise cannot flake it).
//! See `docs/perf.md` for how to read the numbers.

use std::time::Instant;

use dd_dram::{BatchOpKind, DecodedBatch, DramConfig, GlobalRowId, MemoryController, TraceMode};
use dd_workload::{
    all_data_rows, OpKind, StreamingScan, WorkloadGenerator, WorkloadOp, ZipfianServing,
};
use dnn_defender::{Json, JsonError};

/// Schema version of `BENCH_kernel.json`.
pub const KERNEL_BENCH_SCHEMA_VERSION: u64 = 1;

/// Default speedup floor when no committed artifact provides one: the
/// regression gate trips below this batch/reference ratio. Generously
/// below the ≥3× target so shared-CI timing noise cannot flake the gate.
pub const KERNEL_SPEEDUP_FLOOR: f64 = 2.0;

/// Sizing of one kernel benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct KernelParams {
    /// Ops in the fixed seeded trace.
    pub ops: usize,
    /// Activations each op stands for (the workload intensity model).
    pub batch_factor: u64,
    /// Trace seed.
    pub seed: u64,
    /// Ops per [`DecodedBatch`] chunk on the batched path.
    pub chunk: usize,
    /// Timed repetitions per path (best run wins, to shed scheduler
    /// noise).
    pub rounds: usize,
}

impl KernelParams {
    /// Quick (smoke) or full sizing.
    pub fn new(quick: bool) -> Self {
        KernelParams {
            ops: if quick { 120_000 } else { 600_000 },
            batch_factor: 16,
            seed: 20240606,
            chunk: 512,
            rounds: if quick { 2 } else { 3 },
        }
    }
}

/// One path's timing: wall time and throughput over the shared trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathMeasure {
    /// Best wall time across the rounds, in milliseconds.
    pub wall_millis: u64,
    /// DRAM commands the trace issues (identical for both paths).
    pub commands: u64,
    /// Commands per wall second at the best round.
    pub commands_per_sec: f64,
}

impl PathMeasure {
    fn to_json(self) -> Json {
        Json::obj()
            .with("wall_millis", Json::uint(self.wall_millis))
            .with("commands", Json::uint(self.commands))
            .with("commands_per_sec", Json::num(self.commands_per_sec))
    }

    fn from_json(value: &Json) -> Result<PathMeasure, JsonError> {
        Ok(PathMeasure {
            wall_millis: value.field_u64("wall_millis")?,
            commands: value.field_u64("commands")?,
            commands_per_sec: value.field_f64("commands_per_sec")?,
        })
    }
}

/// The `BENCH_kernel.json` payload: both paths, their ratio, and the
/// committed regression floor.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBench {
    /// Schema version ([`KERNEL_BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Always `"kernel"`.
    pub experiment: String,
    /// Whether the run used smoke sizing.
    pub quick: bool,
    /// Ops in the measured trace.
    pub trace_ops: u64,
    /// Activations per op.
    pub batch_factor: u64,
    /// Trace seed.
    pub seed: u64,
    /// The per-command reference path.
    pub reference: PathMeasure,
    /// The batched fast path.
    pub batch: PathMeasure,
    /// `batch.commands_per_sec / reference.commands_per_sec`.
    pub speedup: f64,
    /// The regression gate: a rerun measuring below this fails.
    pub floor: f64,
}

impl KernelBench {
    /// Serialize (the hand-rolled deterministic JSON tree — the vendored
    /// serde is a no-op stub).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema_version", Json::uint(self.schema_version))
            .with("experiment", Json::str(&self.experiment))
            .with("quick", Json::Bool(self.quick))
            .with("trace_ops", Json::uint(self.trace_ops))
            .with("batch_factor", Json::uint(self.batch_factor))
            .with("seed", Json::uint(self.seed))
            .with("reference", self.reference.to_json())
            .with("batch", self.batch.to_json())
            .with("speedup", Json::num(self.speedup))
            .with("floor", Json::num(self.floor))
    }

    /// Parse a `BENCH_kernel.json` document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON, a missing/mistyped
    /// field, or an unsupported schema version.
    pub fn parse(text: &str) -> Result<KernelBench, JsonError> {
        let json = Json::parse(text)?;
        let schema_version = json.field_u64("schema_version")?;
        if schema_version != KERNEL_BENCH_SCHEMA_VERSION {
            return Err(JsonError {
                message: format!(
                    "unsupported BENCH_kernel schema v{schema_version} \
                     (this build reads v{KERNEL_BENCH_SCHEMA_VERSION})"
                ),
            });
        }
        Ok(KernelBench {
            schema_version,
            experiment: json.field_str("experiment")?.to_string(),
            quick: json.field_bool("quick")?,
            trace_ops: json.field_u64("trace_ops")?,
            batch_factor: json.field_u64("batch_factor")?,
            seed: json.field_u64("seed")?,
            reference: PathMeasure::from_json(json.field("reference")?)?,
            batch: PathMeasure::from_json(json.field("batch")?)?,
            speedup: json.field_f64("speedup")?,
            floor: json.field_f64("floor")?,
        })
    }
}

/// The fixed seeded trace both paths replay: zipfian serving reads over
/// a 64-row hot set with a streaming write scan mixed in — the same
/// recipe shape the background-load axis drives, deterministic per
/// `(ops, seed)`.
pub fn kernel_trace(config: &DramConfig, ops: usize, seed: u64) -> Vec<WorkloadOp> {
    let rows = all_data_rows(config);
    let hot: Vec<GlobalRowId> = rows
        .iter()
        .copied()
        .step_by((rows.len() / 64).max(1))
        .take(64)
        .collect();
    let mut zipf = ZipfianServing::new(hot, 1.0, seed);
    let mut scan = StreamingScan::new(rows, 16);
    (0..ops)
        .map(|i| {
            if i % 4 == 3 {
                scan.next_op()
            } else {
                zipf.next_op()
            }
        })
        .collect()
}

fn counters_only_device(config: &DramConfig) -> MemoryController {
    let mut mem = MemoryController::try_new(config.clone()).expect("preset config is valid");
    mem.set_trace_mode(TraceMode::CountersOnly);
    mem
}

fn total_commands(mem: &MemoryController) -> u64 {
    let s = mem.stats();
    s.acts + s.pres + s.reads + s.writes + s.refreshes + s.row_clones
}

/// Replay the trace through the per-command reference path.
fn run_reference(config: &DramConfig, ops: &[WorkloadOp], batch_factor: u64) -> MemoryController {
    let mut mem = counters_only_device(config);
    let mut fill = vec![0u8; config.row_bytes];
    for op in ops {
        match op.kind {
            OpKind::Read => {
                mem.read_row(op.row.bank, op.row.subarray, op.row.row)
                    .expect("trace rows are valid");
            }
            OpKind::Write => {
                fill.fill(dd_workload::tenant_fill(op.row.row));
                mem.write_row(op.row.bank, op.row.subarray, op.row.row, &fill)
                    .expect("trace rows are valid");
            }
        }
        if batch_factor > 1 {
            mem.hammer(op.row, batch_factor - 1)
                .expect("trace rows are valid");
        }
    }
    mem
}

/// Replay the trace through the batched kernel in `chunk`-sized pieces.
fn run_batched(
    config: &DramConfig,
    ops: &[WorkloadOp],
    batch_factor: u64,
    chunk: usize,
) -> MemoryController {
    let mut mem = counters_only_device(config);
    let mut kernel = DecodedBatch::new(config);
    for piece in ops.chunks(chunk.max(1)) {
        for op in piece {
            let kind = match op.kind {
                OpKind::Read => BatchOpKind::Read,
                OpKind::Write => BatchOpKind::Write(dd_workload::tenant_fill(op.row.row)),
            };
            kernel
                .push(op.row, kind, batch_factor - 1, None)
                .expect("trace rows are valid");
        }
        mem.issue_batch(&mut kernel).expect("matching geometry");
    }
    mem
}

/// Assert the two paths produced the identical device end state — the
/// benchmark refuses to report a speedup for a kernel that diverged.
fn assert_equivalent(fast: &MemoryController, reference: &MemoryController, trace: &[WorkloadOp]) {
    assert_eq!(fast.now(), reference.now(), "kernel clock diverged");
    assert_eq!(fast.stats(), reference.stats(), "kernel stats diverged");
    for kind in [
        dd_dram::CommandKind::Act,
        dd_dram::CommandKind::Pre,
        dd_dram::CommandKind::Rd,
        dd_dram::CommandKind::Wr,
    ] {
        assert_eq!(
            fast.trace().issued_of(kind),
            reference.trace().issued_of(kind),
            "kernel issue counters diverged for {kind:?}"
        );
    }
    for op in trace {
        assert_eq!(
            fast.disturbance(op.row),
            reference.disturbance(op.row),
            "kernel disturbance diverged at {:?}",
            op.row
        );
    }
}

/// Run the benchmark: time both paths over the shared trace (best of
/// [`KernelParams::rounds`]), verify equivalence, and assemble the
/// artifact with the given regression `floor`.
pub fn run_kernel_bench(quick: bool, floor: f64) -> KernelBench {
    let p = KernelParams::new(quick);
    let config = DramConfig::lpddr4_small();
    let trace = kernel_trace(&config, p.ops, p.seed);

    // Warm-up + equivalence check (untimed).
    let warm_fast = run_batched(&config, &trace, p.batch_factor, p.chunk);
    let warm_ref = run_reference(&config, &trace, p.batch_factor);
    assert_equivalent(&warm_fast, &warm_ref, &trace);
    let commands = total_commands(&warm_ref);

    let mut best_ref = u128::MAX;
    let mut best_fast = u128::MAX;
    for _ in 0..p.rounds.max(1) {
        let started = Instant::now();
        let mem = run_reference(&config, &trace, p.batch_factor);
        best_ref = best_ref.min(started.elapsed().as_micros().max(1));
        std::hint::black_box(mem.stats());

        let started = Instant::now();
        let mem = run_batched(&config, &trace, p.batch_factor, p.chunk);
        best_fast = best_fast.min(started.elapsed().as_micros().max(1));
        std::hint::black_box(mem.stats());
    }

    let cps = |micros: u128| commands as f64 / (micros as f64 / 1e6);
    let reference = PathMeasure {
        wall_millis: (best_ref / 1000) as u64,
        commands,
        commands_per_sec: cps(best_ref).round(),
    };
    let batch = PathMeasure {
        wall_millis: (best_fast / 1000) as u64,
        commands,
        commands_per_sec: cps(best_fast).round(),
    };
    let speedup = (best_ref as f64 / best_fast as f64 * 100.0).round() / 100.0;
    KernelBench {
        schema_version: KERNEL_BENCH_SCHEMA_VERSION,
        experiment: "kernel".to_string(),
        quick,
        trace_ops: p.ops as u64,
        batch_factor: p.batch_factor,
        seed: p.seed,
        reference,
        batch,
        speedup,
        floor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_trace_is_deterministic() {
        let config = DramConfig::lpddr4_small();
        let a = kernel_trace(&config, 500, 7);
        let b = kernel_trace(&config, 500, 7);
        assert_eq!(a, b);
        let c = kernel_trace(&config, 500, 8);
        assert_ne!(a, c, "seed must matter");
        assert!(a.iter().any(|op| op.kind == OpKind::Write));
    }

    #[test]
    fn bench_paths_agree_on_small_traces() {
        let config = DramConfig::lpddr4_small();
        let trace = kernel_trace(&config, 2_000, 11);
        let fast = run_batched(&config, &trace, 16, 128);
        let reference = run_reference(&config, &trace, 16);
        assert_equivalent(&fast, &reference, &trace);
        assert!(total_commands(&reference) > 2_000);
    }

    #[test]
    fn kernel_bench_json_round_trips() {
        let bench = KernelBench {
            schema_version: KERNEL_BENCH_SCHEMA_VERSION,
            experiment: "kernel".into(),
            quick: true,
            trace_ops: 120_000,
            batch_factor: 16,
            seed: 20240606,
            reference: PathMeasure {
                wall_millis: 250,
                commands: 3_960_000,
                commands_per_sec: 15_840_000.0,
            },
            batch: PathMeasure {
                wall_millis: 50,
                commands: 3_960_000,
                commands_per_sec: 79_200_000.0,
            },
            speedup: 5.0,
            floor: KERNEL_SPEEDUP_FLOOR,
        };
        let text = bench.to_json().render_pretty();
        let back = KernelBench::parse(&text).expect("parse back");
        assert_eq!(back, bench);
        // Stable across render/parse cycles (the `--check` property).
        assert_eq!(back.to_json().render_pretty(), text);
    }

    #[test]
    fn parse_rejects_foreign_schema() {
        let mut bad = KernelBench {
            schema_version: 99,
            experiment: "kernel".into(),
            quick: false,
            trace_ops: 1,
            batch_factor: 1,
            seed: 0,
            reference: PathMeasure {
                wall_millis: 1,
                commands: 1,
                commands_per_sec: 1.0,
            },
            batch: PathMeasure {
                wall_millis: 1,
                commands: 1,
                commands_per_sec: 1.0,
            },
            speedup: 1.0,
            floor: 1.0,
        };
        bad.schema_version = 99;
        assert!(KernelBench::parse(&bad.to_json().render_pretty()).is_err());
    }
}
