//! The `kernel` perf benchmark: the batched simulation fast path
//! ([`MemoryController::issue_batch`]) raced against the per-command
//! reference path over one fixed seeded trace, and the cross-cell sweep
//! kernel ([`CellSweep`]) raced against N per-cell batched replays of
//! the same trace — with every end state asserted bit-identical before
//! any timing is reported.
//!
//! `repro kernel` runs it and writes `artifacts/BENCH_kernel.json`
//! (schema v5): both single-cell paths' commands/sec plus their ratio,
//! the N-cell matrix throughput (total commands across cells per
//! wall second) of the sweep kernel against the per-cell batched
//! baseline, the *streaming* replay path — the same trace replayed
//! straight off a v2 chunked container through
//! [`StreamingTraceReader`], decode and issue interleaved chunk by
//! chunk, gated as a ratio of the pre-materialized batched path — the
//! `dd-obs` recording overhead — both timed fast paths replayed with
//! the sink enabled, as a percentage over the disabled baseline — and
//! the `dd-chaos` fault-plane overhead, the same two paths replayed
//! with an armed-but-inert chaos plan (every `kernel.chunk_stall`
//! probe consulted, nothing ever fires) over the disarmed baseline.
//! The committed artifact carries a `floor`, a `sweep_floor`, a
//! `streaming_floor`, an `obs_overhead_ceiling_pct`, and a
//! `chaos_overhead_ceiling_pct`; a rerun whose measured speedup falls
//! below a floor, or whose overhead rises above a ceiling, exits
//! non-zero — the CI perf-regression gate (the floors are deliberately
//! well under the ≥3×/≥4× targets so CI noise cannot flake them). See
//! `docs/perf.md`, `docs/observability.md`, and `docs/resilience.md`
//! for how to read the numbers.

use std::io::Cursor;
use std::time::Instant;

use dd_dram::{
    BatchOpKind, CellSweep, DecodedBatch, DramConfig, GlobalRowId, MemoryController, Nanos,
    TraceMode,
};
use dd_workload::{
    all_data_rows, encode_v2, OpKind, StreamingScan, StreamingTraceReader, WorkloadGenerator,
    WorkloadOp, ZipfianServing,
};
use dnn_defender::{Json, JsonError};

/// Schema version of `BENCH_kernel.json`.
pub const KERNEL_BENCH_SCHEMA_VERSION: u64 = 5;

/// Default speedup floor when no committed artifact provides one: the
/// regression gate trips below this batch/reference ratio. Generously
/// below the ≥3× target so shared-CI timing noise cannot flake the gate.
pub const KERNEL_SPEEDUP_FLOOR: f64 = 2.0;

/// Default cross-cell floor: the gate trips when the sweep kernel's
/// matrix throughput falls below this multiple of the per-cell batched
/// baseline. Generously below the ≥4× target for the same reason.
pub const SWEEP_SPEEDUP_FLOOR: f64 = 2.0;

/// Default cell count for the cross-cell sweep measurement.
pub const SWEEP_CELLS_DEFAULT: usize = 12;

/// Default floor on streaming-replay throughput as a fraction of the
/// pre-materialized batched path. Streaming interleaves chunk decode
/// (varint deltas included) with issue, so it cannot beat the
/// decoded-in-RAM path — but the decode is amortized per 512-op chunk
/// and in practice costs a few percent. 0.5 catches a chunked-decode
/// regression (an accidental per-op seek, quadratic buffer growth)
/// without letting shared-CI noise flake the gate.
pub const STREAMING_RATIO_FLOOR: f64 = 0.5;

/// Default ceiling on the `dd-obs` recording overhead, in percent over
/// the disabled baseline on either kernel fast path. The probes are
/// amortized per chunk (never per command), so real overhead sits well
/// under 1%; 3% leaves room for shared-CI timing noise without letting a
/// per-op probe regression slip through.
pub const OBS_OVERHEAD_CEILING_PCT: f64 = 3.0;

/// Default ceiling on the `dd-chaos` fault-plane overhead, in percent
/// over the disarmed baseline on either kernel fast path. The measured
/// configuration is the *worst* benign case — a plan armed for the
/// whole replay so every `kernel.chunk_stall` probe pays the full
/// hash-and-lookup check (the disarmed path is a single relaxed atomic
/// load and costs strictly less). The probes are per chunk, never per
/// command, so real overhead sits well under 1%; 3% absorbs shared-CI
/// timing noise while still catching an accidental per-op probe.
pub const CHAOS_OVERHEAD_CEILING_PCT: f64 = 3.0;

/// Sizing of one kernel benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct KernelParams {
    /// Ops in the fixed seeded trace.
    pub ops: usize,
    /// Activations each op stands for (the workload intensity model).
    pub batch_factor: u64,
    /// Trace seed.
    pub seed: u64,
    /// Ops per [`DecodedBatch`] chunk on the batched path.
    pub chunk: usize,
    /// Timed repetitions per path (best run wins, to shed scheduler
    /// noise).
    pub rounds: usize,
    /// Cells in the cross-cell sweep measurement.
    pub sweep_cells: usize,
}

impl KernelParams {
    /// Quick (smoke) or full sizing.
    pub fn new(quick: bool) -> Self {
        KernelParams {
            ops: if quick { 120_000 } else { 600_000 },
            batch_factor: 16,
            seed: 20240606,
            chunk: 512,
            rounds: if quick { 2 } else { 3 },
            sweep_cells: SWEEP_CELLS_DEFAULT,
        }
    }
}

/// One path's timing: wall time and throughput over the shared trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathMeasure {
    /// Best wall time across the rounds, in milliseconds.
    pub wall_millis: u64,
    /// DRAM commands the trace issues (identical for both paths).
    pub commands: u64,
    /// Commands per wall second at the best round.
    pub commands_per_sec: f64,
}

impl PathMeasure {
    fn to_json(self) -> Json {
        Json::obj()
            .with("wall_millis", Json::uint(self.wall_millis))
            .with("commands", Json::uint(self.commands))
            .with("commands_per_sec", Json::num(self.commands_per_sec))
    }

    fn from_json(value: &Json) -> Result<PathMeasure, JsonError> {
        Ok(PathMeasure {
            wall_millis: value.field_u64("wall_millis")?,
            commands: value.field_u64("commands")?,
            commands_per_sec: value.field_f64("commands_per_sec")?,
        })
    }
}

/// The `BENCH_kernel.json` payload: both single-cell paths and their
/// ratio, the cross-cell sweep measurement and its ratio, and the
/// committed regression floors.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBench {
    /// Schema version ([`KERNEL_BENCH_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Always `"kernel"`.
    pub experiment: String,
    /// Whether the run used smoke sizing.
    pub quick: bool,
    /// Ops in the measured trace.
    pub trace_ops: u64,
    /// Activations per op.
    pub batch_factor: u64,
    /// Trace seed.
    pub seed: u64,
    /// The per-command reference path.
    pub reference: PathMeasure,
    /// The batched fast path.
    pub batch: PathMeasure,
    /// `batch.commands_per_sec / reference.commands_per_sec`.
    pub speedup: f64,
    /// The regression gate: a rerun measuring below this fails.
    pub floor: f64,
    /// Cells in the cross-cell measurement (`commands` in the two
    /// measures below are totals across all of them).
    pub sweep_cells: u64,
    /// N per-cell batched replays, one device at a time (the matrix
    /// scheduler's fallback path).
    pub cell_batch: PathMeasure,
    /// The same N cells through one [`CellSweep`] session.
    pub sweep: PathMeasure,
    /// `sweep.commands_per_sec / cell_batch.commands_per_sec` — the
    /// matrix-throughput gain of decoding and replaying once.
    pub sweep_speedup: f64,
    /// The cross-cell regression gate.
    pub sweep_floor: f64,
    /// The streaming replay path: the same trace replayed straight off
    /// a v2 chunked container, decode interleaved with issue.
    pub streaming: PathMeasure,
    /// `streaming.commands_per_sec / batch.commands_per_sec` — what
    /// chunk-by-chunk decode costs relative to decoded-in-RAM replay.
    pub streaming_ratio: f64,
    /// The streaming regression gate: a rerun whose ratio falls below
    /// this fails ([`STREAMING_RATIO_FLOOR`] when no artifact provides
    /// one).
    pub streaming_floor: f64,
    /// Recording overhead on the batched path: the median over
    /// alternating enabled/disabled run pairs of the enabled-over-
    /// disabled wall-time ratio, in percent (negative = noise).
    pub obs_overhead_batch_pct: f64,
    /// Recording overhead on the cross-cell sweep path, same definition.
    pub obs_overhead_sweep_pct: f64,
    /// The overhead gate: a rerun measuring above this on either path
    /// fails ([`OBS_OVERHEAD_CEILING_PCT`] when no artifact provides one).
    pub obs_overhead_ceiling_pct: f64,
    /// Fault-plane overhead on the batched path: armed-but-inert chaos
    /// plan over the disarmed baseline, same paired-median estimator as
    /// the `dd-obs` measurement (negative = noise).
    pub chaos_overhead_batch_pct: f64,
    /// Fault-plane overhead on the cross-cell sweep path, same
    /// definition.
    pub chaos_overhead_sweep_pct: f64,
    /// The fault-plane overhead gate ([`CHAOS_OVERHEAD_CEILING_PCT`]
    /// when no artifact provides one).
    pub chaos_overhead_ceiling_pct: f64,
}

impl KernelBench {
    /// Serialize (the hand-rolled deterministic JSON tree — the vendored
    /// serde is a no-op stub).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema_version", Json::uint(self.schema_version))
            .with("experiment", Json::str(&self.experiment))
            .with("quick", Json::Bool(self.quick))
            .with("trace_ops", Json::uint(self.trace_ops))
            .with("batch_factor", Json::uint(self.batch_factor))
            .with("seed", Json::uint(self.seed))
            .with("reference", self.reference.to_json())
            .with("batch", self.batch.to_json())
            .with("speedup", Json::num(self.speedup))
            .with("floor", Json::num(self.floor))
            .with("sweep_cells", Json::uint(self.sweep_cells))
            .with("cell_batch", self.cell_batch.to_json())
            .with("sweep", self.sweep.to_json())
            .with("sweep_speedup", Json::num(self.sweep_speedup))
            .with("sweep_floor", Json::num(self.sweep_floor))
            .with("streaming", self.streaming.to_json())
            .with("streaming_ratio", Json::num(self.streaming_ratio))
            .with("streaming_floor", Json::num(self.streaming_floor))
            .with(
                "obs_overhead_batch_pct",
                Json::num(self.obs_overhead_batch_pct),
            )
            .with(
                "obs_overhead_sweep_pct",
                Json::num(self.obs_overhead_sweep_pct),
            )
            .with(
                "obs_overhead_ceiling_pct",
                Json::num(self.obs_overhead_ceiling_pct),
            )
            .with(
                "chaos_overhead_batch_pct",
                Json::num(self.chaos_overhead_batch_pct),
            )
            .with(
                "chaos_overhead_sweep_pct",
                Json::num(self.chaos_overhead_sweep_pct),
            )
            .with(
                "chaos_overhead_ceiling_pct",
                Json::num(self.chaos_overhead_ceiling_pct),
            )
    }

    /// Parse a `BENCH_kernel.json` document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON, a missing/mistyped
    /// field, or an unsupported schema version.
    pub fn parse(text: &str) -> Result<KernelBench, JsonError> {
        let json = Json::parse(text)?;
        let schema_version = json.field_u64("schema_version")?;
        if schema_version != KERNEL_BENCH_SCHEMA_VERSION {
            return Err(JsonError {
                message: format!(
                    "unsupported BENCH_kernel schema v{schema_version} \
                     (this build reads v{KERNEL_BENCH_SCHEMA_VERSION})"
                ),
            });
        }
        Ok(KernelBench {
            schema_version,
            experiment: json.field_str("experiment")?.to_string(),
            quick: json.field_bool("quick")?,
            trace_ops: json.field_u64("trace_ops")?,
            batch_factor: json.field_u64("batch_factor")?,
            seed: json.field_u64("seed")?,
            reference: PathMeasure::from_json(json.field("reference")?)?,
            batch: PathMeasure::from_json(json.field("batch")?)?,
            speedup: json.field_f64("speedup")?,
            floor: json.field_f64("floor")?,
            sweep_cells: json.field_u64("sweep_cells")?,
            cell_batch: PathMeasure::from_json(json.field("cell_batch")?)?,
            sweep: PathMeasure::from_json(json.field("sweep")?)?,
            sweep_speedup: json.field_f64("sweep_speedup")?,
            sweep_floor: json.field_f64("sweep_floor")?,
            streaming: PathMeasure::from_json(json.field("streaming")?)?,
            streaming_ratio: json.field_f64("streaming_ratio")?,
            streaming_floor: json.field_f64("streaming_floor")?,
            obs_overhead_batch_pct: json.field_f64("obs_overhead_batch_pct")?,
            obs_overhead_sweep_pct: json.field_f64("obs_overhead_sweep_pct")?,
            obs_overhead_ceiling_pct: json.field_f64("obs_overhead_ceiling_pct")?,
            chaos_overhead_batch_pct: json.field_f64("chaos_overhead_batch_pct")?,
            chaos_overhead_sweep_pct: json.field_f64("chaos_overhead_sweep_pct")?,
            chaos_overhead_ceiling_pct: json.field_f64("chaos_overhead_ceiling_pct")?,
        })
    }
}

/// The fixed seeded trace both paths replay: zipfian serving reads over
/// a 64-row hot set with a streaming write scan mixed in — the same
/// recipe shape the background-load axis drives, deterministic per
/// `(ops, seed)`.
pub fn kernel_trace(config: &DramConfig, ops: usize, seed: u64) -> Vec<WorkloadOp> {
    let rows = all_data_rows(config);
    let hot: Vec<GlobalRowId> = rows
        .iter()
        .copied()
        .step_by((rows.len() / 64).max(1))
        .take(64)
        .collect();
    let mut zipf = ZipfianServing::new(hot, 1.0, seed);
    let mut scan = StreamingScan::new(rows, 16);
    (0..ops)
        .map(|i| {
            if i % 4 == 3 {
                scan.next_op()
            } else {
                zipf.next_op()
            }
        })
        .collect()
}

fn counters_only_device(config: &DramConfig) -> MemoryController {
    let mut mem = MemoryController::try_new(config.clone()).expect("preset config is valid");
    mem.set_trace_mode(TraceMode::CountersOnly);
    mem
}

fn total_commands(mem: &MemoryController) -> u64 {
    let s = mem.stats();
    s.acts + s.pres + s.reads + s.writes + s.refreshes + s.row_clones
}

/// Replay the trace through the per-command reference path.
fn run_reference(config: &DramConfig, ops: &[WorkloadOp], batch_factor: u64) -> MemoryController {
    let mut mem = counters_only_device(config);
    let mut fill = vec![0u8; config.row_bytes];
    for op in ops {
        match op.kind {
            OpKind::Read => {
                mem.read_row(op.row.bank, op.row.subarray, op.row.row)
                    .expect("trace rows are valid");
            }
            OpKind::Write => {
                fill.fill(dd_workload::tenant_fill(op.row.row));
                mem.write_row(op.row.bank, op.row.subarray, op.row.row, &fill)
                    .expect("trace rows are valid");
            }
        }
        if batch_factor > 1 {
            mem.hammer(op.row, batch_factor - 1)
                .expect("trace rows are valid");
        }
    }
    mem
}

/// Replay the trace through the batched kernel in `chunk`-sized pieces.
fn run_batched(
    config: &DramConfig,
    ops: &[WorkloadOp],
    batch_factor: u64,
    chunk: usize,
) -> MemoryController {
    let mut mem = counters_only_device(config);
    let mut kernel = DecodedBatch::new(config);
    for piece in ops.chunks(chunk.max(1)) {
        for op in piece {
            let kind = match op.kind {
                OpKind::Read => BatchOpKind::Read,
                OpKind::Write => BatchOpKind::Write(dd_workload::tenant_fill(op.row.row)),
            };
            kernel
                .push(op.row, kind, batch_factor - 1, None)
                .expect("trace rows are valid");
        }
        mem.issue_batch(&mut kernel).expect("matching geometry");
    }
    mem
}

/// Replay a v2 chunked container through the batched kernel without
/// ever materializing the full trace: [`StreamingTraceReader`] yields
/// one batch-boundary-sized chunk at a time (delta decode included),
/// each pushed into the [`DecodedBatch`] and issued before the next
/// chunk is read. This is the resident server's replay shape — a fleet
/// trace far larger than RAM costs one chunk of memory.
fn run_streaming(config: &DramConfig, bytes: &[u8], batch_factor: u64) -> MemoryController {
    let mut mem = counters_only_device(config);
    let mut kernel = DecodedBatch::new(config);
    let mut reader =
        StreamingTraceReader::open(Cursor::new(bytes)).expect("bench container is valid");
    let mut chunk = Vec::new();
    while reader
        .next_chunk(&mut chunk)
        .expect("bench container is valid")
    {
        for op in &chunk {
            let kind = match op.kind {
                OpKind::Read => BatchOpKind::Read,
                OpKind::Write => BatchOpKind::Write(dd_workload::tenant_fill(op.row.row)),
            };
            kernel
                .push(op.row, kind, batch_factor - 1, None)
                .expect("trace rows are valid");
        }
        mem.issue_batch(&mut kernel).expect("matching geometry");
    }
    mem
}

/// Give cell `i` of a sweep roster a distinct pre-existing counter
/// state (the matrix's cells never start identical: each defense has
/// hammered and relocated differently by warmup), then both cross-cell
/// paths start from the same staggered baseline.
fn pre_seed(mem: &mut MemoryController, config: &DramConfig, cell: usize) {
    let rows = all_data_rows(config);
    for j in 0..=cell {
        let row = rows[(j * 97 + cell * 13) % rows.len()];
        mem.hammer(row, 40 * (j as u64 + 1) + cell as u64)
            .expect("seed rows are valid");
    }
}

/// Build an N-cell roster with staggered counter states on a shared
/// clock (the sweep session requires lockstep cells).
fn sweep_roster(config: &DramConfig, cells: usize) -> Vec<MemoryController> {
    let mut mems: Vec<MemoryController> = (0..cells)
        .map(|i| {
            let mut mem = counters_only_device(config);
            pre_seed(&mut mem, config, i);
            mem
        })
        .collect();
    let latest = mems
        .iter()
        .map(|m| m.now())
        .max()
        .expect("roster not empty");
    for mem in &mut mems {
        let dt = latest - mem.now();
        if dt > Nanos(0) {
            mem.advance(dt);
        }
    }
    mems
}

/// Replay the trace into every cell one at a time through the batched
/// kernel — the matrix scheduler's per-cell fallback, and the baseline
/// the sweep kernel is measured against.
fn run_cells_batched(
    config: &DramConfig,
    ops: &[WorkloadOp],
    batch_factor: u64,
    chunk: usize,
    cells: usize,
) -> Vec<MemoryController> {
    let mut mems = sweep_roster(config, cells);
    let mut kernel = DecodedBatch::new(config);
    for mem in &mut mems {
        for piece in ops.chunks(chunk.max(1)) {
            for op in piece {
                let kind = match op.kind {
                    OpKind::Read => BatchOpKind::Read,
                    OpKind::Write => BatchOpKind::Write(dd_workload::tenant_fill(op.row.row)),
                };
                kernel
                    .push(op.row, kind, batch_factor - 1, None)
                    .expect("trace rows are valid");
            }
            mem.issue_batch(&mut kernel).expect("matching geometry");
        }
    }
    mems
}

/// Replay the trace once against all N cells through the cross-cell
/// sweep kernel: decode each chunk once, one [`CellSweep::issue`] pass
/// per chunk, counters resolved at [`CellSweep::finish`].
fn run_swept(
    config: &DramConfig,
    ops: &[WorkloadOp],
    batch_factor: u64,
    chunk: usize,
    cells: usize,
) -> Vec<MemoryController> {
    let mut mems = sweep_roster(config, cells);
    let mut sweep = CellSweep::new(config, cells);
    let mut kernel = DecodedBatch::new(config);
    {
        let mut refs: Vec<&mut MemoryController> = mems.iter_mut().collect();
        for piece in ops.chunks(chunk.max(1)) {
            for op in piece {
                let kind = match op.kind {
                    OpKind::Read => BatchOpKind::Read,
                    OpKind::Write => BatchOpKind::Write(dd_workload::tenant_fill(op.row.row)),
                };
                kernel
                    .push(op.row, kind, batch_factor - 1, None)
                    .expect("trace rows are valid");
            }
            sweep
                .issue(&mut refs, &mut kernel)
                .expect("lockstep roster");
        }
        sweep.finish(&mut refs).expect("session settles");
    }
    mems
}

/// Assert the two paths produced the identical device end state — the
/// benchmark refuses to report a speedup for a kernel that diverged.
fn assert_equivalent(fast: &MemoryController, reference: &MemoryController, trace: &[WorkloadOp]) {
    assert_eq!(fast.now(), reference.now(), "kernel clock diverged");
    assert_eq!(fast.stats(), reference.stats(), "kernel stats diverged");
    for kind in [
        dd_dram::CommandKind::Act,
        dd_dram::CommandKind::Pre,
        dd_dram::CommandKind::Rd,
        dd_dram::CommandKind::Wr,
    ] {
        assert_eq!(
            fast.trace().issued_of(kind),
            reference.trace().issued_of(kind),
            "kernel issue counters diverged for {kind:?}"
        );
    }
    for op in trace {
        assert_eq!(
            fast.disturbance(op.row),
            reference.disturbance(op.row),
            "kernel disturbance diverged at {:?}",
            op.row
        );
    }
}

/// Run the benchmark: time both single-cell paths, both cross-cell
/// paths, and the streaming-container replay over the shared trace
/// (best of [`KernelParams::rounds`]), verify equivalence, replay both
/// fast paths with `dd-obs` recording enabled to measure the
/// instrumentation overhead, replay them again with an armed-but-inert
/// `dd-chaos` plan to measure the fault-plane overhead, and assemble
/// the artifact with the given regression floors and overhead
/// ceilings. `sweep_cells` overrides the cross-cell roster size
/// ([`SWEEP_CELLS_DEFAULT`]); callers must pass at least 2.
pub fn run_kernel_bench(
    quick: bool,
    floor: f64,
    sweep_floor: f64,
    streaming_floor: f64,
    obs_ceiling: f64,
    chaos_ceiling: f64,
    sweep_cells: Option<usize>,
) -> KernelBench {
    let mut p = KernelParams::new(quick);
    if let Some(n) = sweep_cells {
        assert!(n >= 2, "a sweep needs at least 2 cells");
        p.sweep_cells = n;
    }
    let config = DramConfig::lpddr4_small();
    let trace = kernel_trace(&config, p.ops, p.seed);
    // The cross-cell measurement replays a shorter trace (its baseline
    // costs N single-cell replays per round), but never so short that
    // the fixed per-round costs both paths share — building the N-cell
    // roster, resolving counters at finish — drown the per-op advantage
    // the floor is gating. 120k ops keeps smoke mode honest.
    let sweep_trace = &trace[..(p.ops / 4).max(120_000).min(p.ops)];

    // Warm-up + equivalence checks (untimed). Single-cell batched vs
    // per-command reference first, then every sweep cell against its
    // per-cell batched twin.
    let warm_fast = run_batched(&config, &trace, p.batch_factor, p.chunk);
    let warm_ref = run_reference(&config, &trace, p.batch_factor);
    assert_equivalent(&warm_fast, &warm_ref, &trace);
    let commands = total_commands(&warm_ref);

    // The streaming path replays the same trace off its v2 delta
    // container; the container's 512-op chunks coincide with the
    // batched path's chunking, so the end states must be bit-identical.
    let container = encode_v2(&trace, true);
    let warm_streaming = run_streaming(&config, &container, p.batch_factor);
    assert_equivalent(&warm_streaming, &warm_ref, &trace);

    let warm_swept = run_swept(&config, sweep_trace, p.batch_factor, p.chunk, p.sweep_cells);
    let warm_cells =
        run_cells_batched(&config, sweep_trace, p.batch_factor, p.chunk, p.sweep_cells);
    let mut sweep_commands = 0u64;
    for (swept, cell) in warm_swept.iter().zip(&warm_cells) {
        assert_equivalent(swept, cell, sweep_trace);
        sweep_commands += total_commands(cell);
    }

    let mut best_ref = u128::MAX;
    let mut best_fast = u128::MAX;
    let mut best_streaming = u128::MAX;
    let mut best_cells = u128::MAX;
    let mut best_swept = u128::MAX;
    for _ in 0..p.rounds.max(1) {
        let started = Instant::now();
        let mem = run_reference(&config, &trace, p.batch_factor);
        best_ref = best_ref.min(started.elapsed().as_micros().max(1));
        std::hint::black_box(mem.stats());

        let started = Instant::now();
        let mem = run_batched(&config, &trace, p.batch_factor, p.chunk);
        best_fast = best_fast.min(started.elapsed().as_micros().max(1));
        std::hint::black_box(mem.stats());

        let started = Instant::now();
        let mem = run_streaming(&config, &container, p.batch_factor);
        best_streaming = best_streaming.min(started.elapsed().as_micros().max(1));
        std::hint::black_box(mem.stats());

        let started = Instant::now();
        let mems = run_cells_batched(&config, sweep_trace, p.batch_factor, p.chunk, p.sweep_cells);
        best_cells = best_cells.min(started.elapsed().as_micros().max(1));
        std::hint::black_box(mems.len());

        let started = Instant::now();
        let mems = run_swept(&config, sweep_trace, p.batch_factor, p.chunk, p.sweep_cells);
        best_swept = best_swept.min(started.elapsed().as_micros().max(1));
        std::hint::black_box(mems.len());
    }

    // Overhead measurement: the same timed fast paths with the
    // recording sink enabled, paired with disabled-sink twins in the
    // same loop so both sides see near-identical cache and frequency
    // conditions (comparing against `best_fast`/`best_swept` from the
    // speedup loop above would bias the ratio — the machine is warmer
    // here and the reference replays no longer thrash the cache between
    // rounds). Each enabled run holds an exclusive session — concurrent
    // tests can't race the global flag — and rings are drained untimed
    // at finish, so a long bench never hits ring overflow and every
    // round pays the same per-chunk recording cost the real experiments
    // would.
    let mut fast_ratios = Vec::new();
    let mut swept_ratios = Vec::new();
    let mut chaos_fast_ratios = Vec::new();
    let mut chaos_swept_ratios = Vec::new();
    // One smoke replay is preemption-slice sized (~10ms — one scheduler
    // slice can eat 30% of a sample), so each timed sample aggregates
    // enough back-to-back replays to span ~25ms: long enough to average
    // over slice-scale spikes, short enough that a pair of samples
    // (~50ms) stays inside one stretch of the ~100ms machine drift.
    // Sized from the plain best-of-rounds above so smoke and full
    // sizing get the same statistical treatment.
    let target_sample_micros: u128 = 25_000;
    let reps_fast = (target_sample_micros / best_fast).clamp(1, 16) as usize;
    let reps_swept = (target_sample_micros / best_swept).clamp(1, 16) as usize;
    let time_fast = |enabled: bool| {
        let session = enabled.then(dd_obs::session);
        let started = Instant::now();
        for _ in 0..reps_fast {
            let mem = run_batched(&config, &trace, p.batch_factor, p.chunk);
            std::hint::black_box(mem.stats());
        }
        let micros = started.elapsed().as_micros().max(1);
        if let Some(session) = session {
            let _ = session.finish();
        }
        micros
    };
    let time_swept = |enabled: bool| {
        let session = enabled.then(dd_obs::session);
        let started = Instant::now();
        for _ in 0..reps_swept {
            let mems = run_swept(&config, sweep_trace, p.batch_factor, p.chunk, p.sweep_cells);
            std::hint::black_box(mems.len());
        }
        let micros = started.elapsed().as_micros().max(1);
        if let Some(session) = session {
            let _ = session.finish();
        }
        micros
    };
    // The fault-plane twins: the same timed fast paths with a chaos plan
    // armed for the whole sample. The plan is *inert* — it names no
    // rules, so no fault ever fires and the replay stays bit-identical —
    // but arming it forces every `kernel.chunk_stall` probe down the
    // armed slow path (site hash + rule lookup + check counting), which
    // strictly upper-bounds what the disarmed single-atomic-load check
    // can cost.
    let time_fast_chaos = |armed: bool| {
        let session = armed.then(|| dd_chaos::arm(dd_chaos::ChaosPlan::inert(p.seed)));
        let started = Instant::now();
        for _ in 0..reps_fast {
            let mem = run_batched(&config, &trace, p.batch_factor, p.chunk);
            std::hint::black_box(mem.stats());
        }
        let micros = started.elapsed().as_micros().max(1);
        if let Some(session) = session {
            let _ = session.finish();
        }
        micros
    };
    let time_swept_chaos = |armed: bool| {
        let session = armed.then(|| dd_chaos::arm(dd_chaos::ChaosPlan::inert(p.seed)));
        let started = Instant::now();
        for _ in 0..reps_swept {
            let mems = run_swept(&config, sweep_trace, p.batch_factor, p.chunk, p.sweep_cells);
            std::hint::black_box(mems.len());
        }
        let micros = started.elapsed().as_micros().max(1);
        if let Some(session) = session {
            let _ = session.finish();
        }
        micros
    };
    // The gated statistic is the median of per-pair ratios, not a ratio
    // of global bests: adjacent samples in a pair share frequency and
    // allocator state (drift cancels inside each ratio), the order
    // alternates each round so neither side systematically runs second,
    // and the median discards the outlier pairs a shared machine
    // inevitably produces.
    let collect_pairs = |pairs: usize, timer: &dyn Fn(bool) -> u128, ratios: &mut Vec<f64>| {
        for round in 0..pairs {
            let on_first = round.is_multiple_of(2);
            let (first, second) = (timer(on_first), timer(!on_first));
            let (on, plain) = if on_first {
                (first, second)
            } else {
                (second, first)
            };
            ratios.push(on as f64 / plain as f64);
        }
    };
    let median = |ratios: &[f64]| {
        let mut sorted = ratios.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mid = sorted.len() / 2;
        if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        }
    };
    let overhead_pct = |ratio: f64| ((ratio - 1.0) * 10_000.0).round() / 100.0;
    collect_pairs(24, &time_fast, &mut fast_ratios);
    collect_pairs(24, &time_swept, &mut swept_ratios);
    // Adaptive confirmation: the true recording cost is well under 1%,
    // so a first-round median anywhere near the ceiling is far more
    // likely an unlucky stretch of machine noise than a regression.
    // Pool three times the pairs before believing it — a real per-op
    // probe regression (the failure mode this gate exists for) is a
    // 10x-100x slowdown and survives any amount of pooling.
    if overhead_pct(median(&fast_ratios)) > obs_ceiling / 2.0
        || overhead_pct(median(&swept_ratios)) > obs_ceiling / 2.0
    {
        collect_pairs(72, &time_fast, &mut fast_ratios);
        collect_pairs(72, &time_swept, &mut swept_ratios);
    }
    collect_pairs(24, &time_fast_chaos, &mut chaos_fast_ratios);
    collect_pairs(24, &time_swept_chaos, &mut chaos_swept_ratios);
    if overhead_pct(median(&chaos_fast_ratios)) > chaos_ceiling / 2.0
        || overhead_pct(median(&chaos_swept_ratios)) > chaos_ceiling / 2.0
    {
        collect_pairs(72, &time_fast_chaos, &mut chaos_fast_ratios);
        collect_pairs(72, &time_swept_chaos, &mut chaos_swept_ratios);
    }
    if std::env::var_os("DD_KERNEL_DEBUG").is_some() {
        eprintln!("fast_ratios: {fast_ratios:.4?}");
        eprintln!("swept_ratios: {swept_ratios:.4?}");
        eprintln!("chaos_fast_ratios: {chaos_fast_ratios:.4?}");
        eprintln!("chaos_swept_ratios: {chaos_swept_ratios:.4?}");
    }

    let cps = |total: u64, micros: u128| total as f64 / (micros as f64 / 1e6);
    let measure = |total: u64, micros: u128| PathMeasure {
        wall_millis: (micros / 1000) as u64,
        commands: total,
        commands_per_sec: cps(total, micros).round(),
    };
    let ratio = |slow: u128, fast: u128| (slow as f64 / fast as f64 * 100.0).round() / 100.0;
    KernelBench {
        schema_version: KERNEL_BENCH_SCHEMA_VERSION,
        experiment: "kernel".to_string(),
        quick,
        trace_ops: p.ops as u64,
        batch_factor: p.batch_factor,
        seed: p.seed,
        reference: measure(commands, best_ref),
        batch: measure(commands, best_fast),
        speedup: ratio(best_ref, best_fast),
        floor,
        sweep_cells: p.sweep_cells as u64,
        cell_batch: measure(sweep_commands, best_cells),
        sweep: measure(sweep_commands, best_swept),
        sweep_speedup: ratio(best_cells, best_swept),
        sweep_floor,
        streaming: measure(commands, best_streaming),
        streaming_ratio: ratio(best_fast, best_streaming),
        streaming_floor,
        obs_overhead_batch_pct: overhead_pct(median(&fast_ratios)),
        obs_overhead_sweep_pct: overhead_pct(median(&swept_ratios)),
        obs_overhead_ceiling_pct: obs_ceiling,
        chaos_overhead_batch_pct: overhead_pct(median(&chaos_fast_ratios)),
        chaos_overhead_sweep_pct: overhead_pct(median(&chaos_swept_ratios)),
        chaos_overhead_ceiling_pct: chaos_ceiling,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_trace_is_deterministic() {
        let config = DramConfig::lpddr4_small();
        let a = kernel_trace(&config, 500, 7);
        let b = kernel_trace(&config, 500, 7);
        assert_eq!(a, b);
        let c = kernel_trace(&config, 500, 8);
        assert_ne!(a, c, "seed must matter");
        assert!(a.iter().any(|op| op.kind == OpKind::Write));
    }

    #[test]
    fn bench_paths_agree_on_small_traces() {
        let config = DramConfig::lpddr4_small();
        let trace = kernel_trace(&config, 2_000, 11);
        let fast = run_batched(&config, &trace, 16, 128);
        let reference = run_reference(&config, &trace, 16);
        assert_equivalent(&fast, &reference, &trace);
        assert!(total_commands(&reference) > 2_000);
    }

    #[test]
    fn streaming_path_agrees_with_batched() {
        let config = DramConfig::lpddr4_small();
        let trace = kernel_trace(&config, 1_300, 17);
        let container = encode_v2(&trace, true);
        let streaming = run_streaming(&config, &container, 16);
        let batched = run_batched(&config, &trace, 16, 512);
        assert_equivalent(&streaming, &batched, &trace);
    }

    #[test]
    fn sweep_paths_agree_on_small_rosters() {
        let config = DramConfig::lpddr4_small();
        let trace = kernel_trace(&config, 1_500, 23);
        let swept = run_swept(&config, &trace, 16, 128, 5);
        let cells = run_cells_batched(&config, &trace, 16, 128, 5);
        assert_eq!(swept.len(), 5);
        for (fast, reference) in swept.iter().zip(&cells) {
            assert_equivalent(fast, reference, &trace);
        }
        // The staggered pre-seed must actually stagger, or the N-cell
        // measurement degenerates into one cell copied N times.
        assert_ne!(cells[0].stats(), cells[4].stats());
    }

    fn sample_bench() -> KernelBench {
        KernelBench {
            schema_version: KERNEL_BENCH_SCHEMA_VERSION,
            experiment: "kernel".into(),
            quick: true,
            trace_ops: 120_000,
            batch_factor: 16,
            seed: 20240606,
            reference: PathMeasure {
                wall_millis: 250,
                commands: 3_960_000,
                commands_per_sec: 15_840_000.0,
            },
            batch: PathMeasure {
                wall_millis: 50,
                commands: 3_960_000,
                commands_per_sec: 79_200_000.0,
            },
            speedup: 5.0,
            floor: KERNEL_SPEEDUP_FLOOR,
            sweep_cells: 8,
            cell_batch: PathMeasure {
                wall_millis: 100,
                commands: 7_920_000,
                commands_per_sec: 79_200_000.0,
            },
            sweep: PathMeasure {
                wall_millis: 20,
                commands: 7_920_000,
                commands_per_sec: 396_000_000.0,
            },
            sweep_speedup: 5.0,
            sweep_floor: SWEEP_SPEEDUP_FLOOR,
            streaming: PathMeasure {
                wall_millis: 55,
                commands: 3_960_000,
                commands_per_sec: 72_000_000.0,
            },
            streaming_ratio: 0.91,
            streaming_floor: STREAMING_RATIO_FLOOR,
            obs_overhead_batch_pct: 0.4,
            obs_overhead_sweep_pct: 0.6,
            obs_overhead_ceiling_pct: OBS_OVERHEAD_CEILING_PCT,
            chaos_overhead_batch_pct: 0.2,
            chaos_overhead_sweep_pct: 0.3,
            chaos_overhead_ceiling_pct: CHAOS_OVERHEAD_CEILING_PCT,
        }
    }

    #[test]
    fn kernel_bench_json_round_trips() {
        let bench = sample_bench();
        let text = bench.to_json().render_pretty();
        let back = KernelBench::parse(&text).expect("parse back");
        assert_eq!(back, bench);
        // Stable across render/parse cycles (the `--check` property).
        assert_eq!(back.to_json().render_pretty(), text);
    }

    #[test]
    fn parse_rejects_foreign_schema() {
        let mut bad = sample_bench();
        bad.schema_version = 99;
        assert!(KernelBench::parse(&bad.to_json().render_pretty()).is_err());
    }
}
