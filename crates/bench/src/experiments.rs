//! Every figure/table of the paper as a reusable experiment function.
//!
//! This module is the single implementation behind both entry points:
//! the `repro` CLI (cached, artifact-writing, docs-regenerating) and the
//! eight legacy thin-wrapper binaries (`fig1a` … `power`), which just
//! call [`run_standalone`]. Each experiment:
//!
//! * derives a cheap [content hash](ExperimentId::config_hash) of its
//!   full configuration *without running anything*, so the pipeline can
//!   decide to reuse a previous artifact;
//! * produces an [`Artifact`] with its tables, notes, and (for the
//!   matrix experiments) the raw [`dd_baselines::MatrixReport`] payload;
//! * pulls scenario-matrix cells through the shared content-addressed
//!   cell cache in [`RunContext::cells`], so reruns only execute cells
//!   whose configuration actually changed.

use std::collections::HashMap;
use std::io::Write as _;
use std::time::Instant;

use dd_attack::{attack_protected, run_bfa, run_random_attack, AttackConfig, ThreatModel};
use dd_baselines::{
    CellProgress, CellReport, DefenseKind, MatrixRunSummary, ScenarioMatrix, VictimSpec,
};
use dd_dram::{DramConfig, DramError, MemoryController, TraceMode};
use dd_nn::init::seeded_rng;
use dd_nn::layers::{Flatten, Linear};
use dd_nn::model::Network;
use dd_qnn::{Architecture, BitAddr, QModel};
use dd_server::{CellSpec, ServerConfig, SweepBase, SweepServer, SERVER_PROTOCOL_VERSION};
use dd_workload::{
    all_data_rows, run_workload, BackgroundLoad, BenignTraffic, DriverConfig, DriverReport,
    WORKLOAD_PROTOCOL_VERSION,
};
use dnn_defender::budget::DEFAULT_COMMANDS_PER_SEC;
use dnn_defender::{
    overhead_table, power_table, rh_thresholds, saving_versus, CostModel, DefenseOp, Json,
    SecurityModel, StableHasher, WeightMap,
};

use crate::report::{Artifact, TableArtifact, ARTIFACT_SCHEMA_VERSION};
use crate::{pct, prepare_victim, print_table, quick_mode, DatasetKind, Victim};

/// Version of the experiment *bodies*: the seeds and constants baked
/// into the implementations rather than declared as parameters (fig1b's
/// random-attack RNG seed and `chance * 1.1` target, fig9's
/// `sb_fractions`, table composition, …). [`ExperimentId::config_hash`]
/// covers configuration, not code — **bump this whenever an
/// experiment's logic or inline constants change**, so committed
/// artifacts (and the docs rendered from them) stop being reusable.
/// Matrix *cell* behavior has its own knob,
/// `dd_baselines::CELL_PROTOCOL_VERSION`.
pub const EXPERIMENT_PROTOCOL_VERSION: u64 = 1;

/// One figure/table of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    /// Fig. 1(a): RowHammer thresholds across DRAM generations.
    Fig1a,
    /// Fig. 1(b): targeted BFA vs random flips vs DNN-Defender.
    Fig1b,
    /// Table 2: hardware overhead of RowHammer mitigation frameworks.
    Table2,
    /// Table 3: the full defense-comparison scenario matrix.
    Table3,
    /// Fig. 8(a): time-to-break and BFA capacities vs `T_RH`.
    Fig8a,
    /// Fig. 8(b): defense latency per refresh interval vs number of BFAs.
    Fig8b,
    /// Fig. 9: adaptive white-box BFA vs secured-bit budget.
    Fig9,
    /// §5.1 power comparison.
    Power,
    /// Defense overhead and false-swap rate vs benign traffic intensity.
    Workload,
    /// Matrix-as-a-service: a scripted sweep-server session exercising
    /// admission pricing, budgets, regimes, and cache invalidation.
    Server,
}

impl ExperimentId {
    /// Every experiment, in docs order.
    pub const ALL: [ExperimentId; 10] = [
        ExperimentId::Fig1a,
        ExperimentId::Fig1b,
        ExperimentId::Table2,
        ExperimentId::Table3,
        ExperimentId::Fig8a,
        ExperimentId::Fig8b,
        ExperimentId::Fig9,
        ExperimentId::Power,
        ExperimentId::Workload,
        ExperimentId::Server,
    ];

    /// The experiment id: subcommand name, artifact file stem, and docs
    /// marker label.
    pub fn name(self) -> &'static str {
        match self {
            ExperimentId::Fig1a => "fig1a",
            ExperimentId::Fig1b => "fig1b",
            ExperimentId::Table2 => "table2",
            ExperimentId::Table3 => "table3",
            ExperimentId::Fig8a => "fig8a",
            ExperimentId::Fig8b => "fig8b",
            ExperimentId::Fig9 => "fig9",
            ExperimentId::Power => "power",
            ExperimentId::Workload => "workload",
            ExperimentId::Server => "server",
        }
    }

    /// Human title used in artifacts and logs.
    pub fn title(self) -> &'static str {
        match self {
            ExperimentId::Fig1a => "Fig. 1(a): RowHammer thresholds across DRAM generations",
            ExperimentId::Fig1b => "Fig. 1(b): targeted BFA vs random flips vs DNN-Defender",
            ExperimentId::Table2 => "Table 2: RowHammer mitigation hardware overhead",
            ExperimentId::Table3 => "Table 3: BFA defense comparison (scenario matrix)",
            ExperimentId::Fig8a => "Fig. 8(a): time-to-break and BFA capacities vs T_RH",
            ExperimentId::Fig8b => "Fig. 8(b): defense latency per T_ref vs number of BFAs",
            ExperimentId::Fig9 => "Fig. 9: adaptive white-box BFA vs secured-bit budget",
            ExperimentId::Power => "Power: defense energy at maximum attack rate",
            ExperimentId::Workload => {
                "Workload: defense overhead and false positives under benign traffic"
            }
            ExperimentId::Server => {
                "Server: matrix-as-a-service scheduling, budgets, and cache reuse"
            }
        }
    }

    /// Parse a subcommand / file stem.
    pub fn parse(name: &str) -> Option<ExperimentId> {
        ExperimentId::ALL.into_iter().find(|e| e.name() == name)
    }

    /// Content hash of everything that determines this experiment's
    /// numbers, computable without running the experiment. Includes the
    /// schema version, so schema bumps also invalidate reuse.
    pub fn config_hash(self, quick: bool) -> u64 {
        let mut h = StableHasher::new();
        h.write_str("experiment");
        h.write_str(self.name());
        h.write_u64(ARTIFACT_SCHEMA_VERSION);
        h.write_u64(EXPERIMENT_PROTOCOL_VERSION);
        match self {
            ExperimentId::Fig1a => {
                for p in rh_thresholds() {
                    h.write_str(p.generation);
                    h.write_u64(p.threshold);
                }
            }
            ExperimentId::Fig1b => {
                let p = Fig1bParams::new(quick);
                h.write(&quick);
                h.write_usize(p.width);
                h.write_u64(p.seed);
                h.write_usize(p.max_flips);
                h.write_usize(p.random_flips);
                h.write_usize(p.profile_rounds);
            }
            ExperimentId::Table2 => h.write(&DramConfig::ddr4_32gb()),
            ExperimentId::Table3 => {
                h.write_u64(table3_matrix(quick).config_hash());
                h.write(FIG8_THRESHOLDS.as_slice());
            }
            ExperimentId::Fig8a => {
                h.write(&DramConfig::lpddr4_small());
                h.write(FIG8_THRESHOLDS.as_slice());
            }
            ExperimentId::Fig8b => {
                h.write(&DramConfig::lpddr4_small());
                h.write(FIG8B_BFA_POINTS.as_slice());
            }
            ExperimentId::Fig9 => {
                h.write(&quick);
                for (arch, dataset, seed) in FIG9_MODELS {
                    h.write_str(arch.name());
                    h.write_str(dataset.name());
                    h.write_u64(seed);
                }
                let p = Fig9Params::new(quick);
                h.write_usize(p.width);
                h.write_usize(p.per_round);
                h.write_usize(p.extra);
            }
            ExperimentId::Power => {
                h.write(&DramConfig::lpddr4_small());
                h.write(FIG8_THRESHOLDS.as_slice());
            }
            ExperimentId::Workload => {
                h.write(&quick);
                h.write_u64(WORKLOAD_PROTOCOL_VERSION);
                h.write(&DramConfig::lpddr4_small());
                let p = WorkloadParams::new(quick);
                h.write_u64(p.seed);
                h.write_u64(p.benign_windows);
                h.write_u64(p.attack_windows);
                h.write_usize(p.secured_bits);
                for load in BackgroundLoad::ALL {
                    h.write(&load);
                }
                for kind in DefenseKind::TABLE3 {
                    h.write_str(kind.label());
                }
                h.write_u64(workload_matrix(quick).config_hash());
            }
            ExperimentId::Server => {
                h.write(&quick);
                h.write_u64(SERVER_PROTOCOL_VERSION);
                let cost = server_cost_model();
                h.write_u64(cost.commands_per_sec());
                h.write_u64(cost.reference_rows());
                let base = SweepBase::standard(quick);
                for spec in server_script().all() {
                    h.write_str(&spec.label());
                    h.write_u64(spec.priority as u64);
                    h.write_u64(base.cell_key(&spec).1);
                }
            }
        }
        h.finish()
    }

    /// The scenario-cell cache keys this experiment's configuration
    /// declares (empty for experiments that run no matrix). Computable
    /// without running anything — the pipeline uses it to prune the
    /// on-disk cell cache to the live set.
    pub fn declared_cell_keys(self, quick: bool) -> Vec<u64> {
        match self {
            ExperimentId::Table3 => table3_matrix(quick)
                .cell_keys()
                .into_iter()
                .map(|(_, key)| key)
                .collect(),
            ExperimentId::Workload => workload_matrix(quick)
                .cell_keys()
                .into_iter()
                .map(|(_, key)| key)
                .collect(),
            ExperimentId::Server => {
                let base = SweepBase::standard(quick);
                server_script()
                    .all()
                    .iter()
                    .map(|spec| base.cell_key(spec).1)
                    .collect()
            }
            _ => Vec::new(),
        }
    }

    /// Run the experiment.
    ///
    /// # Errors
    ///
    /// Returns a [`DramError`] when a scenario-matrix cell fails.
    pub fn run(self, ctx: &mut RunContext<'_>) -> Result<Artifact, DramError> {
        let started = Instant::now();
        let mut artifact = match self {
            ExperimentId::Fig1a => fig1a(),
            ExperimentId::Fig1b => fig1b(ctx),
            ExperimentId::Table2 => table2(),
            ExperimentId::Table3 => table3(ctx)?,
            ExperimentId::Fig8a => fig8a(),
            ExperimentId::Fig8b => fig8b(),
            ExperimentId::Fig9 => fig9(ctx),
            ExperimentId::Power => power(),
            ExperimentId::Workload => workload(ctx)?,
            ExperimentId::Server => server_service(ctx),
        };
        artifact.wall_millis = started.elapsed().as_millis() as u64;
        Ok(artifact)
    }
}

/// Shared state of one pipeline invocation.
pub struct RunContext<'a> {
    /// Quick (smoke) scaling — mirrors [`quick_mode`].
    pub quick: bool,
    /// Worker-thread cap for scenario-matrix cells (`None` = one per
    /// core).
    pub jobs: Option<usize>,
    /// The content-addressed scenario-cell cache: consulted before a
    /// cell executes, extended with every cell that does.
    pub cells: &'a mut HashMap<u64, CellReport>,
    /// Print per-cell progress lines while matrices run.
    pub verbose: bool,
}

impl RunContext<'_> {
    /// A context with current env scaling and no cache.
    pub fn ephemeral(cells: &mut HashMap<u64, CellReport>) -> RunContext<'_> {
        RunContext {
            quick: quick_mode(),
            jobs: None,
            cells,
            verbose: true,
        }
    }
}

fn blank_artifact(id: ExperimentId, config_hash: u64, seed: u64, quick: bool) -> Artifact {
    Artifact {
        schema_version: ARTIFACT_SCHEMA_VERSION,
        experiment: id.name().to_string(),
        title: id.title().to_string(),
        config_hash,
        seed,
        quick,
        wall_millis: 0,
        cache: MatrixRunSummary {
            cells: 0,
            cache_hits: 0,
        },
        tables: Vec::new(),
        notes: Vec::new(),
        raw: None,
    }
}

/// Print an artifact's tables and notes the way the legacy binaries did.
pub fn print_artifact(artifact: &Artifact) {
    for table in &artifact.tables {
        let headers: Vec<&str> = table.headers.iter().map(String::as_str).collect();
        print_table(&table.name, &headers, &table.rows);
    }
    for note in &artifact.notes {
        println!("\n{note}");
    }
}

/// Run one experiment with no on-disk cache and print it — the body of
/// the eight legacy figure/table binaries.
pub fn run_standalone(id: ExperimentId) {
    let mut cells = HashMap::new();
    let mut ctx = RunContext::ephemeral(&mut cells);
    match id.run(&mut ctx) {
        Ok(artifact) => print_artifact(&artifact),
        Err(e) => {
            eprintln!("{}: {e:?}", id.name());
            std::process::exit(1);
        }
    }
}

/// The `T_RH` sweep shared by Fig. 8(a), Table 3's analytical rows, and
/// the power comparison.
pub const FIG8_THRESHOLDS: [u64; 4] = [1000, 2000, 4000, 8000];

/// The Fig. 8(b) x-axis anchors: maximum allowable BFAs per `T_ref` at
/// thresholds 8k/4k/2k/1k.
pub const FIG8B_BFA_POINTS: [u64; 4] = [7_000, 14_000, 28_000, 55_000];

/// The Fig. 9 model roster: `(architecture, dataset, seed)`.
pub const FIG9_MODELS: [(Architecture, DatasetKind, u64); 3] = [
    (Architecture::Vgg11, DatasetKind::Cifar10, 91),
    (Architecture::ResNet18, DatasetKind::ImageNet, 92),
    (Architecture::ResNet34, DatasetKind::ImageNet, 93),
];

// ---------------------------------------------------------------- fig1a

fn fig1a() -> Artifact {
    let id = ExperimentId::Fig1a;
    let points = rh_thresholds();
    let baseline = points
        .iter()
        .find(|p| p.generation == "LPDDR4 (new)")
        .expect("survey contains LPDDR4 (new)")
        .threshold;
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.generation.to_string(),
                format!("{}", p.threshold),
                format!("{:.1}x", p.threshold as f64 / baseline as f64),
            ]
        })
        .collect();
    let ddr3_new = points
        .iter()
        .find(|p| p.generation == "DDR3 (new)")
        .expect("survey contains DDR3 (new)");
    let mut artifact = blank_artifact(id, id.config_hash(false), 0, false);
    artifact.tables = vec![TableArtifact::new(
        "Fig 1(a): RowHammer threshold (T_RH) by DRAM generation",
        &["Generation", "T_RH (hammer count)", "vs LPDDR4 (new)"],
        rows,
    )];
    artifact.notes = vec![format!(
        "Attackers need ~{:.1}x fewer hammers on LPDDR4 (new) than DDR3 (new).",
        ddr3_new.threshold as f64 / baseline as f64
    )];
    artifact
}

// ---------------------------------------------------------------- fig1b

struct Fig1bParams {
    width: usize,
    seed: u64,
    max_flips: usize,
    random_flips: usize,
    profile_rounds: usize,
}

impl Fig1bParams {
    fn new(quick: bool) -> Self {
        Fig1bParams {
            width: if quick { 2 } else { 4 },
            seed: 20240604,
            max_flips: if quick { 10 } else { 25 },
            random_flips: if quick { 40 } else { 120 },
            profile_rounds: if quick { 2 } else { 4 },
        }
    }
}

fn fig1b(ctx: &RunContext<'_>) -> Artifact {
    let id = ExperimentId::Fig1b;
    let p = Fig1bParams::new(ctx.quick);
    if ctx.verbose {
        println!(
            "[fig1b] training ResNet-34 (base width {}) on {}...",
            p.width,
            DatasetKind::ImageNet.name()
        );
    }
    let mut victim = prepare_victim(
        Architecture::ResNet34,
        DatasetKind::ImageNet,
        p.width,
        p.seed,
        ctx.quick,
    );
    let chance = DatasetKind::ImageNet.chance();
    let snapshot = victim.model.snapshot_q();

    let config = AttackConfig {
        target_accuracy: chance * 1.1,
        max_flips: p.max_flips,
        ..Default::default()
    };
    let bfa = run_bfa(
        &mut victim.model,
        &victim.data,
        &config,
        &std::collections::HashSet::new(),
    );
    victim.model.restore_q(&snapshot);

    let mut rng = seeded_rng(7);
    let random = run_random_attack(
        &mut victim.model,
        &victim.data.eval_images,
        &victim.data.eval_labels,
        p.random_flips,
        p.random_flips / 8,
        &mut rng,
    );
    victim.model.restore_q(&snapshot);

    // Defended: profile the vulnerable bits, protect them, re-attack.
    let profile_cfg = AttackConfig {
        target_accuracy: 0.0,
        ..config
    };
    let profile = dd_attack::multi_round_profile(
        &mut victim.model,
        &victim.data,
        &profile_cfg,
        p.profile_rounds,
    );
    let protected = profile.all();
    let defended = attack_protected(
        &mut victim.model,
        &victim.data,
        &config,
        &protected,
        ThreatModel::SemiWhiteBox,
    );
    victim.model.restore_q(&snapshot);

    let mut rows = Vec::new();
    for (flips, acc) in bfa.trajectory() {
        rows.push(vec!["BFA (targeted)".into(), flips.to_string(), pct(acc)]);
    }
    for (flips, acc) in &random.trajectory {
        rows.push(vec!["Random attack".into(), flips.to_string(), pct(*acc)]);
    }
    for (flips, acc) in &defended.trajectory {
        rows.push(vec!["DNN-Defender".into(), flips.to_string(), pct(*acc)]);
    }

    let mut artifact = blank_artifact(id, id.config_hash(ctx.quick), p.seed, ctx.quick);
    artifact.tables = vec![
        TableArtifact::new(
            "Fig 1(b): accuracy vs accumulated bit flips (ResNet-34, ImageNet stand-in)",
            &["Curve", "Bit flips", "Accuracy"],
            rows,
        ),
        TableArtifact::new(
            "Summary",
            &["Curve", "Flips spent", "Final accuracy"],
            vec![
                vec![
                    "BFA (targeted)".into(),
                    bfa.bit_flips.to_string(),
                    pct(bfa.final_accuracy),
                ],
                vec![
                    "Random attack".into(),
                    p.random_flips.to_string(),
                    pct(random.final_accuracy),
                ],
                vec![
                    "DNN-Defender (secured bits)".into(),
                    format!("{} attempted", defended.attempted_flips),
                    pct(defended.final_accuracy),
                ],
            ],
        ),
    ];
    artifact.notes = vec![format!(
        "Shape check: BFA needs {} flips to approach chance ({}), random keeps {} after {} \
         flips, defended system holds {} (clean {}).",
        bfa.bit_flips,
        pct(chance),
        pct(random.final_accuracy),
        p.random_flips,
        pct(defended.final_accuracy),
        pct(victim.clean_accuracy)
    )];
    artifact
}

// --------------------------------------------------------------- table2

fn table2() -> Artifact {
    let id = ExperimentId::Table2;
    let config = DramConfig::ddr4_32gb();
    let table = overhead_table(&config);
    let rows: Vec<Vec<String>> = table
        .iter()
        .map(|e| {
            let involved: Vec<&str> = e.involved.iter().map(|k| k.label()).collect();
            let capacity: Vec<String> = e.capacity.iter().map(|c| c.render()).collect();
            vec![
                e.framework.to_string(),
                involved.join("-"),
                capacity.join(" + "),
                e.area.to_string(),
                format!("{:.2}", e.total_reported_mb()),
            ]
        })
        .collect();
    let mut artifact = blank_artifact(id, id.config_hash(false), 0, false);
    artifact.tables = vec![TableArtifact::new(
        "Table 2: RowHammer mitigation hardware overhead (32GB, 16-bank DDR4)",
        &[
            "Framework",
            "Involved memory",
            "Capacity overhead",
            "Area overhead",
            "Total MB",
        ],
        rows,
    )];
    artifact.notes = vec![
        format!(
            "Computed from geometry: counter-per-row = {} MB, counter tree = {} MB.",
            dnn_defender::overhead::counter_per_row_bytes(&config) / (1 << 20) as u64,
            dnn_defender::overhead::counter_tree_bytes(&config) / (1 << 20) as u64,
        ),
        "DNN-Defender: DRAM only, zero capacity overhead, 0.02% area.".to_string(),
    ];
    artifact
}

// --------------------------------------------------------------- table3

/// Budget for undefended/software rows (attack stops early on collapse).
fn soft_budget(quick: bool) -> usize {
    if quick {
        12
    } else {
        60
    }
}

/// Budget for hardware-defense rows (scaled from the paper's attempt
/// counts; the leak *rate* is what matters, so these stay large).
fn hw_budget(quick: bool, paper: usize) -> usize {
    if quick {
        12
    } else {
        paper.min(350)
    }
}

/// The Table 3 matrix: the full [`DefenseKind::TABLE3`] roster on the
/// paper-shaped ResNet-20 victim, with paper-scaled per-defense budgets.
pub fn table3_matrix(quick: bool) -> ScenarioMatrix {
    let width = if quick { 2 } else { 4 };
    let epochs = if quick { 5 } else { 14 };
    let attack = AttackConfig {
        target_accuracy: DatasetKind::Cifar10.chance() * 1.1,
        max_flips: 400,
        ..Default::default()
    };
    DefenseKind::TABLE3
        .into_iter()
        .fold(
            ScenarioMatrix::new(VictimSpec::paper(
                Architecture::ResNet20,
                width,
                epochs,
                333,
            )),
            |matrix, kind| match kind.paper_budget() {
                Some(paper) => matrix.defense_kind_budgeted(kind, hw_budget(quick, paper)),
                None => matrix.defense_kind(kind),
            },
        )
        .attack_config(attack)
        .budget(soft_budget(quick))
        .seed(333)
}

fn table3(ctx: &mut RunContext<'_>) -> Result<Artifact, DramError> {
    let id = ExperimentId::Table3;
    let mut matrix = table3_matrix(ctx.quick);
    if let Some(jobs) = ctx.jobs {
        matrix = matrix.threads(jobs);
    }
    if ctx.verbose {
        println!(
            "[table3] running the {}-cell defense matrix (ResNet-20 on {}; every cell \
             retrains the victim deterministically; cells run in parallel)...",
            matrix.scenarios().len(),
            DatasetKind::Cifar10.name(),
        );
    }
    let verbose = ctx.verbose;
    let progress = move |p: &CellProgress| {
        if verbose {
            let how = if p.cache_hit {
                "cached".to_string()
            } else {
                format!("{:.1}s", p.millis as f64 / 1000.0)
            };
            let mut out = std::io::stdout().lock();
            let _ = writeln!(
                out,
                "  [{}/{}] {} × {} ({how})",
                p.done, p.total, p.scenario.defense, p.scenario.attacker
            );
        }
    };
    let (report, summary) = matrix.run_with_cache(ctx.cells, Some(&progress))?;
    for ((_, key), cell) in matrix.cell_keys().into_iter().zip(&report.cells) {
        ctx.cells.insert(key, cell.clone());
    }

    let table: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|c| {
            vec![
                c.scenario.defense.clone(),
                pct(c.clean_accuracy),
                pct(c.post_attack_accuracy),
                c.attempts.to_string(),
                c.landed.to_string(),
                c.stats.defense_ops.to_string(),
            ]
        })
        .collect();
    let fig8_rows = matrix.security_analysis(&FIG8_THRESHOLDS);
    let fig8: Vec<Vec<String>> = fig8_rows
        .iter()
        .map(|r| {
            vec![
                r.t_rh.to_string(),
                format!("{:.0}", r.dd_days),
                format!("{:.0}", r.shadow_days),
                r.max_defended_bfas.to_string(),
                r.attacker_bfas.to_string(),
            ]
        })
        .collect();

    let mut artifact = blank_artifact(id, id.config_hash(ctx.quick), 333, ctx.quick);
    artifact.cache = summary;
    artifact.tables = vec![
        TableArtifact::new(
            "Table 3: BFA defense comparison (ResNet-20, CIFAR-10 stand-in)",
            &[
                "Defense",
                "Clean acc",
                "Post-attack acc",
                "Flip attempts",
                "Landed",
                "Defense ops",
            ],
            table,
        ),
        TableArtifact::new(
            "Fig. 8 (analytical): time-to-break and capacity per T_RH",
            &[
                "T_RH",
                "DD days",
                "SHADOW days",
                "Max defended BFAs",
                "Attacker BFAs",
            ],
            fig8,
        ),
    ];
    artifact.notes = vec![
        "Shape check (paper): baseline collapses to chance in tens of flips; software \
         defenses raise the required flips / bound the damage; RRS/SRS leak a few campaigns; \
         Graphene and SHADOW leak almost none; DNN-Defender holds clean accuracy with zero \
         landed flips."
            .to_string(),
    ];
    artifact.raw = Some(Json::obj().with("matrix", report.to_json()).with(
        "fig8",
        Json::Arr(fig8_rows.iter().map(|r| r.to_json()).collect()),
    ));
    Ok(artifact)
}

// ---------------------------------------------------------------- fig8a

fn fig8a() -> Artifact {
    let id = ExperimentId::Fig8a;
    // One computation feeds the display table, the note, and the raw
    // payload, so they cannot drift apart.
    let fig8_rows = dd_baselines::fig8_rows(&DramConfig::lpddr4_small(), &FIG8_THRESHOLDS);
    let rows: Vec<Vec<String>> = fig8_rows
        .iter()
        .map(|r| {
            vec![
                format!("{}k", r.t_rh / 1000),
                format!("{:.0}", r.dd_days),
                format!("{:.0}", r.shadow_days),
                format!("{:+.0}", r.dd_days - r.shadow_days),
                format!("{}", r.max_defended_bfas),
                format!("{}", r.attacker_bfas),
            ]
        })
        .collect();
    let at4k = fig8_rows
        .iter()
        .find(|r| r.t_rh == 4000)
        .expect("4k threshold in the sweep");
    let (dd4k, sh4k) = (at4k.dd_days, at4k.shadow_days);

    let mut artifact = blank_artifact(id, id.config_hash(false), 0, false);
    artifact.tables = vec![TableArtifact::new(
        "Fig 8(a): time-to-break and BFA capacities vs T_RH",
        &[
            "T_RH",
            "DNN-Defender (days)",
            "SHADOW (days)",
            "DD advantage",
            "Max defended BFAs",
            "Attacker BFAs / T_ref",
        ],
        rows,
    )];
    artifact.notes = vec![format!(
        "At T_RH = 4k: DNN-Defender {dd4k:.0} days vs SHADOW {sh4k:.0} days (paper: ~1180 \
         vs ~894; DD protects {:.0} more days).",
        dd4k - sh4k
    )];
    artifact.raw = Some(Json::Arr(fig8_rows.iter().map(|r| r.to_json()).collect()));
    artifact
}

// ---------------------------------------------------------------- fig8b

fn fig8b() -> Artifact {
    let id = ExperimentId::Fig8b;
    let model = SecurityModel::from_config(&DramConfig::lpddr4_small());
    let mut latency = Vec::new();
    for &n in &FIG8B_BFA_POINTS {
        let dd = model.latency_per_tref(n, DefenseOp::DnnDefenderSwap);
        let shadow = model.latency_per_tref(n, DefenseOp::ShadowShuffle);
        latency.push(vec![
            format!("{}K", n / 1000),
            format!("{:.2}", dd.as_millis_f64()),
            format!("{:.2}", shadow.as_millis_f64()),
            format!(
                "{:.1}%",
                100.0 * (1.0 - dd.as_millis_f64() / shadow.as_millis_f64())
            ),
        ]);
    }
    let mut anchors = Vec::new();
    for (t_rh, n) in [
        (8000u64, 7_000u64),
        (4000, 14_000),
        (2000, 28_000),
        (1000, 55_000),
    ] {
        anchors.push(vec![
            format!("{}k", t_rh / 1000),
            format!("{}", model.max_bfas_per_tref(t_rh)),
            format!("{n}"),
        ]);
    }
    let mut artifact = blank_artifact(id, id.config_hash(false), 0, false);
    artifact.tables = vec![
        TableArtifact::new(
            "Fig 8(b): defense latency per T_ref (ms) vs number of BFAs",
            &[
                "# BFAs",
                "DNN-Defender (ms)",
                "SHADOW (ms)",
                "DD latency saving",
            ],
            latency,
        ),
        TableArtifact::new(
            "Anchor points: attacker BFA capacity per T_ref by threshold",
            &["T_RH", "Model capacity", "Paper anchor"],
            anchors,
        ),
    ];
    artifact.notes = vec![format!(
        "Latency increase decelerates and saturates toward T_ref = {} ms; DNN-Defender \
         stays below SHADOW at every point.",
        model.timing.t_ref.as_millis_f64()
    )];
    artifact
}

// ----------------------------------------------------------------- fig9

struct Fig9Params {
    quick: bool,
    width: usize,
    per_round: usize,
    extra: usize,
}

impl Fig9Params {
    fn new(quick: bool) -> Self {
        Fig9Params {
            quick,
            width: if quick { 2 } else { 4 },
            per_round: if quick { 8 } else { 20 },
            extra: if quick { 20 } else { 100 },
        }
    }
}

/// Paper SB budgets as fractions of the model's total bits.
fn sb_fractions(arch: Architecture) -> Vec<f64> {
    // Paper absolute SBs / paper model bits (see EXPERIMENTS.md):
    // VGG-11: 2k..24k of ~74M bits; ResNet-18: 16k..311k of ~93M;
    // ResNet-34: 8k..151k of ~174M.
    match arch {
        Architecture::Vgg11 => vec![2.7e-5, 5.4e-5, 1.08e-4, 1.9e-4, 3.2e-4],
        Architecture::ResNet18 => vec![1.7e-4, 4.6e-4, 1.0e-3, 1.7e-3, 3.3e-3],
        Architecture::ResNet34 => vec![4.6e-5, 1.6e-4, 3.2e-4, 5.7e-4, 8.7e-4],
        _ => vec![1e-4, 2e-4, 4e-4, 8e-4, 1.6e-3],
    }
}

fn fig9_model(
    arch: Architecture,
    dataset: DatasetKind,
    seed: u64,
    p: &Fig9Params,
    verbose: bool,
) -> TableArtifact {
    if verbose {
        println!("[fig9] training {} on {}...", arch.name(), dataset.name());
    }
    let mut victim: Victim = prepare_victim(arch, dataset, p.width, seed, p.quick);
    let total_bits = victim.model.total_bits() as f64;
    // Scale SB budgets but keep them small multiples of what profiling
    // can discover (each profiling round finds ~max_flips bits).
    let mut budgets: Vec<usize> = sb_fractions(arch)
        .iter()
        .map(|f| ((f * total_bits).round() as usize).max(4))
        .collect();
    budgets.dedup();

    let profile_cfg = AttackConfig {
        target_accuracy: dataset.chance() * 1.2,
        max_flips: p.per_round,
        ..Default::default()
    };
    let max_budget = *budgets.last().expect("budgets non-empty");
    let rounds = max_budget.div_ceil(p.per_round) + 1;
    let profile =
        dd_attack::multi_round_profile(&mut victim.model, &victim.data, &profile_cfg, rounds);

    let attack_cfg = AttackConfig {
        target_accuracy: 0.0, // run the full budget; we want the curve
        max_flips: p.extra,
        record_every: p.extra.div_ceil(5),
        ..Default::default()
    };

    let snapshot = victim.model.snapshot_q();
    let mut rows = Vec::new();
    for &sb in &budgets {
        let sb_eff = sb.min(profile.bits.len());
        let protected = profile.prefix(sb_eff);
        let report = attack_protected(
            &mut victim.model,
            &victim.data,
            &attack_cfg,
            &protected,
            ThreatModel::WhiteBox,
        );
        victim.model.restore_q(&snapshot);
        let mut cells = vec![format!("SB = {sb_eff}")];
        // Accuracy at SB+0, +20, ..., +100 attempted extra flips.
        let mut traj = report.trajectory.clone();
        traj.push((report.attempted_flips, report.final_accuracy));
        for k in (0..=p.extra).step_by(attack_cfg.record_every.max(1)) {
            let acc = traj
                .iter()
                .rfind(|(f, _)| *f <= k)
                .map(|(_, a)| *a)
                .unwrap_or(report.clean_accuracy);
            cells.push(pct(acc));
        }
        rows.push(cells);
    }
    let mut headers: Vec<String> = vec!["Secured bits".into()];
    for k in (0..=p.extra).step_by(attack_cfg.record_every.max(1)) {
        headers.push(format!("SB+{k}"));
    }
    TableArtifact {
        name: format!(
            "Fig 9: {} / {} — accuracy vs SB + extra flips",
            arch.name(),
            dataset.name()
        ),
        headers,
        rows,
    }
}

fn fig9(ctx: &RunContext<'_>) -> Artifact {
    let id = ExperimentId::Fig9;
    let p = Fig9Params::new(ctx.quick);
    let tables = FIG9_MODELS
        .into_iter()
        .map(|(arch, dataset, seed)| fig9_model(arch, dataset, seed, &p, ctx.verbose))
        .collect();
    let mut artifact = blank_artifact(id, id.config_hash(ctx.quick), FIG9_MODELS[0].2, ctx.quick);
    artifact.tables = tables;
    artifact.notes = vec![
        "Shape check: larger SB forces the adaptive attacker to spend more extra flips for \
         the same damage; the largest SB keeps accuracy near clean (attack degraded to \
         random level)."
            .to_string(),
    ];
    artifact
}

// ---------------------------------------------------------------- power

fn power() -> Artifact {
    let id = ExperimentId::Power;
    let config = DramConfig::lpddr4_small();
    let mut tables = Vec::new();
    for &t_rh in &FIG8_THRESHOLDS {
        let rows: Vec<Vec<String>> = power_table(&config, t_rh)
            .iter()
            .map(|p| {
                vec![
                    p.name.clone(),
                    format!("{:.1}", p.defense_energy_pj / 1e3),
                    format!("{:.4}", p.defense_power_mw),
                ]
            })
            .collect();
        tables.push(TableArtifact::new(
            format!(
                "Defense energy per T_ref at T_RH = {}k (max attack rate)",
                t_rh / 1000
            ),
            &["Scheme", "Energy (nJ)", "Power (mW)"],
            rows,
        ));
    }
    let mut artifact = blank_artifact(id, id.config_hash(false), 0, false);
    artifact.tables = tables;
    artifact.notes = vec![format!(
        "At T_RH = 1k: DNN-Defender saves {:.1}% vs SHADOW (paper: ~1.6%) and is {:.1}x \
         cheaper than SRS (paper: 3.4x).",
        100.0 * saving_versus(&config, 1000, "SHADOW"),
        1.0 / (1.0 - saving_versus(&config, 1000, "SRS")),
    )];
    artifact
}

// ------------------------------------------------------------- workload

pub(crate) struct WorkloadParams {
    seed: u64,
    /// Benign-only measurement windows per (mix, defense) run.
    benign_windows: u64,
    /// Attacked windows (one campaign each) per run.
    attack_windows: u64,
    /// Bits installed as the defense's secured set (and attacked).
    secured_bits: usize,
}

impl WorkloadParams {
    pub(crate) fn new(quick: bool) -> Self {
        WorkloadParams {
            seed: 20240605,
            benign_windows: if quick { 4 } else { 12 },
            attack_windows: if quick { 4 } else { 12 },
            secured_bits: 64,
        }
    }
}

/// The matrix slice exercising the background-load axis end-to-end: the
/// undefended baseline and DNN-Defender on the tiny victim, across every
/// load level (cells flow through the shared cell cache like Table 3's).
pub fn workload_matrix(quick: bool) -> ScenarioMatrix {
    let attack = AttackConfig {
        target_accuracy: 0.3,
        max_flips: 40,
        ..Default::default()
    };
    ScenarioMatrix::new(VictimSpec::tiny_mlp(2024))
        .attack_config(attack)
        .budget(if quick { 4 } else { 10 })
        .seed(2024)
        .with_all_backgrounds()
        .defense_kind(DefenseKind::Undefended)
        .defense_kind(DefenseKind::DnnDefender)
}

/// Deterministic pseudo-serving model for the driver runs: an untrained
/// two-layer MLP whose quantized weights fill ~148 rows of the small
/// device. The workload experiment measures traffic, not accuracy, so
/// training would add nothing but wall time.
pub(crate) fn serving_model(seed: u64) -> QModel {
    let mut rng = seeded_rng(seed);
    let net = Network::new("serving")
        .push(Flatten::new())
        .push(Linear::kaiming("fc1", 64, 128, &mut rng))
        .push(Linear::kaiming("fc2", 128, 10, &mut rng));
    QModel::from_network(net)
}

/// The secured/attacked bit set: spread across the first parameter so
/// the protected rows scatter over banks (the round-robin layout).
pub(crate) fn workload_bits(model: &QModel, n: usize) -> Vec<BitAddr> {
    let len = model.qtensor(0).len();
    (0..n)
        .map(|i| BitAddr {
            param: 0,
            index: (i * 577) % len,
            bit: 7,
        })
        .collect()
}

/// One (mix, defense) driver run of the workload experiment.
pub(crate) fn workload_run(
    load: BackgroundLoad,
    kind: DefenseKind,
    p: &WorkloadParams,
) -> Result<DriverReport, DramError> {
    let config = DramConfig::lpddr4_small();
    let mut mem = MemoryController::try_new(config.clone())?;
    mem.set_trace_mode(TraceMode::CountersOnly);

    let model = serving_model(p.seed);
    let mut map = WeightMap::layout(&model, &config);
    let hot: Vec<_> = map.slots().iter().map(|s| s.row).collect();
    let hot_set: std::collections::HashSet<_> = hot.iter().copied().collect();
    let cold: Vec<_> = all_data_rows(&config)
        .into_iter()
        .filter(|row| !hot_set.contains(row))
        .collect();

    // The benign traffic is seeded per *mix only*: every defense row of
    // one mix faces the identical op stream, so false-op and disturbance
    // columns compare defenses, not RNG draws.
    let mut traffic_seed = p.seed ^ 0x6f2d;
    let mut defense_seed = p.seed ^ 0x00d3_f227;
    for b in load.label().bytes() {
        traffic_seed = (traffic_seed ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
    for b in load.label().bytes().chain(kind.label().bytes()) {
        defense_seed = (defense_seed ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
    }
    let mut defense = kind.build(defense_seed, &config);
    let bits = workload_bits(&model, p.secured_bits);
    defense.secure_bits(&bits, Some(&map));

    let mut traffic = BenignTraffic::for_load(load, traffic_seed, &config, &hot, &cold)
        .unwrap_or_else(
            // BackgroundLoad::None: an empty stream set that only rolls the
            // clock, so the attack-only baseline runs through the same path.
            || BenignTraffic::new(Vec::new(), load.label(), 0, 1, Vec::new(), &config),
        );
    run_workload(
        &mut mem,
        &mut *defense,
        Some(&mut map),
        &mut traffic,
        &bits,
        &DriverConfig {
            benign_windows: p.benign_windows,
            attack_windows: p.attack_windows,
            record: false,
        },
    )
}

fn workload(ctx: &mut RunContext<'_>) -> Result<Artifact, DramError> {
    let id = ExperimentId::Workload;
    let p = WorkloadParams::new(ctx.quick);
    if ctx.verbose {
        println!(
            "[workload] driving {} mixes x {} defenses through the workload engine...",
            BackgroundLoad::ALL.len(),
            DefenseKind::TABLE3.len()
        );
    }

    // Driver sweep: every mix × every defense.
    let mut rows = Vec::new();
    let mut throughput = Vec::new();
    let mut raw_runs = Vec::new();
    let mut total_commands = 0u64;
    for load in BackgroundLoad::ALL {
        for kind in DefenseKind::TABLE3 {
            let r = workload_run(load, kind, &p)?;
            total_commands += r.commands;
            let per_1k = if r.benign_ops == 0 {
                "-".to_string()
            } else {
                format!(
                    "{:.2}",
                    1000.0 * r.false_defense_ops as f64 / r.benign_ops as f64
                )
            };
            rows.push(vec![
                load.label().to_string(),
                kind.label().to_string(),
                r.benign_ops.to_string(),
                r.false_defense_ops.to_string(),
                per_1k,
                r.online_defense_ops.to_string(),
                format!("{}/{}", r.landed, r.attempts),
                r.peak_benign_disturbance.to_string(),
                r.disturbed_rows.to_string(),
            ]);
            if kind == DefenseKind::Undefended {
                let sim_secs = r.sim_nanos as f64 / 1e9;
                throughput.push(vec![
                    load.label().to_string(),
                    (r.benign_ops / (p.benign_windows + p.attack_windows)).to_string(),
                    r.benign_activations.to_string(),
                    format!("{:.3}", r.benign_bytes as f64 / 1e6 / sim_secs),
                    format!("{:.4}%", 100.0 * r.busy_nanos as f64 / r.sim_nanos as f64),
                    r.commands.to_string(),
                ]);
            }
            raw_runs.push(
                Json::obj()
                    .with("workload", Json::str(load.label()))
                    .with("defense", Json::str(kind.label()))
                    .with("benign_ops", Json::uint(r.benign_ops))
                    .with("benign_activations", Json::uint(r.benign_activations))
                    .with("benign_bytes", Json::uint(r.benign_bytes))
                    .with("commands", Json::uint(r.commands))
                    .with("sim_nanos", Json::uint(r.sim_nanos as u64))
                    .with("busy_nanos", Json::uint(r.busy_nanos as u64))
                    .with("false_defense_ops", Json::uint(r.false_defense_ops))
                    .with("online_defense_ops", Json::uint(r.online_defense_ops))
                    .with("attempts", Json::uint(r.attempts))
                    .with("landed", Json::uint(r.landed))
                    .with("disturbed_rows", Json::uint(r.disturbed_rows))
                    .with("peak_disturbance", Json::uint(r.peak_benign_disturbance)),
            );
        }
    }

    // Matrix slice: the background-load axis through the cached scenario
    // harness (accuracy under load).
    let mut matrix = workload_matrix(ctx.quick);
    if let Some(jobs) = ctx.jobs {
        matrix = matrix.threads(jobs);
    }
    let (report, summary) = matrix.run_with_cache(ctx.cells, None)?;
    for ((_, key), cell) in matrix.cell_keys().into_iter().zip(&report.cells) {
        ctx.cells.insert(key, cell.clone());
    }
    let matrix_rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|c| {
            let benign = c.benign.unwrap_or_default();
            vec![
                c.scenario.defense.clone(),
                c.scenario.workload.clone(),
                pct(c.clean_accuracy),
                pct(c.post_attack_accuracy),
                format!("{}/{}", c.landed, c.attempts),
                benign.ops.to_string(),
                benign.online_defense_ops.to_string(),
            ]
        })
        .collect();

    let mut artifact = blank_artifact(id, id.config_hash(ctx.quick), p.seed, ctx.quick);
    artifact.cache = summary;
    artifact.tables = vec![
        TableArtifact::new(
            "Workload: false positives and interference, mix x defense",
            &[
                "Mix",
                "Defense",
                "Benign ops",
                "False ops",
                "False/1k ops",
                "Online ops",
                "Landed/Attempts",
                "Peak benign dist.",
                "Rows >= T_RH/2",
            ],
            rows,
        ),
        TableArtifact::new(
            "Benign throughput by mix (undefended device)",
            &[
                "Mix",
                "Ops/window",
                "Activations",
                "Sim bandwidth (MB/s)",
                "Busy share",
                "Commands",
            ],
            throughput,
        ),
        TableArtifact::new(
            "Scenario matrix under load (tiny victim, BFA)",
            &[
                "Defense",
                "Background",
                "Clean acc",
                "Post-attack acc",
                "Landed/Attempts",
                "Benign ops",
                "Online ops",
            ],
            matrix_rows,
        ),
    ];
    artifact.notes = vec![
        "Shape check: Graphene's device-wide counter tap starts paying false refreshes once \
         a benign zipfian hotspot crosses its trip point (heavy mix), while DNN-Defender's \
         victim-focused watcher only reacts to heat on its protected rows — a much smaller \
         false-positive surface — and both keep blocking every campaign they block in the \
         quiet matrix. Defenses with no online tap (RRS/SRS, SHADOW, software) show zero \
         false ops by construction."
            .to_string(),
        "Interference check: attack campaigns push collateral disturbance past T_RH/2 on \
         benign neighbour rows under every non-refreshing defense (the `Rows >= T_RH/2` \
         column); Graphene's refreshes and DNN-Defender's mid-campaign swap are what keep \
         their peaks at or below the watermark."
            .to_string(),
    ];
    artifact.raw = Some(
        Json::obj()
            .with("runs", Json::Arr(raw_runs))
            .with("total_commands", Json::uint(total_commands))
            .with("matrix", report.to_json()),
    );
    Ok(artifact)
}

/// The pinned, machine-independent calibration of the scripted service
/// session: the conservative default throughput over the small device.
/// (`repro serve` calibrates from the measured `BENCH_kernel.json`
/// instead; the experiment pins the model so its prices — and therefore
/// its admission, rejection, and shedding decisions — are deterministic.)
pub(crate) fn server_cost_model() -> CostModel {
    CostModel::new(
        DEFAULT_COMMANDS_PER_SEC,
        crate::serve::REFERENCE_DEVICE_ROWS,
    )
}

/// The scripted session's cell specs. Alice exercises the cold → warm →
/// invalidated cache lifecycle, Bob the budget accounting, Carol the
/// storm regime (four warm cells at priority 1 riding along with four
/// expensive cold cells at priority 0).
pub(crate) struct ServerScript {
    pub(crate) alice: Vec<CellSpec>,
    pub(crate) bob: Vec<CellSpec>,
    pub(crate) carol: Vec<CellSpec>,
}

impl ServerScript {
    /// Every scripted spec, in submission order.
    pub(crate) fn all(&self) -> Vec<CellSpec> {
        [&self.alice, &self.bob, &self.carol]
            .into_iter()
            .flatten()
            .cloned()
            .collect()
    }
}

pub(crate) fn server_script() -> ServerScript {
    let s = |text: &str| CellSpec::parse_compact(text).expect("scripted cell spec");
    ServerScript {
        alice: vec![
            s("Baseline (undefended):BFA:lpddr4_small:none"),
            s("DNN-Defender:BFA:lpddr4_small:none"),
            s("Baseline (undefended):BFA:lpddr4_small:light"),
            s("DNN-Defender:BFA:lpddr4_small:light"),
        ],
        bob: vec![
            s("Baseline (undefended):BFA:lpddr4_small@3000:none"),
            s("DNN-Defender:BFA:lpddr4_small@3000:none"),
        ],
        carol: vec![
            s("Baseline (undefended):BFA:lpddr4_small:none:1"),
            s("DNN-Defender:BFA:lpddr4_small:none:1"),
            s("Baseline (undefended):BFA:lpddr4_small:light:1"),
            s("DNN-Defender:BFA:lpddr4_small:light:1"),
            s("Baseline (undefended):BFA:lpddr4_small:heavy"),
            s("DNN-Defender:BFA:lpddr4_small:heavy"),
            s("Baseline (undefended):BFA:lpddr4_small:multi-tenant"),
            s("DNN-Defender:BFA:lpddr4_small:multi-tenant"),
        ],
    }
}

/// Deterministic per-step outcome counts extracted from a response.
#[derive(Default)]
struct StepCounts {
    computed: u64,
    hits: u64,
    rejected: u64,
    shed: u64,
    evicted: u64,
}

fn submit_counts(response: &Json) -> StepCounts {
    let mut counts = StepCounts::default();
    for result in response.field_arr("results").expect("submit results") {
        match result.field_str("status").expect("status") {
            "done" => {
                if result.field_bool("cache_hit").expect("cache_hit") {
                    counts.hits += 1;
                } else {
                    counts.computed += 1;
                }
            }
            "rejected" => counts.rejected += 1,
            "shed" => counts.shed += 1,
            other => panic!("scripted session produced unexpected status `{other}`"),
        }
    }
    counts
}

pub(crate) fn server_roundtrip(server: &mut SweepServer, request: &Json) -> Json {
    let response = server.handle_line(&request.render_compact());
    let response = Json::parse(&response).expect("response parses");
    assert_eq!(
        response.field_bool("ok"),
        Ok(true),
        "scripted request failed: {response:?}"
    );
    response
}

pub(crate) fn server_submit(server: &mut SweepServer, client: &str, specs: &[CellSpec]) -> Json {
    let request = Json::obj()
        .with("op", Json::str("submit"))
        .with("client", Json::str(client))
        .with("quick", Json::Bool(server.sweep_base().quick()))
        .with(
            "cells",
            Json::Arr(specs.iter().map(CellSpec::to_json).collect()),
        );
    server_roundtrip(server, &request)
}

/// The scripted matrix-as-a-service session. Runs a real [`SweepServer`]
/// (empty cache, pinned cost model, capacity of exactly one heavy cell)
/// through three clients and asserts the scheduler's decisions at every
/// step — the artifact's tables are the deterministic session ledger;
/// wall-clock timings stay in `raw`.
fn server_service(ctx: &mut RunContext<'_>) -> Artifact {
    let id = ExperimentId::Server;
    let script = server_script();
    let cost = server_cost_model();
    let base = SweepBase::standard(ctx.quick);
    let price =
        |spec: &CellSpec| cost.price_micros(base.estimated_commands(spec), spec.device.rows());

    // Capacity: exactly one heavy cell. Alice's light batch stays calm
    // under it; Carol's four cold cells (two heavy + two multi-tenant)
    // storm it and shed down to the single surviving heavy cell.
    let capacity_micros = price(&script.carol[4]);
    let mut config = ServerConfig::standard(ctx.quick);
    config.workers = ctx.jobs.unwrap_or(config.workers);
    config.capacity_micros = capacity_micros;
    let mut server = SweepServer::new(config, cost);

    if ctx.verbose {
        println!(
            "[server] scripted service session: {} specs over 3 clients, capacity {capacity_micros}us...",
            script.all().len()
        );
    }

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut raw_steps: Vec<Json> = Vec::new();
    let mut log =
        |step: &str, client: &str, regime: &str, counts: &StepCounts, raw_steps: &mut Vec<Json>| {
            rows.push(vec![
                step.to_string(),
                client.to_string(),
                regime.to_string(),
                counts.computed.to_string(),
                counts.hits.to_string(),
                counts.rejected.to_string(),
                counts.shed.to_string(),
                counts.evicted.to_string(),
            ]);
            raw_steps.push(
                Json::obj()
                    .with("step", Json::str(step))
                    .with("client", Json::str(client))
                    .with("regime", Json::str(regime))
                    .with("computed", Json::uint(counts.computed))
                    .with("cache_hits", Json::uint(counts.hits))
                    .with("rejected", Json::uint(counts.rejected))
                    .with("shed", Json::uint(counts.shed))
                    .with("evicted", Json::uint(counts.evicted)),
            );
        };

    // Alice: cold sweep → warm resweep → invalidate one axis → resweep.
    let cold = server_submit(&mut server, "alice", &script.alice);
    let counts = submit_counts(&cold);
    assert_eq!(cold.field_str("regime"), Ok("calm"));
    assert_eq!((counts.computed, counts.hits), (4, 0));
    let charged_cold = cold
        .field("ledger")
        .and_then(|l| l.field_u64("charged_micros"))
        .expect("ledger");
    log("cold sweep", "alice", "calm", &counts, &mut raw_steps);

    let warm = server_submit(&mut server, "alice", &script.alice);
    let counts = submit_counts(&warm);
    assert_eq!((counts.computed, counts.hits), (0, 4));
    let charged_warm = warm
        .field("ledger")
        .and_then(|l| l.field_u64("charged_micros"))
        .expect("ledger");
    assert_eq!(charged_warm, charged_cold, "cache hits must charge nothing");
    log("warm resweep", "alice", "calm", &counts, &mut raw_steps);

    let invalidate = server_roundtrip(
        &mut server,
        &Json::obj()
            .with("op", Json::str("invalidate"))
            .with("axis", Json::str("workload"))
            .with("value", Json::str("light")),
    );
    let counts = StepCounts {
        evicted: invalidate.field_u64("evicted").expect("evicted"),
        ..StepCounts::default()
    };
    assert_eq!(counts.evicted, 2, "the light slice is two of alice's cells");
    log(
        "invalidate workload=light",
        "-",
        "-",
        &counts,
        &mut raw_steps,
    );

    let resweep = server_submit(&mut server, "alice", &script.alice);
    let counts = submit_counts(&resweep);
    assert_eq!(
        (counts.computed, counts.hits),
        (2, 2),
        "only the invalidated slice recomputes"
    );
    log(
        "incremental resweep",
        "alice",
        "calm",
        &counts,
        &mut raw_steps,
    );

    // Bob: an exact grant covers the first cell and rejects the second.
    let grant_micros = price(&script.bob[0]);
    server_roundtrip(
        &mut server,
        &Json::obj()
            .with("op", Json::str("budget"))
            .with("client", Json::str("bob"))
            .with("grant_micros", Json::uint(grant_micros)),
    );
    let bob = server_submit(&mut server, "bob", &script.bob);
    let counts = submit_counts(&bob);
    assert_eq!((counts.computed, counts.rejected), (1, 1));
    let results = bob.field_arr("results").expect("results");
    assert_eq!(results[1].field_str("reason"), Ok("budget_exhausted"));
    assert_eq!(results[1].field_u64("remaining_micros"), Ok(0));
    log("over-budget sweep", "bob", "calm", &counts, &mut raw_steps);

    // Carol: warm riders at priority 1, four cold cells storming the
    // capacity; shedding drops the lowest priority, newest first.
    let carol = server_submit(&mut server, "carol", &script.carol);
    let counts = submit_counts(&carol);
    assert_eq!(carol.field_str("regime"), Ok("storm"));
    assert_eq!((counts.computed, counts.hits, counts.shed), (1, 4, 3));
    let results = carol.field_arr("results").expect("results");
    assert_eq!(
        results[4].field_str("status"),
        Ok("done"),
        "the oldest cold cell survives the storm"
    );
    log("storm sweep", "carol", "storm", &counts, &mut raw_steps);

    let stats = server_roundtrip(&mut server, &Json::obj().with("op", Json::str("stats")));

    // Per-client accounting (deterministic: estimates charge, wall-clock
    // is metric-only and stays in `raw`).
    let clients = stats.field("clients").expect("clients");
    let Json::Obj(client_fields) = clients else {
        panic!("clients is an object");
    };
    let ledger_rows: Vec<Vec<String>> = client_fields
        .iter()
        .map(|(name, ledger)| {
            let f = |key: &str| ledger.field_u64(key).expect(key).to_string();
            vec![
                name.clone(),
                f("granted_micros"),
                f("charged_micros"),
                f("remaining_micros"),
                f("computed"),
                f("cache_hits"),
                f("rejected_budget"),
                f("shed"),
            ]
        })
        .collect();

    // Admission pricing across the axes the cost model keys on.
    let pricing_specs = [
        "Baseline (undefended):BFA:lpddr4_small:none",
        "Baseline (undefended):BFA:lpddr4_small:light",
        "Baseline (undefended):BFA:lpddr4_small:multi-tenant",
        "Baseline (undefended):BFA:lpddr4_small:heavy",
        "Baseline (undefended):BFA:lpddr4_small@3000:none",
        "Baseline (undefended):BFA:ddr4_32gb:none",
    ];
    let pricing_rows: Vec<Vec<String>> = pricing_specs
        .iter()
        .map(|text| {
            let spec = CellSpec::parse_compact(text).expect("pricing spec");
            vec![
                format!("{} × {}", spec.device.label(), spec.load.label()),
                spec.device.rows().to_string(),
                base.estimated_commands(&spec).to_string(),
                price(&spec).to_string(),
            ]
        })
        .collect();

    // Merge the session's computed cells into the shared batch cache:
    // server and batch paths share content-addressed keys, so `repro
    // workload` can reuse what the session just computed.
    for (key, cell) in server.into_cache() {
        ctx.cells.insert(key, cell);
    }

    let mut artifact = blank_artifact(id, id.config_hash(ctx.quick), 2024, ctx.quick);
    artifact.cache = MatrixRunSummary {
        cells: 22,
        cache_hits: 10,
    };
    artifact.tables = vec![
        TableArtifact::new(
            "Service session log (scripted; deterministic by construction)",
            &[
                "Step", "Client", "Regime", "Computed", "Hits", "Rejected", "Shed", "Evicted",
            ],
            rows,
        ),
        TableArtifact::new(
            "Per-client budget accounting (estimated microseconds)",
            &[
                "Client",
                "Granted",
                "Charged",
                "Remaining",
                "Computed",
                "Hits",
                "Rejected",
                "Shed",
            ],
            ledger_rows,
        ),
        TableArtifact::new(
            "Admission pricing (pinned calibration)",
            &["Device × load", "Rows", "Est. commands", "Price (us)"],
            pricing_rows,
        ),
    ];
    artifact.notes = vec![
        "Budget semantics: admission charges the deterministic estimate, never the measured \
         wall time, so `charged ≤ granted` holds by construction and the session ledger is \
         reproducible bit-for-bit; cache hits charge nothing, and rejected or shed cells are \
         refunded. Bob's exact grant covers his first cell and bounces the second with a \
         structured `budget_exhausted` rejection — no hang, no partial charge."
            .to_string(),
        "Regimes: Alice's batches fit the planning capacity (calm). Carol's four cold cells \
         exceed twice the capacity (storm), so the scheduler sheds the lowest-priority \
         pending cells newest-first down to capacity — her four priority-1 riders are warm \
         cache hits and never enter the backlog, and the oldest cold cell survives, keeping \
         the server live. Pricing scales with estimated commands × device rows: the same \
         no-load cell is ~256× dearer on ddr4_32gb than on lpddr4_small."
            .to_string(),
    ];
    artifact.raw = Some(
        Json::obj()
            .with("protocol", Json::uint(SERVER_PROTOCOL_VERSION))
            .with("capacity_micros", Json::uint(capacity_micros))
            .with("grant_micros_bob", Json::uint(grant_micros))
            .with("session", Json::Arr(raw_steps))
            .with("stats", stats),
    );
    artifact
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_ids_parse_round_trip() {
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::parse(id.name()), Some(id));
        }
        assert_eq!(ExperimentId::parse("nope"), None);
    }

    #[test]
    fn config_hashes_are_stable_and_mode_sensitive() {
        for id in ExperimentId::ALL {
            assert_eq!(id.config_hash(true), id.config_hash(true));
        }
        // Scaled experiments must key on quick mode; analytical ones
        // deliberately don't (same numbers either way).
        for id in [
            ExperimentId::Fig1b,
            ExperimentId::Table3,
            ExperimentId::Fig9,
        ] {
            assert_ne!(id.config_hash(true), id.config_hash(false));
        }
        assert_eq!(
            ExperimentId::Table2.config_hash(true),
            ExperimentId::Table2.config_hash(false)
        );
    }

    #[test]
    fn analytical_experiments_run_instantly_and_serialize() {
        let mut cells = HashMap::new();
        let mut ctx = RunContext {
            quick: true,
            jobs: Some(2),
            cells: &mut cells,
            verbose: false,
        };
        for id in [
            ExperimentId::Fig1a,
            ExperimentId::Table2,
            ExperimentId::Fig8a,
            ExperimentId::Fig8b,
            ExperimentId::Power,
        ] {
            let artifact = id.run(&mut ctx).expect("analytical run");
            assert_eq!(artifact.experiment, id.name());
            assert!(!artifact.tables.is_empty());
            let round = Artifact::parse(&artifact.to_json().render_pretty()).expect("round trip");
            assert_eq!(round.tables, artifact.tables);
            assert_eq!(round.config_hash, artifact.config_hash);
        }
    }
}
