//! The `repro chaos` campaign: scripted, seeded fault injection against
//! the matrix-as-a-service stack, with the resilience invariants the
//! hardening work promises asserted after every phase.
//!
//! The campaign arms one `dd-chaos` plan per phase — each phase turns on
//! the faults for exactly one layer, so a failed invariant points at the
//! layer that regressed — and records what fired into
//! `artifacts/CHAOS_report.json`:
//!
//! 1. **job-panic** — every executor attempt panics; the job must come
//!    back as a structured `job_failed` wire error with the admission
//!    charge refunded, and the server must keep serving.
//! 2. **job-stall** — every job stalls and every kernel chunk issue
//!    stalls; cells must still complete with bytes identical to the
//!    batch path (stalls lose time, never state).
//! 3. **cache-corruption** — every cell-cache entry is corrupted at
//!    load; entries must evict individually with accounting, and a
//!    disarmed reload of the same file must be clean.
//! 4. **client-transient** — submit attempts fail at the client; retry
//!    must be bounded (structured failure at the cap) and absorb partial
//!    fault rates.
//! 5. **connection-faults** — response frames are dropped and corrupted
//!    on a live Unix socket; the retrying client must converge, budget
//!    conservation must hold on the wire ledger (no double charge), and
//!    fault activity must be visible in the `stats` reply.
//! 6. **concurrent-stress** — several clients over Unix *and* TCP under
//!    interleaving-independent faults; only interleaving-independent
//!    invariants are asserted (per-client conservation, byte-identity,
//!    survival), because connection ids — and therefore which probes
//!    fire — depend on accept order in this phase.
//!
//! Every fault decision is a pure function of `(seed, site, key)` (see
//! `dd-chaos`), so phases 1–5 are exactly reproducible: same fires, same
//! outcomes, every run. The campaign *records* invariant failures
//! instead of panicking, so one regression produces a readable report
//! rather than a dead pipeline; `repro chaos` exits non-zero when any
//! invariant failed. The markdown spliced into EXPERIMENTS.md renders
//! only run-stable fields (rule sets, invariant outcomes, site
//! coverage), never the stress phase's interleaving-dependent counts.

use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::time::Duration;

use dd_baselines::{DefenseKind, ScenarioMatrix, VictimSpec};
use dd_chaos::{ChaosPlan, ChaosReport};
use dd_server::{CellSpec, ServerConfig, SweepServer};
use dnn_defender::{CostModel, Json, JsonError};

use crate::cache::{load_cell_cache_accounted, save_cell_cache};
use crate::serve::{
    batch_report, response_cells, BoundListener, Endpoint, Remote, RetryPolicy, ServiceClient,
    REFERENCE_DEVICE_ROWS,
};

/// Schema version of `CHAOS_report.json`.
pub const CHAOS_REPORT_SCHEMA_VERSION: u64 = 1;

/// The campaign seed. Every fault decision is pure in
/// `(seed, site, key)`, so this constant pins the whole campaign.
pub const CHAOS_CAMPAIGN_SEED: u64 = 0xdd0c_4a05;

/// Every injection site the production code threads through. The
/// campaign asserts all of them fired at least once.
pub const CHAOS_SITES: [&str; 7] = [
    "executor.job_panic",
    "executor.job_stall",
    "kernel.chunk_stall",
    "server.conn_drop",
    "server.frame_corrupt",
    "cache.corrupt_entry",
    "client.submit_transient",
];

/// One asserted resilience property and whether it held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invariant {
    /// What was asserted.
    pub name: String,
    /// Whether it held.
    pub pass: bool,
}

/// One campaign phase: which faults were armed, what fired, and which
/// invariants held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseReport {
    /// Phase name (stable identifier, e.g. `"job-panic"`).
    pub name: String,
    /// One-line description of the fault scenario.
    pub detail: String,
    /// Sites the phase's plan had rules for (run-stable).
    pub injected: Vec<String>,
    /// Per-site check/fire counts observed while the phase was armed
    /// (run-stable for phases 1–5; interleaving-dependent for the
    /// stress phase).
    pub sites: BTreeMap<String, (u64, u64)>,
    /// The asserted invariants, in assertion order.
    pub invariants: Vec<Invariant>,
}

impl PhaseReport {
    fn to_json(&self) -> Json {
        let sites = self
            .sites
            .iter()
            .map(|(site, &(checks, fires))| {
                (
                    site.clone(),
                    Json::obj()
                        .with("checks", Json::uint(checks))
                        .with("fires", Json::uint(fires)),
                )
            })
            .collect();
        Json::obj()
            .with("name", Json::str(&self.name))
            .with("detail", Json::str(&self.detail))
            .with(
                "injected",
                Json::Arr(self.injected.iter().map(Json::str).collect()),
            )
            .with("sites", Json::Obj(sites))
            .with(
                "invariants",
                Json::Arr(
                    self.invariants
                        .iter()
                        .map(|i| {
                            Json::obj()
                                .with("name", Json::str(&i.name))
                                .with("pass", Json::Bool(i.pass))
                        })
                        .collect(),
                ),
            )
    }

    fn from_json(value: &Json) -> Result<PhaseReport, JsonError> {
        let mut sites = BTreeMap::new();
        if let Some(Json::Obj(fields)) = value.get("sites") {
            for (site, stats) in fields {
                sites.insert(
                    site.clone(),
                    (stats.field_u64("checks")?, stats.field_u64("fires")?),
                );
            }
        }
        let injected = value
            .field_arr("injected")?
            .iter()
            .filter_map(|s| s.as_str().map(str::to_string))
            .collect();
        let invariants = value
            .field_arr("invariants")?
            .iter()
            .map(|i| {
                Ok(Invariant {
                    name: i.field_str("name")?.to_string(),
                    pass: i.field_bool("pass")?,
                })
            })
            .collect::<Result<_, JsonError>>()?;
        Ok(PhaseReport {
            name: value.field_str("name")?.to_string(),
            detail: value.field_str("detail")?.to_string(),
            injected,
            sites,
            invariants,
        })
    }
}

/// The `CHAOS_report.json` payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosCampaignReport {
    /// Schema version ([`CHAOS_REPORT_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Always `"chaos"`.
    pub experiment: String,
    /// Whether the campaign ran at smoke sizing.
    pub smoke: bool,
    /// The campaign seed.
    pub seed: u64,
    /// The phases, in execution order.
    pub phases: Vec<PhaseReport>,
    /// Sites that fired at least once across the campaign (sorted).
    pub sites_covered: Vec<String>,
}

impl ChaosCampaignReport {
    /// True when every asserted invariant held and every site fired.
    pub fn all_pass(&self) -> bool {
        self.failed_invariants().is_empty() && self.sites_missing().is_empty()
    }

    /// The invariants that failed, as `(phase, invariant)` labels.
    pub fn failed_invariants(&self) -> Vec<(String, String)> {
        self.phases
            .iter()
            .flat_map(|p| {
                p.invariants
                    .iter()
                    .filter(|i| !i.pass)
                    .map(move |i| (p.name.clone(), i.name.clone()))
            })
            .collect()
    }

    /// Known sites that never fired.
    pub fn sites_missing(&self) -> Vec<&'static str> {
        CHAOS_SITES
            .iter()
            .copied()
            .filter(|site| !self.sites_covered.iter().any(|s| s == site))
            .collect()
    }

    /// Serialize.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .with("schema_version", Json::uint(self.schema_version))
            .with("experiment", Json::str(&self.experiment))
            .with("smoke", Json::Bool(self.smoke))
            .with("seed", Json::uint(self.seed))
            .with(
                "phases",
                Json::Arr(self.phases.iter().map(PhaseReport::to_json).collect()),
            )
            .with(
                "sites_covered",
                Json::Arr(self.sites_covered.iter().map(Json::str).collect()),
            )
    }

    /// Parse a `CHAOS_report.json` document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] on malformed JSON, a missing/mistyped
    /// field, or an unsupported schema version.
    pub fn parse(text: &str) -> Result<ChaosCampaignReport, JsonError> {
        let json = Json::parse(text)?;
        let schema_version = json.field_u64("schema_version")?;
        if schema_version != CHAOS_REPORT_SCHEMA_VERSION {
            return Err(JsonError {
                message: format!(
                    "unsupported CHAOS_report schema v{schema_version} \
                     (this build reads v{CHAOS_REPORT_SCHEMA_VERSION})"
                ),
            });
        }
        Ok(ChaosCampaignReport {
            schema_version,
            experiment: json.field_str("experiment")?.to_string(),
            smoke: json.field_bool("smoke")?,
            seed: json.field_u64("seed")?,
            phases: json
                .field_arr("phases")?
                .iter()
                .map(PhaseReport::from_json)
                .collect::<Result<_, JsonError>>()?,
            sites_covered: json
                .field_arr("sites_covered")?
                .iter()
                .filter_map(|s| s.as_str().map(str::to_string))
                .collect(),
        })
    }

    /// The EXPERIMENTS.md section: run-stable fields only — the rule
    /// sets, the invariant outcomes, and the site coverage. Fire counts
    /// are deliberately omitted (the stress phase's depend on accept
    /// interleaving).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Scripted fault-injection campaign (`repro chaos`), seed `{:#x}`: every \
             phase arms one seeded `dd-chaos` plan, injects faults at the named sites, \
             and asserts the resilience invariants of that layer. Decisions are pure in \
             `(seed, site, key)`, so phases 1\u{2013}5 reproduce exactly; the concurrent \
             stress phase asserts only interleaving-independent invariants.\n\n",
            self.seed,
        ));
        out.push_str("| Phase | Faults injected | Invariants |\n");
        out.push_str("|---|---|---|\n");
        for phase in &self.phases {
            let invariants: Vec<String> = phase
                .invariants
                .iter()
                .map(|i| format!("{} ({})", i.name, if i.pass { "ok" } else { "FAILED" }))
                .collect();
            out.push_str(&format!(
                "| {} | {} | {} |\n",
                phase.name,
                phase.injected.join(", "),
                invariants.join("; "),
            ));
        }
        let missing = self.sites_missing();
        out.push_str(&format!(
            "\nSite coverage: {}/{} injection sites fired ({}).\n",
            CHAOS_SITES.len() - missing.len(),
            CHAOS_SITES.len(),
            if missing.is_empty() {
                "all sites covered".to_string()
            } else {
                format!("missing: {}", missing.join(", "))
            },
        ));
        out.push_str(&format!(
            "Campaign verdict: {}.\n",
            if self.all_pass() {
                "every invariant held, zero server deaths"
            } else {
                "INVARIANT FAILURES — see CHAOS_report.json"
            },
        ));
        out
    }
}

/// Accumulates one phase: invariant checks (failures are recorded and
/// printed, never panicked) plus the chaos accounting of the phase's
/// armed sessions.
struct Phase {
    report: PhaseReport,
}

impl Phase {
    fn new(name: &str, detail: &str, injected: &[&str]) -> Phase {
        Phase {
            report: PhaseReport {
                name: name.to_string(),
                detail: detail.to_string(),
                injected: injected.iter().map(|s| s.to_string()).collect(),
                sites: BTreeMap::new(),
                invariants: Vec::new(),
            },
        }
    }

    fn check(&mut self, name: &str, pass: bool) {
        if !pass {
            eprintln!(
                "repro chaos: [{}] invariant FAILED: {name}",
                self.report.name
            );
        }
        self.report.invariants.push(Invariant {
            name: name.to_string(),
            pass,
        });
    }

    fn absorb(&mut self, chaos: &ChaosReport) {
        for (site, stats) in &chaos.sites {
            let entry = self.report.sites.entry(site.clone()).or_insert((0, 0));
            entry.0 += stats.checks;
            entry.1 += stats.fires;
        }
    }
}

/// Always-fire rate.
const ALWAYS: u32 = 1_000_000;

/// Specs used across the campaign. Distinct `t_rh` overrides make
/// distinct content-addressed cells, so phases never cache-alias.
const SPEC_A: &str = "Baseline (undefended):BFA:lpddr4_small:none";
const SPEC_B: &str = "Baseline (undefended):BFA:lpddr4_small@4801:none";
const SPEC_C: &str = "Baseline (undefended):BFA:lpddr4_small@4802:none";
const SPEC_D: &str = "DNN-Defender:BFA:lpddr4_small:none";
/// A cell with background load: its simulation runs the workload
/// driver, whose batched replay consults the `kernel.chunk_stall`
/// probe on every chunk issue (load-free cells never reach it).
const SPEC_LOADED: &str = "Baseline (undefended):BFA:lpddr4_small:light";

fn campaign_server() -> SweepServer {
    let config = ServerConfig {
        quick: true,
        workers: 2,
        // Generous: regime classification stays out of Storm, so no
        // phase sheds for load reasons and "all done" is deterministic.
        capacity_micros: 600_000_000,
        default_grant_micros: 100_000_000,
    };
    // Fixed calibration (not the artifact dir's): campaign pricing must
    // not depend on whatever BENCH_kernel.json is lying around.
    SweepServer::new(config, CostModel::new(200_000_000, REFERENCE_DEVICE_ROWS))
}

fn parse_specs(specs: &[&str]) -> Result<Vec<CellSpec>, String> {
    specs.iter().map(|s| CellSpec::parse_compact(s)).collect()
}

fn submit_request(client: &str, specs: &[CellSpec]) -> Json {
    Json::obj()
        .with("op", Json::str("submit"))
        .with("client", Json::str(client))
        .with("quick", Json::Bool(true))
        .with(
            "cells",
            Json::Arr(specs.iter().map(CellSpec::to_json).collect()),
        )
}

fn submit_inline(server: &mut SweepServer, client: &str, specs: &[CellSpec]) -> Option<Json> {
    let line = submit_request(client, specs).render_compact();
    Json::parse(&server.handle_line(&line)).ok()
}

/// `granted + refunded == charged_gross + remaining` — the conservation
/// law, read off a wire ledger object.
pub fn ledger_balanced(ledger: &Json) -> bool {
    let field = |name| ledger.field_u64(name);
    match (
        field("granted_micros"),
        field("refunded_micros"),
        field("charged_gross_micros"),
        field("remaining_micros"),
    ) {
        (Ok(granted), Ok(refunded), Ok(gross), Ok(remaining)) => {
            granted + refunded == gross + remaining
        }
        _ => false,
    }
}

fn all_done(response: &Json) -> bool {
    response
        .field_arr("results")
        .map(|results| {
            !results.is_empty() && results.iter().all(|r| r.field_str("status") == Ok("done"))
        })
        .unwrap_or(false)
}

/// Response cells rendered as canonical `MatrixReport` bytes, for
/// byte-identity checks against [`batch_report`].
fn served_bytes(response: &Json) -> Option<String> {
    let cells = response_cells(response).ok()?;
    Some(
        dd_baselines::MatrixReport { cells }
            .to_json()
            .render_pretty(),
    )
}

/// Phase 1: every execution attempt panics. The injected panic must be
/// contained by the per-job `catch_unwind`, surfaced as a structured
/// `job_failed` error with the charge refunded, and the server must
/// answer the next request normally.
fn phase_job_panic() -> PhaseReport {
    let mut phase = Phase::new(
        "job-panic",
        "every executor attempt panics; jobs fail structurally with refunds",
        &["executor.job_panic"],
    );
    let session = dd_chaos::arm(
        ChaosPlan::inert(CHAOS_CAMPAIGN_SEED).with_rule("executor.job_panic", ALWAYS),
    );
    let mut server = campaign_server();
    let specs = parse_specs(&[SPEC_A]).expect("campaign specs parse");
    let response = submit_inline(&mut server, "panic-client", &specs);
    let hello = Json::parse(&server.handle_line("{\"op\":\"hello\"}")).ok();
    let chaos = session.finish();
    phase.absorb(&chaos);

    let result = response
        .as_ref()
        .and_then(|r| r.field_arr("results").ok())
        .and_then(|r| r.first());
    phase.check(
        "panicked job answers a structured job_failed error",
        result.map(|r| {
            r.field_str("status") == Ok("error") && r.field_str("kind") == Ok("job_failed")
        }) == Some(true),
    );
    let ledger = response.as_ref().and_then(|r| r.field("ledger").ok());
    phase.check(
        "failed job is fully refunded (charged 0)",
        ledger.map(|l| l.field_u64("charged_micros") == Ok(0)) == Some(true)
            && ledger
                .map(|l| l.field_u64("refunded_micros").unwrap_or(0) > 0)
                .unwrap_or(false),
    );
    phase.check(
        "budget conservation holds after the failure",
        ledger.map(ledger_balanced).unwrap_or(false),
    );
    phase.check(
        "every retry attempt drew the injected panic",
        chaos.fires_at("executor.job_panic") >= dd_server::MAX_JOB_ATTEMPTS as u64,
    );
    phase.check(
        "server survives injected worker panics",
        hello.map(|h| h.field_bool("ok") == Ok(true)) == Some(true),
    );
    phase.report
}

/// Phase 2: every job stalls and every kernel chunk issue stalls. Time
/// is lost, state must not be: the served cells must be byte-identical
/// to a disarmed batch run of the same specs.
fn phase_job_stall(smoke: bool) -> PhaseReport {
    let mut phase = Phase::new(
        "job-stall",
        "every job and kernel chunk issue stalls; cells stay byte-identical",
        &["executor.job_stall", "kernel.chunk_stall"],
    );
    let stall_specs: &[&str] = if smoke {
        &[SPEC_LOADED]
    } else {
        &[SPEC_LOADED, SPEC_B]
    };
    let specs = parse_specs(stall_specs).expect("campaign specs parse");
    let session = dd_chaos::arm(
        ChaosPlan::inert(CHAOS_CAMPAIGN_SEED)
            .with_rule("executor.job_stall", ALWAYS)
            .with_rule("kernel.chunk_stall", ALWAYS),
    );
    let mut server = campaign_server();
    let response = submit_inline(&mut server, "stall-client", &specs);
    let chaos = session.finish();
    phase.absorb(&chaos);

    phase.check(
        "stalled jobs complete",
        response.as_ref().map(all_done).unwrap_or(false),
    );
    phase.check(
        "budget conservation holds under stalls",
        response
            .as_ref()
            .and_then(|r| r.field("ledger").ok())
            .map(ledger_balanced)
            .unwrap_or(false),
    );
    phase.check(
        "job stalls fired on every job",
        chaos.fires_at("executor.job_stall") >= specs.len() as u64,
    );
    phase.check(
        "kernel chunk stalls fired",
        chaos.fires_at("kernel.chunk_stall") >= 1,
    );
    // Disarmed batch twin (fast, no stalls): the bytes must agree.
    let batch = batch_report(&specs, true)
        .map(|report| report.to_json().render_pretty())
        .ok();
    phase.check(
        "cells byte-identical to the batch path under stall faults",
        response.as_ref().and_then(served_bytes).is_some()
            && response.as_ref().and_then(served_bytes) == batch,
    );
    phase.report
}

/// Phase 3: every cell-cache entry is corrupted at load. Entries must
/// evict individually with accounting — never a crash — and a disarmed
/// reload of the identical file must be clean.
fn phase_cache_corruption() -> PhaseReport {
    let mut phase = Phase::new(
        "cache-corruption",
        "every cache entry is corrupted at load; eviction is accounted, reload is clean",
        &["cache.corrupt_entry"],
    );
    let dir = std::env::temp_dir().join(format!("dd-chaos-campaign-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("cells.json");

    let matrix = ScenarioMatrix::new(VictimSpec::tiny_mlp(7))
        .budget(2)
        .defense_kind(DefenseKind::Undefended)
        .threads(1);
    let (saved, key) = match matrix.run() {
        Ok(report) => {
            let key = matrix.cell_keys()[0].1;
            let cells = HashMap::from([(key, report.cells[0].clone())]);
            (save_cell_cache(&path, &cells).is_ok(), Some(key))
        }
        Err(_) => (false, None),
    };
    phase.check("seed cache written atomically", saved && key.is_some());

    let session = dd_chaos::arm(
        ChaosPlan::inert(CHAOS_CAMPAIGN_SEED).with_rule("cache.corrupt_entry", ALWAYS),
    );
    let corrupted = load_cell_cache_accounted(&path);
    let chaos = session.finish();
    phase.absorb(&chaos);

    phase.check(
        "corrupt entries evict individually with accounting",
        corrupted.cells.is_empty() && corrupted.corrupt_evicted == 1 && !corrupted.evicted_all,
    );
    phase.check(
        "corruption fired through the real decode path",
        chaos.fires_at("cache.corrupt_entry") == 1,
    );
    let clean = load_cell_cache_accounted(&path);
    phase.check(
        "disarmed reload of the same file is clean",
        clean.cells.len() == 1 && clean.corrupt_evicted == 0,
    );
    let _ = std::fs::remove_dir_all(&dir);
    phase.report
}

/// Phase 4: transient failures at the client's submit path. Retry must
/// be bounded (a structured failure once attempts are exhausted) and
/// must absorb partial fault rates transparently.
fn phase_client_transient() -> PhaseReport {
    let mut phase = Phase::new(
        "client-transient",
        "client submit attempts fail transiently; bounded retry absorbs or fails structurally",
        &["client.submit_transient"],
    );
    let policy = RetryPolicy {
        attempts: 3,
        base_delay_ms: 1,
        seed: CHAOS_CAMPAIGN_SEED,
    };

    // Sub-run 1: every attempt fails — the retry budget must bound the
    // loop and fail with a structured message, never hang.
    let session = dd_chaos::arm(
        ChaosPlan::inert(CHAOS_CAMPAIGN_SEED).with_rule("client.submit_transient", ALWAYS),
    );
    let mut client = ServiceClient::local(campaign_server(), policy);
    let exhausted = client.request("{\"op\":\"hello\"}");
    let chaos = session.finish();
    phase.absorb(&chaos);
    phase.check(
        "retry is bounded: exhausted attempts fail structurally",
        matches!(&exhausted, Err(e) if e.contains("after 3 attempt")),
    );
    phase.check(
        "every attempt drew the injected fault",
        chaos.fires_at("client.submit_transient") == 3,
    );

    // Sub-run 2: a 40% fault rate — the seeded backoff must converge on
    // every request (verified deterministic for the campaign seed).
    let session = dd_chaos::arm(
        ChaosPlan::inert(CHAOS_CAMPAIGN_SEED).with_rule("client.submit_transient", 400_000),
    );
    let policy = RetryPolicy {
        attempts: 6,
        ..policy
    };
    let mut client = ServiceClient::local(campaign_server(), policy);
    let specs = parse_specs(&[SPEC_C]).expect("campaign specs parse");
    let hello = client.request("{\"op\":\"hello\"}");
    let submit = client.request_json(&submit_request("transient-client", &specs));
    let chaos = session.finish();
    phase.absorb(&chaos);
    phase.check(
        "partial fault rates are absorbed by retry",
        hello.is_ok() && submit.as_ref().map(all_done).unwrap_or(false),
    );
    phase.check(
        "transient faults actually fired during the absorbed run",
        chaos.fires_at("client.submit_transient") >= 1,
    );
    phase.check(
        "budget conservation holds at the absorbing client",
        submit
            .as_ref()
            .ok()
            .and_then(|r| r.field("ledger").ok())
            .map(ledger_balanced)
            .unwrap_or(false),
    );
    phase.report
}

fn temp_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dd-chaos-{tag}-{}-{:?}.sock",
        std::process::id(),
        std::thread::current().id(),
    ))
}

type ServerHandle = std::thread::JoinHandle<Result<(), String>>;

fn spawn_campaign_server(endpoint: &Endpoint) -> Result<(ServerHandle, Remote), String> {
    let bound = BoundListener::bind(endpoint)?;
    let remote = match endpoint {
        Endpoint::Unix(path) => Remote::Unix(path.clone()),
        Endpoint::Tcp(_) => Remote::Tcp(
            bound
                .tcp_addr()
                .ok_or("no tcp address after bind")?
                .to_string(),
        ),
        Endpoint::Stdio => return Err("stdio endpoint in campaign".to_string()),
    };
    let handle =
        std::thread::spawn(move || bound.serve(campaign_server(), Some(Duration::from_secs(30))));
    Ok((handle, remote))
}

/// Phase 5: the wire under fire. Response frames are dropped and
/// corrupted on a live Unix socket; the retrying client must converge
/// on every request, the wire ledger must conserve budget (dropped
/// responses to charged work must not double-charge on retry), and the
/// armed fault plane must be visible in the `stats` reply.
fn phase_connection_faults() -> PhaseReport {
    let mut phase = Phase::new(
        "connection-faults",
        "server drops and corrupts response frames; the retrying client converges",
        &["server.conn_drop", "server.frame_corrupt"],
    );
    let socket = temp_socket("conn");
    let spawned = spawn_campaign_server(&Endpoint::Unix(socket.clone()));
    let Ok((server, remote)) = spawned else {
        phase.check("unix campaign server binds", false);
        return phase.report;
    };
    phase.check("unix campaign server binds", true);

    let session = dd_chaos::arm(
        ChaosPlan::inert(CHAOS_CAMPAIGN_SEED)
            .with_rule("server.conn_drop", 250_000)
            .with_rule("server.frame_corrupt", 500_000),
    );
    let mut client = ServiceClient::remote(
        remote,
        RetryPolicy {
            attempts: 8,
            base_delay_ms: 2,
            seed: CHAOS_CAMPAIGN_SEED,
        },
    );
    let grant = Json::obj()
        .with("op", Json::str("budget"))
        .with("client", Json::str("wire-client"))
        .with("grant_micros", Json::uint(50_000_000))
        .with("txn", Json::str("chaos-wire-grant"));
    let granted = client.request_json(&grant);
    let specs = parse_specs(&[SPEC_A, SPEC_D]).expect("campaign specs parse");
    let submit = client.request_json(&submit_request("wire-client", &specs));
    let stats = client.request("{\"op\":\"stats\"}");
    let chaos = session.finish();
    phase.absorb(&chaos);

    phase.check(
        "grant with txn token converges under dropped frames",
        granted.map(|g| g.field_bool("ok") == Ok(true)) == Ok(true),
    );
    phase.check(
        "submits converge under dropped and corrupted frames",
        submit.as_ref().map(all_done).unwrap_or(false),
    );
    phase.check(
        "budget conservation holds on the wire ledger (no double charge)",
        submit
            .as_ref()
            .ok()
            .and_then(|r| r.field("ledger").ok())
            .map(ledger_balanced)
            .unwrap_or(false),
    );
    phase.check(
        "fault activity is visible in the stats reply",
        stats
            .as_ref()
            .ok()
            .and_then(|s| s.field("chaos").ok())
            .map(|c| c.field_u64("seed") == Ok(CHAOS_CAMPAIGN_SEED))
            .unwrap_or(false),
    );
    phase.check(
        "connection faults actually fired",
        chaos.fires_at("server.conn_drop") >= 1 && chaos.fires_at("server.frame_corrupt") >= 1,
    );

    // Disarmed shutdown: the drain path itself is exercised (fault-free)
    // and the server thread must exit cleanly — zero process deaths.
    let bye = client.request("{\"op\":\"shutdown\"}");
    let joined = server.join();
    phase.check(
        "server shuts down cleanly after the fault window",
        bye.is_ok() && matches!(joined, Ok(Ok(()))),
    );
    phase.check("socket file removed on shutdown", !socket.exists());
    phase.report
}

/// Phase 6: concurrent stress over both transports. Several clients
/// submit in parallel while interleaving-independent faults (connection
/// drops, client transients, job stalls) are armed. Only
/// interleaving-independent invariants are asserted: per-client budget
/// conservation read from the wire, byte-identity of every served cell,
/// and server survival.
fn phase_concurrent_stress(smoke: bool) -> PhaseReport {
    let mut phase = Phase::new(
        "concurrent-stress",
        "parallel clients over unix+tcp under drops, transients, and stalls",
        &[
            "server.conn_drop",
            "client.submit_transient",
            "executor.job_stall",
        ],
    );
    let clients_per_transport = if smoke { 2 } else { 3 };
    let spec_sets: Vec<Vec<&str>> = if smoke {
        vec![vec![SPEC_A], vec![SPEC_B]]
    } else {
        vec![vec![SPEC_A, SPEC_B], vec![SPEC_C], vec![SPEC_D, SPEC_A]]
    };
    // Disarmed batch twins, one per spec set (computed once, compared
    // against every transport's serving of the same set).
    let batch_bytes: Vec<Option<String>> = spec_sets
        .iter()
        .map(|set| {
            let specs = parse_specs(set).ok()?;
            batch_report(&specs, true)
                .ok()
                .map(|report| report.to_json().render_pretty())
        })
        .collect();
    phase.check(
        "batch twins computed for every stress spec set",
        batch_bytes.iter().all(Option::is_some),
    );

    for transport in ["unix", "tcp"] {
        let endpoint = match transport {
            "unix" => Endpoint::Unix(temp_socket("stress")),
            _ => Endpoint::Tcp("127.0.0.1:0".to_string()),
        };
        let spawned = spawn_campaign_server(&endpoint);
        let Ok((server, remote)) = spawned else {
            phase.check(&format!("{transport} stress server binds"), false);
            continue;
        };

        let session = dd_chaos::arm(
            ChaosPlan::inert(CHAOS_CAMPAIGN_SEED)
                .with_rule("server.conn_drop", 150_000)
                .with_rule("client.submit_transient", 150_000)
                .with_rule("executor.job_stall", 300_000),
        );
        let outcomes: Vec<(String, Result<Json, String>, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients_per_transport)
                .map(|i| {
                    let remote = remote.clone();
                    let set = i % spec_sets.len();
                    let specs = parse_specs(&spec_sets[set]).expect("campaign specs parse");
                    let name = format!("stress-{transport}-{i}");
                    scope.spawn(move || {
                        let mut client = ServiceClient::remote(
                            remote,
                            RetryPolicy {
                                attempts: 10,
                                base_delay_ms: 2,
                                seed: CHAOS_CAMPAIGN_SEED ^ i as u64,
                            },
                        );
                        let grant = Json::obj()
                            .with("op", Json::str("budget"))
                            .with("client", Json::str(name.clone()))
                            .with("grant_micros", Json::uint(100_000_000))
                            .with("txn", Json::str(format!("chaos-stress-{name}")));
                        let submit = client
                            .request_json(&grant)
                            .and_then(|_| client.request_json(&submit_request(&name, &specs)));
                        (name, submit, set)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("stress client thread"))
                .collect()
        });
        let chaos = session.finish();
        phase.absorb(&chaos);

        phase.check(
            &format!("{transport}: every stressed client converges to all-done"),
            outcomes
                .iter()
                .all(|(_, r, _)| r.as_ref().map(all_done).unwrap_or(false)),
        );
        phase.check(
            &format!("{transport}: every served cell byte-identical to the batch path"),
            outcomes.iter().all(|(_, r, set)| {
                r.as_ref().ok().and_then(served_bytes).is_some()
                    && r.as_ref().ok().and_then(served_bytes) == batch_bytes[*set]
            }),
        );

        // Per-client conservation, read from the wire after the fault
        // window (a clean client so the read itself cannot flake).
        let mut reader = ServiceClient::remote(remote, RetryPolicy::default());
        let stats = reader.request("{\"op\":\"stats\"}");
        let balanced = stats
            .as_ref()
            .ok()
            .and_then(|s| s.field("clients").ok())
            .map(|clients| match clients {
                Json::Obj(entries) => {
                    !entries.is_empty() && entries.iter().all(|(_, l)| ledger_balanced(l))
                }
                _ => false,
            })
            .unwrap_or(false);
        phase.check(
            &format!("{transport}: per-client budget conservation holds on the wire"),
            balanced,
        );
        let bye = reader.request("{\"op\":\"shutdown\"}");
        let joined = server.join();
        phase.check(
            &format!("{transport}: server survives the stress window and drains"),
            bye.is_ok() && matches!(joined, Ok(Ok(()))),
        );
    }
    phase.report
}

/// Suppress the default panic-hook backtrace spam for *injected* panics
/// (they are expected and caught); real panics still print. Installed
/// once per process.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("chaos:"));
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Run the full campaign. Invariant failures are recorded in the report
/// (and printed as they happen), not panicked; callers gate on
/// [`ChaosCampaignReport::all_pass`].
///
/// # Errors
///
/// Returns an error only for harness-level failures (a campaign spec
/// that does not parse, a poisoned client thread) — never for a failed
/// resilience invariant.
pub fn run_chaos_campaign(smoke: bool) -> Result<ChaosCampaignReport, String> {
    quiet_injected_panics();
    let phases = vec![
        phase_job_panic(),
        phase_job_stall(smoke),
        phase_cache_corruption(),
        phase_client_transient(),
        phase_connection_faults(),
        phase_concurrent_stress(smoke),
    ];
    let mut covered: Vec<String> = phases
        .iter()
        .flat_map(|p| {
            p.sites
                .iter()
                .filter(|(_, &(_, fires))| fires > 0)
                .map(|(site, _)| site.clone())
        })
        .collect();
    covered.sort();
    covered.dedup();
    Ok(ChaosCampaignReport {
        schema_version: CHAOS_REPORT_SCHEMA_VERSION,
        experiment: "chaos".to_string(),
        smoke,
        seed: CHAOS_CAMPAIGN_SEED,
        phases,
        sites_covered: covered,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> ChaosCampaignReport {
        ChaosCampaignReport {
            schema_version: CHAOS_REPORT_SCHEMA_VERSION,
            experiment: "chaos".into(),
            smoke: true,
            seed: CHAOS_CAMPAIGN_SEED,
            phases: vec![PhaseReport {
                name: "job-panic".into(),
                detail: "every attempt panics".into(),
                injected: vec!["executor.job_panic".into()],
                sites: BTreeMap::from([("executor.job_panic".into(), (3, 3))]),
                invariants: vec![Invariant {
                    name: "refunded".into(),
                    pass: true,
                }],
            }],
            sites_covered: CHAOS_SITES.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn chaos_report_json_round_trips() {
        let report = sample_report();
        let text = report.to_json().render_pretty();
        let back = ChaosCampaignReport::parse(&text).expect("parse back");
        assert_eq!(back, report);
        assert_eq!(back.to_json().render_pretty(), text);
    }

    #[test]
    fn parse_rejects_foreign_schema() {
        let mut bad = sample_report();
        bad.schema_version = 99;
        assert!(ChaosCampaignReport::parse(&bad.to_json().render_pretty()).is_err());
    }

    #[test]
    fn verdict_reflects_invariants_and_coverage() {
        let good = sample_report();
        assert!(good.all_pass());
        assert!(good.sites_missing().is_empty());

        let mut failed = sample_report();
        failed.phases[0].invariants[0].pass = false;
        assert!(!failed.all_pass());
        assert_eq!(failed.failed_invariants().len(), 1);
        assert!(failed.render_markdown().contains("FAILED"));

        let mut uncovered = sample_report();
        uncovered.sites_covered.retain(|s| s != "server.conn_drop");
        assert!(!uncovered.all_pass());
        assert_eq!(uncovered.sites_missing(), vec!["server.conn_drop"]);
    }

    #[test]
    fn markdown_renders_stable_fields_only() {
        let report = sample_report();
        let md = report.render_markdown();
        assert!(md.contains("| job-panic |"));
        assert!(md.contains("executor.job_panic"));
        assert!(md.contains("all sites covered"));
        // Fire counts are interleaving-dependent in the stress phase and
        // must never appear in the spliced section.
        assert!(!md.contains("(3, 3)"));
    }
}
