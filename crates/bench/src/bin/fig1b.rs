//! Figure 1(b): targeted BFA vs random bit flips vs DNN-Defender on an
//! 8-bit ResNet-34 (ImageNet stand-in).
//!
//! The paper's headline motivation: a targeted BFA collapses accuracy in
//! <25 flips while >100 random flips barely move it, and the defended
//! system holds its clean accuracy.

use std::collections::HashSet;

use dd_attack::{attack_protected, run_bfa, run_random_attack, AttackConfig, ThreatModel};
use dd_bench::{pct, prepare_victim, print_table, quick_mode, DatasetKind};
use dd_nn::init::seeded_rng;
use dd_qnn::Architecture;

fn main() {
    let width = if quick_mode() { 2 } else { 4 };
    println!(
        "Training ResNet-34 (base width {width}) on {}...",
        DatasetKind::ImageNet.name()
    );
    let mut victim = prepare_victim(
        Architecture::ResNet34,
        DatasetKind::ImageNet,
        width,
        20240604,
    );
    println!(
        "Victim ready: {} quantizable layers, {} weight bits, clean accuracy {}",
        victim.model.num_qparams(),
        victim.model.total_bits(),
        pct(victim.clean_accuracy)
    );
    let chance = DatasetKind::ImageNet.chance();
    let snapshot = victim.model.snapshot_q();

    // Targeted BFA.
    let max_flips = if quick_mode() { 10 } else { 25 };
    let config = AttackConfig {
        target_accuracy: chance * 1.1,
        max_flips,
        ..Default::default()
    };
    let bfa = run_bfa(&mut victim.model, &victim.data, &config, &HashSet::new());
    victim.model.restore_q(&snapshot);

    // Random attack: 4x the budget.
    let mut rng = seeded_rng(7);
    let random_flips = if quick_mode() { 40 } else { 120 };
    let random = run_random_attack(
        &mut victim.model,
        &victim.data.eval_images,
        &victim.data.eval_labels,
        random_flips,
        random_flips / 8,
        &mut rng,
    );
    victim.model.restore_q(&snapshot);

    // Defended: profile the vulnerable bits, protect them, re-attack.
    // Round-1 profiling runs to the attacker's full budget (the naive
    // attacker continues its greedy path from the believed-flipped state,
    // i.e. one long BFA round); later rounds add adaptive-attack cover.
    let rounds = if quick_mode() { 2 } else { 4 };
    let profile_cfg = AttackConfig {
        target_accuracy: 0.0,
        ..config
    };
    let profile =
        dd_attack::multi_round_profile(&mut victim.model, &victim.data, &profile_cfg, rounds);
    let protected = profile.all();
    let defended = attack_protected(
        &mut victim.model,
        &victim.data,
        &config,
        &protected,
        ThreatModel::SemiWhiteBox,
    );
    victim.model.restore_q(&snapshot);

    let mut rows = Vec::new();
    for (flips, acc) in bfa.trajectory() {
        rows.push(vec!["BFA (targeted)".into(), flips.to_string(), pct(acc)]);
    }
    for (flips, acc) in &random.trajectory {
        rows.push(vec!["Random attack".into(), flips.to_string(), pct(*acc)]);
    }
    for (flips, acc) in &defended.trajectory {
        rows.push(vec!["DNN-Defender".into(), flips.to_string(), pct(*acc)]);
    }
    print_table(
        "Fig 1(b): accuracy vs accumulated bit flips (ResNet-34, ImageNet stand-in)",
        &["Curve", "Bit flips", "Accuracy"],
        &rows,
    );

    print_table(
        "Summary",
        &["Curve", "Flips spent", "Final accuracy"],
        &[
            vec![
                "BFA (targeted)".into(),
                bfa.bit_flips.to_string(),
                pct(bfa.final_accuracy),
            ],
            vec![
                "Random attack".into(),
                random_flips.to_string(),
                pct(random.final_accuracy),
            ],
            vec![
                "DNN-Defender (secured bits)".into(),
                format!("{} attempted", defended.attempted_flips),
                pct(defended.final_accuracy),
            ],
        ],
    );
    println!(
        "\nShape check: BFA needs {} flips to approach chance ({}), random keeps {} \
         after {} flips, defended system holds {} (clean {}).",
        bfa.bit_flips,
        pct(chance),
        pct(random.final_accuracy),
        random_flips,
        pct(defended.final_accuracy),
        pct(victim.clean_accuracy)
    );
}
