//! Figure 1(b): targeted BFA vs random bit flips vs DNN-Defender on an
//! 8-bit ResNet-34 (ImageNet stand-in).
//!
//! Thin wrapper over `dd_bench::experiments` — prefer `repro fig1b`,
//! which also writes the artifact and updates the docs.

fn main() {
    dd_bench::experiments::run_standalone(dd_bench::experiments::ExperimentId::Fig1b);
}
