//! Figure 1(a): RowHammer thresholds across DRAM generations.
//!
//! Regenerates the threshold survey the paper motivates with: the hammer
//! count needed to induce bit flips has dropped ~4.5× from DDR3 (new) to
//! LPDDR4 (new).

use dd_bench::print_table;
use dnn_defender::rh_thresholds;

fn main() {
    let points = rh_thresholds();
    let baseline = points
        .iter()
        .find(|p| p.generation == "LPDDR4 (new)")
        .expect("survey contains LPDDR4 (new)")
        .threshold;
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.generation.to_string(),
                format!("{}", p.threshold),
                format!("{:.1}x", p.threshold as f64 / baseline as f64),
            ]
        })
        .collect();
    print_table(
        "Fig 1(a): RowHammer threshold (T_RH) by DRAM generation",
        &["Generation", "T_RH (hammer count)", "vs LPDDR4 (new)"],
        &rows,
    );
    let ddr3_new = points
        .iter()
        .find(|p| p.generation == "DDR3 (new)")
        .unwrap();
    println!(
        "\nAttackers need ~{:.1}x fewer hammers on LPDDR4 (new) than DDR3 (new).",
        ddr3_new.threshold as f64 / baseline as f64
    );
}
