//! Figure 1(a): RowHammer thresholds across DRAM generations.
//!
//! Thin wrapper over `dd_bench::experiments` — prefer `repro fig1a`,
//! which also writes the artifact and updates the docs.

fn main() {
    dd_bench::experiments::run_standalone(dd_bench::experiments::ExperimentId::Fig1a);
}
