//! Workload: defense overhead and false-positive rates under benign
//! multi-tenant traffic, driven through the `dd-workload` engine.
//!
//! Thin wrapper over `dd_bench::experiments` — prefer `repro workload`,
//! which also caches matrix cells, writes the artifact (and the
//! `BENCH_workload.json` perf baseline), and updates the docs.

fn main() {
    dd_bench::experiments::run_standalone(dd_bench::experiments::ExperimentId::Workload);
}
