//! Table 2: hardware overhead of RowHammer mitigation frameworks on a
//! 32 GB / 16-bank DDR4 device.
//!
//! Thin wrapper over `dd_bench::experiments` — prefer `repro table2`,
//! which also writes the artifact and updates the docs.

fn main() {
    dd_bench::experiments::run_standalone(dd_bench::experiments::ExperimentId::Table2);
}
