//! Table 2: hardware overhead of RowHammer mitigation frameworks on a
//! 32 GB / 16-bank DDR4 device.

use dd_bench::print_table;
use dd_dram::DramConfig;
use dnn_defender::overhead_table;

fn main() {
    let config = DramConfig::ddr4_32gb();
    let table = overhead_table(&config);
    let rows: Vec<Vec<String>> = table
        .iter()
        .map(|e| {
            let involved: Vec<&str> = e.involved.iter().map(|k| k.label()).collect();
            let capacity: Vec<String> = e.capacity.iter().map(|c| c.render()).collect();
            vec![
                e.framework.to_string(),
                involved.join("-"),
                capacity.join(" + "),
                e.area.to_string(),
                format!("{:.2}", e.total_reported_mb()),
            ]
        })
        .collect();
    print_table(
        "Table 2: RowHammer mitigation hardware overhead (32GB, 16-bank DDR4)",
        &[
            "Framework",
            "Involved memory",
            "Capacity overhead",
            "Area overhead",
            "Total MB",
        ],
        &rows,
    );
    println!(
        "\nComputed from geometry: counter-per-row = {} MB, counter tree = {} MB.",
        dnn_defender::overhead::counter_per_row_bytes(&config) / (1 << 20) as u64,
        dnn_defender::overhead::counter_tree_bytes(&config) / (1 << 20) as u64,
    );
    println!("DNN-Defender: DRAM only, zero capacity overhead, 0.02% area.");
}
