//! `repro` — the one-command artifact pipeline.
//!
//! Runs every figure/table of the paper's evaluation, writes versioned
//! machine-readable artifacts (`artifacts/<experiment>.json` + `.csv`),
//! caches scenario-matrix cells by content hash so unchanged work is
//! never redone, and regenerates the marked sections of EXPERIMENTS.md
//! from the artifacts so the documented numbers cannot drift from what
//! the code produced.
//!
//! ```text
//! repro all                    # every experiment (reuses fresh artifacts)
//! repro table3 fig8a           # a subset
//! repro all --smoke            # smoke-sized (DD_QUICK=1) scaling
//! repro all --jobs 4           # cap matrix worker threads
//! repro all --force            # ignore caches, recompute everything
//! repro report                 # re-render EXPERIMENTS.md from artifacts
//! repro report --check         # exit non-zero if EXPERIMENTS.md would change
//! repro kernel                 # batched-vs-reference perf gate -> BENCH_kernel.json
//! repro serve --socket S.sock  # resident sweep server (matrix-as-a-service)
//! repro submit --socket S.sock DnnDefender:BFA:lpddr4_small:none
//!                              # price, run, and fetch cells from a server
//! ```

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dd_bench::cache::{load_cell_cache, save_cell_cache};
use dd_bench::chaos::{run_chaos_campaign, ChaosCampaignReport};
use dd_bench::corpus::{run_corpus_campaign, CorpusReport};
use dd_bench::experiments::{print_artifact, ExperimentId, RunContext};
use dd_bench::kernel::{
    run_kernel_bench, KernelBench, CHAOS_OVERHEAD_CEILING_PCT, KERNEL_SPEEDUP_FLOOR,
    OBS_OVERHEAD_CEILING_PCT, STREAMING_RATIO_FLOOR, SWEEP_SPEEDUP_FLOOR,
};
use dd_bench::report::{render_duration, splice_section, Artifact};
use dd_bench::serve::{run_serve, run_submit, ServeOptions, SubmitOptions};
use dd_bench::trace::{run_trace, TraceSummary};
use dnn_defender::Json;

struct Options {
    smoke: bool,
    jobs: Option<usize>,
    force: bool,
    check: bool,
    quiet: bool,
    sweep_cells: Option<usize>,
    artifacts_dir: PathBuf,
    commands: Vec<String>,
}

fn usage(code: u8) -> ExitCode {
    eprintln!(
        "usage: repro [OPTIONS] <COMMAND>...\n\
         \n\
         commands:\n\
         \x20 all            run every experiment\n\
         \x20 report         regenerate the marked sections of EXPERIMENTS.md from artifacts\n\
         \x20 kernel         benchmark the batched kernel vs the per-command reference path,\n\
         \x20                the cross-cell sweep kernel vs N per-cell batched replays, and\n\
         \x20                streaming v2-container replay vs the decoded-in-RAM path;\n\
         \x20                write BENCH_kernel.json, and fail below any committed floor\n\
         \x20 trace          run an observed smoke scenario (matrix slice + driver run +\n\
         \x20                server session) under dd-obs; write TRACE_summary.json and a\n\
         \x20                Perfetto-loadable TRACE_perfetto.json timeline\n\
         \x20 chaos          scripted fault-injection campaign (seeded dd-chaos plans\n\
         \x20                against executor, kernel, wire, cache, and client); asserts\n\
         \x20                budget conservation, byte-identical cells, and survival;\n\
         \x20                writes CHAOS_report.json and fails on any broken invariant\n\
         \x20 corpus         fleet-scale diurnal corpus sweep: one compressed fleet day\n\
         \x20                (load ramp, tenant churn, hot-key shift) through every\n\
         \x20                defense, with streaming-vs-materialized replay asserted\n\
         \x20                bit-identical; writes CORPUS_report.json and fails on any\n\
         \x20                broken invariant\n\
         \x20 serve          resident sweep server (line-delimited JSON on stdio,\n\
         \x20                --socket <S>, or --tcp <host:port>; budget-accounted,\n\
         \x20                work-stealing, cell-cached; --read-timeout-ms <N>)\n\
         \x20 submit         submit cell specs (defense:attacker:device:load[:priority])\n\
         \x20                to a server (--socket <S> / --tcp <A>, else in-process);\n\
         \x20                --client <C>, --grant-micros <N>, --out <F>, --check-batch,\n\
         \x20                --retries <N>, --retry-seed <N>\n\
         \x20 fig1a | fig1b | table2 | table3 | fig8a | fig8b | fig9 | power | workload | server\n\
         \n\
         options:\n\
         \x20 --smoke              smoke-sized experiments (sets DD_QUICK=1)\n\
         \x20 --jobs <N>           cap scenario-matrix worker threads\n\
         \x20 --sweep-cells <N>    with `kernel`: cells in the cross-cell sweep (default 12, min 2)\n\
         \x20 --force              ignore artifact and cell caches, recompute\n\
         \x20 --check              with `report`: fail instead of writing on drift\n\
         \x20 --quiet              suppress table output (summary lines only)\n\
         \x20 --artifacts-dir <D>  artifact directory (default: artifacts)"
    );
    ExitCode::from(code)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        smoke: false,
        jobs: None,
        force: false,
        check: false,
        quiet: false,
        sweep_cells: None,
        artifacts_dir: PathBuf::from("artifacts"),
        commands: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => opts.smoke = true,
            "--force" => opts.force = true,
            "--check" => opts.check = true,
            "--quiet" => opts.quiet = true,
            "--jobs" => {
                let value = args.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(n) if n > 0 => opts.jobs = Some(n),
                    _ => {
                        eprintln!("repro: --jobs needs a positive integer");
                        return Err(usage(1));
                    }
                }
            }
            "--sweep-cells" => {
                let value = args.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(n) if n >= 2 => opts.sweep_cells = Some(n),
                    _ => {
                        eprintln!("repro: --sweep-cells needs an integer of at least 2");
                        return Err(usage(1));
                    }
                }
            }
            "--artifacts-dir" => match args.next() {
                Some(dir) => opts.artifacts_dir = PathBuf::from(dir),
                None => {
                    eprintln!("repro: --artifacts-dir needs a path");
                    return Err(usage(1));
                }
            },
            "--help" | "-h" => return Err(usage(0)),
            cmd if !cmd.starts_with('-') => opts.commands.push(cmd.to_string()),
            unknown => {
                eprintln!("repro: unknown option `{unknown}`");
                return Err(usage(1));
            }
        }
    }
    if opts.commands.is_empty() {
        return Err(usage(1));
    }
    Ok(opts)
}

fn main() -> ExitCode {
    // The service subcommands own their arguments (cell specs would be
    // misread as experiment names by the pipeline parser).
    if let Some(first) = std::env::args().nth(1) {
        if first == "serve" || first == "submit" {
            return run_service(&first);
        }
    }
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(code) => return code,
    };
    if opts.smoke {
        // The experiment implementations scale off DD_QUICK (the same
        // switch the legacy binaries used); set it before any threads.
        std::env::set_var("DD_QUICK", "1");
    }

    let mut experiments = Vec::new();
    let mut want_report = false;
    let mut want_kernel = false;
    let mut want_trace = false;
    let mut want_chaos = false;
    let mut want_corpus = false;
    for command in &opts.commands {
        match command.as_str() {
            "all" => experiments.extend(ExperimentId::ALL),
            "report" => want_report = true,
            "kernel" => want_kernel = true,
            "trace" => want_trace = true,
            "chaos" => want_chaos = true,
            "corpus" => want_corpus = true,
            name => match ExperimentId::parse(name) {
                Some(id) => experiments.push(id),
                None => {
                    eprintln!("repro: unknown command `{name}`");
                    return usage(1);
                }
            },
        }
    }
    // Order-preserving dedup (`Vec::dedup` only merges adjacent repeats,
    // which `repro table3 all` would defeat).
    let mut seen = std::collections::HashSet::new();
    experiments.retain(|id| seen.insert(id.name()));

    if !experiments.is_empty() {
        if let Err(code) = run_experiments(&opts, &experiments) {
            return code;
        }
    }
    if want_kernel {
        if let Err(code) = run_kernel(&opts) {
            return code;
        }
    }
    if want_trace {
        if let Err(code) = run_trace_cmd(&opts) {
            return code;
        }
    }
    if want_chaos {
        if let Err(code) = run_chaos_cmd(&opts) {
            return code;
        }
    }
    if want_corpus {
        if let Err(code) = run_corpus_cmd(&opts) {
            return code;
        }
    }
    if want_report {
        return run_report(&opts);
    }
    ExitCode::SUCCESS
}

/// The `trace` subcommand: one observed smoke scenario through every
/// instrumented layer, exported as the deterministic summary artifact
/// and a Perfetto-loadable timeline.
fn run_trace_cmd(opts: &Options) -> Result<(), ExitCode> {
    if let Err(e) = std::fs::create_dir_all(&opts.artifacts_dir) {
        eprintln!("repro: cannot create {}: {e}", opts.artifacts_dir.display());
        return Err(ExitCode::FAILURE);
    }
    let quick = dd_bench::quick_mode();
    println!(
        "[trace] observed run ({} sizing): matrix slice + solo driver run + scripted \
         server session under dd-obs...",
        if quick { "smoke" } else { "full" }
    );
    let outcome = match run_trace(quick, opts.jobs) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("repro: trace scenario failed: {e:?}");
            return Err(ExitCode::FAILURE);
        }
    };
    let summary_path = opts.artifacts_dir.join("TRACE_summary.json");
    let perfetto_path = opts.artifacts_dir.join("TRACE_perfetto.json");
    if let Err(e) = std::fs::write(&summary_path, outcome.summary.to_json().render_pretty()) {
        eprintln!("repro: cannot write {}: {e}", summary_path.display());
        return Err(ExitCode::FAILURE);
    }
    if let Err(e) = std::fs::write(&perfetto_path, &outcome.perfetto) {
        eprintln!("repro: cannot write {}: {e}", perfetto_path.display());
        return Err(ExitCode::FAILURE);
    }
    println!(
        "[trace] {} spans, {} events, {} counters, {} histograms across the session -> {}",
        outcome.snapshot.spans.len(),
        outcome.snapshot.events.len(),
        outcome.snapshot.counters.len(),
        outcome.snapshot.hists.len(),
        summary_path.display(),
    );
    println!(
        "[trace] timeline -> {} (load at https://ui.perfetto.dev)",
        perfetto_path.display(),
    );
    Ok(())
}

/// The `chaos` subcommand: the scripted fault-injection campaign.
/// Writes `CHAOS_report.json` and fails when any resilience invariant
/// broke or any injection site never fired.
fn run_chaos_cmd(opts: &Options) -> Result<(), ExitCode> {
    if let Err(e) = std::fs::create_dir_all(&opts.artifacts_dir) {
        eprintln!("repro: cannot create {}: {e}", opts.artifacts_dir.display());
        return Err(ExitCode::FAILURE);
    }
    let smoke = dd_bench::quick_mode();
    println!(
        "[chaos] fault-injection campaign ({} sizing): executor, kernel, cache, \
         wire, and client faults under seeded dd-chaos plans...",
        if smoke { "smoke" } else { "full" }
    );
    let report = match run_chaos_campaign(smoke) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("repro: chaos campaign harness failed: {e}");
            return Err(ExitCode::FAILURE);
        }
    };
    let path = opts.artifacts_dir.join("CHAOS_report.json");
    if let Err(e) = std::fs::write(&path, report.to_json().render_pretty()) {
        eprintln!("repro: cannot write {}: {e}", path.display());
        return Err(ExitCode::FAILURE);
    }
    let invariants: usize = report.phases.iter().map(|p| p.invariants.len()).sum();
    println!(
        "[chaos] {} phases, {} invariants, {}/{} sites fired -> {}",
        report.phases.len(),
        invariants,
        report.sites_covered.len(),
        dd_bench::chaos::CHAOS_SITES.len(),
        path.display(),
    );
    if !report.all_pass() {
        for (phase, invariant) in report.failed_invariants() {
            eprintln!("repro: chaos invariant FAILED [{phase}] {invariant}");
        }
        for site in report.sites_missing() {
            eprintln!("repro: chaos site never fired: {site}");
        }
        eprintln!("repro: chaos campaign FAILED — see {}", path.display());
        return Err(ExitCode::FAILURE);
    }
    println!("[chaos] every invariant held; zero server deaths");
    Ok(())
}

/// The `corpus` subcommand: the fleet-scale diurnal corpus sweep.
/// Writes `CORPUS_report.json` and fails when any invariant broke —
/// above all, when streaming replay diverged from materialized replay
/// for any defense.
fn run_corpus_cmd(opts: &Options) -> Result<(), ExitCode> {
    if let Err(e) = std::fs::create_dir_all(&opts.artifacts_dir) {
        eprintln!("repro: cannot create {}: {e}", opts.artifacts_dir.display());
        return Err(ExitCode::FAILURE);
    }
    let smoke = dd_bench::quick_mode();
    println!(
        "[corpus] fleet-scale diurnal sweep ({} sizing): one compressed fleet day \
         (load ramp, tenant churn, hot-key shift) through every defense, plus \
         streaming-vs-materialized replay bit-identity...",
        if smoke { "smoke" } else { "full" }
    );
    let report = match run_corpus_campaign(smoke) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("repro: corpus campaign harness failed: {e:?}");
            return Err(ExitCode::FAILURE);
        }
    };
    let path = opts.artifacts_dir.join("CORPUS_report.json");
    if let Err(e) = std::fs::write(&path, report.to_json().render_pretty()) {
        eprintln!("repro: cannot write {}: {e}", path.display());
        return Err(ExitCode::FAILURE);
    }
    println!(
        "[corpus] {} phases x {} defenses, {} invariants; sample {} records, \
         v2/v1 {:.0}% -> {}",
        report.phases.len(),
        report.defenses.len(),
        report.invariants.len(),
        report.trace.records,
        if report.trace.v1_bytes == 0 {
            0.0
        } else {
            100.0 * report.trace.v2_bytes as f64 / report.trace.v1_bytes as f64
        },
        path.display(),
    );
    if !report.all_pass() {
        for name in report.failed_invariants() {
            eprintln!("repro: corpus invariant FAILED: {name}");
        }
        eprintln!("repro: corpus campaign FAILED — see {}", path.display());
        return Err(ExitCode::FAILURE);
    }
    println!("[corpus] every invariant held; streaming replay bit-identical across the roster");
    Ok(())
}

/// The `kernel` perf gate: benchmark the batched kernel against the
/// per-command reference path (equivalence-checked first), write
/// `BENCH_kernel.json`, and fail when the measured speedup regresses
/// below the committed floor.
fn run_kernel(opts: &Options) -> Result<(), ExitCode> {
    if let Err(e) = std::fs::create_dir_all(&opts.artifacts_dir) {
        eprintln!("repro: cannot create {}: {e}", opts.artifacts_dir.display());
        return Err(ExitCode::FAILURE);
    }
    let path = opts.artifacts_dir.join("BENCH_kernel.json");
    // The floors and the overhead ceilings travel in the committed
    // artifact: prefer the target dir's copy, fall back to the repo's
    // committed one, then to the built-in defaults.
    let (floor, sweep_floor, streaming_floor, obs_ceiling, chaos_ceiling) =
        [path.clone(), PathBuf::from("artifacts/BENCH_kernel.json")]
            .iter()
            .find_map(|p| {
                let text = std::fs::read_to_string(p).ok()?;
                let committed = KernelBench::parse(&text).ok()?;
                Some((
                    committed.floor,
                    committed.sweep_floor,
                    committed.streaming_floor,
                    committed.obs_overhead_ceiling_pct,
                    committed.chaos_overhead_ceiling_pct,
                ))
            })
            .unwrap_or((
                KERNEL_SPEEDUP_FLOOR,
                SWEEP_SPEEDUP_FLOOR,
                STREAMING_RATIO_FLOOR,
                OBS_OVERHEAD_CEILING_PCT,
                CHAOS_OVERHEAD_CEILING_PCT,
            ));

    let quick = dd_bench::quick_mode();
    println!(
        "[kernel] racing the batched kernel against the per-command reference path, and \
         the cross-cell sweep kernel against per-cell batched replays \
         ({} sizing; equivalence is asserted before timing)...",
        if quick { "smoke" } else { "full" }
    );
    let bench = run_kernel_bench(
        quick,
        floor,
        sweep_floor,
        streaming_floor,
        obs_ceiling,
        chaos_ceiling,
        opts.sweep_cells,
    );
    if let Err(e) = std::fs::write(&path, bench.to_json().render_pretty()) {
        eprintln!("repro: cannot write {}: {e}", path.display());
        return Err(ExitCode::FAILURE);
    }
    println!(
        "[kernel] reference {:.1}M cmd/s vs batch {:.1}M cmd/s -> {:.2}x speedup \
         (floor {:.2}x) -> {}",
        bench.reference.commands_per_sec / 1e6,
        bench.batch.commands_per_sec / 1e6,
        bench.speedup,
        bench.floor,
        path.display(),
    );
    println!(
        "[kernel] {} cells: per-cell batch {:.1}M cmd/s vs sweep {:.1}M cmd/s -> {:.2}x \
         matrix-throughput speedup (floor {:.2}x)",
        bench.sweep_cells,
        bench.cell_batch.commands_per_sec / 1e6,
        bench.sweep.commands_per_sec / 1e6,
        bench.sweep_speedup,
        bench.sweep_floor,
    );
    if bench.speedup < bench.floor {
        eprintln!(
            "repro: kernel speedup {:.2}x regressed below the committed floor {:.2}x — \
             the batched fast path lost its advantage (see docs/perf.md)",
            bench.speedup, bench.floor
        );
        return Err(ExitCode::FAILURE);
    }
    if bench.sweep_speedup < bench.sweep_floor {
        eprintln!(
            "repro: cross-cell sweep speedup {:.2}x regressed below the committed floor \
             {:.2}x — the sweep kernel lost its advantage over per-cell replay \
             (see docs/perf.md)",
            bench.sweep_speedup, bench.sweep_floor
        );
        return Err(ExitCode::FAILURE);
    }
    println!(
        "[kernel] streaming v2 replay {:.1}M cmd/s -> {:.2}x of the batched path \
         (floor {:.2}x)",
        bench.streaming.commands_per_sec / 1e6,
        bench.streaming_ratio,
        bench.streaming_floor,
    );
    if bench.streaming_ratio < bench.streaming_floor {
        eprintln!(
            "repro: streaming replay throughput fell to {:.2}x of the batched path, below \
             the committed floor {:.2}x — chunked container decode regressed \
             (see docs/perf.md)",
            bench.streaming_ratio, bench.streaming_floor
        );
        return Err(ExitCode::FAILURE);
    }
    println!(
        "[kernel] dd-obs overhead: batch {:+.2}% / sweep {:+.2}% with recording enabled \
         (ceiling {:.2}%)",
        bench.obs_overhead_batch_pct, bench.obs_overhead_sweep_pct, bench.obs_overhead_ceiling_pct,
    );
    if bench.obs_overhead_batch_pct > bench.obs_overhead_ceiling_pct
        || bench.obs_overhead_sweep_pct > bench.obs_overhead_ceiling_pct
    {
        eprintln!(
            "repro: dd-obs instrumentation overhead (batch {:+.2}%, sweep {:+.2}%) exceeds \
             the committed ceiling {:.2}% — the disabled-sink fast path is no longer cheap \
             enough on a kernel hot loop (see docs/observability.md)",
            bench.obs_overhead_batch_pct,
            bench.obs_overhead_sweep_pct,
            bench.obs_overhead_ceiling_pct,
        );
        return Err(ExitCode::FAILURE);
    }
    println!(
        "[kernel] dd-chaos fault-plane overhead: batch {:+.2}% / sweep {:+.2}% with an \
         armed inert plan (ceiling {:.2}%)",
        bench.chaos_overhead_batch_pct,
        bench.chaos_overhead_sweep_pct,
        bench.chaos_overhead_ceiling_pct,
    );
    if bench.chaos_overhead_batch_pct > bench.chaos_overhead_ceiling_pct
        || bench.chaos_overhead_sweep_pct > bench.chaos_overhead_ceiling_pct
    {
        eprintln!(
            "repro: dd-chaos fault-plane overhead (batch {:+.2}%, sweep {:+.2}%) exceeds \
             the committed ceiling {:.2}% — the fault-injection probes are no longer cheap \
             enough on a kernel hot loop (see docs/resilience.md)",
            bench.chaos_overhead_batch_pct,
            bench.chaos_overhead_sweep_pct,
            bench.chaos_overhead_ceiling_pct,
        );
        return Err(ExitCode::FAILURE);
    }
    Ok(())
}

/// Tally of reusable work: scenario cells for matrix experiments, one
/// unit for everything else, so "cache hits" means "fraction of the
/// expensive work skipped".
#[derive(Default)]
struct CacheTally {
    units: usize,
    hits: usize,
}

fn run_experiments(opts: &Options, experiments: &[ExperimentId]) -> Result<(), ExitCode> {
    if let Err(e) = std::fs::create_dir_all(&opts.artifacts_dir) {
        eprintln!("repro: cannot create {}: {e}", opts.artifacts_dir.display());
        return Err(ExitCode::FAILURE);
    }
    let cache_path = opts.artifacts_dir.join("cache").join("cells.json");
    let loaded = load_cell_cache(&cache_path);
    // `--force` hides the loaded entries from lookup so everything
    // recomputes, but they are merged back before saving — a forced
    // partial run must not discard cells it didn't recompute.
    let mut cells = if opts.force {
        HashMap::new()
    } else {
        loaded.clone()
    };
    let quick = dd_bench::quick_mode();
    let mut tally = CacheTally::default();

    for &id in experiments {
        let hash = id.config_hash(quick);
        let json_path = opts.artifacts_dir.join(format!("{}.json", id.name()));
        if !opts.force {
            if let Some(existing) = load_artifact(&json_path) {
                // The config hash is the whole reuse decision: it already
                // encodes quick/full mode for the experiments whose
                // numbers depend on it (the analytical ones are
                // mode-independent by construction).
                if existing.config_hash == hash {
                    let units = existing.cache.cells.max(1);
                    tally.units += units;
                    tally.hits += units;
                    println!(
                        "[{}] artifact up to date (config {:#018x}, {}) — reused",
                        id.name(),
                        hash,
                        render_duration(existing.wall_millis),
                    );
                    continue;
                }
            }
        }

        let mut ctx = RunContext {
            quick,
            jobs: opts.jobs,
            cells: &mut cells,
            verbose: !opts.quiet,
        };
        let artifact = match id.run(&mut ctx) {
            Ok(artifact) => artifact,
            Err(e) => {
                eprintln!("repro: {} failed: {e:?}", id.name());
                return Err(ExitCode::FAILURE);
            }
        };
        tally.units += artifact.cache.cells.max(1);
        tally.hits += artifact.cache.cache_hits;
        if let Err(e) = write_artifact(&opts.artifacts_dir, &artifact) {
            eprintln!("repro: cannot write artifact: {e}");
            return Err(ExitCode::FAILURE);
        }
        if id == ExperimentId::Workload {
            // Seed/extend the perf trajectory: wall-clock throughput of
            // the run that just executed (deliberately not part of the
            // deterministic artifact — perf varies across machines).
            if let Err(e) = write_workload_bench(&opts.artifacts_dir, &artifact) {
                eprintln!("repro: cannot write BENCH_workload.json: {e}");
                return Err(ExitCode::FAILURE);
            }
        }
        if !opts.quiet {
            print_artifact(&artifact);
        }
        println!(
            "[{}] done in {} (config {:#018x}; cache {}/{} cells) -> {}",
            id.name(),
            render_duration(artifact.wall_millis),
            artifact.config_hash,
            artifact.cache.cache_hits,
            artifact.cache.cells,
            json_path.display(),
        );
    }

    // Re-merge entries a `--force` run hid from lookup (fresh results
    // win), keeping the cache append-only for partial runs.
    if opts.force {
        for (key, cell) in loaded {
            cells.entry(key).or_insert(cell);
        }
    }
    // When every experiment ran, the union of their declared cell keys —
    // over BOTH quick and full scaling, so a `--smoke` pass never evicts
    // the expensive full-mode cells — is the complete live set; prune the
    // cache to it so stale entries from earlier configurations don't
    // accumulate forever. (Partial runs can't tell which unrequested
    // experiments own which keys, so they leave the cache append-only.)
    if ExperimentId::ALL.iter().all(|id| experiments.contains(id)) {
        let live: std::collections::HashSet<u64> = experiments
            .iter()
            .flat_map(|id| {
                let mut keys = id.declared_cell_keys(true);
                keys.extend(id.declared_cell_keys(false));
                keys
            })
            .collect();
        cells.retain(|key, _| live.contains(key));
    }
    if let Err(e) = save_cell_cache(&cache_path, &cells) {
        eprintln!("repro: cannot write cell cache: {e}");
        return Err(ExitCode::FAILURE);
    }
    let pct = if tally.units == 0 {
        100.0
    } else {
        100.0 * tally.hits as f64 / tally.units as f64
    };
    println!(
        "cache: {}/{} units reused ({pct:.0}%) — rerun with unchanged config to approach 100%",
        tally.hits, tally.units
    );
    Ok(())
}

fn run_report(opts: &Options) -> ExitCode {
    let docs_path = match locate_experiments_md() {
        Some(path) => path,
        None => {
            eprintln!("repro: cannot locate EXPERIMENTS.md (run from the repo root)");
            return ExitCode::FAILURE;
        }
    };
    // When the docs were found via the manifest fallback (running from
    // outside the repo root) and the artifacts dir was left at its
    // CWD-relative default, follow the docs: the artifacts live next to
    // EXPERIMENTS.md, not under the current directory.
    let mut artifacts_dir = opts.artifacts_dir.clone();
    if artifacts_dir == Path::new("artifacts") && !artifacts_dir.is_dir() {
        if let Some(root) = docs_path.parent() {
            artifacts_dir = root.join("artifacts");
        }
    }
    let original = match std::fs::read_to_string(&docs_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("repro: cannot read {}: {e}", docs_path.display());
            return ExitCode::FAILURE;
        }
    };
    let mut doc = original.clone();
    let mut spliced = 0usize;
    for id in ExperimentId::ALL {
        let json_path = artifacts_dir.join(format!("{}.json", id.name()));
        let Some(artifact) = load_artifact(&json_path) else {
            if opts.check {
                // A section that cannot be re-rendered cannot be verified
                // against its artifact — the drift gate must not pass it.
                eprintln!(
                    "repro: cannot verify `{}`: {} missing or unreadable — \
                     run `repro {}` (or `repro all`) and commit artifacts/",
                    id.name(),
                    json_path.display(),
                    id.name(),
                );
                return ExitCode::FAILURE;
            }
            println!(
                "[report] no artifact for `{}` ({} missing or unreadable) — section left as-is",
                id.name(),
                json_path.display()
            );
            continue;
        };
        match splice_section(&doc, id.name(), &artifact.render_markdown()) {
            Ok(updated) => {
                doc = updated;
                spliced += 1;
            }
            Err(e) => {
                eprintln!("repro: {} in {}", e, docs_path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    // The observability trace section renders from TRACE_summary.json
    // (deterministic aggregates only, so the splice is machine-independent
    // like the experiment sections).
    let trace_path = artifacts_dir.join("TRACE_summary.json");
    match std::fs::read_to_string(&trace_path)
        .ok()
        .and_then(|text| TraceSummary::parse(&text).ok())
    {
        Some(summary) => match splice_section(&doc, "trace", &summary.render_markdown()) {
            Ok(updated) => {
                doc = updated;
                spliced += 1;
            }
            Err(e) => {
                eprintln!("repro: {} in {}", e, docs_path.display());
                return ExitCode::FAILURE;
            }
        },
        None if opts.check => {
            eprintln!(
                "repro: cannot verify `trace`: {} missing or unreadable — \
                 run `repro trace` and commit artifacts/",
                trace_path.display(),
            );
            return ExitCode::FAILURE;
        }
        None => {
            println!(
                "[report] no artifact for `trace` ({} missing or unreadable) — section left as-is",
                trace_path.display()
            );
        }
    }
    // The resilience section renders from CHAOS_report.json (run-stable
    // fields only — rule sets, invariant outcomes, site coverage — so the
    // splice is machine-independent).
    let chaos_path = artifacts_dir.join("CHAOS_report.json");
    match std::fs::read_to_string(&chaos_path)
        .ok()
        .and_then(|text| ChaosCampaignReport::parse(&text).ok())
    {
        Some(report) => match splice_section(&doc, "chaos", &report.render_markdown()) {
            Ok(updated) => {
                doc = updated;
                spliced += 1;
            }
            Err(e) => {
                eprintln!("repro: {} in {}", e, docs_path.display());
                return ExitCode::FAILURE;
            }
        },
        None if opts.check => {
            eprintln!(
                "repro: cannot verify `chaos`: {} missing or unreadable — \
                 run `repro chaos` and commit artifacts/",
                chaos_path.display(),
            );
            return ExitCode::FAILURE;
        }
        None => {
            println!(
                "[report] no artifact for `chaos` ({} missing or unreadable) — section left as-is",
                chaos_path.display()
            );
        }
    }
    // The corpus section renders from CORPUS_report.json (deterministic
    // simulated counts only, so the splice is machine-independent).
    let corpus_path = artifacts_dir.join("CORPUS_report.json");
    match std::fs::read_to_string(&corpus_path)
        .ok()
        .and_then(|text| CorpusReport::parse(&text).ok())
    {
        Some(report) => match splice_section(&doc, "corpus", &report.render_markdown()) {
            Ok(updated) => {
                doc = updated;
                spliced += 1;
            }
            Err(e) => {
                eprintln!("repro: {} in {}", e, docs_path.display());
                return ExitCode::FAILURE;
            }
        },
        None if opts.check => {
            eprintln!(
                "repro: cannot verify `corpus`: {} missing or unreadable — \
                 run `repro corpus` and commit artifacts/",
                corpus_path.display(),
            );
            return ExitCode::FAILURE;
        }
        None => {
            println!(
                "[report] no artifact for `corpus` ({} missing or unreadable) — section left as-is",
                corpus_path.display()
            );
        }
    }
    if spliced == 0 {
        // "Up to date" with nothing verified would be a lie — this is a
        // misconfiguration (wrong directory, no artifacts yet), not a
        // clean result.
        eprintln!(
            "repro: no artifacts found under {} — nothing to render; run `repro all` first \
             (or pass --artifacts-dir)",
            artifacts_dir.display()
        );
        return ExitCode::FAILURE;
    }
    if doc == original {
        println!(
            "EXPERIMENTS.md is up to date ({spliced} generated sections match their artifacts)"
        );
        return ExitCode::SUCCESS;
    }
    if opts.check {
        eprintln!(
            "repro: EXPERIMENTS.md is out of date with artifacts/ — run `repro report` \
             and commit the result"
        );
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&docs_path, &doc) {
        eprintln!("repro: cannot write {}: {e}", docs_path.display());
        return ExitCode::FAILURE;
    }
    println!(
        "EXPERIMENTS.md regenerated ({spliced} sections) from {}",
        artifacts_dir.display()
    );
    ExitCode::SUCCESS
}

/// EXPERIMENTS.md in the current directory (normal case: run from the
/// repo root), else next to the workspace the binary was built from.
fn locate_experiments_md() -> Option<PathBuf> {
    let local = PathBuf::from("EXPERIMENTS.md");
    if local.exists() {
        return Some(local);
    }
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("EXPERIMENTS.md");
    manifest.exists().then_some(manifest)
}

fn load_artifact(path: &Path) -> Option<Artifact> {
    let text = std::fs::read_to_string(path).ok()?;
    match Artifact::parse(&text) {
        Ok(artifact) => Some(artifact),
        Err(e) => {
            eprintln!("repro: ignoring {}: {e}", path.display());
            None
        }
    }
}

fn write_artifact(dir: &Path, artifact: &Artifact) -> std::io::Result<()> {
    let stem = dir.join(&artifact.experiment);
    std::fs::write(
        stem.with_extension("json"),
        artifact.to_json().render_pretty(),
    )?;
    std::fs::write(stem.with_extension("csv"), artifact.to_csv())
}

/// The perf-trajectory baseline emitted by every executed `workload`
/// run: simulated commands per wall second through the workload engine,
/// matrix cells per second, and the cell-cache hit rate. Subsequent PRs
/// benchmark against the committed copy.
fn write_workload_bench(dir: &Path, artifact: &Artifact) -> std::io::Result<()> {
    let commands = artifact
        .raw
        .as_ref()
        .and_then(|raw| raw.get("total_commands"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let wall_secs = (artifact.wall_millis as f64 / 1000.0).max(1e-3);
    let executed = artifact
        .cache
        .cells
        .saturating_sub(artifact.cache.cache_hits);
    let json = Json::obj()
        .with("schema_version", Json::uint(1))
        .with("experiment", Json::str(&artifact.experiment))
        .with("config_hash", Json::hex(artifact.config_hash))
        .with("quick", Json::Bool(artifact.quick))
        .with("wall_millis", Json::uint(artifact.wall_millis))
        .with("commands", Json::uint(commands))
        .with(
            "commands_per_sec",
            Json::num((commands as f64 / wall_secs).round()),
        )
        .with("matrix_cells", Json::uint(artifact.cache.cells as u64))
        .with("matrix_cells_executed", Json::uint(executed as u64))
        .with("cells_per_sec", Json::num(executed as f64 / wall_secs))
        .with(
            "cache_hit_rate",
            Json::num(if artifact.cache.cells == 0 {
                0.0
            } else {
                artifact.cache.cache_hits as f64 / artifact.cache.cells as f64
            }),
        );
    std::fs::write(dir.join("BENCH_workload.json"), json.render_pretty())
}

/// Parse the args of `repro serve` / `repro submit` (the service
/// subcommands take their own options, so they bypass [`parse_args`]).
fn parse_service_args(command: &str) -> Result<(ServeOptions, SubmitOptions), ExitCode> {
    let mut serve = ServeOptions {
        artifacts_dir: PathBuf::from("artifacts"),
        socket: None,
        tcp: None,
        read_timeout_ms: None,
        jobs: None,
        capacity_micros: None,
        grant_micros: None,
        quick: false,
    };
    let mut submit = SubmitOptions {
        artifacts_dir: PathBuf::from("artifacts"),
        socket: None,
        tcp: None,
        client: "cli".to_string(),
        grant_micros: None,
        retries: None,
        retry_seed: None,
        out: None,
        check_batch: false,
        quick: false,
        quiet: false,
        specs: Vec::new(),
    };
    let need = |flag: &str, value: Option<String>| {
        value.ok_or_else(|| {
            eprintln!("repro {command}: {flag} needs a value");
            usage(1)
        })
    };
    let mut args = std::env::args().skip(2);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => {
                serve.quick = true;
                submit.quick = true;
            }
            "--quiet" => submit.quiet = true,
            "--check-batch" => submit.check_batch = true,
            "--socket" => {
                let path = PathBuf::from(need("--socket", args.next())?);
                serve.socket = Some(path.clone());
                submit.socket = Some(path);
            }
            "--tcp" => {
                let addr = need("--tcp", args.next())?;
                serve.tcp = Some(addr.clone());
                submit.tcp = Some(addr);
            }
            "--read-timeout-ms" => match need("--read-timeout-ms", args.next())?.parse::<u64>() {
                Ok(ms) => serve.read_timeout_ms = Some(ms),
                Err(_) => {
                    eprintln!("repro {command}: --read-timeout-ms needs an integer");
                    return Err(usage(1));
                }
            },
            "--retries" => match need("--retries", args.next())?.parse::<u32>() {
                Ok(n) if n > 0 => submit.retries = Some(n),
                _ => {
                    eprintln!("repro {command}: --retries needs a positive integer");
                    return Err(usage(1));
                }
            },
            "--retry-seed" => match need("--retry-seed", args.next())?.parse::<u64>() {
                Ok(seed) => submit.retry_seed = Some(seed),
                Err(_) => {
                    eprintln!("repro {command}: --retry-seed needs an integer");
                    return Err(usage(1));
                }
            },
            "--artifacts-dir" => {
                let dir = PathBuf::from(need("--artifacts-dir", args.next())?);
                serve.artifacts_dir = dir.clone();
                submit.artifacts_dir = dir;
            }
            "--client" => submit.client = need("--client", args.next())?,
            "--out" => submit.out = Some(PathBuf::from(need("--out", args.next())?)),
            "--jobs" => match need("--jobs", args.next())?.parse::<usize>() {
                Ok(n) if n > 0 => serve.jobs = Some(n),
                _ => {
                    eprintln!("repro {command}: --jobs needs a positive integer");
                    return Err(usage(1));
                }
            },
            "--capacity-micros" => match need("--capacity-micros", args.next())?.parse::<u64>() {
                Ok(n) => serve.capacity_micros = Some(n),
                Err(_) => {
                    eprintln!("repro {command}: --capacity-micros needs an integer");
                    return Err(usage(1));
                }
            },
            "--grant-micros" => match need("--grant-micros", args.next())?.parse::<u64>() {
                Ok(n) => {
                    serve.grant_micros = Some(n);
                    submit.grant_micros = Some(n);
                }
                Err(_) => {
                    eprintln!("repro {command}: --grant-micros needs an integer");
                    return Err(usage(1));
                }
            },
            "--help" | "-h" => return Err(usage(0)),
            spec if !spec.starts_with('-') => submit.specs.push(spec.to_string()),
            unknown => {
                eprintln!("repro {command}: unknown option `{unknown}`");
                return Err(usage(1));
            }
        }
    }
    Ok((serve, submit))
}

/// The `serve`/`submit` service subcommands, dispatched before the
/// experiment-pipeline arg parsing (they accept cell specs as bare
/// arguments, which the pipeline would read as experiment names).
fn run_service(command: &str) -> ExitCode {
    let (serve, submit) = match parse_service_args(command) {
        Ok(parsed) => parsed,
        Err(code) => return code,
    };
    let result = match command {
        "serve" => {
            if !submit.specs.is_empty() {
                eprintln!("repro serve: unexpected arguments {:?}", submit.specs);
                return usage(1);
            }
            run_serve(&serve)
        }
        _ => run_submit(&submit),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("repro {command}: {e}");
            ExitCode::FAILURE
        }
    }
}
