//! Figure 9: adaptive white-box BFA vs secured-bit budget (SB) for
//! (a) VGG-11 / CIFAR-10, (b) ResNet-18 / ImageNet, (c) ResNet-34 /
//! ImageNet.
//!
//! The defense profiles vulnerable bits for enough rounds to cover the
//! largest SB budget; each curve protects a priority prefix of that list
//! and lets the defense-aware attacker flip `SB + k` additional bits
//! (k ∈ {0, 20, 40, 60, 80, 100}). The paper's SB values are scaled to
//! each mini model's bit count (same fractions, see EXPERIMENTS.md).

use dd_attack::{attack_protected, AttackConfig, ThreatModel};
use dd_bench::{pct, prepare_victim, print_table, quick_mode, DatasetKind, Victim};
use dd_qnn::Architecture;

/// Paper SB budgets as fractions of the model's total bits.
fn sb_fractions(arch: Architecture) -> Vec<f64> {
    // Paper absolute SBs / paper model bits (see EXPERIMENTS.md):
    // VGG-11: 2k..24k of ~74M bits; ResNet-18: 16k..311k of ~93M;
    // ResNet-34: 8k..151k of ~174M.
    match arch {
        Architecture::Vgg11 => vec![2.7e-5, 5.4e-5, 1.08e-4, 1.9e-4, 3.2e-4],
        Architecture::ResNet18 => vec![1.7e-4, 4.6e-4, 1.0e-3, 1.7e-3, 3.3e-3],
        Architecture::ResNet34 => vec![4.6e-5, 1.6e-4, 3.2e-4, 5.7e-4, 8.7e-4],
        _ => vec![1e-4, 2e-4, 4e-4, 8e-4, 1.6e-3],
    }
}

fn run_model(arch: Architecture, dataset: DatasetKind, seed: u64) {
    let width = if quick_mode() { 2 } else { 4 };
    println!("\nTraining {} on {}...", arch.name(), dataset.name());
    let mut victim: Victim = prepare_victim(arch, dataset, width, seed);
    println!(
        "clean accuracy {}, total bits {}",
        pct(victim.clean_accuracy),
        victim.model.total_bits()
    );
    let total_bits = victim.model.total_bits() as f64;
    // Scale SB budgets but keep them small multiples of what profiling
    // can discover (each profiling round finds ~max_flips bits).
    let mut budgets: Vec<usize> = sb_fractions(arch)
        .iter()
        .map(|f| ((f * total_bits).round() as usize).max(4))
        .collect();
    budgets.dedup();

    let per_round = if quick_mode() { 8 } else { 20 };
    let profile_cfg = AttackConfig {
        target_accuracy: dataset.chance() * 1.2,
        max_flips: per_round,
        ..Default::default()
    };
    let max_budget = *budgets.last().expect("budgets non-empty");
    let rounds = max_budget.div_ceil(per_round) + 1;
    println!("profiling {rounds} rounds x {per_round} flips to cover SB = {max_budget}...");
    let profile =
        dd_attack::multi_round_profile(&mut victim.model, &victim.data, &profile_cfg, rounds);
    println!("profiled {} vulnerable bits", profile.bits.len());

    let extra = if quick_mode() { 20 } else { 100 };
    let attack_cfg = AttackConfig {
        target_accuracy: 0.0, // run the full budget; we want the curve
        max_flips: extra,
        record_every: extra.div_ceil(5),
        ..Default::default()
    };

    let snapshot = victim.model.snapshot_q();
    let mut rows = Vec::new();
    for &sb in &budgets {
        let sb_eff = sb.min(profile.bits.len());
        let protected = profile.prefix(sb_eff);
        let report = attack_protected(
            &mut victim.model,
            &victim.data,
            &attack_cfg,
            &protected,
            ThreatModel::WhiteBox,
        );
        victim.model.restore_q(&snapshot);
        let mut cells = vec![format!("SB = {sb_eff}")];
        // Accuracy at SB+0, +20, ..., +100 attempted extra flips.
        let mut traj = report.trajectory.clone();
        traj.push((report.attempted_flips, report.final_accuracy));
        for k in (0..=extra).step_by(attack_cfg.record_every.max(1)) {
            let acc = traj
                .iter()
                .rfind(|(f, _)| *f <= k)
                .map(|(_, a)| *a)
                .unwrap_or(report.clean_accuracy);
            cells.push(pct(acc));
        }
        rows.push(cells);
    }
    let mut headers: Vec<String> = vec!["Secured bits".into()];
    for k in (0..=extra).step_by(attack_cfg.record_every.max(1)) {
        headers.push(format!("SB+{k}"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        &format!(
            "Fig 9: {} / {} — accuracy vs SB + extra flips",
            arch.name(),
            dataset.name()
        ),
        &header_refs,
        &rows,
    );
}

fn main() {
    run_model(Architecture::Vgg11, DatasetKind::Cifar10, 91);
    run_model(Architecture::ResNet18, DatasetKind::ImageNet, 92);
    run_model(Architecture::ResNet34, DatasetKind::ImageNet, 93);
    println!(
        "\nShape check: larger SB forces the adaptive attacker to spend more extra \
         flips for the same damage; the largest SB keeps accuracy near clean \
         (attack degraded to random level)."
    );
}
