//! Figure 9: adaptive white-box BFA vs secured-bit budget (SB) for
//! (a) VGG-11 / CIFAR-10, (b) ResNet-18 / ImageNet, (c) ResNet-34 /
//! ImageNet.
//!
//! Thin wrapper over `dd_bench::experiments` — prefer `repro fig9`,
//! which also writes the artifact and updates the docs.

fn main() {
    dd_bench::experiments::run_standalone(dd_bench::experiments::ExperimentId::Fig9);
}
