//! Power comparison (§5.1, final paragraph): defense energy/power of
//! DNN-Defender vs SHADOW / RRS / SRS at each threshold's maximum attack
//! rate.
//!
//! Thin wrapper over `dd_bench::experiments` — prefer `repro power`,
//! which also writes the artifact and updates the docs.

fn main() {
    dd_bench::experiments::run_standalone(dd_bench::experiments::ExperimentId::Power);
}
