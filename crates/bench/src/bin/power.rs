//! Power comparison (§5.1, final paragraph): defense energy/power of
//! DNN-Defender vs SHADOW / RRS / SRS at each threshold's maximum attack
//! rate.

use dd_bench::print_table;
use dd_dram::DramConfig;
use dnn_defender::{power_table, saving_versus};

fn main() {
    let config = DramConfig::lpddr4_small();
    for t_rh in [1000u64, 2000, 4000, 8000] {
        let rows: Vec<Vec<String>> = power_table(&config, t_rh)
            .iter()
            .map(|p| {
                vec![
                    p.name.clone(),
                    format!("{:.1}", p.defense_energy_pj / 1e3),
                    format!("{:.4}", p.defense_power_mw),
                ]
            })
            .collect();
        print_table(
            &format!(
                "Defense energy per T_ref at T_RH = {}k (max attack rate)",
                t_rh / 1000
            ),
            &["Scheme", "Energy (nJ)", "Power (mW)"],
            &rows,
        );
    }
    println!(
        "\nAt T_RH = 1k: DNN-Defender saves {:.1}% vs SHADOW (paper: ~1.6%) and is {:.1}x \
         cheaper than SRS (paper: 3.4x).",
        100.0 * saving_versus(&config, 1000, "SHADOW"),
        1.0 / (1.0 - saving_versus(&config, 1000, "SRS")),
    );
}
