//! Figure 8(a): time-to-break (days) and maximum defended BFAs for
//! DNN-Defender vs SHADOW across RowHammer thresholds.

use dd_bench::print_table;
use dd_dram::DramConfig;
use dnn_defender::{DefenseOp, SecurityModel};

fn main() {
    let model = SecurityModel::from_config(&DramConfig::lpddr4_small());
    let thresholds = [1000u64, 2000, 4000, 8000];
    let rows: Vec<Vec<String>> = thresholds
        .iter()
        .map(|&t_rh| {
            let dd = model.time_to_break_days(t_rh, DefenseOp::DnnDefenderSwap);
            let shadow = model.time_to_break_days(t_rh, DefenseOp::ShadowShuffle);
            vec![
                format!("{}k", t_rh / 1000),
                format!("{dd:.0}"),
                format!("{shadow:.0}"),
                format!("{:+.0}", dd - shadow),
                format!("{}", model.max_defended_bfas(t_rh)),
                format!("{}", model.max_bfas_per_tref(t_rh)),
            ]
        })
        .collect();
    print_table(
        "Fig 8(a): time-to-break and BFA capacities vs T_RH",
        &[
            "T_RH",
            "DNN-Defender (days)",
            "SHADOW (days)",
            "DD advantage",
            "Max defended BFAs",
            "Attacker BFAs / T_ref",
        ],
        &rows,
    );
    let dd4k = model.time_to_break_days(4000, DefenseOp::DnnDefenderSwap);
    let sh4k = model.time_to_break_days(4000, DefenseOp::ShadowShuffle);
    println!(
        "\nAt T_RH = 4k: DNN-Defender {dd4k:.0} days vs SHADOW {sh4k:.0} days \
         (paper: ~1180 vs ~894; DD protects {:.0} more days).",
        dd4k - sh4k
    );
}
