//! Figure 8(a): time-to-break (days) and maximum defended BFAs for
//! DNN-Defender vs SHADOW across RowHammer thresholds.
//!
//! Thin wrapper over `dd_bench::experiments` — prefer `repro fig8a`,
//! which also writes the artifact and updates the docs.

fn main() {
    dd_bench::experiments::run_standalone(dd_bench::experiments::ExperimentId::Fig8a);
}
