//! Figure 8(b): defense latency per refresh interval vs number of BFAs,
//! DNN-Defender vs SHADOW at T_RH ∈ {1k, 2k, 4k, 8k}.
//!
//! The x-axis anchor points 7K/14K/28K/55K are the maximum allowable
//! BFAs per `T_ref` at thresholds 8k/4k/2k/1k respectively.

use dd_bench::print_table;
use dd_dram::DramConfig;
use dnn_defender::{DefenseOp, SecurityModel};

fn main() {
    let model = SecurityModel::from_config(&DramConfig::lpddr4_small());
    let bfa_points = [7_000u64, 14_000, 28_000, 55_000];

    let mut rows = Vec::new();
    for &n in &bfa_points {
        let dd = model.latency_per_tref(n, DefenseOp::DnnDefenderSwap);
        let shadow = model.latency_per_tref(n, DefenseOp::ShadowShuffle);
        rows.push(vec![
            format!("{}K", n / 1000),
            format!("{:.2}", dd.as_millis_f64()),
            format!("{:.2}", shadow.as_millis_f64()),
            format!(
                "{:.1}%",
                100.0 * (1.0 - dd.as_millis_f64() / shadow.as_millis_f64())
            ),
        ]);
    }
    print_table(
        "Fig 8(b): defense latency per T_ref (ms) vs number of BFAs",
        &[
            "# BFAs",
            "DNN-Defender (ms)",
            "SHADOW (ms)",
            "DD latency saving",
        ],
        &rows,
    );

    // Per-threshold view: which anchor point each threshold permits.
    let mut rows = Vec::new();
    for (t_rh, n) in [
        (8000u64, 7_000u64),
        (4000, 14_000),
        (2000, 28_000),
        (1000, 55_000),
    ] {
        let capacity = model.max_bfas_per_tref(t_rh);
        rows.push(vec![
            format!("{}k", t_rh / 1000),
            format!("{capacity}"),
            format!("{n}"),
        ]);
    }
    print_table(
        "Anchor points: attacker BFA capacity per T_ref by threshold",
        &["T_RH", "Model capacity", "Paper anchor"],
        &rows,
    );
    println!(
        "\nLatency increase decelerates and saturates toward T_ref = {} ms; \
         DNN-Defender stays below SHADOW at every point.",
        model.timing.t_ref.as_millis_f64()
    );
}
