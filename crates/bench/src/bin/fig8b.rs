//! Figure 8(b): defense latency per refresh interval vs number of BFAs,
//! DNN-Defender vs SHADOW at T_RH ∈ {1k, 2k, 4k, 8k}.
//!
//! Thin wrapper over `dd_bench::experiments` — prefer `repro fig8b`,
//! which also writes the artifact and updates the docs.

fn main() {
    dd_bench::experiments::run_standalone(dd_bench::experiments::ExperimentId::Fig8b);
}
