//! Table 3: defense comparison on ResNet-20 / CIFAR-10 (stand-in):
//! clean accuracy, post-attack accuracy, and bit-flip budget for the
//! baseline, software defenses, and hardware defenses.

use dd_attack::{AttackConfig, AttackData};
use dd_baselines::{
    binarize_weights, clip_weights, evaluate_defense, DefenseEvalRow, LandingFilter, SwapScheme,
};
use dd_bench::{pct, prepare_victim, print_table, quick_mode, DatasetKind};
use dd_nn::train::{train, TrainConfig};
use dd_nn::Network;
use dd_qnn::{build_model, Architecture, ModelConfig, QModel};

/// Budget for undefended/software rows (attack stops early on collapse).
fn soft_budget() -> usize {
    if quick_mode() { 12 } else { 60 }
}

/// Budget for hardware-defense rows (scaled from the paper's attempt
/// counts; the leak rate is what matters, so these stay large).
fn hw_budget(paper: usize) -> usize {
    if quick_mode() { 12 } else { paper.min(350) }
}

/// Two-phase training mirroring `prepare_victim`'s recipe.
fn train_fresh(mc: &ModelConfig, dataset: &dd_nn::Dataset, rng: &mut rand::rngs::StdRng) -> Network {
    let epochs = if quick_mode() { 5 } else { 14 };
    let tc = TrainConfig { epochs, batch_size: 64, lr: 0.03, momentum: 0.9, weight_decay: 1e-4 };
    let ft = TrainConfig { epochs: if quick_mode() { 2 } else { 6 }, lr: tc.lr / 5.0, ..tc };
    let mut net = build_model(mc, rng);
    train(&mut net, dataset, tc, rng);
    train(&mut net, dataset, ft, rng);
    net
}

fn software_variant(
    name: &str,
    kind: &str,
    data: &AttackData,
    cfg: &AttackConfig,
    seed: u64,
) -> DefenseEvalRow {
    let mut rng = dd_nn::init::seeded_rng(seed);
    let spec = DatasetKind::Cifar10.spec();
    let dataset = dd_nn::Dataset::generate(spec, &mut rng);
    let width = if quick_mode() { 2 } else { 4 };
    let mc = ModelConfig {
        arch: Architecture::ResNet20,
        in_channels: spec.channels,
        image_side: spec.height,
        classes: spec.classes,
        base_width: if kind == "capacity" { width * 2 } else { width },
    };
    let mut net = train_fresh(&mc, &dataset, &mut rng);
    // Transform + short recovery fine-tune (the transform-train-transform
    // pattern approximates the training-time versions of these defenses).
    let ft = TrainConfig {
        epochs: if quick_mode() { 2 } else { 4 },
        batch_size: 64,
        lr: 0.01,
        momentum: 0.9,
        weight_decay: 0.0,
    };
    match kind {
        "clustering" => {
            clip_weights(&mut net, 2.0);
            train(&mut net, &dataset, ft, &mut rng);
            clip_weights(&mut net, 2.0);
        }
        "binary" => {
            binarize_weights(&mut net);
            train(&mut net, &dataset, ft, &mut rng);
            binarize_weights(&mut net);
            // One more recovery pass for the norm/bias parameters.
            let ft2 = TrainConfig { epochs: ft.epochs, lr: 0.005, ..ft };
            train(&mut net, &dataset, ft2, &mut rng);
            binarize_weights(&mut net);
        }
        _ => {}
    }
    let mut model = QModel::from_network(net);
    evaluate_defense(name, &mut model, data, cfg, LandingFilter::AlwaysLands, soft_budget())
}

fn main() {
    let width = if quick_mode() { 2 } else { 4 };
    println!("Training ResNet-20 (base width {width}) on {}...", DatasetKind::Cifar10.name());
    let mut victim = prepare_victim(Architecture::ResNet20, DatasetKind::Cifar10, width, 333);
    println!("clean accuracy {}", pct(victim.clean_accuracy));
    let cfg = AttackConfig {
        target_accuracy: DatasetKind::Cifar10.chance() * 1.1,
        max_flips: 400,
        ..Default::default()
    };

    let mut rows: Vec<DefenseEvalRow> = Vec::new();

    // Baseline: undefended 8-bit ResNet-20.
    rows.push(evaluate_defense(
        "Baseline ResNet-20",
        &mut victim.model,
        &victim.data,
        &cfg,
        LandingFilter::AlwaysLands,
        soft_budget(),
    ));

    // Software defenses (fresh victims with the transform applied).
    rows.push(software_variant("Piece-wise clustering", "clustering", &victim.data, &cfg, 334));
    rows.push(software_variant("Binary weight", "binary", &victim.data, &cfg, 335));
    rows.push(software_variant("Model Capacity x2", "capacity", &victim.data, &cfg, 336));

    // Hardware defenses on the common victim.
    rows.push(evaluate_defense(
        "RRS",
        &mut victim.model,
        &victim.data,
        &cfg,
        LandingFilter::row_swap(SwapScheme::Rrs, 41),
        hw_budget(342),
    ));
    rows.push(evaluate_defense(
        "SRS",
        &mut victim.model,
        &victim.data,
        &cfg,
        LandingFilter::row_swap(SwapScheme::Srs, 42),
        hw_budget(378),
    ));
    rows.push(evaluate_defense(
        "SHADOW",
        &mut victim.model,
        &victim.data,
        &cfg,
        LandingFilter::probabilistic(0.002, 43),
        hw_budget(985),
    ));

    // DNN-Defender: profile and secure the vulnerable set. Round-1 depth
    // covers the naive attacker's whole greedy path (see EXPERIMENTS.md);
    // the second round adds adaptive-attack cover.
    let dd_budget = hw_budget(1150);
    let profile_cfg =
        AttackConfig { target_accuracy: 0.0, max_flips: dd_budget, ..Default::default() };
    let profile = dd_attack::multi_round_profile(&mut victim.model, &victim.data, &profile_cfg, 2);
    rows.push(evaluate_defense(
        "DNN-Defender",
        &mut victim.model,
        &victim.data,
        &cfg,
        LandingFilter::ProtectedSet(profile.all()),
        dd_budget,
    ));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                pct(r.clean_accuracy),
                pct(r.post_attack_accuracy),
                r.attempts.to_string(),
                r.landed.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 3: BFA defense comparison (ResNet-20, CIFAR-10 stand-in)",
        &["Defense", "Clean acc", "Post-attack acc", "Flip attempts", "Landed"],
        &table,
    );
    println!(
        "\nShape check (paper): baseline collapses to chance in tens of flips; \
         software defenses raise the required flips / bound the damage; \
         RRS/SRS leak a few campaigns; SHADOW leaks almost none; \
         DNN-Defender holds clean accuracy with zero landed flips."
    );
}
