//! Table 3: defense comparison on ResNet-20 / CIFAR-10 (stand-in) —
//! clean accuracy, post-attack accuracy, and flip budget for the
//! baseline, software defenses, and hardware defenses, all driven
//! through one `ScenarioMatrix` entry point. The Fig. 8 analytical rows
//! ride along from the same matrix.

use dd_attack::AttackConfig;
use dd_baselines::{
    GrapheneDefense, RowSwapMechanism, ScenarioMatrix, ShadowMechanism, SoftwareDefense,
    SoftwareKind, SwapScheme, VictimSpec,
};
use dd_bench::{pct, print_table, quick_mode, DatasetKind};
use dd_qnn::Architecture;
use dnn_defender::defense::{DefenseConfig, DnnDefenderDefense, Undefended};

/// Budget for undefended/software rows (attack stops early on collapse).
fn soft_budget() -> usize {
    if quick_mode() {
        12
    } else {
        60
    }
}

/// Budget for hardware-defense rows (scaled from the paper's attempt
/// counts; the leak *rate* is what matters, so these stay large).
fn hw_budget(paper: usize) -> usize {
    if quick_mode() {
        12
    } else {
        paper.min(350)
    }
}

fn main() {
    let width = if quick_mode() { 2 } else { 4 };
    let epochs = if quick_mode() { 5 } else { 14 };
    println!(
        "Table 3 matrix: ResNet-20 (base width {width}) on {}, budgets {}/{}+ \
         (every cell retrains the victim deterministically; cells run in parallel)...",
        DatasetKind::Cifar10.name(),
        soft_budget(),
        hw_budget(342),
    );

    let attack = AttackConfig {
        target_accuracy: DatasetKind::Cifar10.chance() * 1.1,
        max_flips: 400,
        ..Default::default()
    };
    let matrix = ScenarioMatrix::new(VictimSpec::paper(
        Architecture::ResNet20,
        width,
        epochs,
        333,
    ))
    .defense("Baseline (undefended)", |_, _| Box::new(Undefended::new()))
    .defense(SoftwareKind::Clustering.name(), |_, _| {
        Box::new(SoftwareDefense::new(SoftwareKind::Clustering))
    })
    .defense(SoftwareKind::BinaryWeights.name(), |_, _| {
        Box::new(SoftwareDefense::new(SoftwareKind::BinaryWeights))
    })
    .defense(SoftwareKind::CapacityX2.name(), |_, _| {
        Box::new(SoftwareDefense::new(SoftwareKind::CapacityX2))
    })
    .defense_budgeted("Graphene", hw_budget(342), |_, config| {
        Box::new(GrapheneDefense::for_config(config))
    })
    .defense_budgeted("RRS", hw_budget(342), |seed, _| {
        Box::new(RowSwapMechanism::new(SwapScheme::Rrs, seed))
    })
    .defense_budgeted("SRS", hw_budget(378), |seed, _| {
        Box::new(RowSwapMechanism::new(SwapScheme::Srs, seed))
    })
    .defense_budgeted("SHADOW", hw_budget(985), |seed, _| {
        Box::new(ShadowMechanism::new(1000, seed))
    })
    .defense_budgeted("DNN-Defender", hw_budget(1150), |seed, _| {
        Box::new(DnnDefenderDefense::with_profiling(
            DefenseConfig::default(),
            2,
            seed,
        ))
    })
    .attack_config(attack)
    .budget(soft_budget())
    .seed(333);

    let report = matrix.run().expect("matrix run");

    let table: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|c| {
            vec![
                c.scenario.defense.clone(),
                pct(c.clean_accuracy),
                pct(c.post_attack_accuracy),
                c.attempts.to_string(),
                c.landed.to_string(),
                c.stats.defense_ops.to_string(),
            ]
        })
        .collect();
    print_table(
        "Table 3: BFA defense comparison (ResNet-20, CIFAR-10 stand-in)",
        &[
            "Defense",
            "Clean acc",
            "Post-attack acc",
            "Flip attempts",
            "Landed",
            "Defense ops",
        ],
        &table,
    );

    let fig8: Vec<Vec<String>> = matrix
        .security_analysis(&[1000, 2000, 4000, 8000])
        .iter()
        .map(|r| {
            vec![
                r.t_rh.to_string(),
                format!("{:.0}", r.dd_days),
                format!("{:.0}", r.shadow_days),
                r.max_defended_bfas.to_string(),
                r.attacker_bfas.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 8 (analytical): time-to-break and capacity per T_RH",
        &[
            "T_RH",
            "DD days",
            "SHADOW days",
            "Max defended BFAs",
            "Attacker BFAs",
        ],
        &fig8,
    );

    println!(
        "\nShape check (paper): baseline collapses to chance in tens of flips; \
         software defenses raise the required flips / bound the damage; \
         RRS/SRS leak a few campaigns; Graphene and SHADOW leak almost none; \
         DNN-Defender holds clean accuracy with zero landed flips."
    );
}
