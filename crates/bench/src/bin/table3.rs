//! Table 3: defense comparison on ResNet-20 / CIFAR-10 (stand-in),
//! driven through one `ScenarioMatrix` entry point, with the Fig. 8
//! analytical rows riding along.
//!
//! Thin wrapper over `dd_bench::experiments` — prefer `repro table3`,
//! which also caches matrix cells, writes the artifact, and updates the
//! docs.

fn main() {
    dd_bench::experiments::run_standalone(dd_bench::experiments::ExperimentId::Table3);
}
