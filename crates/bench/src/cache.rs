//! The on-disk content-addressed cell cache (`artifacts/cache/cells.json`).
//!
//! Format v2: `{"version": 2, "cell_protocol_version": <v>, "cells":
//! {"0x<key>": <CellReport>, …}}`, keys sorted for deterministic bytes.
//!
//! The `cell_protocol_version` stamp records the
//! [`CELL_PROTOCOL_VERSION`] the cells were computed under. Cache *keys*
//! already hash that version, so stale entries could never produce a false
//! hit — but before the stamp existed, a protocol bump mid-tree left the
//! old entries in the file forever (dead weight that pruning only clears
//! on full `repro all` runs, and a trap for any tool that reads the file
//! without re-deriving keys). The loader therefore **evicts** the whole
//! file — returns an empty cache, no error — whenever the stamp (or the
//! container version) does not match what this build would write.

use std::collections::HashMap;
use std::path::Path;

use dd_baselines::{CellReport, CELL_PROTOCOL_VERSION};
use dnn_defender::Json;

/// Version of the cache *container* format (not of the cells' semantics —
/// that is the `cell_protocol_version` stamp). v2 added the stamp.
pub const CELL_CACHE_FORMAT_VERSION: u64 = 2;

/// Outcome of a cache load: the usable cells plus eviction accounting,
/// so harnesses (and the chaos campaign) can see exactly how much of
/// the file survived validation.
#[derive(Debug, Default)]
pub struct CacheLoad {
    /// The entries that decoded cleanly.
    pub cells: HashMap<u64, CellReport>,
    /// Entries dropped because their key or payload failed to decode
    /// (on-disk corruption, or an armed `cache.corrupt_entry` fault).
    pub corrupt_evicted: usize,
    /// The whole file was evicted (missing, unparsable, another
    /// container version, or a different cell-protocol stamp).
    pub evicted_all: bool,
}

/// Load the cell cache, returning an empty map when the file is missing,
/// malformed, from another container version, or stamped with a different
/// [`CELL_PROTOCOL_VERSION`] (stale caches evict, they never error).
pub fn load_cell_cache(path: &Path) -> HashMap<u64, CellReport> {
    load_cell_cache_accounted(path).cells
}

/// [`load_cell_cache`] with eviction accounting. Corrupt entries are
/// evicted individually — the rest of the file stays usable — and the
/// eviction is reported, never a crash: a recomputed cell simply
/// replaces the evicted one on the next save.
pub fn load_cell_cache_accounted(path: &Path) -> CacheLoad {
    let Ok(text) = std::fs::read_to_string(path) else {
        return CacheLoad {
            evicted_all: true,
            ..CacheLoad::default()
        };
    };
    let Ok(json) = Json::parse(&text) else {
        eprintln!("repro: ignoring malformed cell cache {}", path.display());
        return CacheLoad {
            evicted_all: true,
            ..CacheLoad::default()
        };
    };
    let load = parse_cell_cache_accounted(&json);
    if load.corrupt_evicted > 0 {
        eprintln!(
            "repro: evicted {} corrupt cell-cache entr{} from {} ({} kept)",
            load.corrupt_evicted,
            if load.corrupt_evicted == 1 {
                "y"
            } else {
                "ies"
            },
            path.display(),
            load.cells.len(),
        );
    }
    load
}

/// The eviction-aware decode behind [`load_cell_cache`] (separated so the
/// version-mismatch behavior is testable without touching the fs).
pub fn parse_cell_cache(json: &Json) -> HashMap<u64, CellReport> {
    parse_cell_cache_accounted(json).cells
}

/// [`parse_cell_cache`] with per-entry eviction accounting. When an
/// armed chaos plan fires `cache.corrupt_entry` (keyed by cell key),
/// the entry's payload is replaced with garbage *before* validation, so
/// the injected corruption exercises the same decode-and-evict path a
/// real bit-rotted file would.
pub fn parse_cell_cache_accounted(json: &Json) -> CacheLoad {
    let mut load = CacheLoad::default();
    if json.get("version").and_then(Json::as_u64) != Some(CELL_CACHE_FORMAT_VERSION) {
        load.evicted_all = true;
        return load;
    }
    if json.get("cell_protocol_version").and_then(Json::as_u64) != Some(CELL_PROTOCOL_VERSION) {
        load.evicted_all = true;
        return load;
    }
    let Some(Json::Obj(fields)) = json.get("cells") else {
        load.evicted_all = true;
        return load;
    };
    for (key, value) in fields {
        let parsed_key = key
            .strip_prefix("0x")
            .and_then(|k| u64::from_str_radix(k, 16).ok());
        let Some(key) = parsed_key else {
            load.corrupt_evicted += 1;
            continue;
        };
        let chaos_garbage;
        let value = if dd_chaos::fires("cache.corrupt_entry", key) {
            chaos_garbage = Json::str("chaos: corrupted cache entry");
            &chaos_garbage
        } else {
            value
        };
        match CellReport::from_json(value) {
            Ok(cell) => {
                load.cells.insert(key, cell);
            }
            Err(_) => load.corrupt_evicted += 1,
        }
    }
    load
}

/// Render the cache document (sorted keys, deterministic bytes).
pub fn render_cell_cache(cells: &HashMap<u64, CellReport>) -> String {
    let mut keys: Vec<u64> = cells.keys().copied().collect();
    keys.sort_unstable();
    let fields: Vec<(String, Json)> = keys
        .into_iter()
        .map(|key| (format!("{key:#018x}"), cells[&key].to_json()))
        .collect();
    Json::obj()
        .with("version", Json::uint(CELL_CACHE_FORMAT_VERSION))
        .with("cell_protocol_version", Json::uint(CELL_PROTOCOL_VERSION))
        .with("cells", Json::Obj(fields))
        .render_pretty()
}

/// Write the cache, creating parent directories as needed. The write is
/// atomic (temp file + rename in the same directory): a crash or an
/// injected fault mid-write leaves the previous cache intact, never a
/// half-written file.
pub fn save_cell_cache(path: &Path, cells: &HashMap<u64, CellReport>) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut tmp_name = path
        .file_name()
        .map(|name| name.to_os_string())
        .unwrap_or_else(|| std::ffi::OsString::from("cells.json"));
    tmp_name.push(format!(".tmp.{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let result =
        std::fs::write(&tmp, render_cell_cache(cells)).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dd_baselines::{DefenseKind, ScenarioMatrix, VictimSpec};

    fn one_cell() -> HashMap<u64, CellReport> {
        let matrix = ScenarioMatrix::new(VictimSpec::tiny_mlp(7))
            .budget(2)
            .defense_kind(DefenseKind::Undefended)
            .threads(1);
        let key = matrix.cell_keys()[0].1;
        let report = matrix.run().expect("tiny matrix");
        HashMap::from([(key, report.cells[0].clone())])
    }

    #[test]
    fn cache_round_trips_and_evicts_on_version_mismatch() {
        let cells = one_cell();
        let rendered = render_cell_cache(&cells);
        let json = Json::parse(&rendered).expect("cache parses");
        assert_eq!(
            json.field_u64("cell_protocol_version"),
            Ok(CELL_PROTOCOL_VERSION)
        );

        // Round trip.
        let back = parse_cell_cache(&json);
        assert_eq!(back.len(), 1);
        let key = *cells.keys().next().expect("key");
        assert_eq!(back[&key].scenario, cells[&key].scenario);

        // A mid-tree CELL_PROTOCOL_VERSION bump evicts instead of erroring
        // (regression test for the stale-cache hazard: pre-stamp caches
        // kept entries from older protocol versions forever).
        let cells_field = json.field("cells").expect("cells").clone();
        let stale = Json::obj()
            .with("version", Json::uint(CELL_CACHE_FORMAT_VERSION))
            .with(
                "cell_protocol_version",
                Json::uint(CELL_PROTOCOL_VERSION + 1),
            )
            .with("cells", cells_field.clone());
        assert!(parse_cell_cache(&stale).is_empty());
        let unstamped = Json::obj()
            .with("version", Json::uint(CELL_CACHE_FORMAT_VERSION))
            .with("cells", cells_field.clone());
        assert!(parse_cell_cache(&unstamped).is_empty());
        let old_container = Json::obj()
            .with("version", Json::uint(1))
            .with("cell_protocol_version", Json::uint(CELL_PROTOCOL_VERSION))
            .with("cells", cells_field);
        assert!(parse_cell_cache(&old_container).is_empty());
    }

    #[test]
    fn missing_and_malformed_files_load_empty() {
        let dir = std::env::temp_dir().join(format!("dd-cache-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let missing = dir.join("nope.json");
        assert!(load_cell_cache(&missing).is_empty());
        assert!(load_cell_cache_accounted(&missing).evicted_all);
        let garbled = dir.join("garbled.json");
        std::fs::write(&garbled, "{not json").expect("write");
        assert!(load_cell_cache(&garbled).is_empty());
        assert!(load_cell_cache_accounted(&garbled).evicted_all);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_file() {
        let dir = std::env::temp_dir().join(format!("dd-cache-atomic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("cells.json");
        let cells = one_cell();
        save_cell_cache(&path, &cells).expect("save");
        let reloaded = load_cell_cache_accounted(&path);
        assert_eq!(reloaded.cells.len(), 1);
        assert_eq!(reloaded.corrupt_evicted, 0);
        assert!(!reloaded.evicted_all);
        // The temp file was renamed away, not left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read dir")
            .filter_map(|entry| entry.ok())
            .filter(|entry| entry.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_evict_individually_with_accounting() {
        let cells = one_cell();
        let rendered = render_cell_cache(&cells);
        let json = Json::parse(&rendered).expect("cache parses");
        // Splice a garbage entry next to the good one.
        let Json::Obj(mut fields) = json.clone() else {
            panic!("cache document is an object");
        };
        for (name, value) in &mut fields {
            if name == "cells" {
                let Json::Obj(entries) = value else {
                    panic!("cells is an object");
                };
                entries.push(("0xdeadbeefdeadbeef".to_string(), Json::str("bit rot")));
                entries.push(("not-a-key".to_string(), Json::Null));
            }
        }
        let load = parse_cell_cache_accounted(&Json::Obj(fields));
        assert_eq!(load.cells.len(), 1, "the good entry survives");
        assert_eq!(load.corrupt_evicted, 2);
        assert!(!load.evicted_all);
    }

    #[test]
    fn chaos_corrupt_entry_fault_exercises_the_eviction_path() {
        let cells = one_cell();
        let rendered = render_cell_cache(&cells);
        let json = Json::parse(&rendered).expect("cache parses");
        let session = dd_chaos::arm(
            dd_chaos::ChaosPlan::inert(7).with_rule("cache.corrupt_entry", 1_000_000),
        );
        let load = parse_cell_cache_accounted(&json);
        let report = session.finish();
        assert!(load.cells.is_empty(), "every entry was corrupted");
        assert_eq!(load.corrupt_evicted, 1);
        assert_eq!(report.fires_at("cache.corrupt_entry"), 1);
        // Disarmed, the same document loads cleanly again.
        let clean = parse_cell_cache_accounted(&json);
        assert_eq!(clean.cells.len(), 1);
        assert_eq!(clean.corrupt_evicted, 0);
    }
}
